// libFuzzer target for the wire JSON parser (server/json.h): untrusted
// clients feed this parser directly, one line per request. Invariants are in
// fuzz/harness.h; any violation aborts, which libFuzzer records as a crash
// with a reproducer that then becomes a corpus seed + regression input.
//
// Built two ways (see fuzz/CMakeLists.txt): with clang as a real libFuzzer
// binary (-fsanitize=fuzzer,address), otherwise as a standalone driver that
// replays the files given on the command line.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string violation = seedb::fuzz::RunJsonInput(
      std::string_view(reinterpret_cast<const char*>(data), size));
  if (!violation.empty()) {
    std::fprintf(stderr, "fuzz_json invariant violated: %s\n",
                 violation.c_str());
    std::abort();
  }
  return 0;
}

#if defined(SEEDB_FUZZ_STANDALONE)
#include "fuzz/standalone_main.inc"
#endif
