// Shared invariant-checking harness for the wire-facing fuzz targets.
//
// The same checks run in three places, so they live here once:
//   * fuzz_json.cc / fuzz_protocol.cc under libFuzzer+ASan (clang CI leg,
//     60s smoke run; local: see README "Correctness tooling"),
//   * the same binaries as standalone file-replay drivers on toolchains
//     without libFuzzer (gcc),
//   * tests/server/protocol_corpus_test.cc, which replays the checked-in
//     corpus deterministically in a plain ctest run — corpus regressions
//     fail without any fuzzer build.
//
// Each Run* function returns "" when every invariant held, else a
// description of the violation; fuzz drivers abort on non-empty (so the
// fuzzer records a crash + reproducer), the ctest replay EXPECTs empty.

#ifndef SEEDB_FUZZ_HARNESS_H_
#define SEEDB_FUZZ_HARNESS_H_

#include <cmath>
#include <string>
#include <string_view>

#include "data/synthetic.h"
#include "db/catalog.h"
#include "db/engine.h"
#include "server/json.h"
#include "server/server.h"

namespace seedb::fuzz {

/// JSON parser invariants over arbitrary bytes: parsing never crashes;
/// accepted documents survive a Dump() -> reparse round trip with Dump() as
/// a fixed point; no non-finite number ever comes out of the parser.
inline std::string RunJsonInput(std::string_view input) {
  Result<server::JsonValue> parsed = server::ParseJson(input);
  if (!parsed.ok()) {
    // Every rejection must be a clean InvalidArgument, never another code.
    if (parsed.status().code() != StatusCode::kInvalidArgument) {
      return "rejection with non-InvalidArgument status: " +
             parsed.status().ToString();
    }
    return "";
  }
  if (parsed->is_number() && !std::isfinite(parsed->AsDouble())) {
    return "parser produced a non-finite number";
  }
  const std::string dumped = parsed->Dump();
  Result<server::JsonValue> reparsed = server::ParseJson(dumped);
  if (!reparsed.ok()) {
    return "accepted document failed to reparse after Dump(): " + dumped;
  }
  const std::string redumped = reparsed->Dump();
  if (redumped != dumped) {
    return "Dump() is not a fixed point: '" + dumped + "' vs '" + redumped +
           "'";
  }
  return "";
}

/// One server every protocol input is thrown at: a tiny synthetic table so
/// `open`/`finish` lines execute real plans fast, a small session cap so a
/// fuzzer cannot balloon the registry. HandleLine drives the dispatcher
/// without a socket. Process-lifetime statics: building an Engine per input
/// would dominate the fuzz loop.
class ProtocolHarness {
 public:
  static ProtocolHarness& Instance() {
    static ProtocolHarness harness;
    return harness;
  }

  /// Dispatcher invariants over one arbitrary request line: never crashes;
  /// the response is exactly one parseable JSON object carrying a boolean
  /// "ok"; failed requests carry an error message and a known code token.
  std::string RunLine(std::string_view line) {
    const std::string response = server_->HandleLine(std::string(line));
    Result<server::JsonValue> parsed = server::ParseJson(response);
    if (!parsed.ok()) {
      return "response is not valid JSON: " + response;
    }
    if (!parsed->is_object()) return "response is not an object: " + response;
    const server::JsonValue* ok = parsed->Find("ok");
    if (ok == nullptr || !ok->is_bool()) {
      return "response lacks boolean \"ok\": " + response;
    }
    if (!ok->AsBool()) {
      if (parsed->GetString("error").empty()) {
        return "error response lacks \"error\" message: " + response;
      }
      const Status status = server::StatusFromErrorResponse(*parsed);
      if (status.ok()) {
        return "error response decoded to OK status: " + response;
      }
    }
    return "";
  }

 private:
  ProtocolHarness() {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(
        /*num_rows=*/256, /*num_dims=*/2, /*num_measures=*/1,
        /*cardinality=*/4, /*seed=*/11);
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    Status added = catalog_.AddTable("synth", std::move(dataset.table));
    (void)added;  // cannot fail on a fresh catalog
    engine_ = new db::Engine(&catalog_);
    server::ServerOptions options;
    options.max_sessions = 8;
    server_ = new server::RecommendationServer(engine_, options);
    // No Start(): HandleLine drives the dispatcher directly, v1 semantics.
  }

  db::Catalog catalog_;
  db::Engine* engine_ = nullptr;  // leaked on purpose: process lifetime
  server::RecommendationServer* server_ = nullptr;
};

inline std::string RunProtocolInput(std::string_view line) {
  return ProtocolHarness::Instance().RunLine(line);
}

}  // namespace seedb::fuzz

#endif  // SEEDB_FUZZ_HARNESS_H_
