// Quickstart: load a small sales table, ask SeeDB for interesting views.
//
// This mirrors the paper's §1 workflow end to end in ~60 lines:
//   1. register data with the engine,
//   2. issue the analyst query Q,
//   3. receive ranked visualizations.

#include <cstdio>

#include "core/seedb.h"
#include "db/engine.h"
#include "viz/ascii_renderer.h"
#include "viz/metadata.h"

namespace {

// Builds a toy sales table: product/store/month dimensions, amount measure.
seedb::db::Table BuildSalesTable() {
  seedb::db::Schema schema;
  (void)schema.AddColumn(seedb::db::ColumnDef::Dimension("product"));
  (void)schema.AddColumn(seedb::db::ColumnDef::Dimension("store"));
  (void)schema.AddColumn(seedb::db::ColumnDef::Dimension("month"));
  (void)schema.AddColumn(seedb::db::ColumnDef::Measure("amount"));
  seedb::db::Table table(schema);

  struct Row {
    const char* product;
    const char* store;
    const char* month;
    double amount;
  };
  // The Laserwave sells mostly in Cambridge; everything else is spread out.
  const Row rows[] = {
      {"Laserwave Oven", "Cambridge, MA", "Jan", 180.55},
      {"Laserwave Oven", "Cambridge, MA", "Feb", 145.50},
      {"Laserwave Oven", "Seattle, WA", "Mar", 122.00},
      {"Laserwave Oven", "Cambridge, MA", "Apr", 90.13},
      {"Saberwave Oven", "New York, NY", "Jan", 400.00},
      {"Saberwave Oven", "San Francisco, CA", "Feb", 380.00},
      {"Saberwave Oven", "Seattle, WA", "Mar", 350.00},
      {"Toaster Pro", "New York, NY", "Jan", 120.00},
      {"Toaster Pro", "San Francisco, CA", "Feb", 130.00},
      {"Toaster Pro", "Seattle, WA", "Mar", 110.00},
      {"Toaster Pro", "Cambridge, MA", "Apr", 125.00},
      {"Blender Max", "New York, NY", "Jan", 95.00},
      {"Blender Max", "San Francisco, CA", "Feb", 85.00},
      {"Blender Max", "Seattle, WA", "Mar", 105.00},
      {"Blender Max", "Cambridge, MA", "Apr", 90.00},
  };
  for (const Row& r : rows) {
    (void)table.AppendRow({seedb::db::Value(r.product),
                           seedb::db::Value(r.store),
                           seedb::db::Value(r.month),
                           seedb::db::Value(r.amount)});
  }
  return table;
}

}  // namespace

int main() {
  // 1. Register data.
  seedb::db::Catalog catalog;
  if (auto s = catalog.AddTable("sales", BuildSalesTable()); !s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  seedb::db::Engine engine(&catalog);
  seedb::core::SeeDB seedb(&engine);

  // 2. The analyst's query Q, exactly as in the paper's §1.
  const char* query = "SELECT * FROM sales WHERE product = 'Laserwave Oven'";
  std::printf("Analyst query: %s\n\n", query);

  seedb::core::SeeDBOptions options;
  options.k = 3;
  options.metric = seedb::core::DistanceMetric::kEarthMovers;

  auto result = seedb.RecommendSql(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Display the recommended visualizations.
  for (const auto& rec : result->top_views) {
    std::printf("%s\n", seedb::viz::RenderRecommendation(rec).c_str());
    seedb::viz::ViewMetadata meta =
        seedb::viz::ComputeViewMetadata(rec.result);
    std::printf("    metadata: %s\n\n", meta.ToString().c_str());
  }
  std::printf("profile: %s\n", result->profile.ToString().c_str());
  return 0;
}
