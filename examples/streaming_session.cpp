// Streaming session walkthrough: the incremental face of the SeeDB
// pipeline (core/session.h).
//
// The paper's frontend (Fig. 1) is interactive: the analyst submits a
// query, watches recommendations firm up, and can abandon a slow scan.
// This example drives all three behaviors against a synthetic workload:
//   1. a session yielding one ProgressUpdate per phase (provisional top-k
//      with Hoeffding bounds tightening as rows accumulate),
//   2. early stop, ending the scan once the top-k is CI-stable,
//   3. cancellation, abandoning a scan mid-flight with partial results,
// and shows the "views not examined" list an online pruner produces.

#include <cmath>
#include <cstdio>

#include "core/session.h"
#include "data/workload.h"

using namespace seedb;  // NOLINT

namespace {

void Banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

void PrintUpdate(const core::ProgressUpdate& u) {
  std::printf("phase %zu/%zu: %5.1fms, rows %llu/%llu, active %zu, "
              "pruned %zu",
              u.phase, u.total_phases, u.phase_seconds * 1e3,
              static_cast<unsigned long long>(u.rows_scanned),
              static_cast<unsigned long long>(u.total_rows), u.views_active,
              u.views_pruned_online);
  if (!u.top_views.empty()) {
    const core::ProvisionalView& top = u.top_views[0];
    std::printf(" | top: %s ~%.4f", top.view.Id().c_str(), top.utility);
    if (std::isfinite(u.ci_half_width)) {
      std::printf(" ±%.4f", u.ci_half_width);
    }
  }
  if (u.early_stopped) std::printf(" [early stop]");
  if (u.cancelled) std::printf(" [cancelled]");
  std::printf("\n");
}

}  // namespace

int main() {
  data::WorkloadSpec spec;
  spec.rows = 60000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  spec.deviation_strength = 6.0;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb(workload.engine.get());

  Banner("1. Progressive recommendations with online pruning");
  {
    core::OnlinePruningOptions pruning;
    pruning.num_phases = 8;
    pruning.pruner = core::OnlinePruner::kMultiArmedBandit;
    auto session = seedb.Open(core::SeeDBRequest(workload.table_name)
                                  .Where(workload.selection)
                                  .WithTopK(3)
                                  .WithOnlinePruning(pruning))
                       .ValueOrDie();
    while (true) {
      auto update = session.Next().ValueOrDie();
      if (!update.has_value()) break;
      PrintUpdate(*update);
    }
    auto set = session.Finish().ValueOrDie();
    std::printf("final top view: %s (utility %.4f)\n",
                set.top_views[0].view().Id().c_str(),
                set.top_views[0].utility());
    std::printf("views not examined: %zu (each with its estimate at "
                "retirement), %zu examined to completion\n",
                set.online_pruned_views.size(),
                set.profile.examined_view_count);
  }

  Banner("2. Early stop once the top-k is CI-stable");
  {
    core::SeeDBRequest request(workload.table_name);
    request.Where(workload.selection).WithTopK(1).WithPhases(16)
        .WithEarlyStop(2);
    core::SeeDBOptions options = request.options();
    // A tight utility range shrinks the Hoeffding interval so the planted
    // view separates after a few boundaries — the accuracy/latency dial.
    options.online_pruning.delta = 0.2;
    options.online_pruning.utility_range = 0.2;
    request.WithOptions(options);
    auto session = seedb.Open(request).ValueOrDie();
    while (true) {
      auto update = session.Next().ValueOrDie();
      if (!update.has_value()) break;
      PrintUpdate(*update);
    }
    auto set = session.Finish().ValueOrDie();
    std::printf("early_stopped=%s after %zu/16 phases; top view %s\n",
                set.profile.early_stopped ? "true" : "false",
                set.profile.phases_executed,
                set.top_views[0].view().Id().c_str());
  }

  Banner("3. Cancellation mid-scan");
  {
    auto session = seedb.Open(core::SeeDBRequest(workload.table_name)
                                  .Where(workload.selection)
                                  .WithTopK(3)
                                  .WithPhases(12))
                       .ValueOrDie();
    // Drive two phases, then abandon the scan — in a real frontend Cancel()
    // arrives from another thread; it is observed at morsel boundaries.
    PrintUpdate(*session.Next().ValueOrDie());
    PrintUpdate(*session.Next().ValueOrDie());
    session.Cancel();
    auto set = session.Finish().ValueOrDie();
    std::printf("cancelled=%s; partial ranking from %llu rows still names "
                "%zu views\n",
                set.profile.cancelled ? "true" : "false",
                static_cast<unsigned long long>(set.profile.rows_scanned),
                set.top_views.size());
  }

  std::printf("\nAll three behaviors ran against ONE engine: sessions are "
              "self-contained, so concurrent analysts are just concurrent "
              "sessions.\n");
  return 0;
}
