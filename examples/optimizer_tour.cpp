// Optimizer tour: shows, on one synthetic workload, how each §3.3
// optimization changes the execution plan and the engine's measured costs.
// This is the "enhanced user interface" of demo Scenario 2 in library form.

#include <cstdio>

#include "core/query_generator.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

void RunOptions(const char* label, seedb::core::SeeDB* seedb,
                seedb::data::Workload* w,
                const seedb::core::SeeDBOptions& options) {
  w->engine->ResetStats();
  auto result = seedb->Recommend(w->table_name, w->selection, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    return;
  }
  std::printf("%-34s queries=%3zu scans=%3zu rows=%9llu top=%s (%.4f)",
              label, result->profile.queries_issued,
              result->profile.table_scans,
              static_cast<unsigned long long>(result->profile.rows_scanned),
              result->top_views[0].view().Id().c_str(),
              result->top_views[0].utility());
  if (result->profile.phases_executed > 1) {
    std::printf(" [%zu phases, %zu views pruned online]",
                result->profile.phases_executed,
                result->profile.views_pruned_online);
  }
  std::printf("\n");
}

void RunWith(const char* label, seedb::core::SeeDB* seedb,
             seedb::data::Workload* w,
             const seedb::core::OptimizerOptions& optimizer) {
  seedb::core::SeeDBOptions options;
  options.k = 3;
  options.optimizer = optimizer;
  RunOptions(label, seedb, w, options);
}

}  // namespace

int main() {
  seedb::data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 6;
  spec.num_measures = 2;
  spec.cardinality = 20;
  auto workload = seedb::data::BuildWorkload(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  seedb::core::SeeDB seedb(workload->engine.get());

  std::printf("Workload: %zu rows, %zu dims x %zu measures\n\n", spec.rows,
              spec.num_dims, spec.num_measures);

  // Show the generated (un-optimized) view queries first.
  auto generated = seedb::core::GenerateViews(
      workload->engine.get(), workload->table_name, workload->selection,
      {}, seedb::core::PruningOptions::None());
  if (generated.ok()) {
    std::printf("Query Generator emitted %zu views; first two as SQL:\n",
                generated->queries.size());
    for (size_t i = 0; i < 2 && i < generated->queries.size(); ++i) {
      std::printf("  target:     %s\n  comparison: %s\n",
                  generated->queries[i].target_sql.c_str(),
                  generated->queries[i].comparison_sql.c_str());
    }
    std::printf("\n");
  }

  using seedb::core::OptimizerOptions;
  OptimizerOptions baseline = OptimizerOptions::Baseline();
  RunWith("baseline (no sharing)", &seedb, &*workload, baseline);

  OptimizerOptions tc = baseline;
  tc.combine_target_comparison = true;
  RunWith("+ combine target/comparison", &seedb, &*workload, tc);

  OptimizerOptions agg = tc;
  agg.combine_aggregates = true;
  RunWith("+ combine aggregates", &seedb, &*workload, agg);

  OptimizerOptions all = agg;
  all.combine_group_bys = true;
  RunWith("+ combine group-bys (all on)", &seedb, &*workload, all);

  OptimizerOptions sampled = all;
  sampled.sample_fraction = 0.1;
  RunWith("all + 10% sampling", &seedb, &*workload, sampled);

  // The execution-layer knobs: the same (baseline) plan fused into one
  // morsel-driven pass, then phased with each online pruner retiring
  // low-utility views mid-scan (§3.3 pruning-based optimizations).
  std::printf("\nExecution strategies on the un-combined plan:\n");
  {
    seedb::core::SeeDBOptions options;
    options.k = 3;
    options.optimizer = baseline;
    options.strategy = seedb::core::ExecutionStrategy::kSharedScan;
    options.parallelism = 4;
    RunOptions("shared scan (fused)", &seedb, &*workload, options);

    options.strategy = seedb::core::ExecutionStrategy::kPhasedSharedScan;
    options.online_pruning.num_phases = 8;
    options.online_pruning.pruner =
        seedb::core::OnlinePruner::kConfidenceInterval;
    options.online_pruning.delta = 0.05;
    RunOptions("phased + CI pruning", &seedb, &*workload, options);

    options.online_pruning.pruner =
        seedb::core::OnlinePruner::kMultiArmedBandit;
    RunOptions("phased + MAB halving", &seedb, &*workload, options);
  }

  // Print the fully optimized plan so the query combining is visible.
  auto stats = workload->catalog->GetStats(workload->table_name);
  auto views = seedb::core::EnumerateViews(
      workload->catalog->GetTable(workload->table_name)
          .ValueOrDie()
          ->schema());
  auto plan = seedb::core::BuildExecutionPlan(
      views, workload->table_name, workload->selection, **stats, all);
  if (plan.ok()) {
    std::printf("\nFully optimized plan:\n%s", plan->Describe().c_str());
  }
  return 0;
}
