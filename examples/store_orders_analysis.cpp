// Store Orders analysis (§4, Scenario 1, dataset [4]): runs each known
// trend's analyst query through SeeDB and shows that the planted trend's
// view is recommended, alongside the "bad views" the demo uses for contrast.

#include <cstdio>

#include "core/seedb.h"
#include "data/store_orders.h"
#include "db/engine.h"
#include "viz/ascii_renderer.h"

int main() {
  auto dataset = seedb::data::MakeStoreOrders({.rows = 20000, .seed = 7});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  seedb::db::Catalog catalog;
  std::string table = dataset->table_name;
  (void)catalog.AddTable(table, std::move(dataset->table));
  seedb::db::Engine engine(&catalog);
  seedb::core::SeeDB seedb(&engine);

  seedb::core::SeeDBOptions options;
  options.k = 4;
  options.bottom_k = 2;  // also show low-utility views, demo-style
  options.metric = seedb::core::DistanceMetric::kEarthMovers;
  options.parallelism = 4;

  for (const auto& trend : dataset->trends) {
    std::printf("=== Known trend: %s\n", trend.description.c_str());
    std::printf("    query: %s\n", trend.query_sql.c_str());
    std::printf("    expecting a view on (%s, %s) near the top\n\n",
                trend.expected_dimension.c_str(),
                trend.expected_measure.c_str());

    auto result = seedb.RecommendSql(trend.query_sql, options);
    if (!result.ok()) {
      std::fprintf(stderr, "recommend failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const auto& rec : result->top_views) {
      bool matches = rec.view().dimension == trend.expected_dimension &&
                     rec.view().measure == trend.expected_measure;
      std::printf("  #%zu %-28s utility=%.4f%s\n", rec.rank,
                  rec.view().Id().c_str(), rec.utility(),
                  matches ? "   <-- planted trend" : "");
    }
    std::printf("  low-utility views (for contrast):\n");
    for (const auto& rec : result->low_utility_views) {
      std::printf("      %-28s utility=%.4f\n", rec.view().Id().c_str(),
                  rec.utility());
    }
    // Chart for the #1 view.
    if (!result->top_views.empty()) {
      std::printf("\n%s\n",
                  seedb::viz::RenderRecommendation(result->top_views[0])
                      .c_str());
    }
    std::printf("  profile: %s\n\n", result->profile.ToString().c_str());
  }
  return 0;
}
