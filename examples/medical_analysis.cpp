// Medical dataset analysis (§4, Scenario 1, dataset [2]): a wide clinical
// schema where variance-based pruning pays off — the near-constant
// administrative flag columns are pruned before any query runs.

#include <cstdio>

#include "core/seedb.h"
#include "data/medical.h"
#include "db/engine.h"
#include "viz/ascii_renderer.h"

int main() {
  auto dataset = seedb::data::MakeMedical(
      {.rows = 40000, .extra_flag_dims = 6, .seed = 13});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  seedb::db::Catalog catalog;
  std::string table = dataset->table_name;
  (void)catalog.AddTable(table, std::move(dataset->table));
  seedb::db::Engine engine(&catalog);
  seedb::core::SeeDB seedb(&engine);

  seedb::core::SeeDBOptions with_pruning;
  with_pruning.k = 4;
  with_pruning.pruning.enable_variance = true;
  with_pruning.pruning.min_dimension_diversity = 0.1;
  with_pruning.parallelism = 4;

  seedb::core::SeeDBOptions no_pruning = with_pruning;
  no_pruning.pruning = seedb::core::PruningOptions::None();

  for (const auto& trend : dataset->trends) {
    std::printf("=== %s\n    query: %s\n", trend.description.c_str(),
                trend.query_sql.c_str());

    auto pruned = seedb.RecommendSql(trend.query_sql, with_pruning);
    auto full = seedb.RecommendSql(trend.query_sql, no_pruning);
    if (!pruned.ok() || !full.ok()) {
      std::fprintf(stderr, "recommend failed\n");
      return 1;
    }

    std::printf("  with variance pruning (%zu of %zu views executed):\n",
                pruned->profile.views_executed,
                pruned->profile.views_enumerated);
    for (const auto& rec : pruned->top_views) {
      bool matches = rec.view().dimension == trend.expected_dimension &&
                     rec.view().measure == trend.expected_measure;
      std::printf("    #%zu %-36s utility=%.4f%s\n", rec.rank,
                  rec.view().Id().c_str(), rec.utility(),
                  matches ? "  <-- planted trend" : "");
    }
    std::printf(
        "  pruning cut views computed from %zu to %zu; top view unchanged: "
        "%s\n\n",
        full->profile.views_executed, pruned->profile.views_executed,
        (!full->top_views.empty() && !pruned->top_views.empty() &&
         full->top_views[0].view() == pruned->top_views[0].view())
            ? "yes"
            : "no");
  }

  // Show the headline chart for the sepsis trend.
  auto result = seedb.RecommendSql(dataset->trends[0].query_sql, with_pruning);
  if (result.ok() && !result->top_views.empty()) {
    std::printf("%s\n",
                seedb::viz::RenderRecommendation(result->top_views[0]).c_str());
  }
  return 0;
}
