// Election contributions analysis (§4, Scenario 1, dataset [1]): the
// journalist workflow — plus a demonstration of correlated-attribute
// pruning, since candidate determines party in this schema.

#include <cstdio>

#include "core/seedb.h"
#include "data/elections.h"
#include "db/engine.h"
#include "viz/ascii_renderer.h"
#include "viz/vega.h"

int main() {
  auto dataset = seedb::data::MakeElections({.rows = 30000, .seed = 11});
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  seedb::db::Catalog catalog;
  std::string table = dataset->table_name;
  (void)catalog.AddTable(table, std::move(dataset->table));
  seedb::db::Engine engine(&catalog);
  seedb::core::SeeDB seedb(&engine);

  // Enable correlation pruning: candidate <-> party are nearly 1:1, so one
  // of them should be evaluated on behalf of both.
  seedb::core::SeeDBOptions options;
  options.k = 4;
  options.pruning.enable_correlation = true;
  options.pruning.correlation_threshold = 0.8;
  options.metric = seedb::core::DistanceMetric::kJensenShannon;

  for (const auto& trend : dataset->trends) {
    std::printf("=== %s\n    query: %s\n", trend.description.c_str(),
                trend.query_sql.c_str());
    auto result = seedb.RecommendSql(trend.query_sql, options);
    if (!result.ok()) {
      std::fprintf(stderr, "recommend failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (const auto& rec : result->top_views) {
      bool matches = rec.view().dimension == trend.expected_dimension &&
                     rec.view().measure == trend.expected_measure;
      std::printf("  #%zu %-34s utility=%.4f%s\n", rec.rank,
                  rec.view().Id().c_str(), rec.utility(),
                  matches ? "   <-- planted trend" : "");
    }
    if (!result->pruned_views.empty()) {
      std::printf("  pruned %zu views, e.g.:\n", result->pruned_views.size());
      size_t shown = 0;
      for (const auto& pruned : result->pruned_views) {
        std::printf("      %-34s (%s%s%s)\n", pruned.view.Id().c_str(),
                    seedb::core::PruneReasonToString(pruned.reason),
                    pruned.detail.empty() ? "" : " -> ",
                    pruned.detail.c_str());
        if (++shown >= 3) break;
      }
    }
    std::printf("\n");
  }

  // Export the top view of the first trend as Vega-Lite JSON (what a web
  // frontend would consume).
  auto result = seedb.RecommendSql(dataset->trends[0].query_sql, options);
  if (result.ok() && !result->top_views.empty()) {
    auto spec = seedb::viz::BuildChartSpec(result->top_views[0].result);
    std::printf("Vega-Lite spec for the top view:\n%s\n",
                seedb::viz::ToVegaLite(spec).c_str());
  }
  return 0;
}
