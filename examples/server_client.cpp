// Serving walkthrough: the recommendation server and its client library.
//
// With no arguments, spins up an in-process RecommendationServer on a
// private unix socket over the store-orders demo table, then drives it the
// way an interactive frontend would under protocol v2: negotiate push with
// `hello`, open a server-driven session, watch per-phase progress frames
// arrive as unsolicited pushes (no polling round-trips), cancel mid-scan,
// RESUME the cancelled session (its merged aggregates survive — the final
// top-k equals an uninterrupted run's), and fetch the final recommendations.
//
// With a unix-socket path argument it skips the in-process server and
// drives an external `seedb_server` instead — CI's smoke test runs exactly
// that, and asserts on the "push sessions completed" line this binary
// prints:
//
//   seedb_server --unix /tmp/seedb.sock --demo &
//   example_server_client /tmp/seedb.sock

#include <cstdio>
#include <string>
#include <unistd.h>

#include "data/store_orders.h"
#include "db/engine.h"
#include "server/client.h"
#include "server/server.h"

using namespace seedb;  // NOLINT

namespace {

int Fail(const Status& status, const char* what) {
  std::printf("FAILED (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== SeeDB serving walkthrough ===\n\n");

  // -- Either connect to an external server, or host one right here. ------
  std::string socket_path;
  std::unique_ptr<db::Catalog> catalog;
  std::unique_ptr<db::Engine> engine;
  std::unique_ptr<server::RecommendationServer> local_server;
  if (argc > 1) {
    socket_path = argv[1];
    std::printf("connecting to external server at %s\n\n",
                socket_path.c_str());
  } else {
    socket_path =
        "/tmp/seedb_example_" + std::to_string(::getpid()) + ".sock";
    catalog = std::make_unique<db::Catalog>();
    auto orders = data::MakeStoreOrders({});
    if (!orders.ok()) return Fail(orders.status(), "demo data");
    catalog->PutTable(orders->table_name, std::move(orders->table));
    engine = std::make_unique<db::Engine>(catalog.get());
    server::ServerOptions options;
    options.unix_path = socket_path;
    local_server = std::make_unique<server::RecommendationServer>(
        engine.get(), options);
    Status started = local_server->Start();
    if (!started.ok()) return Fail(started, "server start");
    std::printf("in-process server listening on %s\n\n", socket_path.c_str());
  }

  auto client = server::Client::ConnectUnix(socket_path);
  if (!client.ok()) return Fail(client.status(), "connect");

  // -- Protocol v2 handshake. ---------------------------------------------
  // `hello` negotiates the version and the push capability. Against an old
  // server the call still succeeds and the connection silently stays on v1
  // polling — everything below would keep working, one round-trip per phase.
  Status hello = client->Hello();
  if (!hello.ok()) return Fail(hello, "hello");
  std::printf("negotiated protocol v%d (%s)\n\n",
              client->handshake().version,
              client->push_enabled() ? "server push" : "v1 polling");

  size_t push_sessions_completed = 0;

  // -- A server-driven streaming session. ---------------------------------
  // open = plan + the server starts driving; every phase's progress arrives
  // as an unsolicited push frame. Await() pumps the stream to `drained`,
  // hands each frame to the OnProgress callback, then finishes the session.
  // The only request round-trips on the wire are open and finish.
  server::OpenSpec spec;
  spec.sql = "SELECT * FROM orders WHERE category = 'Furniture'";
  spec.k = 3;
  spec.phases = 6;
  spec.pruner = "mab";  // retire half the views at every boundary
  auto session = client->OpenSession("walkthrough", spec);
  if (!session.ok()) return Fail(session.status(), "open");
  std::printf("opened session \"walkthrough\": %s (k=%zu, %zu phases, "
              "MAB pruning)\n",
              spec.sql.c_str(), spec.k, spec.phases);

  session->OnProgress([](const server::RemoteProgress& p) {
    std::printf("  phase %zu/%zu (pushed): rows %llu/%llu, %zu views "
                "active, %zu pruned, agg state %llu bytes",
                p.phase, p.total_phases,
                static_cast<unsigned long long>(p.rows_scanned),
                static_cast<unsigned long long>(p.total_rows),
                p.views_active, p.views_pruned,
                static_cast<unsigned long long>(p.memory_bytes));
    if (!p.top.empty()) {
      std::printf("  | top: %s ~%.4f", p.top[0].id.c_str(),
                  p.top[0].utility);
    }
    std::printf("\n");
  });
  auto result = session->Await();
  if (!result.ok()) return Fail(result.status(), "await");
  ++push_sessions_completed;

  std::printf("\nfinal ranking (metric %s):\n", result->metric.c_str());
  for (const server::RemoteRecommendation& rec : result->top) {
    std::printf("  %zu. %-36s utility %.6f\n", rec.rank, rec.view_id.c_str(),
                rec.utility);
  }
  std::printf("  (%zu views pruned mid-scan, %zu table scan(s), "
              "%llu rows)\n",
              result->profile.views_pruned_online,
              result->profile.table_scans,
              static_cast<unsigned long long>(result->profile.rows_scanned));

  // -- Cancel, then resume: the session keeps its aggregates. -------------
  // A cancelled session is not discarded: `resume` re-opens it, the server
  // resumes driving, and the final ranking is the one an uninterrupted run
  // produces. This block consumes the stream through the deprecated Next()
  // shim — v1-shaped loops keep compiling, but on a push connection each
  // call pops an already-pushed frame instead of making a round-trip.
  server::OpenSpec second = spec;
  second.pruner.clear();  // exhaustive, so the resumed ranking is exact
  auto resumable = client->OpenSession("resumable", second);
  if (!resumable.ok()) return Fail(resumable.status(), "open resumable");
  auto first_phase = resumable->Next();
  if (!first_phase.ok()) return Fail(first_phase.status(), "next");
  Status cancelled = resumable->Cancel();
  if (!cancelled.ok()) return Fail(cancelled, "cancel");
  size_t drained_after = 0;
  while (true) {
    auto progress = resumable->Next();
    if (!progress.ok()) return Fail(progress.status(), "next after cancel");
    if (!progress->has_value()) break;
    ++drained_after;
  }
  std::printf("\ncancelled session \"resumable\" after phase 1: stream "
              "drained (%zu in-flight frame(s) delivered first)\n",
              drained_after);

  Status resumed = resumable->Resume();
  if (!resumed.ok()) return Fail(resumed, "resume");
  size_t resumed_phases = 0;
  while (true) {
    auto progress = resumable->Next();
    if (!progress.ok()) return Fail(progress.status(), "next after resume");
    if (!progress->has_value()) break;
    ++resumed_phases;
  }
  auto resumed_result = resumable->Finish();
  if (!resumed_result.ok()) return Fail(resumed_result.status(), "finish");
  ++push_sessions_completed;
  std::printf("resumed and ran %zu more phases; top view: %s (cancelled "
              "flag: %s)\n",
              resumed_phases,
              resumed_result->top.empty()
                  ? "<none>"
                  : resumed_result->top[0].view_id.c_str(),
              resumed_result->profile.cancelled ? "true" : "false");

  // -- Server-wide status. -------------------------------------------------
  auto status = client->GetStatus();
  if (!status.ok()) return Fail(status.status(), "status");
  std::printf("\nserver status: %zu open sessions, %llu requests handled\n",
              status->sessions,
              static_cast<unsigned long long>(status->requests));

  if (local_server != nullptr) local_server->Stop();
  // CI greps this exact line: the smoke test is only meaningful if at least
  // one session actually streamed over server push.
  std::printf("\npush sessions completed: %zu\n",
              client->push_enabled() ? push_sessions_completed : size_t{0});
  std::printf("=== walkthrough complete ===\n");
  return 0;
}
