#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Run from anywhere: paths resolve relative to the repo root (the parent of
this script's directory). Exit 0 = clean, 1 = violations (printed as
file:line: message, one per line, like a compiler).

Rules:
  R1  No naked synchronization primitives (std::mutex, std::lock_guard,
      std::unique_lock, std::scoped_lock, std::condition_variable) anywhere
      under src/ except src/base/ itself. Shared state must use the
      annotated wrappers (base::Mutex / base::MutexLock / base::CondVar from
      src/base/mutex.h) so clang's -Wthread-safety analysis sees every lock.
  R2  printf-family float conversions in wire-facing code (src/server/) must
      be exactly %.17g: the protocol promises bit-identical doubles across
      the wire, and a stray %g or %f silently truncates utilities.
  R3  No std::map / std::multimap in the shared-scan hot path
      (src/db/shared_scan.cc, src/db/vec/): the inner loop is engineered for
      contiguous access, and a node-based container on that path is almost
      always an accident. Deliberate node-stable caches carry a
      "lint: allow-map" marker on the declaration line.
  R4  No std::chrono::system_clock on wire or trace paths (src/server/,
      src/obs/): push-frame ts_us stamps and trace-event timestamps promise
      steady-clock time — frame-delivery latency is computed by subtracting
      them, and a wall-clock stamp makes latency jump with NTP steps.
      Deliberate wall-clock use (log line timestamps) carries a
      "lint: allow-system-clock" marker.

Suppression: append "lint: allow-<rule>" in a comment on the offending line
(allow-mutex, allow-float-format, allow-map, allow-system-clock). Use
sparingly and say why.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

NAKED_SYNC = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b"
)
# %[flags][width][.precision]conversion for float conversions.
FLOAT_FORMAT = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?[efgEFG]")
STD_MAP = re.compile(r"std::(?:multi)?map\s*<")
SYSTEM_CLOCK = re.compile(r"std::chrono::system_clock\b")
LINE_COMMENT = re.compile(r"//.*$")


def source_files(root: pathlib.Path) -> list[pathlib.Path]:
    return sorted(
        p for p in root.rglob("*") if p.suffix in (".h", ".cc", ".inc")
    )


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


def check() -> list[str]:
    errors: list[str] = []

    # R1: naked sync primitives outside src/base/.
    for path in source_files(REPO / "src"):
        if (REPO / "src" / "base") in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "lint: allow-mutex" in line:
                continue
            if NAKED_SYNC.search(strip_comment(line)):
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: naked std "
                    "synchronization primitive; use base::Mutex / "
                    "base::MutexLock / base::CondVar (src/base/mutex.h) so "
                    "-Wthread-safety sees the lock [allow-mutex]"
                )

    # R2: float formats in the serving layer must be %.17g.
    for path in source_files(REPO / "src" / "server"):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "lint: allow-float-format" in line:
                continue
            for fmt in FLOAT_FORMAT.findall(strip_comment(line)):
                if fmt != "%.17g":
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: float format "
                        f"'{fmt}' in wire-facing code; the protocol "
                        "round-trips doubles via %.17g only "
                        "[allow-float-format]"
                    )

    # R3: node-based maps on the shared-scan hot path.
    hot = [REPO / "src" / "db" / "shared_scan.cc"]
    hot += source_files(REPO / "src" / "db" / "vec")
    for path in hot:
        if not path.exists():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "lint: allow-map" in line:
                continue
            if STD_MAP.search(strip_comment(line)):
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: std::map on the "
                    "shared-scan hot path; use a vector/flat layout, or mark "
                    "a deliberate node-stable cache [allow-map]"
                )

    # R4: wall-clock timestamps on wire/trace paths.
    for root in (REPO / "src" / "server", REPO / "src" / "obs"):
        for path in source_files(root):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if "lint: allow-system-clock" in line:
                    continue
                if SYSTEM_CLOCK.search(strip_comment(line)):
                    errors.append(
                        f"{path.relative_to(REPO)}:{lineno}: "
                        "std::chrono::system_clock on a wire/trace path; "
                        "ts_us stamps and trace timestamps must be "
                        "steady_clock [allow-system-clock]"
                    )

    return errors


def main() -> int:
    errors = check()
    for err in errors:
        print(err)
    if errors:
        print(f"lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
