#!/usr/bin/env python3
"""Perf-regression gate over BENCH_parallel.json artifacts.

Compares the fresh bench output against the previous CI run's artifact and
fails (exit 1) when any matched configuration regressed by more than the
threshold in total wall-clock. Configurations are matched on
(strategy, threads, phases); configs present in only one file are reported
but never fail the gate (the matrix is allowed to evolve).

Emits GitHub Actions `::warning::` annotations so the result is visible on
the job even when the calling step is non-blocking.

Usage: perf_gate.py OLD.json NEW.json [--threshold 0.30]
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for run in doc.get("runs", []):
        strategy = run.get("strategy")
        # Artifacts written before the phased engine carry no "phases" key;
        # normalize to what the bench emits today (0 under per-query — no
        # fused pass — and 1 for a one-shot fused scan) so old-vs-new
        # comparisons keep matching.
        phases = run.get("phases", 0 if strategy == "per-query" else 1)
        runs[(strategy, run.get("threads"), phases)] = run
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="previous run's BENCH_parallel.json")
    parser.add_argument("new", help="this run's BENCH_parallel.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional total_ms growth (0.30 = 30%%)")
    args = parser.parse_args()

    old_runs = load_runs(args.old)
    new_runs = load_runs(args.new)

    regressions = []
    print(f"{'strategy':>20} {'threads':>7} {'phases':>6} "
          f"{'old(ms)':>10} {'new(ms)':>10} {'delta':>8}")
    for key in sorted(new_runs, key=str):
        new = new_runs[key]
        old = old_runs.get(key)
        strategy, threads, phases = key
        if old is None:
            print(f"{strategy:>20} {threads:>7} {phases:>6} "
                  f"{'-':>10} {new['total_ms']:>10.2f}   (new config)")
            continue
        delta = (new["total_ms"] - old["total_ms"]) / max(old["total_ms"], 1e-9)
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        print(f"{strategy:>20} {threads:>7} {phases:>6} "
              f"{old['total_ms']:>10.2f} {new['total_ms']:>10.2f} "
              f"{delta:>+7.1%}{flag}")
        if delta > args.threshold:
            regressions.append((key, old["total_ms"], new["total_ms"], delta))
    for key in sorted(set(old_runs) - set(new_runs), key=str):
        print(f"(config {key} disappeared from the bench matrix)")

    if regressions:
        for (strategy, threads, phases), old_ms, new_ms, delta in regressions:
            print(f"::warning::perf regression: {strategy} threads={threads} "
                  f"phases={phases} went {old_ms:.2f}ms -> {new_ms:.2f}ms "
                  f"({delta:+.1%}, threshold {args.threshold:.0%})")
        return 1
    print(f"perf gate OK: no config regressed more than "
          f"{args.threshold:.0%} ({len(new_runs)} configs checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
