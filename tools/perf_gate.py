#!/usr/bin/env python3
"""Perf-regression gate over BENCH_parallel.json artifacts.

Compares the fresh bench output against the previous CI run's artifact and
fails (exit 1) when any matched configuration regressed by more than the
threshold in total wall-clock. Configurations are matched on
(strategy, threads, phases); configs present in only one file are reported
but never fail the gate (the matrix is allowed to evolve).

Per-phase mean latencies (`mean_unit_ms`: mean phase time under the fused
strategies, mean query time under per-query) are compared too, but only as
advisory `::warning::` annotations — phase-time variance on shared runners
is higher than total wall-clock variance, so unit regressions never flip
the exit code.

Emits GitHub Actions `::warning::` annotations so the result is visible on
the job even when the calling step is non-blocking.

`--server-old/--server-new` additionally diff BENCH_server.json artifacts
(the serving-layer bench: sessions/sec and p50/p99 `next` latency per
(transport, clients, phases) configuration). Server numbers ride on socket
round-trips, whose shared-runner variance is even higher than phase
timings, so they are ALWAYS advisory `::warning::` only — they never flip
the exit code.

`--vectorized-old/--vectorized-new` additionally diff BENCH_vectorized.json
artifacts (per-kernel throughput and the fused-plan wall clock of the dense
inner loop vs the hash path vs ExecuteGroupingSets). Like the server bench
these are ALWAYS advisory `::warning::` only — except that the gate also
warns (still advisory) if the dense path stopped beating
ExecuteGroupingSets, the exact regression the subsystem exists to close.

Usage: perf_gate.py OLD.json NEW.json [--threshold 0.30]
                    [--server-old OLD_SERVER.json --server-new NEW_SERVER.json]
                    [--vectorized-old OLD_VEC.json --vectorized-new NEW_VEC.json]
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for run in doc.get("runs", []):
        strategy = run.get("strategy")
        # Artifacts written before the phased engine carry no "phases" key;
        # normalize to what the bench emits today (0 under per-query — no
        # fused pass — and 1 for a one-shot fused scan) so old-vs-new
        # comparisons keep matching.
        phases = run.get("phases", 0 if strategy == "per-query" else 1)
        runs[(strategy, run.get("threads"), phases)] = run
    return runs


def compare_server_sweep(old_doc, new_doc, threshold):
    """Advisory diff of the protocol-v2 connection sweep (64/256/1k push
    sessions on one epoll loop): warn when p99 frame-delivery latency or
    session throughput regressed past the threshold. Artifacts written
    before the event-loop PR carry no "sweep" key and are skipped."""
    old_runs = {(r.get("transport"), r.get("sessions"), r.get("phases")): r
                for r in old_doc.get("sweep", [])}
    new_runs = {(r.get("transport"), r.get("sessions"), r.get("phases")): r
                for r in new_doc.get("sweep", [])}
    warnings = 0
    if not new_runs:
        return warnings
    print(f"\n{'sweep config':>28} {'old s/s':>9} {'new s/s':>9} "
          f"{'old fp99':>9} {'new fp99':>9}")
    for key in sorted(new_runs, key=str):
        transport, sessions, phases = key
        label = f"{transport} n={sessions} p={phases}"
        new = new_runs[key]
        old = old_runs.get(key)
        # A run that skipped negative-latency frame samples measured under
        # clock trouble (suspended runner, VM migration); its percentiles
        # are not comparable — skip the config rather than diff noise.
        skipped_neg = [r for r in (old, new)
                       if r is not None and r.get("negative_frames", 0) > 0]
        if skipped_neg:
            warnings += 1
            print(f"::warning::sweep config {label} skipped (advisory): "
                  f"artifact recorded negative-latency frame samples "
                  f"(old={old.get('negative_frames', 0) if old else '-'}, "
                  f"new={new.get('negative_frames', 0)})")
            continue
        if old is None:
            print(f"{label:>28} {'-':>9} {new.get('sessions_per_sec', 0):>9.1f}"
                  f" {'-':>9} {new.get('frame_p99_ms', 0):>9.3f}  (new config)")
            continue
        old_sps = old.get("sessions_per_sec", 0)
        new_sps = new.get("sessions_per_sec", 0)
        old_p99 = old.get("frame_p99_ms", 0)
        new_p99 = new.get("frame_p99_ms", 0)
        print(f"{label:>28} {old_sps:>9.1f} {new_sps:>9.1f} "
              f"{old_p99:>9.3f} {new_p99:>9.3f}")
        if old_sps > 0 and (old_sps - new_sps) / old_sps > threshold:
            warnings += 1
            print(f"::warning::sweep throughput regression (advisory): "
                  f"{label} went {old_sps:.1f} -> {new_sps:.1f} sessions/sec "
                  f"(threshold {threshold:.0%})")
        if old_p99 > 0 and (new_p99 - old_p99) / old_p99 > threshold:
            warnings += 1
            print(f"::warning::sweep p99 frame-delivery regression "
                  f"(advisory): {label} went {old_p99:.3f}ms -> "
                  f"{new_p99:.3f}ms (threshold {threshold:.0%})")
    return warnings


def compare_result_cache(old_doc, new_doc, threshold):
    """Advisory diff of the zipfian result-cache scenario: warm-vs-cold
    sessions/sec on a near-duplicate request mix. Warns when the warm-run
    speedup shrank past the threshold, when the bench stopped exercising
    the cache (0 hits), or when warm results diverged from cold ones.
    Artifacts written before the cache PR carry no "result_cache" key and
    are skipped."""
    new = new_doc.get("result_cache")
    warnings = 0
    if not new:
        return warnings
    old = old_doc.get("result_cache")
    print(f"\n{'result cache':>28} {'cold s/s':>9} {'warm s/s':>9} "
          f"{'speedup':>8} {'hits':>6}")
    old_speedup = old.get("speedup", 0) if old else 0
    new_speedup = new.get("speedup", 0)
    label = (f"zipf n={new.get('sessions')} pool={new.get('pool')} "
             f"ov={new.get('overlap', 0):.0%}")
    print(f"{label:>28} {new.get('cold_sessions_per_sec', 0):>9.1f} "
          f"{new.get('warm_sessions_per_sec', 0):>9.1f} "
          f"{new_speedup:>7.1f}x {new.get('cache_hits', 0):>6}")
    if not new.get("bit_identical", True):
        warnings += 1
        print("::warning::result cache DIVERGENCE (advisory): warm sessions "
              "returned different rankings than cold ones — the cache must "
              "never change answers")
    if new.get("cache_hits", 0) == 0:
        warnings += 1
        print("::warning::result cache scenario recorded 0 hits (advisory): "
              "the zipfian mix no longer exercises adoption")
    if old_speedup > 0 and (old_speedup - new_speedup) / old_speedup > threshold:
        warnings += 1
        print(f"::warning::result cache speedup regression (advisory): "
              f"warm-vs-cold went {old_speedup:.1f}x -> {new_speedup:.1f}x "
              f"(threshold {threshold:.0%})")
    return warnings


def compare_server_metrics(old_doc, new_doc, threshold):
    """Advisory diff of the server-side obs histograms the sweep records
    (`server_metrics`: p50/p95/p99 µs per request type, measured in the
    server — no socket hop). Artifacts written before the observability PR
    carry no such key and are skipped. Quantiles are bucket upper bounds
    (log-spaced powers of two), so any movement is at least a full bucket —
    still advisory, but much less noisy than wire latencies."""
    new_metrics = new_doc.get("server_metrics")
    warnings = 0
    if not new_metrics:
        return warnings
    old_metrics = old_doc.get("server_metrics", {})
    print(f"\n{'server metric':>30} {'old p99us':>10} {'new p99us':>10}")
    for name in sorted(new_metrics):
        new = new_metrics[name]
        old = old_metrics.get(name)
        if old is None:
            print(f"{name:>30} {'-':>10} {new.get('p99_us', 0):>10}"
                  f"  (new metric)")
            continue
        old_p99 = old.get("p99_us", 0)
        new_p99 = new.get("p99_us", 0)
        print(f"{name:>30} {old_p99:>10} {new_p99:>10}")
        if old_p99 > 0 and (new_p99 - old_p99) / old_p99 > threshold:
            warnings += 1
            print(f"::warning::server-side p99 regression (advisory): "
                  f"{name} went {old_p99}us -> {new_p99}us "
                  f"(threshold {threshold:.0%})")
    return warnings


def compare_server(old_path, new_path, threshold):
    """Advisory diff of BENCH_server.json artifacts: warn when throughput
    (sessions/sec) drops, p99 `next` latency grows past the threshold, or
    the v2 connection sweep's frame-delivery latency regressed.
    Returns the number of advisory warnings; never fails the gate."""
    def load(path):
        with open(path) as f:
            return json.load(f)

    old_doc, new_doc = load(old_path), load(new_path)
    old_runs = {(r.get("transport"), r.get("clients"), r.get("phases")): r
                for r in old_doc.get("runs", [])}
    new_runs = {(r.get("transport"), r.get("clients"), r.get("phases")): r
                for r in new_doc.get("runs", [])}
    warnings = compare_server_sweep(old_doc, new_doc, threshold)
    warnings += compare_result_cache(old_doc, new_doc, threshold)
    warnings += compare_server_metrics(old_doc, new_doc, threshold)
    print(f"\n{'server config':>28} {'old s/s':>9} {'new s/s':>9} "
          f"{'old p99':>9} {'new p99':>9}")
    for key in sorted(new_runs, key=str):
        transport, clients, phases = key
        label = f"{transport} c={clients} p={phases}"
        new = new_runs[key]
        old = old_runs.get(key)
        if old is None:
            print(f"{label:>28} {'-':>9} {new.get('sessions_per_sec', 0):>9.1f}"
                  f" {'-':>9} {new.get('next_p99_ms', 0):>9.3f}  (new config)")
            continue
        old_sps = old.get("sessions_per_sec", 0)
        new_sps = new.get("sessions_per_sec", 0)
        old_p99 = old.get("next_p99_ms", 0)
        new_p99 = new.get("next_p99_ms", 0)
        print(f"{label:>28} {old_sps:>9.1f} {new_sps:>9.1f} "
              f"{old_p99:>9.3f} {new_p99:>9.3f}")
        if old_sps > 0 and (old_sps - new_sps) / old_sps > threshold:
            warnings += 1
            print(f"::warning::server throughput regression (advisory): "
                  f"{label} went {old_sps:.1f} -> {new_sps:.1f} sessions/sec "
                  f"(threshold {threshold:.0%})")
        if old_p99 > 0 and (new_p99 - old_p99) / old_p99 > threshold:
            warnings += 1
            print(f"::warning::server p99 next-latency regression (advisory): "
                  f"{label} went {old_p99:.3f}ms -> {new_p99:.3f}ms "
                  f"(threshold {threshold:.0%})")
    return warnings


def compare_vectorized(old_path, new_path, threshold):
    """Advisory diff of BENCH_vectorized.json artifacts: warn when a kernel
    or fused-path run slowed past the threshold, or when the dense path no
    longer beats ExecuteGroupingSets. Returns the number of advisory
    warnings; never fails the gate."""
    def load(path):
        with open(path) as f:
            return json.load(f)

    old_doc, new_doc = load(old_path), load(new_path)
    old_runs = {r.get("name"): r for r in old_doc.get("runs", [])}
    new_runs = {r.get("name"): r for r in new_doc.get("runs", [])}
    warnings = 0
    print(f"\n{'vectorized run':>30} {'old(ms)':>10} {'new(ms)':>10} "
          f"{'delta':>8}")
    for name in sorted(new_runs):
        new = new_runs[name]
        old = old_runs.get(name)
        if old is None:
            print(f"{name:>30} {'-':>10} {new.get('total_ms', 0):>10.2f}"
                  f"   (new run)")
            continue
        old_ms, new_ms = old.get("total_ms", 0), new.get("total_ms", 0)
        delta = (new_ms - old_ms) / max(old_ms, 1e-9)
        print(f"{name:>30} {old_ms:>10.2f} {new_ms:>10.2f} {delta:>+7.1%}")
        if delta > threshold:
            warnings += 1
            print(f"::warning::vectorized bench regression (advisory): "
                  f"{name} went {old_ms:.2f}ms -> {new_ms:.2f}ms "
                  f"({delta:+.1%}, threshold {threshold:.0%})")
    if not new_doc.get("vec_beats_grouping_sets", True):
        warnings += 1
        print("::warning::vectorized fused plan no longer beats "
              "ExecuteGroupingSets on one core (advisory) — the regression "
              "the dense kernels exist to close is back")
    if (new_doc.get("simd_isa", "scalar") != "scalar"
            and not new_doc.get("simd_beats_scalar_compare", True)):
        warnings += 1
        print("::warning::simd compare kernel no longer beats the scalar "
              "kernel (advisory) — the explicit-SIMD tier is not paying "
              f"for itself (isa={new_doc.get('simd_isa')})")
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="previous run's BENCH_parallel.json")
    parser.add_argument("new", help="this run's BENCH_parallel.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional total_ms growth (0.30 = 30%%)")
    parser.add_argument("--server-old", default=None,
                        help="previous run's BENCH_server.json (advisory)")
    parser.add_argument("--server-new", default=None,
                        help="this run's BENCH_server.json (advisory)")
    parser.add_argument("--vectorized-old", default=None,
                        help="previous run's BENCH_vectorized.json (advisory)")
    parser.add_argument("--vectorized-new", default=None,
                        help="this run's BENCH_vectorized.json (advisory)")
    args = parser.parse_args()

    old_runs = load_runs(args.old)
    new_runs = load_runs(args.new)

    regressions = []
    unit_regressions = []
    print(f"{'strategy':>20} {'threads':>7} {'phases':>6} "
          f"{'old(ms)':>10} {'new(ms)':>10} {'delta':>8} "
          f"{'old-unit':>9} {'new-unit':>9} {'u-delta':>8}")
    for key in sorted(new_runs, key=str):
        new = new_runs[key]
        old = old_runs.get(key)
        strategy, threads, phases = key
        if old is None:
            print(f"{strategy:>20} {threads:>7} {phases:>6} "
                  f"{'-':>10} {new['total_ms']:>10.2f}   (new config)")
            continue
        delta = (new["total_ms"] - old["total_ms"]) / max(old["total_ms"], 1e-9)
        flag = " <-- REGRESSION" if delta > args.threshold else ""
        # Per-phase / per-query mean latency: advisory only. Artifacts
        # written before the streaming-session PR carry no mean_unit_ms.
        old_unit = old.get("mean_unit_ms")
        new_unit = new.get("mean_unit_ms")
        unit_cols = f"{'-':>9} {'-':>9} {'-':>8}"
        if old_unit is not None and new_unit is not None and old_unit > 0:
            unit_delta = (new_unit - old_unit) / old_unit
            unit_cols = (f"{old_unit:>9.3f} {new_unit:>9.3f} "
                         f"{unit_delta:>+7.1%}")
            if unit_delta > args.threshold:
                unit_regressions.append((key, old_unit, new_unit, unit_delta))
        print(f"{strategy:>20} {threads:>7} {phases:>6} "
              f"{old['total_ms']:>10.2f} {new['total_ms']:>10.2f} "
              f"{delta:>+7.1%} {unit_cols}{flag}")
        if delta > args.threshold:
            regressions.append((key, old["total_ms"], new["total_ms"], delta))
    for key in sorted(set(old_runs) - set(new_runs), key=str):
        print(f"(config {key} disappeared from the bench matrix)")

    for (strategy, threads, phases), old_ms, new_ms, delta in unit_regressions:
        print(f"::warning::per-phase latency regression (advisory): "
              f"{strategy} threads={threads} phases={phases} mean unit went "
              f"{old_ms:.3f}ms -> {new_ms:.3f}ms ({delta:+.1%}, threshold "
              f"{args.threshold:.0%})")
    server_warnings = 0
    if args.server_old and args.server_new:
        server_warnings = compare_server(args.server_old, args.server_new,
                                         args.threshold)
    vectorized_warnings = 0
    if args.vectorized_old and args.vectorized_new:
        vectorized_warnings = compare_vectorized(
            args.vectorized_old, args.vectorized_new, args.threshold)
    if regressions:
        for (strategy, threads, phases), old_ms, new_ms, delta in regressions:
            print(f"::warning::perf regression: {strategy} threads={threads} "
                  f"phases={phases} went {old_ms:.2f}ms -> {new_ms:.2f}ms "
                  f"({delta:+.1%}, threshold {args.threshold:.0%})")
        return 1
    print(f"perf gate OK: no config regressed more than "
          f"{args.threshold:.0%} in total wall-clock "
          f"({len(new_runs)} configs checked, "
          f"{len(unit_regressions)} advisory unit warnings, "
          f"{server_warnings} advisory server warnings, "
          f"{vectorized_warnings} advisory vectorized warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
