// seedb_server — the SeeDB middleware as a standalone process (§5's
// deployment shape): load data into the embedded engine, then serve
// streaming recommendation sessions over the line-delimited JSON protocol
// (src/server/protocol.h) on a unix-domain or TCP socket.
//
//   seedb_server --unix /tmp/seedb.sock --demo
//   seedb_server --port 7265 --synthetic 100000,5,2,25,42
//   seedb_server --port 0 --csv sales=data.csv     # 0 = ephemeral, printed
//
// Stops cleanly on SIGINT/SIGTERM: in-flight scans are cancelled at morsel
// granularity, connections drained, and the socket removed. Drive it with
// the client library (src/server/client.h), the CLI's \connect, or netcat:
//
//   echo '{"op":"open","id":"s1","sql":"SELECT * FROM orders WHERE ..."}' \
//     | nc -U /tmp/seedb.sock

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "data/elections.h"
#include "data/medical.h"
#include "data/store_orders.h"
#include "data/synthetic.h"
#include "db/csv.h"
#include "db/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server.h"

namespace {

using namespace seedb;  // NOLINT

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--unix PATH | --port N] [--demo] [--csv NAME=FILE]...\n"
      "          [--synthetic ROWS[,DIMS[,MEASURES[,CARDINALITY[,SEED]]]]]\n"
      "          [--workers N] [--idle-timeout-ms MS] [--max-inflight N]\n"
      "          [--cache-mb N] [--trace-out FILE] [--metrics-dump-sec N]\n"
      "  --unix PATH   listen on a unix-domain socket (removed on exit)\n"
      "  --port N      listen on TCP 127.0.0.1:N (0 = ephemeral, printed)\n"
      "  --demo        load the demo datasets (orders, elections, medical)\n"
      "  --csv N=F     load CSV file F as table N (schema inferred)\n"
      "  --synthetic   load a synthetic benchmark table named 'synth'\n"
      "  --workers N         size of the worker pool (0 = auto)\n"
      "  --idle-timeout-ms   evict sessions idle this long (0 = never)\n"
      "  --max-inflight N    shed opens past N in-flight sessions with\n"
      "                      a busy response (0 = unlimited)\n"
      "  --cache-mb N        partial-aggregate result cache budget in MiB\n"
      "                      (default 64; 0 disables the cache)\n"
      "  --trace-out FILE    record Chrome trace-event JSON (request\n"
      "                      dispatch, session lifecycle, scan phases) to\n"
      "                      FILE; load in Perfetto / chrome://tracing\n"
      "  --metrics-dump-sec N  print a one-line metrics snapshot to stderr\n"
      "                      every N seconds\n"
      "With no data flags, --demo is implied (a server with no tables "
      "answers every open with not_found).\n",
      argv0);
  return 2;
}

Status LoadDemo(db::Catalog* catalog) {
  SEEDB_ASSIGN_OR_RETURN(data::DemoDataset orders, data::MakeStoreOrders({}));
  catalog->PutTable(orders.table_name, std::move(orders.table));
  std::printf("loaded demo table 'orders'\n");
  SEEDB_ASSIGN_OR_RETURN(data::DemoDataset elections, data::MakeElections({}));
  catalog->PutTable(elections.table_name, std::move(elections.table));
  std::printf("loaded demo table 'elections'\n");
  SEEDB_ASSIGN_OR_RETURN(data::DemoDataset medical, data::MakeMedical({}));
  catalog->PutTable(medical.table_name, std::move(medical.table));
  std::printf("loaded demo table 'medical'\n");
  return Status::OK();
}

Status LoadSynthetic(db::Catalog* catalog, const std::string& spec_text) {
  size_t rows = 100000, dims = 5, measures = 2, cardinality = 25;
  uint64_t seed = 42;
  if (!spec_text.empty()) {
    if (std::sscanf(spec_text.c_str(), "%zu,%zu,%zu,%zu,%llu", &rows, &dims,
                    &measures, &cardinality,
                    reinterpret_cast<unsigned long long*>(&seed)) < 1) {
      return Status::InvalidArgument("bad --synthetic spec: " + spec_text);
    }
  }
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(
      rows, dims, measures, cardinality, seed);
  SEEDB_ASSIGN_OR_RETURN(data::SyntheticDataset dataset,
                         data::GenerateSynthetic(spec));
  catalog->PutTable("synth", std::move(dataset.table));
  std::printf("loaded synthetic table 'synth' (%zu rows, %zu dims, "
              "%zu measures)\n",
              rows, dims, measures);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.tcp_port = 0;
  bool want_demo = false;
  bool loaded_any = false;
  size_t cache_mb = 64;
  std::string trace_out;
  int metrics_dump_sec = 0;

  db::Catalog catalog;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      const char* value = next_value("--unix");
      if (value == nullptr) return Usage(argv[0]);
      options.unix_path = value;
    } else if (arg == "--port") {
      const char* value = next_value("--port");
      if (value == nullptr) return Usage(argv[0]);
      options.tcp_port = std::atoi(value);
    } else if (arg == "--workers") {
      const char* value = next_value("--workers");
      if (value == nullptr) return Usage(argv[0]);
      options.worker_threads = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--idle-timeout-ms") {
      const char* value = next_value("--idle-timeout-ms");
      if (value == nullptr) return Usage(argv[0]);
      options.session_idle_timeout_ms =
          static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--max-inflight") {
      const char* value = next_value("--max-inflight");
      if (value == nullptr) return Usage(argv[0]);
      options.max_inflight_phases = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--cache-mb") {
      const char* value = next_value("--cache-mb");
      if (value == nullptr) return Usage(argv[0]);
      cache_mb = static_cast<size_t>(std::atoi(value));
    } else if (arg == "--trace-out") {
      const char* value = next_value("--trace-out");
      if (value == nullptr) return Usage(argv[0]);
      trace_out = value;
    } else if (arg == "--metrics-dump-sec") {
      const char* value = next_value("--metrics-dump-sec");
      if (value == nullptr) return Usage(argv[0]);
      metrics_dump_sec = std::atoi(value);
    } else if (arg == "--demo") {
      want_demo = true;
    } else if (arg == "--csv") {
      const char* value = next_value("--csv");
      if (value == nullptr) return Usage(argv[0]);
      const char* eq = std::strchr(value, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "--csv wants NAME=FILE, got '%s'\n", value);
        return Usage(argv[0]);
      }
      std::string name(value, eq - value);
      auto table = db::ReadCsvInferSchema(eq + 1);
      if (!table.ok()) {
        std::fprintf(stderr, "cannot load %s: %s\n", eq + 1,
                     table.status().ToString().c_str());
        return 1;
      }
      size_t rows = table->num_rows();
      catalog.PutTable(name, std::move(*table));
      std::printf("loaded '%s' from %s (%zu rows)\n", name.c_str(), eq + 1,
                  rows);
      loaded_any = true;
    } else if (arg == "--synthetic") {
      // The spec value is optional: accept "--synthetic" at end-of-args or
      // followed by another flag.
      std::string spec_text;
      if (i + 1 < argc && argv[i + 1][0] != '-') spec_text = argv[++i];
      Status s = LoadSynthetic(&catalog, spec_text);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      loaded_any = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (want_demo || !loaded_any) {
    Status s = LoadDemo(&catalog);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (!trace_out.empty()) {
    // Process-level recorder with trace_all: every session's spans are
    // recorded, no per-request opt-in needed.
    Status traced =
        obs::TraceRecorder::StartGlobal(trace_out, /*trace_all_sessions=*/true);
    if (!traced.ok()) {
      std::fprintf(stderr, "cannot start trace: %s\n",
                   traced.ToString().c_str());
      return 1;
    }
    std::printf("tracing to %s\n", trace_out.c_str());
  }

  db::Engine engine(&catalog);
  if (cache_mb > 0) {
    engine.EnableResultCache(cache_mb * size_t{1024} * 1024);
    std::printf("result cache enabled (%zu MiB budget)\n", cache_mb);
  }
  server::RecommendationServer server(&engine, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("seedb_server listening on unix socket %s\n",
                options.unix_path.c_str());
  } else {
    std::printf("seedb_server listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::atomic<bool> dump_stop{false};
  std::thread dump_thread;
  if (metrics_dump_sec > 0) {
    dump_thread = std::thread([metrics_dump_sec, &dump_stop] {
      // Sleep in small increments so shutdown never waits a full period.
      int elapsed_ms = 0;
      while (!dump_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        elapsed_ms += 200;
        if (elapsed_ms < metrics_dump_sec * 1000) continue;
        elapsed_ms = 0;
        std::fprintf(stderr, "%s\n",
                     obs::Registry::Global().TakeSnapshot().ToOneLine().c_str());
      }
    });
  }

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  if (dump_thread.joinable()) {
    dump_stop.store(true, std::memory_order_release);
    dump_thread.join();
  }
  if (!trace_out.empty()) obs::TraceRecorder::StopGlobal();
  server::ServerStats stats = server.stats();
  std::printf("shutdown: %llu connections, %llu requests (%llu errors), "
              "%llu sessions opened, %llu finished, %llu evicted, "
              "%llu rejected, %llu push frames\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.sessions_finished),
              static_cast<unsigned long long>(stats.sessions_evicted),
              static_cast<unsigned long long>(stats.sessions_rejected),
              static_cast<unsigned long long>(stats.push_frames_sent));
  return 0;
}
