#!/usr/bin/env python3
"""Validator for Chrome trace-event JSON emitted by src/obs/trace.cc.

CI runs seedb_server with --trace-out through the smoke test and feeds the
resulting file here before uploading it as an artifact. Checks:

  1. The file is well-formed JSON and the top level is an array.
  2. Every event is an object carrying the duration-event fields the
     recorder emits: name (non-empty str), ph ("B" or "E"), ts (number,
     >= 0), pid, tid (ints).
  3. Begin/end events balance per tid: every "E" closes the most recent
     open "B" on the same tid (proper nesting, LIFO), and nothing stays
     open at end of file.
  4. Timestamps are monotonically non-decreasing per tid in file order —
     the recorder stamps ts on the emitting thread before taking the file
     lock, so per-tid order must hold even though cross-tid interleaving
     is arbitrary.

Exit 0 with a one-line summary when the trace passes, exit 1 with every
violation listed otherwise. An empty event array is valid (a server that
served no requests traces nothing).

Usage: validate_trace.py TRACE.json
"""

import json
import sys


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable as JSON: {e}"], 0, 0

    if not isinstance(doc, list):
        return [f"{path}: top level is {type(doc).__name__}, expected a "
                f"JSON array of trace events"], 0, 0

    open_spans = {}  # tid -> stack of (name, ts)
    last_ts = {}  # tid -> last seen ts
    tids = set()
    for i, ev in enumerate(doc):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        ts = ev.get("ts")
        tid = ev.get("tid")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
            continue
        if ph not in ("B", "E"):
            errors.append(f"{where} ({name}): ph={ph!r}, expected B or E")
            continue
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where} ({name}): bad ts {ts!r}")
            continue
        if not isinstance(tid, int) or not isinstance(ev.get("pid"), int):
            errors.append(f"{where} ({name}): missing integer pid/tid")
            continue
        tids.add(tid)
        if tid in last_ts and ts < last_ts[tid]:
            errors.append(f"{where} ({name}): ts went backwards on tid "
                          f"{tid}: {last_ts[tid]} -> {ts}")
        last_ts[tid] = ts
        stack = open_spans.setdefault(tid, [])
        if ph == "B":
            stack.append((name, ts))
        else:
            if not stack:
                errors.append(f"{where} ({name}): E with no open B on "
                              f"tid {tid}")
            else:
                open_name, _ = stack.pop()
                if open_name != name:
                    errors.append(f"{where}: E({name}) closes B({open_name}) "
                                  f"on tid {tid} — spans must nest")
    for tid, stack in open_spans.items():
        for name, ts in stack:
            errors.append(f"tid {tid}: span '{name}' (ts={ts}) never closed")
    return errors, len(doc), len(tids)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors, events, tids = validate(sys.argv[1])
    if errors:
        for e in errors:
            print(f"validate_trace: {e}", file=sys.stderr)
        print(f"validate_trace: FAIL ({len(errors)} violations, "
              f"{events} events)", file=sys.stderr)
        return 1
    print(f"validate_trace: OK ({events} events across {tids} threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
