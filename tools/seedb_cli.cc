// seedb_cli — the library's stand-in for the SeeDB thin-client frontend
// (§3.2). Supports all three input mechanisms the paper lists:
//   (a) raw SQL:       SELECT * FROM orders WHERE category = 'Furniture'
//   (b) query builder: \where orders category = Furniture   (form-style)
//   (c) templates:     \template outliers orders profit
//
// Plus data management: \load <name> <file.csv>, \demo, \tables,
// \schema <t>, \bin <t> <measure> <bins>, \set k/metric/prune/parallel.
//
// Run interactively, or pipe a script:  echo '\demo orders' | seedb_cli

#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/seedb.h"
#include "core/session.h"
#include "core/templates.h"
#include "data/elections.h"
#include "data/medical.h"
#include "data/store_orders.h"
#include "db/binning.h"
#include "db/csv.h"
#include "db/engine.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "util/string_util.h"
#include "viz/ascii_renderer.h"
#include "viz/metadata.h"

namespace {

using namespace seedb;  // NOLINT

class Cli {
 public:
  Cli() : engine_(&catalog_), seedb_(&engine_) {}

  int Run() {
    std::printf("SeeDB CLI — type \\help for commands, \\q to quit.\n");
    std::string line;
    while (true) {
      std::printf("seedb> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      std::string trimmed(Trim(line));
      if (trimmed.empty()) continue;
      if (trimmed == "\\q" || trimmed == "\\quit") break;
      Status s = Dispatch(trimmed);
      if (!s.ok()) std::printf("error: %s\n", s.ToString().c_str());
    }
    return 0;
  }

 private:
  Status Dispatch(const std::string& line) {
    if (line[0] != '\\') return RunQuery(line);
    std::istringstream in(line.substr(1));
    std::string cmd;
    in >> cmd;
    if (cmd == "help") return Help();
    if (cmd == "load") return Load(in);
    if (cmd == "demo") return Demo(in);
    if (cmd == "tables") return Tables();
    if (cmd == "schema") return SchemaOf(in);
    if (cmd == "bin") return Bin(in);
    if (cmd == "set") return Set(in);
    if (cmd == "cancel") return ArmCancel(in);
    if (cmd == "where") return Builder(in);
    if (cmd == "template") return Template(in);
    if (cmd == "connect") return Connect(in);
    if (cmd == "disconnect") return Disconnect();
    if (cmd == "stats") return Stats(in);
    if (cmd == "metrics") return Metrics();
    return Status::InvalidArgument("unknown command \\" + cmd +
                                   " (try \\help)");
  }

  Status Help() {
    std::printf(
        "  SELECT * FROM t WHERE ...        recommend views for a query\n"
        "  \\where <t> <col> = <value>       query-builder form of the same\n"
        "  \\template outliers <t> <m> [s]   outlier-selection template\n"
        "  \\template top <t> <dim>          dominant-value template\n"
        "  \\template high <t> <m> [frac]    high-end-slice template\n"
        "  \\load <name> <file.csv>          load a CSV (schema inferred)\n"
        "  \\demo [orders|elections|medical] load demo dataset(s)\n"
        "  \\tables / \\schema <t>            catalog inspection\n"
        "  \\bin <t> <measure> <bins>        derive a binned dimension\n"
        "  \\set k <n> | metric <name> | parallel <n> | prune on|off\n"
        "  \\set strategy shared|perquery|phased\n"
        "                                   fused shared-scan, per-query, or\n"
        "                                   phased scan with online pruning\n"
        "  \\set phases <n>                  phase count for strategy phased\n"
        "  \\set online_pruner none|ci|mab   mid-scan view pruner (phased)\n"
        "  \\set early_stop <n>              stop once top-k is CI-stable for\n"
        "                                   n boundaries (0 = off; phased)\n"
        "  \\cancel [n]                      cancel the NEXT query's scan\n"
        "                                   after n phases (default 1)\n"
        "  \\set budget <bytes>              per-session memory budget\n"
        "  \\set simd on|off                 explicit-SIMD kernel tier\n"
        "                                   (0 = unlimited)\n"
        "  \\stats                           engine counters (scans, rows,\n"
        "                                   vectorized morsels, ...)\n"
        "  \\stats reset                     zero the engine counters and\n"
        "                                   the obs metrics registry\n"
        "  \\metrics                         obs registry snapshot (latency\n"
        "                                   histograms; server's if remote)\n"
        "  \\connect <socket|host:port|port> route queries to a seedb_server\n"
        "  \\disconnect                      back to in-process execution\n"
        "  \\q                               quit\n"
        "Under strategy phased, queries stream: one progress line per phase\n"
        "(provisional top view, CI half-width, views pruned, rows).\n");
    return Status::OK();
  }

  Status Load(std::istringstream& in) {
    std::string name, path;
    in >> name >> path;
    if (name.empty() || path.empty()) {
      return Status::InvalidArgument("usage: \\load <name> <file.csv>");
    }
    SEEDB_ASSIGN_OR_RETURN(db::Table table, db::ReadCsvInferSchema(path));
    size_t rows = table.num_rows();
    catalog_.PutTable(name, std::move(table));
    std::printf("loaded '%s': %zu rows, schema: %s\n", name.c_str(), rows,
                (*catalog_.GetTable(name))->schema().ToString().c_str());
    return Status::OK();
  }

  Status Demo(std::istringstream& in) {
    std::string which;
    in >> which;
    auto add = [&](data::DemoDataset dataset) {
      std::string name = dataset.table_name;
      size_t rows = dataset.table.num_rows();
      catalog_.PutTable(name, std::move(dataset.table));
      std::printf("loaded demo '%s' (%zu rows); try:\n", name.c_str(), rows);
      for (const auto& trend : dataset.trends) {
        std::printf("  %s\n", trend.query_sql.c_str());
      }
    };
    if (which.empty() || which == "orders") {
      SEEDB_ASSIGN_OR_RETURN(auto d, data::MakeStoreOrders({}));
      add(std::move(d));
    }
    if (which.empty() || which == "elections") {
      SEEDB_ASSIGN_OR_RETURN(auto d, data::MakeElections({}));
      add(std::move(d));
    }
    if (which.empty() || which == "medical") {
      SEEDB_ASSIGN_OR_RETURN(auto d, data::MakeMedical({}));
      add(std::move(d));
    }
    return Status::OK();
  }

  Status Tables() {
    for (const auto& name : catalog_.TableNames()) {
      SEEDB_ASSIGN_OR_RETURN(const db::Table* t, catalog_.GetTable(name));
      std::printf("  %-20s %zu rows, %zu columns\n", name.c_str(),
                  t->num_rows(), t->num_columns());
    }
    return Status::OK();
  }

  Status SchemaOf(std::istringstream& in) {
    std::string name;
    in >> name;
    SEEDB_ASSIGN_OR_RETURN(const db::Table* t, catalog_.GetTable(name));
    std::printf("%s\n", t->schema().ToString().c_str());
    return Status::OK();
  }

  Status Bin(std::istringstream& in) {
    std::string table, measure;
    size_t bins = 10;
    in >> table >> measure >> bins;
    SEEDB_ASSIGN_OR_RETURN(const db::Table* t, catalog_.GetTable(table));
    SEEDB_ASSIGN_OR_RETURN(db::Table binned,
                           db::WithBinnedColumn(*t, measure,
                                                {.num_bins = bins}));
    catalog_.PutTable(table, std::move(binned));
    std::printf("added dimension '%s_bin' (%zu buckets) to '%s'\n",
                measure.c_str(), bins, table.c_str());
    return Status::OK();
  }

  Status Set(std::istringstream& in) {
    std::string key;
    in >> key;
    if (key == "k") {
      in >> options_.k;
    } else if (key == "metric") {
      std::string name;
      in >> name;
      SEEDB_ASSIGN_OR_RETURN(options_.metric,
                             core::ParseDistanceMetric(name));
    } else if (key == "parallel") {
      in >> options_.parallelism;
    } else if (key == "strategy") {
      std::string name;
      in >> name;
      if (name == "shared") {
        options_.strategy = core::ExecutionStrategy::kSharedScan;
      } else if (name == "perquery") {
        options_.strategy = core::ExecutionStrategy::kPerQuery;
      } else if (name == "phased") {
        options_.strategy = core::ExecutionStrategy::kPhasedSharedScan;
      } else {
        return Status::InvalidArgument(
            "usage: \\set strategy shared|perquery|phased");
      }
    } else if (key == "phases") {
      size_t phases = 0;
      in >> phases;
      if (phases == 0) {
        return Status::InvalidArgument("usage: \\set phases <n >= 1>");
      }
      options_.online_pruning.num_phases = phases;
    } else if (key == "early_stop") {
      size_t stable = 0;
      in >> stable;
      options_.online_pruning.early_stop_stable_phases = stable;
      if (stable > 0) {
        options_.strategy = core::ExecutionStrategy::kPhasedSharedScan;
      }
    } else if (key == "online_pruner") {
      std::string name;
      in >> name;
      SEEDB_ASSIGN_OR_RETURN(options_.online_pruning.pruner,
                             core::ParseOnlinePruner(name));
      // The pruner only runs under the phased strategy; switch implicitly
      // so the knob does something without a second command.
      if (options_.online_pruning.pruner != core::OnlinePruner::kNone) {
        options_.strategy = core::ExecutionStrategy::kPhasedSharedScan;
      }
    } else if (key == "budget") {
      in >> options_.memory_budget_bytes;
    } else if (key == "simd") {
      std::string state;
      in >> state;
      if (state != "on" && state != "off") {
        return Status::InvalidArgument("usage: \\set simd on|off");
      }
      options_.enable_simd = state == "on";
    } else if (key == "prune") {
      std::string state;
      in >> state;
      options_.pruning = state == "on" ? core::PruningOptions::All()
                                       : core::PruningOptions::None();
    } else {
      return Status::InvalidArgument(
          "usage: \\set k <n> | metric <name> | parallel <n> | "
          "strategy shared|perquery|phased | phases <n> | "
          "online_pruner none|ci|mab | early_stop <n> | budget <bytes> | "
          "simd on|off | prune on|off");
    }
    std::printf(
        "ok (k=%zu metric=%s parallel=%zu strategy=%s phases=%zu "
        "online_pruner=%s simd=%s)\n",
        options_.k, core::DistanceMetricToString(options_.metric),
        options_.parallelism,
        core::ExecutionStrategyToString(options_.strategy),
        options_.online_pruning.num_phases,
        core::OnlinePrunerToString(options_.online_pruning.pruner),
        options_.enable_simd ? "on" : "off");
    return Status::OK();
  }

  Status Builder(std::istringstream& in) {
    // \where <table> <column> <op> <value...>  — the form-based mechanism.
    std::string table, column, op;
    in >> table >> column >> op;
    std::string value;
    std::getline(in, value);
    value = std::string(Trim(value));
    if (table.empty() || column.empty() || op.empty() || value.empty()) {
      return Status::InvalidArgument(
          "usage: \\where <table> <column> <op> <value>");
    }
    // Quote non-numeric values for the SQL form.
    bool numeric = !value.empty() &&
                   value.find_first_not_of("0123456789.-") == std::string::npos;
    std::string literal = numeric ? value : "'" + value + "'";
    std::string sql = "SELECT * FROM " + table + " WHERE " + column + " " +
                      op + " " + literal;
    std::printf("query: %s\n", sql.c_str());
    return RunQuery(sql);
  }

  Status Template(std::istringstream& in) {
    std::string kind, table, column;
    in >> kind >> table >> column;
    core::TemplateQuery q;
    if (kind == "outliers") {
      double sigmas = 2.0;
      in >> sigmas;
      SEEDB_ASSIGN_OR_RETURN(q, core::OutlierTemplate(&engine_, table, column,
                                                      sigmas > 0 ? sigmas
                                                                 : 2.0));
    } else if (kind == "top") {
      SEEDB_ASSIGN_OR_RETURN(q, core::TopValueTemplate(&engine_, table,
                                                       column));
    } else if (kind == "high") {
      double fraction = 0.25;
      in >> fraction;
      SEEDB_ASSIGN_OR_RETURN(
          q, core::HighValueTemplate(&engine_, table, column,
                                     fraction > 0 && fraction < 1 ? fraction
                                                                  : 0.25));
    } else {
      return Status::InvalidArgument(
          "usage: \\template outliers|top|high <table> <column>");
    }
    std::printf("template: %s\nquery: %s\n", q.description.c_str(),
                q.sql.c_str());
    return RunQuery(q.sql);
  }

  Status ArmCancel(std::istringstream& in) {
    if (options_.strategy != core::ExecutionStrategy::kPhasedSharedScan) {
      return Status::InvalidArgument(
          "\\cancel applies to the streaming strategy only — run "
          "\\set strategy phased first (non-phased queries execute in one "
          "blocking shot, so there is no phase boundary to cancel at)");
    }
    size_t phases = 1;
    in >> phases;
    cancel_after_phases_ = phases == 0 ? 1 : phases;
    std::printf("armed: the next query's scan cancels after phase %zu "
                "(partial results will be shown)\n",
                cancel_after_phases_);
    return Status::OK();
  }

  Status Connect(std::istringstream& in) {
    std::string target;
    in >> target;
    if (target.empty()) {
      return Status::InvalidArgument(
          "usage: \\connect <unix-socket-path | host:port | port>");
    }
    Result<server::Client> client = Status::InvalidArgument("unreachable");
    if (target.find('/') != std::string::npos) {
      client = server::Client::ConnectUnix(target);
    } else if (size_t colon = target.find(':'); colon != std::string::npos) {
      client = server::Client::ConnectTcp(target.substr(0, colon),
                                          std::atoi(target.c_str() + colon +
                                                    1));
    } else {
      client = server::Client::ConnectTcp("127.0.0.1", std::atoi(
                                                           target.c_str()));
    }
    SEEDB_RETURN_IF_ERROR(client.status());
    remote_.emplace(std::move(*client));
    // Negotiate protocol v2: the server then pushes progress frames and the
    // drive loop below consumes them without polling round-trips. An old
    // server fails the hello and the client silently stays on v1.
    SEEDB_RETURN_IF_ERROR(remote_->Hello());
    SEEDB_ASSIGN_OR_RETURN(server::RemoteStatus status,
                           remote_->GetStatus());
    std::printf("connected to %s (%zu open sessions, protocol v%d%s); "
                "queries now run remotely — \\disconnect to go back\n",
                target.c_str(), status.sessions,
                remote_->handshake().version,
                remote_->push_enabled() ? ", push" : ", polling");
    if (status.cache_enabled) {
      std::printf("server result cache: %llu hits, %llu misses, %llu bytes, "
                  "%llu evictions\n",
                  static_cast<unsigned long long>(status.cache_hits),
                  static_cast<unsigned long long>(status.cache_misses),
                  static_cast<unsigned long long>(status.cache_bytes),
                  static_cast<unsigned long long>(status.cache_evictions));
    }
    return Status::OK();
  }

  Status Disconnect() {
    if (!remote_.has_value()) {
      return Status::InvalidArgument("not connected");
    }
    remote_.reset();
    std::printf("disconnected; queries run in-process again\n");
    return Status::OK();
  }

  // Engine-wide execution counters, cumulative over this CLI session —
  // vec_morsels shows whether the fused scans actually took the vectorized
  // inner loop or fell back to the hash path. In remote mode the queries
  // ran on the server's engine, whose counters these are NOT.
  // `\stats reset` zeroes both the engine counters and the in-process obs
  // registry, so back-to-back experiments measure from a clean slate.
  Status Stats(std::istringstream& in) {
    std::string arg;
    in >> arg;
    if (arg == "reset") {
      engine_.ResetStats();
      obs::Registry::Global().Reset();
      std::printf("engine counters and metrics registry reset\n");
      return Status::OK();
    }
    if (!arg.empty()) {
      return Status::InvalidArgument("usage: \\stats [reset]");
    }
    if (remote_.has_value()) {
      std::printf("note: connected to a server — queries ran on the "
                  "server's engine; the counters below cover only this "
                  "CLI's in-process engine\n");
    }
    std::printf("%s\n", engine_.stats().ToString().c_str());
    return Status::OK();
  }

  // The obs registry snapshot: latency histograms (engine phases, server
  // request types) plus counters/gauges. Remote mode asks the server for
  // ITS registry — that is where the queries ran.
  Status Metrics() {
    if (remote_.has_value()) {
      SEEDB_ASSIGN_OR_RETURN(server::JsonValue frame, remote_->Metrics());
      std::printf("%s\n", frame.Dump().c_str());
      return Status::OK();
    }
    std::printf("%s", obs::Registry::Global().TakeSnapshot().ToString().c_str());
    return Status::OK();
  }

  /// Remote execution: same streaming shape as the in-process path, driven
  /// over the wire. Results print as a compact table — the raw view data
  /// needed for ASCII charts stays server-side.
  Status RunRemoteQuery(const std::string& sql) {
    server::OpenSpec spec;
    spec.sql = sql;
    spec.k = options_.k;
    spec.bottom_k = options_.bottom_k;
    spec.metric = core::DistanceMetricToString(options_.metric);
    spec.strategy = core::ExecutionStrategyToString(options_.strategy);
    spec.parallelism = options_.parallelism;
    spec.memory_budget = options_.memory_budget_bytes;
    if (options_.strategy == core::ExecutionStrategy::kPhasedSharedScan) {
      spec.phases = options_.online_pruning.num_phases;
      spec.pruner =
          core::OnlinePrunerToString(options_.online_pruning.pruner);
      spec.early_stop = options_.online_pruning.early_stop_stable_phases;
    }
    const std::string id = "cli-" + std::to_string(next_remote_id_++);
    Status opened = remote_->Open(id, spec);
    if (!opened.ok()) {
      // Admission control sheds with busy + a retry hint; surface the hint
      // so the analyst knows when capacity comes back instead of guessing.
      if (opened.code() == StatusCode::kUnavailable &&
          remote_->last_retry_after_ms() > 0) {
        std::printf("server busy — retry in %d ms\n",
                    remote_->last_retry_after_ms());
      }
      return opened;
    }

    // From here on the session exists server-side: every early exit must
    // still finish it, or failed queries would pile sessions up in the
    // server registry until its cap refuses everyone.
    Status drive = DriveRemoteSession(id);
    if (!drive.ok() && drive.code() != StatusCode::kOutOfRange) {
      (void)remote_->Finish(id);  // best-effort release
      return drive;
    }
    if (!drive.ok()) {
      // Budget breach: report it, then show the partial results Finish()
      // assembles — the same contract as the in-process session.
      std::printf("  %s\n", drive.ToString().c_str());
    }

    SEEDB_ASSIGN_OR_RETURN(server::RemoteResult result, remote_->Finish(id));
    for (const server::RemoteRecommendation& rec : result.top) {
      std::printf("%zu. %-40s utility %.6f\n   %s\n", rec.rank,
                  rec.view_id.c_str(), rec.utility, rec.target_sql.c_str());
    }
    if (!result.pruned_online.empty()) {
      std::printf("views not examined (pruned mid-scan):\n");
      for (const server::RemotePrunedView& pv : result.pruned_online) {
        std::printf("  %-40s ~%.4f (phase %zu)\n", pv.view_id.c_str(),
                    pv.partial_utility, pv.pruned_at_phase);
      }
    }
    std::printf("remote: %zu phases, %zu table scans, %llu rows%s%s%s\n",
                result.profile.phases_executed, result.profile.table_scans,
                static_cast<unsigned long long>(result.profile.rows_scanned),
                result.profile.early_stopped ? ", early-stopped" : "",
                result.profile.cancelled ? ", CANCELLED" : "",
                result.profile.budget_exceeded ? ", BUDGET EXCEEDED" : "");
    if (result.profile.cache_hits + result.profile.cache_misses > 0) {
      std::printf("remote result cache: %llu hits, %llu misses\n",
                  static_cast<unsigned long long>(result.profile.cache_hits),
                  static_cast<unsigned long long>(result.profile.cache_misses));
    }
    return Status::OK();
  }

  /// The streaming loop of one remote query: one printed line per progress
  /// frame, with the armed \cancel applied. Finishing (and thus releasing)
  /// the session stays with the caller. On a protocol-v2 connection
  /// Next() consumes server-pushed frames — each loop turn pops a frame
  /// that already arrived (or blocks for the next push); no `next`
  /// requests go over the wire.
  Status DriveRemoteSession(const std::string& id) {
    const size_t cancel_after = cancel_after_phases_;
    cancel_after_phases_ = 0;  // one-shot
    while (true) {
      SEEDB_ASSIGN_OR_RETURN(std::optional<server::RemoteProgress> progress,
                             remote_->Next(id));
      if (!progress.has_value()) break;
      std::printf("  phase %zu/%zu  %6.1fms  rows %llu/%llu  active %zu  "
                  "pruned %zu  mem %llu B",
                  progress->phase, progress->total_phases,
                  progress->phase_seconds * 1e3,
                  static_cast<unsigned long long>(progress->rows_scanned),
                  static_cast<unsigned long long>(progress->total_rows),
                  progress->views_active, progress->views_pruned,
                  static_cast<unsigned long long>(progress->memory_bytes));
      if (!progress->top.empty()) {
        std::printf("  top: %s ~%.4f", progress->top[0].id.c_str(),
                    progress->top[0].utility);
      }
      if (progress->early_stopped) std::printf("  [early stop]");
      if (progress->cancelled) std::printf("  [cancelled]");
      std::printf("\n");
      if (progress->cancelled || progress->early_stopped) break;
      if (cancel_after > 0 && progress->phase >= cancel_after) {
        SEEDB_RETURN_IF_ERROR(remote_->Cancel(id));
        std::printf("  \\cancel: scan cancelled after phase %zu\n",
                    progress->phase);
        break;
      }
    }
    return Status::OK();
  }

  Status RunQuery(const std::string& sql) {
    if (remote_.has_value()) return RunRemoteQuery(sql);
    SEEDB_ASSIGN_OR_RETURN(core::SeeDBRequest request,
                           core::SeeDBRequest::FromSql(sql));
    request.WithOptions(options_);
    SEEDB_ASSIGN_OR_RETURN(core::RecommendationSession session,
                           seedb_.Open(request));

    // Stream the phased scan: one progress line per phase, so a long scan
    // shows the provisional top view tightening instead of a frozen prompt.
    // Non-phased strategies run in one blocking shot inside Finish().
    const bool streaming =
        options_.strategy == core::ExecutionStrategy::kPhasedSharedScan;
    const size_t cancel_after = cancel_after_phases_;
    cancel_after_phases_ = 0;  // one-shot
    while (streaming) {
      SEEDB_ASSIGN_OR_RETURN(std::optional<core::ProgressUpdate> update,
                             session.Next());
      if (!update.has_value()) break;
      PrintProgress(*update);
      if (update->cancelled || update->early_stopped) break;
      if (cancel_after > 0 && update->phase >= cancel_after) {
        session.Cancel();
        std::printf("  \\cancel: scan cancelled after phase %zu\n",
                    update->phase);
        break;
      }
    }

    SEEDB_ASSIGN_OR_RETURN(core::RecommendationSet result, session.Finish());
    for (const auto& rec : result.top_views) {
      std::printf("%s", viz::RenderRecommendation(rec).c_str());
      std::printf("    metadata: %s\n\n",
                  viz::ComputeViewMetadata(rec.result).ToString().c_str());
    }
    if (!result.online_pruned_views.empty()) {
      std::printf("views not examined (pruned mid-scan, est. utility at "
                  "retirement):\n");
      for (const auto& pv : result.online_pruned_views) {
        std::printf("  %-40s ~%.4f (phase %zu)\n", pv.view.Id().c_str(),
                    pv.partial_utility, pv.pruned_at_phase);
      }
    }
    std::printf("%s\n", result.profile.ToString().c_str());
    return Status::OK();
  }

  void PrintProgress(const core::ProgressUpdate& u) {
    std::printf("  phase %zu/%zu  %6.1fms  rows %llu/%llu  active %zu  "
                "pruned %zu",
                u.phase, u.total_phases, u.phase_seconds * 1e3,
                static_cast<unsigned long long>(u.rows_scanned),
                static_cast<unsigned long long>(u.total_rows), u.views_active,
                u.views_pruned_online);
    if (!u.top_views.empty()) {
      const auto& top = u.top_views[0];
      std::printf("  top: %s ~%.4f", top.view.Id().c_str(), top.utility);
      if (std::isfinite(u.ci_half_width)) {
        std::printf(" ±%.4f", u.ci_half_width);
      }
    }
    if (u.early_stopped) std::printf("  [early stop: top-k CI-stable]");
    if (u.cancelled) std::printf("  [cancelled]");
    std::printf("\n");
  }

  db::Catalog catalog_;
  db::Engine engine_;
  core::SeeDB seedb_;
  core::SeeDBOptions options_;
  /// Armed by \cancel: auto-cancel the next query's scan after this phase
  /// (0 = not armed). Lets scripted runs exercise mid-scan cancellation.
  size_t cancel_after_phases_ = 0;
  /// Engaged by \connect: queries stream through this wire connection
  /// instead of the in-process engine.
  std::optional<server::Client> remote_;
  size_t next_remote_id_ = 1;
};

}  // namespace

int main() {
  Cli cli;
  return cli.Run();
}
