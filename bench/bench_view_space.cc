// E2 — §1 challenge (b): "the number of candidate views (or visualizations)
// increases as the square of the number of attributes in a table ...
// generating and evaluating all views, even for a moderately sized dataset,
// can be prohibitively expensive."
//
// Sweeps the attribute count (split evenly into dimensions and measures) and
// reports the candidate-view count plus the measured cost of exhaustively
// evaluating all of them (baseline plan) vs the fully optimized plan.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "core/view_space.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E2 (view-space growth)",
                "candidate views vs attribute count",
                "candidate views grow quadratically with attributes; "
                "exhaustive evaluation cost grows in step, optimization "
                "flattens it");

  std::printf("%6s %6s %6s %8s %14s %14s %9s\n", "attrs", "dims", "meas",
              "views", "baseline(ms)", "optimized(ms)", "speedup");
  for (size_t attrs : {4, 8, 16, 32}) {
    size_t dims = attrs / 2;
    size_t measures = attrs - dims;
    data::WorkloadSpec spec;
    spec.rows = 20000;
    spec.num_dims = dims;
    spec.num_measures = measures;
    spec.cardinality = 12;
    auto workload = data::BuildWorkload(spec).ValueOrDie();
    core::SeeDB seedb_engine(workload.engine.get());

    size_t views = core::ViewSpaceSize(
        dims, measures, core::ViewSpaceOptions{}.functions.size(), false);

    core::SeeDBOptions baseline;
    baseline.optimizer = core::OptimizerOptions::Baseline();
    core::SeeDBOptions optimized;  // all combining on

    double baseline_ms =
        bench::MedianSeconds([&] {
          (void)seedb_engine.Recommend(workload.table_name,
                                       workload.selection, baseline);
        }) *
        1e3;
    double optimized_ms =
        bench::MedianSeconds([&] {
          (void)seedb_engine.Recommend(workload.table_name,
                                       workload.selection, optimized);
        }) *
        1e3;
    std::printf("%6zu %6zu %6zu %8zu %14.2f %14.2f %8.1fx\n", attrs, dims,
                measures, views, baseline_ms, optimized_ms,
                baseline_ms / optimized_ms);
  }
  std::printf(
      "\nClosed-form check (quadratic shape): views(2n)/views(n) = 4:\n");
  size_t f = core::ViewSpaceOptions{}.functions.size();
  for (size_t n : {8, 16, 32}) {
    size_t v1 = core::ViewSpaceSize(n / 2, n / 2, f, false);
    size_t v2 = core::ViewSpaceSize(n, n, f, false);
    std::printf("  views(%2zu attrs)=%5zu  views(%2zu attrs)=%5zu  ratio=%.1f\n",
                n, v1, 2 * n, v2,
                static_cast<double>(v2) / static_cast<double>(v1));
  }
  bench::Footer();
}

void BM_EnumerateViews(benchmark::State& state) {
  db::Schema schema;
  for (int i = 0; i < state.range(0); ++i) {
    (void)schema.AddColumn(
        db::ColumnDef::Dimension("d" + std::to_string(i)));
    (void)schema.AddColumn(db::ColumnDef::Measure("m" + std::to_string(i)));
  }
  for (auto _ : state) {
    auto views = core::EnumerateViews(schema);
    benchmark::DoNotOptimize(views);
  }
}
BENCHMARK(BM_EnumerateViews)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
