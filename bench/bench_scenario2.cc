// E11 — §4 Scenario 2 ("Demonstrating Performance and Optimizations"):
// "attendees will be able to easily experiment with a range of synthetic
// datasets and input queries by adjusting various knobs such as data size,
// number of attributes, and data distribution ... select the optimizations
// that SEEDB applies and observe the effect on response times and accuracy."
//
// The full knob grid: rows x dims x distribution x optimizer set.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E11 (Scenario 2: performance knobs)",
                "latency across data size / attribute / distribution knobs",
                "latency grows with data size and attribute count; the "
                "optimized configuration stays interactive where the "
                "baseline does not");

  std::printf("%9s %5s %9s %-10s %14s %14s %8s %8s\n", "rows", "dims",
              "zipf", "optimizer", "latency(ms)", "rows_scanned", "queries",
              "rank");
  for (size_t rows : {20000, 100000}) {
    for (size_t dims : {4, 8}) {
      for (double zipf : {0.0, 1.0}) {
        data::WorkloadSpec spec;
        spec.rows = rows;
        spec.num_dims = dims;
        spec.num_measures = 2;
        spec.cardinality = 16;
        spec.zipf_s = zipf;
        auto workload = data::BuildWorkload(spec).ValueOrDie();
        core::SeeDB seedb_engine(workload.engine.get());

        for (bool optimized : {false, true}) {
          core::SeeDBOptions options;
          options.k = 5;
          options.optimizer = optimized ? core::OptimizerOptions::All()
                                        : core::OptimizerOptions::Baseline();
          if (optimized) options.parallelism = 4;
          core::RecommendationSet result;
          double ms =
              bench::MedianSeconds(
                  [&] {
                    result = seedb_engine
                                 .Recommend(workload.table_name,
                                            workload.selection, options)
                                 .ValueOrDie();
                  },
                  2) *
              1e3;
          size_t rank = bench::RankOf(result, workload.expected_dimension,
                                      workload.expected_measure);
          std::printf("%9zu %5zu %9.1f %-10s %14.2f %14llu %8zu %8zu\n",
                      rows, dims, zipf,
                      optimized ? "all-on" : "baseline", ms,
                      static_cast<unsigned long long>(
                          result.profile.rows_scanned),
                      result.profile.queries_issued, rank);
        }
      }
    }
  }
  std::printf("\nExpected shape: optimized latency is several times lower "
              "than baseline at every knob setting; the planted view's rank "
              "stays in 1..5 in both modes.\n");
  bench::Footer();
}

void BM_RecommendBySize(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = static_cast<size_t>(state.range(0));
  spec.num_dims = 5;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb_engine(workload.engine.get());
  for (auto _ : state) {
    auto r = seedb_engine.Recommend(workload.table_name, workload.selection,
                                    {});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RecommendBySize)->Arg(10000)->Arg(50000);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
