// E3 — §3.3 View Space Pruning: variance-based, correlated-attribute, and
// access-frequency pruning "aggressively prune view queries that are
// unlikely to have high utility".
//
// Builds a workload with prunable structure (a constant flag dimension, a
// correlated twin dimension, a planted deviation) and reports, per pruning
// configuration: views executed, latency, and top-5 recall against the
// unpruned ranking.
//
// E3b — §3.3 Pruning-Based Optimizations: the phased executor's *online*
// pruners (confidence-interval and MAB successive halving) against the
// exhaustive fused scan, sweeping phase counts: recall@5, views retired
// mid-flight, wall-clock, and per-phase latency.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/synthetic.h"
#include "db/engine.h"

namespace {

using namespace seedb;  // NOLINT

struct Env {
  std::unique_ptr<db::Catalog> catalog;
  std::unique_ptr<db::Engine> engine;
  db::PredicatePtr selection;
};

Env BuildEnv() {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(60000, 8, 2, 16, /*seed=*/71);
  spec.deviation->strength = 6.0;
  // Dim 5 correlates with dim 1; dims 6 and 7 are near-constant.
  spec.dimensions[5].correlated_with = 1;
  spec.dimensions[5].correlation_noise = 0.02;
  spec.dimensions[6].cardinality = 1;
  spec.dimensions[7].cardinality = 2;  // will be 95/5 via zipf skew
  spec.dimensions[7].distribution = data::DimensionSpec::Dist::kZipf;
  spec.dimensions[7].zipf_s = 4.0;
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  Env env;
  env.catalog = std::make_unique<db::Catalog>();
  (void)env.catalog->AddTable("t", std::move(dataset.table));
  env.engine = std::make_unique<db::Engine>(env.catalog.get());
  env.selection = dataset.selection;
  (void)env.catalog->GetStats("t");
  return env;
}

void RunExperiment() {
  bench::Banner("E3 (view-space pruning)",
                "pruning techniques vs latency and recall",
                "pruning cuts executed views and latency while keeping the "
                "top-k views (low-variance and correlated dims carry little "
                "utility)");

  Env env = BuildEnv();
  core::SeeDB seedb_engine(env.engine.get());

  // Warm an access history so frequency pruning has signal: the analyst
  // mostly looks at dim1/dim2/m0.
  for (int i = 0; i < 30; ++i) {
    (void)env.engine->ExecuteSql(
        "SELECT dim1, SUM(m0) FROM t GROUP BY dim1");
    (void)env.engine->ExecuteSql(
        "SELECT dim2, AVG(m0) FROM t GROUP BY dim2");
  }

  struct Config {
    const char* name;
    core::PruningOptions pruning;
  };
  std::vector<Config> configs;
  configs.push_back({"none", core::PruningOptions::None()});
  {
    core::PruningOptions p;
    p.enable_variance = true;
    configs.push_back({"variance", p});
  }
  {
    core::PruningOptions p;
    p.enable_correlation = true;
    configs.push_back({"correlation", p});
  }
  {
    core::PruningOptions p;
    p.enable_access_frequency = true;
    p.min_access_frequency = 0.3;
    configs.push_back({"access-freq", p});
  }
  configs.push_back({"all", core::PruningOptions::All()});

  // Ground truth: unpruned top-5.
  core::SeeDBOptions truth_options;
  truth_options.k = 5;
  auto truth = seedb_engine
                   .Recommend("t", env.selection, truth_options)
                   .ValueOrDie();
  auto truth_ids = bench::TopViewIds(truth);

  std::printf("%-12s %8s %8s %8s %12s %8s\n", "pruning", "views", "pruned",
              "queries", "latency(ms)", "recall@5");
  for (const auto& config : configs) {
    core::SeeDBOptions options;
    options.k = 5;
    options.pruning = config.pruning;
    options.pruning.min_access_frequency = 0.3;
    core::RecommendationSet result;
    double ms = bench::MedianSeconds([&] {
                  result = seedb_engine
                               .Recommend("t", env.selection, options)
                               .ValueOrDie();
                }) *
                1e3;
    std::printf("%-12s %8zu %8zu %8zu %12.2f %8.2f\n", config.name,
                result.profile.views_executed, result.profile.views_pruned,
                result.profile.queries_issued, ms,
                bench::Recall(truth_ids, bench::TopViewIds(result)));
  }
  bench::Footer();
}

void RunOnlinePruningExperiment() {
  bench::Banner(
      "E3b (online CI/MAB pruning)",
      "mid-flight view pruning vs the exhaustive fused scan",
      "phased execution with confidence-interval or MAB pruning retires "
      "low-utility views after a fraction of the table, cutting latency "
      "while keeping top-k recall high");

  Env env = BuildEnv();
  core::SeeDB seedb_engine(env.engine.get());

  // Ground truth: the exhaustive fused scan (same strategy family, no
  // pruner), so recall isolates what online pruning changes.
  core::SeeDBOptions truth_options;
  truth_options.k = 5;
  truth_options.strategy = core::ExecutionStrategy::kSharedScan;
  auto truth =
      seedb_engine.Recommend("t", env.selection, truth_options).ValueOrDie();
  auto truth_ids = bench::TopViewIds(truth);

  struct Config {
    const char* name;
    core::OnlinePruner pruner;
    size_t phases;
    /// Hoeffding range for CI. The default (2.0) is provably safe for every
    /// shipped metric but rarely separates on small utility gaps; the
    /// tighter settings trade the guarantee for real pruning — exactly the
    /// accuracy-vs-latency dial this experiment measures.
    double utility_range;
  };
  std::vector<Config> configs = {
      {"exhaustive", core::OnlinePruner::kNone, 1, 2.0},
      {"ci-safe", core::OnlinePruner::kConfidenceInterval, 10, 2.0},
      {"ci(r=.05)", core::OnlinePruner::kConfidenceInterval, 4, 0.05},
      {"ci(r=.05)", core::OnlinePruner::kConfidenceInterval, 10, 0.05},
      {"mab", core::OnlinePruner::kMultiArmedBandit, 4, 2.0},
      {"mab", core::OnlinePruner::kMultiArmedBandit, 10, 2.0},
  };

  // Machine-readable mirror of the table, uploaded by CI next to
  // BENCH_parallel.json for offline recall/latency trend tracking. (The
  // perf gate itself compares only BENCH_parallel.json — these runs are
  // keyed by pruner, not strategy/threads.)
  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value("pruning")
      .Key("runs").BeginArray();

  std::printf("%-12s %8s %8s %10s %12s %14s %10s\n", "pruner", "phases",
              "views", "pruned", "latency(ms)", "per-phase(ms)", "recall@5");
  for (const auto& config : configs) {
    core::SeeDBOptions options;
    options.k = 5;
    options.strategy = core::ExecutionStrategy::kPhasedSharedScan;
    options.online_pruning.pruner = config.pruner;
    options.online_pruning.num_phases = config.phases;
    options.online_pruning.delta = 0.05;
    options.online_pruning.utility_range = config.utility_range;
    core::RecommendationSet result;
    double ms = bench::MedianSeconds([&] {
                  result = seedb_engine
                               .Recommend("t", env.selection, options)
                               .ValueOrDie();
                }) *
                1e3;
    double exec_ms = result.profile.execution_seconds * 1e3;
    double per_phase_ms =
        result.profile.phases_executed == 0
            ? 0.0
            : exec_ms / static_cast<double>(result.profile.phases_executed);
    double recall = bench::Recall(truth_ids, bench::TopViewIds(result));
    std::printf("%-12s %8zu %8zu %10zu %12.2f %14.2f %10.2f\n", config.name,
                result.profile.phases_executed,
                result.profile.views_executed -
                    result.profile.views_pruned_online,
                result.profile.views_pruned_online, ms, per_phase_ms, recall);
    json.BeginObject()
        .Key("pruner").Value(core::OnlinePrunerToString(config.pruner))
        .Key("phases").Value(config.phases)
        .Key("utility_range").Value(config.utility_range)
        .Key("total_ms").Value(ms)
        .Key("mean_unit_ms").Value(per_phase_ms)
        .Key("views_pruned").Value(result.profile.views_pruned_online)
        .Key("recall_at_5").Value(recall)
        .EndObject();
  }
  json.EndArray().EndObject();
  json.WriteFile("BENCH_pruning.json");
  std::printf(
      "\nExpected shape: both pruners keep recall@5 near 1.0 on this "
      "workload (the planted view separates early) while retiring most "
      "views well before the scan ends; MAB prunes on a fixed halving "
      "schedule, CI only when the confidence bounds separate.\n");
  bench::Footer();
}

void BM_PruneViews(benchmark::State& state) {
  Env env = BuildEnv();
  const db::Table* table = env.catalog->GetTable("t").ValueOrDie();
  const db::TableStats* stats = env.catalog->GetStats("t").ValueOrDie();
  auto views = core::EnumerateViews(table->schema());
  for (auto _ : state) {
    auto report = core::PruneViews(views, *table, *stats, nullptr, "t",
                                   core::PruningOptions::All());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PruneViews);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  RunOnlinePruningExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
