// E13 — Vectorized kernel subsystem (db/vec/): per-kernel throughput and
// the fused-plan wall clock of the dense inner loop vs the hash path vs
// ExecuteGroupingSets' aggregate-major loop.
//
// The ROADMAP regression this closes: the single-query fused plan used to
// be SLOWER than ExecuteGroupingSets on one core (per-row boxed hash inner
// loop). With selection vectors + dense group-id + flat-slab kernels the
// fused plan must win on one core — pinned by CI reading
// BENCH_vectorized.json (which also asserts the fast path actually engaged
// via vectorized_morsels >= 1).
//
// The explicit-SIMD tier (db/vec/simd/) adds simd-vs-scalar rows for the
// compare/select/accumulate kernels plus a fused WHERE'd plan pair, and the
// summary records simd_isa / speedups / fused_simd_morsels — CI asserts the
// tier engaged on AVX2 legs, and tools/perf_gate.py warns whenever the simd
// compare kernel fails to beat the scalar one.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/workload.h"
#include "db/grouping_sets.h"
#include "db/predicate.h"
#include "db/shared_scan.h"
#include "db/vec/aggregate_kernels.h"
#include "db/vec/group_ids.h"
#include "db/vec/selection_vector.h"
#include "db/vec/simd/simd.h"
#include "util/random.h"

namespace {

using namespace seedb;  // NOLINT

constexpr size_t kKernelRows = 1 << 20;

// One micro-kernel measurement: lower-median seconds over reps -> rows/sec.
double KernelRowsPerSec(const std::function<void()>& fn, size_t rows,
                        int reps = 5) {
  double secs = bench::MedianSeconds(fn, reps);
  return secs > 0.0 ? static_cast<double>(rows) / secs : 0.0;
}

void RunExperiment() {
  bench::Banner("E13 (vectorized kernels)",
                "selection-vector + dense group-id + flat-slab aggregation "
                "as the shared scan's inner loop",
                "the single-query fused plan with dense kernels beats "
                "ExecuteGroupingSets' aggregate-major loop on one core; the "
                "hash fallback shows what the dense path saves");

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value("vectorized")
      .Key("kernel_rows").Value(kKernelRows)
      .Key("runs").BeginArray();

  auto emit = [&json](const char* name, double total_ms, double rows_per_sec,
                      size_t vectorized_morsels) {
    std::printf("%28s  %10.2f ms  %12.1f Mrows/s  vec_morsels=%zu\n", name,
                total_ms, rows_per_sec / 1e6, vectorized_morsels);
    json.BeginObject()
        .Key("name").Value(name)
        .Key("total_ms").Value(total_ms)
        .Key("rows_per_sec").Value(rows_per_sec)
        .Key("vectorized_morsels").Value(vectorized_morsels)
        .EndObject();
  };

  // --- Per-kernel throughput over synthetic arrays. ---
  double simd_compare_speedup = 0.0;
  double simd_accumulate_speedup = 0.0;
  {
    Random rng(7);
    std::vector<uint8_t> mask(kKernelRows);
    std::vector<int32_t> codes(kKernelRows);
    std::vector<double> values(kKernelRows);
    std::vector<int64_t> ints(kKernelRows);
    for (size_t i = 0; i < kKernelRows; ++i) {
      mask[i] = rng.Bernoulli(0.5) ? 1 : 0;
      codes[i] = static_cast<int32_t>(rng.UniformInt(0, 23));
      values[i] = rng.UniformDouble(-100.0, 100.0);
      ints[i] = rng.UniformInt(-1000, 1000);
    }
    db::vec::SelectionVector sel;
    double rps = KernelRowsPerSec(
        [&] { db::vec::SelectFromMask(mask.data(), 0, kKernelRows, &sel); },
        kKernelRows);
    emit("kernel:select_from_mask", kKernelRows / rps * 1e3, rps, 0);
    rps = KernelRowsPerSec(
        [&] {
          db::vec::simd::SelectFromMask(mask.data(), 0, kKernelRows, &sel);
        },
        kKernelRows);
    emit("kernel:select_from_mask_simd", kKernelRows / rps * 1e3, rps, 0);

    double scalar_cmp = KernelRowsPerSec(
        [&] {
          db::vec::SelectCompareDouble(values.data(), nullptr,
                                       db::CompareOp::kGt, 0.0, 0,
                                       kKernelRows, &sel);
        },
        kKernelRows);
    emit("kernel:select_compare_double", kKernelRows / scalar_cmp * 1e3,
         scalar_cmp, 0);
    double simd_cmp = KernelRowsPerSec(
        [&] {
          db::vec::simd::SelectCompareDouble(values.data(), nullptr,
                                             db::CompareOp::kGt, 0.0, 0,
                                             kKernelRows, &sel);
        },
        kKernelRows);
    emit("kernel:select_compare_double_simd", kKernelRows / simd_cmp * 1e3,
         simd_cmp, 0);
    simd_compare_speedup = scalar_cmp > 0.0 ? simd_cmp / scalar_cmp : 0.0;

    rps = KernelRowsPerSec(
        [&] {
          db::vec::SelectCompareInt64(ints.data(), nullptr, db::CompareOp::kLt,
                                      0, 0, kKernelRows, &sel);
        },
        kKernelRows);
    emit("kernel:select_compare_int64", kKernelRows / rps * 1e3, rps, 0);
    rps = KernelRowsPerSec(
        [&] {
          db::vec::simd::SelectCompareInt64(ints.data(), nullptr,
                                            db::CompareOp::kLt, 0, 0,
                                            kKernelRows, &sel);
        },
        kKernelRows);
    emit("kernel:select_compare_int64_simd", kKernelRows / rps * 1e3, rps, 0);

    db::vec::DenseDim dim{codes.data(), nullptr, 25};
    std::vector<uint32_t> gids(kKernelRows);
    rps = KernelRowsPerSec(
        [&] {
          db::vec::GroupIdsRange(&dim, 1, 0, kKernelRows, gids.data());
        },
        kKernelRows);
    emit("kernel:group_ids_range", kKernelRows / rps * 1e3, rps, 0);

    db::vec::DenseAggTable slab;
    rps = KernelRowsPerSec(
        [&] {
          slab.Init(25, 1);
          db::vec::AccumulateDoubleRange(gids.data(), 0, kKernelRows,
                                         values.data(), nullptr, nullptr,
                                         slab.slab(0));
        },
        kKernelRows);
    emit("kernel:accumulate_double", kKernelRows / rps * 1e3, rps, 0);

    // Run-accumulation: CLUSTERED group ids (the shape sorted/low-cardinality
    // dimension scans produce) are where the simd run-hoisted accumulators
    // break the scalar loop's per-row read-modify-write dependency chain.
    std::vector<uint32_t> run_gids(kKernelRows);
    {
      uint32_t g = 0;
      size_t left = 0;
      Random run_rng(11);
      for (size_t i = 0; i < kKernelRows; ++i) {
        if (left == 0) {
          left = static_cast<size_t>(run_rng.UniformInt(64, 512));
          g = static_cast<uint32_t>(run_rng.UniformInt(0, 24));
        }
        --left;
        run_gids[i] = g;
      }
    }
    double scalar_acc = KernelRowsPerSec(
        [&] {
          slab.Init(25, 1);
          db::vec::AccumulateDoubleRange(run_gids.data(), 0, kKernelRows,
                                         values.data(), nullptr, nullptr,
                                         slab.slab(0));
        },
        kKernelRows);
    emit("kernel:accumulate_double_runs", kKernelRows / scalar_acc * 1e3,
         scalar_acc, 0);
    double simd_acc = KernelRowsPerSec(
        [&] {
          slab.Init(25, 1);
          db::vec::simd::AccumulateDoubleRange(run_gids.data(), 0, kKernelRows,
                                               values.data(), nullptr, nullptr,
                                               slab.slab(0));
        },
        kKernelRows);
    emit("kernel:accumulate_double_runs_simd", kKernelRows / simd_acc * 1e3,
         simd_acc, 0);
    simd_accumulate_speedup = scalar_acc > 0.0 ? simd_acc / scalar_acc : 0.0;

    rps = KernelRowsPerSec(
        [&] {
          slab.Init(25, 1);
          db::vec::AccumulateCountRange(run_gids.data(), 0, kKernelRows,
                                        nullptr, nullptr, slab.slab(0));
        },
        kKernelRows);
    emit("kernel:count_runs", kKernelRows / rps * 1e3, rps, 0);
    rps = KernelRowsPerSec(
        [&] {
          slab.Init(25, 1);
          db::vec::simd::AccumulateCountRange(run_gids.data(), 0, kKernelRows,
                                              nullptr, nullptr, slab.slab(0));
        },
        kKernelRows);
    emit("kernel:count_runs_simd", kKernelRows / rps * 1e3, rps, 0);
  }

  // --- Fused single-query plan vs ExecuteGroupingSets, one core. ---
  data::WorkloadSpec spec;
  spec.rows = 400000;
  spec.num_dims = 4;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();

  // The §3.3 combined query shape: every dimension a grouping set, target
  // half under FILTER, comparison half unconditional.
  db::GroupingSetsQuery query;
  query.table = workload.table_name;
  query.grouping_sets = {{"dim0"}, {"dim1"}, {"dim2"}, {"dim3"}};
  query.aggregates = {
      db::AggregateSpec::Make(db::AggregateFunction::kSum, "m0",
                              "target", workload.selection),
      db::AggregateSpec::Make(db::AggregateFunction::kSum, "m0",
                              "comparison"),
  };

  std::printf("\nfused single-query plan: %zu rows, %zu grouping sets, "
              "%zu aggregates, 1 thread\n\n",
              table->num_rows(), query.grouping_sets.size(),
              query.aggregates.size());

  double gs_ms =
      bench::MedianSeconds(
          [&] {
            auto r = db::ExecuteGroupingSets(*table, query, nullptr);
            (void)r.ValueOrDie();
          },
          3) *
      1e3;
  emit("fused:grouping_sets", gs_ms,
       table->num_rows() / (gs_ms / 1e3), 0);

  db::SharedScanOptions hash_options;
  hash_options.num_threads = 1;
  hash_options.enable_vectorized = false;
  db::SharedScanStats hash_stats;
  double hash_ms =
      bench::MedianSeconds(
          [&] {
            auto r = db::ExecuteSharedScan(*table, {query}, hash_options,
                                           &hash_stats);
            (void)r.ValueOrDie();
          },
          3) *
      1e3;
  emit("fused:shared_scan_hash", hash_ms, table->num_rows() / (hash_ms / 1e3),
       hash_stats.vectorized_morsels);

  db::SharedScanOptions vec_options;
  vec_options.num_threads = 1;
  db::SharedScanStats vec_stats;
  double vec_ms =
      bench::MedianSeconds(
          [&] {
            auto r = db::ExecuteSharedScan(*table, {query}, vec_options,
                                           &vec_stats);
            (void)r.ValueOrDie();
          },
          3) *
      1e3;
  emit("fused:shared_scan_vectorized", vec_ms,
       table->num_rows() / (vec_ms / 1e3), vec_stats.vectorized_morsels);

  // --- Fused WHERE'd plan: predicate->selection fusion, simd vs scalar. ---
  // The WHERE comparison fuses into selection building on the vectorized
  // path (no byte mask is materialized), so this pair exercises the typed
  // compare kernels end to end inside the scan.
  db::GroupingSetsQuery where_query = query;
  where_query.where = db::PredicatePtr(db::Gt("m0", db::Value(0.0)));

  db::SharedScanOptions simd_off = vec_options;
  simd_off.enable_simd = false;
  db::SharedScanStats where_scalar_stats;
  double where_scalar_ms =
      bench::MedianSeconds(
          [&] {
            auto r = db::ExecuteSharedScan(*table, {where_query}, simd_off,
                                           &where_scalar_stats);
            (void)r.ValueOrDie();
          },
          3) *
      1e3;
  emit("fused:where_scan_scalar", where_scalar_ms,
       table->num_rows() / (where_scalar_ms / 1e3),
       where_scalar_stats.vectorized_morsels);

  db::SharedScanStats where_simd_stats;
  double where_simd_ms =
      bench::MedianSeconds(
          [&] {
            auto r = db::ExecuteSharedScan(*table, {where_query}, vec_options,
                                           &where_simd_stats);
            (void)r.ValueOrDie();
          },
          3) *
      1e3;
  emit("fused:where_scan_simd", where_simd_ms,
       table->num_rows() / (where_simd_ms / 1e3),
       where_simd_stats.vectorized_morsels);

  json.EndArray()
      .Key("fused_vectorized_morsels").Value(vec_stats.vectorized_morsels)
      .Key("vec_beats_grouping_sets").Value(vec_ms < gs_ms)
      .Key("speedup_vs_grouping_sets").Value(gs_ms / vec_ms)
      .Key("speedup_vs_hash").Value(hash_ms / vec_ms)
      .Key("simd_isa").Value(db::vec::simd::IsaName())
      .Key("simd_compare_speedup").Value(simd_compare_speedup)
      .Key("simd_accumulate_speedup").Value(simd_accumulate_speedup)
      .Key("fused_simd_morsels").Value(where_simd_stats.simd_morsels)
      .Key("simd_beats_scalar_compare").Value(simd_compare_speedup > 1.0)
      .Key("where_speedup_simd_vs_scalar")
      .Value(where_scalar_ms / where_simd_ms)
      .EndObject();
  json.WriteFile("BENCH_vectorized.json");

  std::printf("\nspeedup: %.2fx vs ExecuteGroupingSets, %.2fx vs the hash "
              "inner loop (%s)\n",
              gs_ms / vec_ms, hash_ms / vec_ms,
              vec_ms < gs_ms ? "dense kernels WIN on one core"
                             : "REGRESSION: dense kernels lost");
  std::printf("simd tier (%s): compare %.2fx, run-accumulate %.2fx vs the "
              "scalar kernels; WHERE'd fused plan %.2fx (simd_morsels=%zu)\n",
              db::vec::simd::IsaName(), simd_compare_speedup,
              simd_accumulate_speedup, where_scalar_ms / where_simd_ms,
              where_simd_stats.simd_morsels);
  bench::Footer();
}

void BM_FusedVectorized(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 100000;
  spec.num_dims = 4;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();
  db::GroupingSetsQuery query;
  query.table = workload.table_name;
  query.grouping_sets = {{"dim0"}, {"dim1"}, {"dim2"}, {"dim3"}};
  query.aggregates = {
      db::AggregateSpec::Make(db::AggregateFunction::kSum, "m0")};
  db::SharedScanOptions options;
  options.num_threads = 1;
  options.enable_vectorized = state.range(0) != 0;
  for (auto _ : state) {
    auto r = db::ExecuteSharedScan(*table, {query}, options, nullptr);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table->num_rows());
}
BENCHMARK(BM_FusedVectorized)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
