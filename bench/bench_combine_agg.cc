// E5 — §3.3 "Combine Multiple Aggregates": "SEEDB combines all view queries
// with the same group-by attribute into a single query. This rewriting
// provides a speed up linear in the number of aggregate attributes."
//
// Sweeps the number of measures; with aggregate combining on, the number of
// queries stays constant per dimension while the baseline grows linearly —
// so the speedup grows roughly linearly in the measure count.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E5 (combine multiple aggregates)",
                "one multi-aggregate query per grouping attribute",
                "speedup is roughly linear in the number of aggregate "
                "attributes sharing a group-by");

  std::printf("%9s %9s %12s %12s %9s %9s %9s\n", "measures", "views",
              "sep(ms)", "comb(ms)", "speedup", "q_sep", "q_comb");
  for (size_t measures : {1, 2, 4, 8}) {
    data::WorkloadSpec spec;
    spec.rows = 100000;
    spec.num_dims = 3;
    spec.num_measures = measures;
    spec.cardinality = 48;
    auto workload = data::BuildWorkload(spec).ValueOrDie();
    core::SeeDB seedb_engine(workload.engine.get());

    core::SeeDBOptions separate;
    separate.optimizer = core::OptimizerOptions::Baseline();
    separate.optimizer.combine_target_comparison = true;  // isolate E5
    core::SeeDBOptions combined = separate;
    combined.optimizer.combine_aggregates = true;

    core::RecommendationSet rs, rc;
    double sep_ms = bench::MedianSeconds([&] {
                      rs = seedb_engine
                               .Recommend(workload.table_name,
                                          workload.selection, separate)
                               .ValueOrDie();
                    }) *
                    1e3;
    double comb_ms = bench::MedianSeconds([&] {
                       rc = seedb_engine
                                .Recommend(workload.table_name,
                                           workload.selection, combined)
                                .ValueOrDie();
                     }) *
                     1e3;
    std::printf("%9zu %9zu %12.2f %12.2f %8.1fx %9zu %9zu\n", measures,
                rs.profile.views_executed, sep_ms, comb_ms, sep_ms / comb_ms,
                rs.profile.queries_issued, rc.profile.queries_issued);
  }
  std::printf("\nExpected shape: q_comb stays at #dims while q_sep grows "
              "with measures; speedup grows with the measure count.\n");
  bench::Footer();
}

void BM_MultiAggregateQuery(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 1;
  spec.num_measures = static_cast<size_t>(state.range(0));
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  db::GroupByQuery q;
  q.table = workload.table_name;
  q.group_by = {"dim0"};
  for (int m = 0; m < state.range(0); ++m) {
    q.aggregates.push_back(db::AggregateSpec::Make(
        db::AggregateFunction::kSum, "m" + std::to_string(m)));
  }
  for (auto _ : state) {
    auto r = workload.engine->Execute(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MultiAggregateQuery)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
