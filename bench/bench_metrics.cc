// E9 — §2 metric pluggability: "SEEDB supports a variety of metrics to
// compute utility ... attendees can experiment with different distance
// metrics and examine how the choice of metric affects view quality."
//
// Reports (a) the computational cost of each metric (google-benchmark) and
// (b) how strongly the metrics agree on the top-5 views of one workload.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/seedb.h"
#include "data/workload.h"
#include "util/random.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E9 (distance metrics)",
                "metric choice: cost and top-k agreement",
                "different metrics broadly agree on strongly deviating "
                "views but rank the middle differently");

  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb_engine(workload.engine.get());

  // Top-5 per metric.
  std::vector<std::set<std::string>> tops;
  std::vector<core::DistanceMetric> metrics = core::AllDistanceMetrics();
  std::printf("top-5 views per metric:\n");
  for (core::DistanceMetric metric : metrics) {
    core::SeeDBOptions options;
    options.k = 5;
    options.metric = metric;
    auto result = seedb_engine
                      .Recommend(workload.table_name, workload.selection,
                                 options)
                      .ValueOrDie();
    tops.push_back(bench::TopViewIds(result));
    std::printf("  %-16s #1 = %-22s (%.4f)\n",
                core::DistanceMetricToString(metric),
                result.top_views[0].view().Id().c_str(),
                result.top_views[0].utility());
  }

  std::printf("\npairwise top-5 overlap (|A intersect B| / 5):\n%-16s",
              "");
  for (core::DistanceMetric metric : metrics) {
    std::printf(" %7.7s", core::DistanceMetricToString(metric));
  }
  std::printf("\n");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::printf("%-16s", core::DistanceMetricToString(metrics[i]));
    for (size_t j = 0; j < metrics.size(); ++j) {
      std::printf(" %7.2f", bench::Recall(tops[i], tops[j]));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: high diagonal-adjacent agreement; EMD and "
              "L1-family metrics agree most; KL diverges on sparse bins.\n");
  bench::Footer();
}

void BM_Distance(benchmark::State& state) {
  core::DistanceMetric metric =
      core::AllDistanceMetrics()[static_cast<size_t>(state.range(0))];
  Random rng(5);
  size_t n = static_cast<size_t>(state.range(1));
  std::vector<double> p(n), q(n);
  double sp = 0, sq = 0;
  for (size_t i = 0; i < n; ++i) {
    p[i] = rng.NextDouble();
    q[i] = rng.NextDouble();
    sp += p[i];
    sq += q[i];
  }
  for (size_t i = 0; i < n; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  for (auto _ : state) {
    auto d = core::Distance(p, q, metric);
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(core::DistanceMetricToString(metric));
}
BENCHMARK(BM_Distance)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {16, 256}});

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
