// E6 — §3.3 "Combine Multiple Group-bys": multiple grouping attributes share
// one GROUPING SETS scan; "the number of views that can be combined depends
// on ... system parameters like the working memory", managed by bin packing.
//
// Sweeps the dimension count and working-memory budget; reports query count
// (= bins chosen by the packer) and latency versus uncombined execution.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/bin_packing.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E6 (combine multiple group-bys)",
                "GROUPING SETS sharing + working-memory bin packing",
                "combining group-bys cuts scans up to the memory budget; "
                "smaller budgets force more queries");

  std::printf("%6s %22s %9s %9s %12s\n", "dims", "budget", "queries",
              "scans", "latency(ms)");
  for (size_t dims : {4, 8, 12}) {
    data::WorkloadSpec spec;
    spec.rows = 40000;
    spec.num_dims = dims;
    spec.num_measures = 2;
    spec.cardinality = 64;
    auto workload = data::BuildWorkload(spec).ValueOrDie();
    core::SeeDB seedb_engine(workload.engine.get());

    struct Budget {
      const char* name;
      bool combine;
      uint64_t bytes;
    };
    // Per-dim weight here: 64 groups x (2 meas x 3 funcs x 2 halves) x 32B
    // = 24576B; budgets chosen to force different bin counts.
    const Budget budgets[] = {
        {"off (uncombined)", false, 0},
        {"32KB (tight)", true, 32ull << 10},
        {"64KB (medium)", true, 64ull << 10},
        {"unlimited", true, 1ull << 40},
    };
    for (const Budget& budget : budgets) {
      core::SeeDBOptions options;
      options.optimizer = core::OptimizerOptions::Baseline();
      options.optimizer.combine_target_comparison = true;
      options.optimizer.combine_aggregates = true;
      options.optimizer.combine_group_bys = budget.combine;
      options.optimizer.memory_budget_bytes = budget.bytes;
      core::RecommendationSet result;
      double ms = bench::MedianSeconds([&] {
                    result = seedb_engine
                                 .Recommend(workload.table_name,
                                            workload.selection, options)
                                 .ValueOrDie();
                  }) *
                  1e3;
      std::printf("%6zu %22s %9zu %9zu %12.2f\n", dims, budget.name,
                  result.profile.queries_issued, result.profile.table_scans,
                  ms);
    }
  }
  std::printf("\nExpected shape: queries fall from #dims (off) toward 1 "
              "(unlimited); tight budgets sit in between.\n");

  // Exact-vs-FFD packer quality on a transparent instance.
  std::printf("\nBin-packing solver check (capacity 10, weights "
              "3,3,3,3,4,4,4,4,5,5):\n");
  std::vector<core::BinPackingItem> items;
  std::vector<uint64_t> weights = {3, 3, 3, 3, 4, 4, 4, 4, 5, 5};
  for (size_t i = 0; i < weights.size(); ++i) items.push_back({i, weights[i]});
  core::BinPackingOptions pack;
  pack.capacity = 10;
  auto ffd = core::FirstFitDecreasing(items, pack);
  auto exact = core::ExactBinPacking(items, pack);
  std::printf("  first-fit-decreasing: %zu bins; exact (ILP stand-in): %zu "
              "bins\n",
              ffd.num_bins(), exact.num_bins());
  bench::Footer();
}

void BM_GroupingSetsVsSeparate(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = static_cast<size_t>(state.range(0));
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  db::GroupingSetsQuery q;
  q.table = workload.table_name;
  for (int d = 0; d < state.range(0); ++d) {
    q.grouping_sets.push_back({"dim" + std::to_string(d)});
  }
  q.aggregates = {db::AggregateSpec::Make(db::AggregateFunction::kSum, "m0")};
  for (auto _ : state) {
    auto r = workload.engine->Execute(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroupingSetsVsSeparate)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
