// E8 — §3.3 "Parallel Query Execution": "as the number of queries executed
// in parallel increases, the total latency decreases at the cost of
// increased per query execution time."
//
// Runs the un-combined (many-query) plan at increasing parallelism and
// reports total latency plus mean per-query time.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/executor.h"
#include "core/seedb.h"
#include "core/view_space.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E8 (parallel query execution)",
                "total latency vs per-query latency",
                "more parallel queries lower total latency but raise "
                "per-query execution time");

  data::WorkloadSpec spec;
  spec.rows = 150000;
  spec.num_dims = 6;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();

  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();
  const db::TableStats* stats =
      workload.catalog->GetStats(workload.table_name).ValueOrDie();
  auto views = core::EnumerateViews(table->schema());
  // Baseline plan = many small queries -> parallelism has room to help.
  auto plan = core::BuildExecutionPlan(views, workload.table_name,
                                       workload.selection, *stats,
                                       core::OptimizerOptions::Baseline())
                  .ValueOrDie();

  std::printf("plan: %zu queries over %zu views, %zu rows\n\n",
              plan.num_queries(), views.size(), workload.rows);
  std::printf("%9s %14s %18s %14s\n", "threads", "total(ms)",
              "mean/query(ms)", "max/query(ms)");
  for (size_t threads : {1, 2, 4, 8}) {
    core::ExecutorOptions exec;
    exec.parallelism = threads;
    core::ExecutionReport report;
    double ms =
        bench::MedianSeconds(
            [&] {
              auto results = core::ExecutePlan(
                  workload.engine.get(), plan,
                  core::DistanceMetric::kEarthMovers, exec, &report);
              (void)results.ValueOrDie();
            },
            2) *
        1e3;
    std::printf("%9zu %14.2f %18.4f %14.4f\n", threads, ms,
                report.MeanQuerySeconds() * 1e3,
                report.MaxQuerySeconds() * 1e3);
  }
  std::printf("\nExpected shape: total latency falls with threads (up to "
              "core count); mean per-query time rises with contention.\n");
  bench::Footer();
}

void BM_ParallelPlan(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 4;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();
  const db::TableStats* stats =
      workload.catalog->GetStats(workload.table_name).ValueOrDie();
  auto views = core::EnumerateViews(table->schema());
  auto plan = core::BuildExecutionPlan(views, workload.table_name,
                                       workload.selection, *stats,
                                       core::OptimizerOptions::Baseline())
                  .ValueOrDie();
  core::ExecutorOptions exec;
  exec.parallelism = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = core::ExecutePlan(workload.engine.get(), plan,
                               core::DistanceMetric::kEarthMovers, exec);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParallelPlan)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
