// E8 — §3.3 "Parallel Query Execution": "as the number of queries executed
// in parallel increases, the total latency decreases at the cost of
// increased per query execution time."
//
// Runs the un-combined (many-query) plan at increasing parallelism under
// both execution strategies:
//   per-query   — inter-query parallelism, each query its own table pass;
//   shared-scan — the whole plan fused into ONE morsel-driven pass, with
//                 intra-scan parallelism (db/shared_scan.h).
// Emits machine-readable results to BENCH_parallel.json so CI can track the
// perf trajectory across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/executor.h"
#include "core/seedb.h"
#include "core/view_space.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E8 (parallel query execution)",
                "per-query vs shared-scan execution at rising thread counts",
                "more parallel queries lower total latency but raise "
                "per-query execution time; the fused shared scan lowers both "
                "by scanning once");

  data::WorkloadSpec spec;
  spec.rows = 150000;
  spec.num_dims = 6;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();

  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();
  const db::TableStats* stats =
      workload.catalog->GetStats(workload.table_name).ValueOrDie();
  auto views = core::EnumerateViews(table->schema());
  // Baseline plan = many small queries -> parallelism has room to help and
  // the shared scan has the most passes to fuse.
  auto plan = core::BuildExecutionPlan(views, workload.table_name,
                                       workload.selection, *stats,
                                       core::OptimizerOptions::Baseline())
                  .ValueOrDie();

  std::printf("plan: %zu queries over %zu views, %zu rows\n\n",
              plan.num_queries(), views.size(), workload.rows);
  std::printf("%20s %9s %8s %14s %8s %18s\n", "strategy", "threads", "phases",
              "total(ms)", "scans", "mean/unit(ms)");

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value("parallel")
      .Key("rows").Value(workload.rows)
      .Key("views").Value(views.size())
      .Key("plan_queries").Value(plan.num_queries())
      .Key("runs").BeginArray();

  // One measured configuration. Under kPerQuery the per-unit latency is the
  // mean query time (the paper's "per query execution time" side of the
  // trade-off); under the fused strategies queries share the pass, so the
  // honest unit is the phase.
  auto run_config = [&](core::ExecutionStrategy strategy, size_t threads,
                        size_t phases) {
    core::ExecutorOptions exec;
    exec.parallelism = threads;
    exec.strategy = strategy;
    exec.online_pruning.num_phases = phases;
    core::ExecutionReport report;
    workload.engine->ResetStats();
    double ms =
        bench::MedianSeconds(
            [&] {
              auto results = core::ExecutePlan(
                  workload.engine.get(), plan,
                  core::DistanceMetric::kEarthMovers, exec, &report);
              (void)results.ValueOrDie();
            },
            2) *
        1e3;
    db::EngineStatsSnapshot engine_stats = workload.engine->stats();
    // MedianSeconds ran the plan twice; scans per run is the half.
    uint64_t scans_per_run = engine_stats.table_scans / 2;
    bool fused = strategy != core::ExecutionStrategy::kPerQuery;
    double unit_ms = (fused ? report.MeanPhaseSeconds()
                            : report.MeanQuerySeconds()) *
                     1e3;
    std::printf("%20s %9zu %8zu %14.2f %8llu %18.4f\n",
                core::ExecutionStrategyToString(strategy), threads,
                report.phases_executed, ms,
                static_cast<unsigned long long>(scans_per_run), unit_ms);
    json.BeginObject()
        .Key("strategy").Value(core::ExecutionStrategyToString(strategy))
        .Key("threads").Value(threads)
        .Key("phases").Value(report.phases_executed)
        .Key("total_ms").Value(ms)
        .Key("mean_unit_ms").Value(unit_ms)
        .Key("table_scans").Value(scans_per_run)
        .EndObject();
  };

  for (core::ExecutionStrategy strategy :
       {core::ExecutionStrategy::kPerQuery,
        core::ExecutionStrategy::kSharedScan}) {
    for (size_t threads : {1, 2, 4, 8}) {
      run_config(strategy, threads, 1);
    }
  }
  // Phase-count sweep for the phased scan (no pruner: this isolates the
  // per-phase merge/estimate overhead the online pruners must amortize).
  for (size_t phases : {1, 2, 4, 8, 16}) {
    run_config(core::ExecutionStrategy::kPhasedSharedScan, 4, phases);
  }
  json.EndArray().EndObject();
  json.WriteFile("BENCH_parallel.json");

  std::printf("\nExpected shape: per-query total latency falls with threads "
              "while per-query time rises; shared-scan runs 1 scan total and "
              "beats per-query at every thread count, widening with cores; "
              "phased totals grow only mildly with phase count (merge + "
              "estimate overhead per boundary).\n");
  bench::Footer();
}

void BM_ParallelPlan(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 4;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const db::Table* table =
      workload.catalog->GetTable(workload.table_name).ValueOrDie();
  const db::TableStats* stats =
      workload.catalog->GetStats(workload.table_name).ValueOrDie();
  auto views = core::EnumerateViews(table->schema());
  auto plan = core::BuildExecutionPlan(views, workload.table_name,
                                       workload.selection, *stats,
                                       core::OptimizerOptions::Baseline())
                  .ValueOrDie();
  core::ExecutorOptions exec;
  exec.parallelism = static_cast<size_t>(state.range(0));
  exec.strategy = state.range(1) ? core::ExecutionStrategy::kSharedScan
                                 : core::ExecutionStrategy::kPerQuery;
  for (auto _ : state) {
    auto r = core::ExecutePlan(workload.engine.get(), plan,
                               core::DistanceMetric::kEarthMovers, exec);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParallelPlan)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1});

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
