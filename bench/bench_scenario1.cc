// E10 — §4 Scenario 1 ("Demonstrating Utility"): on the three "real-world"
// demo datasets, SeeDB should "reproduce known information about these
// queries" — every planted trend's view must surface near the top, with low
// latency, and the contrast "bad views" must score far lower.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/elections.h"
#include "data/medical.h"
#include "data/store_orders.h"

namespace {

using namespace seedb;  // NOLINT

void RunDataset(data::DemoDataset dataset) {
  db::Catalog catalog;
  std::string table = dataset.table_name;
  (void)catalog.AddTable(table, std::move(dataset.table));
  db::Engine engine(&catalog);
  core::SeeDB seedb_engine(&engine);

  std::printf("dataset '%s' (%zu known trends)\n", table.c_str(),
              dataset.trends.size());
  std::printf("  %-52s %6s %10s %10s %12s\n", "trend", "rank", "top_util",
              "bad_util", "latency(ms)");
  for (const auto& trend : dataset.trends) {
    core::SeeDBOptions options;
    options.k = 10;
    options.bottom_k = 1;
    options.parallelism = 4;
    core::RecommendationSet result;
    double ms = bench::MedianSeconds(
                    [&] {
                      result = seedb_engine
                                   .RecommendSql(trend.query_sql, options)
                                   .ValueOrDie();
                    },
                    2) *
                1e3;
    size_t rank = bench::RankOf(result, trend.expected_dimension,
                                trend.expected_measure);
    double bad = result.low_utility_views.empty()
                     ? 0.0
                     : result.low_utility_views[0].utility();
    std::printf("  %-52.52s %6zu %10.4f %10.4f %12.2f\n",
                trend.description.c_str(), rank,
                result.top_views[0].utility(), bad, ms);
  }
  std::printf("\n");
}

void RunExperiment() {
  bench::Banner("E10 (Scenario 1: utility)",
                "planted trends recovered on the three demo datasets",
                "SeeDB re-identifies known-interesting trends (rank should "
                "be in 1..10, nonzero) and 'bad views' score far lower");
  RunDataset(data::MakeStoreOrders({.rows = 20000, .seed = 7}).ValueOrDie());
  RunDataset(data::MakeElections({.rows = 30000, .seed = 11}).ValueOrDie());
  RunDataset(
      data::MakeMedical({.rows = 40000, .extra_flag_dims = 6, .seed = 13})
          .ValueOrDie());
  std::printf("Expected shape: every trend rank in 1..10; top utility >> bad "
              "utility.\n");
  bench::Footer();
}

void BM_StoreOrdersRecommend(benchmark::State& state) {
  auto dataset =
      data::MakeStoreOrders({.rows = 20000, .seed = 7}).ValueOrDie();
  db::Catalog catalog;
  (void)catalog.AddTable("orders", std::move(dataset.table));
  db::Engine engine(&catalog);
  core::SeeDB seedb_engine(&engine);
  for (auto _ : state) {
    auto r = seedb_engine.RecommendSql(
        "SELECT * FROM orders WHERE category = 'Furniture'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StoreOrdersRecommend);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
