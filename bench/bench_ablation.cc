// E12 — Full optimizer ablation: every combination of the three §3.3
// query-combining optimizations (2^3 grid), plus sampling stacked on top of
// the best configuration. DESIGN.md calls this out as the design-choice
// ablation for the optimizer.
//
// Utilities must be bit-identical across the grid (the optimizations are
// pure cost transformations); queries/scans/latency must fall as sharing
// increases.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E12 (optimizer ablation)",
                "2^3 grid over {combine-T/C, combine-agg, combine-group-by}",
                "each optimization independently reduces cost and never "
                "changes any view's utility");

  data::WorkloadSpec spec;
  spec.rows = 80000;
  spec.num_dims = 6;
  spec.num_measures = 2;
  spec.cardinality = 16;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb_engine(workload.engine.get());

  // Reference top view from the baseline.
  core::SeeDBOptions reference;
  reference.optimizer = core::OptimizerOptions::Baseline();
  auto ref = seedb_engine
                 .Recommend(workload.table_name, workload.selection,
                            reference)
                 .ValueOrDie();
  std::string ref_top = ref.top_views[0].view().Id();
  double ref_utility = ref.top_views[0].utility();

  std::printf("%4s %4s %4s %9s %7s %13s %12s %10s\n", "t/c", "agg", "gby",
              "queries", "scans", "rows_scanned", "latency(ms)",
              "same_util");
  for (int mask = 0; mask < 8; ++mask) {
    core::SeeDBOptions options;
    options.optimizer = core::OptimizerOptions::Baseline();
    options.optimizer.combine_target_comparison = mask & 1;
    options.optimizer.combine_aggregates = mask & 2;
    options.optimizer.combine_group_bys = mask & 4;
    core::RecommendationSet result;
    double ms = bench::MedianSeconds(
                    [&] {
                      result = seedb_engine
                                   .Recommend(workload.table_name,
                                              workload.selection, options)
                                   .ValueOrDie();
                    },
                    2) *
                1e3;
    bool same = result.top_views[0].view().Id() == ref_top &&
                std::abs(result.top_views[0].utility() - ref_utility) < 1e-9;
    std::printf("%4s %4s %4s %9zu %7zu %13llu %12.2f %10s\n",
                (mask & 1) ? "on" : "off", (mask & 2) ? "on" : "off",
                (mask & 4) ? "on" : "off", result.profile.queries_issued,
                result.profile.table_scans,
                static_cast<unsigned long long>(result.profile.rows_scanned),
                ms, same ? "yes" : "NO");
  }

  // Sampling stacked on the full configuration.
  std::printf("\nall-on + sampling:\n%10s %12s %13s\n", "fraction",
              "latency(ms)", "rows_scanned");
  for (double fraction : {1.0, 0.1, 0.01}) {
    core::SeeDBOptions options;
    options.optimizer = core::OptimizerOptions::All();
    options.optimizer.sample_fraction = fraction;
    core::RecommendationSet result;
    double ms = bench::MedianSeconds(
                    [&] {
                      result = seedb_engine
                                   .Recommend(workload.table_name,
                                              workload.selection, options)
                                   .ValueOrDie();
                    },
                    2) *
                1e3;
    std::printf("%10.2f %12.2f %13llu\n", fraction, ms,
                static_cast<unsigned long long>(
                    result.profile.rows_scanned));
  }
  // Execution strategy stacked on both ends of the grid: the shared scan
  // fuses whatever the optimizer emits into one pass, so even the
  // fully-combined plan cannot out-scan it.
  std::printf("\nexecution strategy (4 worker threads):\n"
              "%10s %12s %12s %7s %10s\n", "plan", "strategy", "latency(ms)",
              "scans", "same_util");
  for (bool all_on : {false, true}) {
    for (core::ExecutionStrategy strategy :
         {core::ExecutionStrategy::kPerQuery,
          core::ExecutionStrategy::kSharedScan}) {
      core::SeeDBOptions options;
      options.optimizer = all_on ? core::OptimizerOptions::All()
                                 : core::OptimizerOptions::Baseline();
      options.strategy = strategy;
      options.parallelism = 4;
      core::RecommendationSet result;
      double ms = bench::MedianSeconds(
                      [&] {
                        result = seedb_engine
                                     .Recommend(workload.table_name,
                                                workload.selection, options)
                                     .ValueOrDie();
                      },
                      2) *
                  1e3;
      bool same = result.top_views[0].view().Id() == ref_top &&
                  std::abs(result.top_views[0].utility() - ref_utility) < 1e-9;
      std::printf("%10s %12s %12.2f %7zu %10s\n",
                  all_on ? "all-on" : "baseline",
                  core::ExecutionStrategyToString(strategy), ms,
                  result.profile.table_scans, same ? "yes" : "NO");
    }
  }

  std::printf("\nExpected shape: queries fall 2x with t/c, further with agg "
              "and gby (down to 1); same_util = yes on every row; shared-scan "
              "records 1 scan for either plan.\n");
  bench::Footer();
}

void BM_FullyOptimized(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 6;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb_engine(workload.engine.get());
  core::SeeDBOptions options;
  options.optimizer = core::OptimizerOptions::All();
  for (auto _ : state) {
    auto r = seedb_engine.Recommend(workload.table_name, workload.selection,
                                    options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullyOptimized);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
