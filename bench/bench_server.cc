// E13 — the serving layer: sessions/sec and per-`next` latency of the
// recommendation server (src/server) under rising client concurrency,
// plus the protocol-v2 connection sweep: 64/256/1k concurrent push
// sessions on one epoll loop, with p50/p99 frame-DELIVERY latency (client
// receive time minus the server's ts_us send stamp — both on the same
// steady clock, server in-process).
//
// SeeDB was built as middleware that clients query interactively (§5); the
// question for the serving loop is what the wire + registry add on top of
// the engine: how many full open -> next* -> finish sessions per second one
// server sustains, what a single `next` round-trip costs at p50/p99
// while N clients hammer the same Engine, and whether push-frame delivery
// stays flat as connections scale past what thread-per-connection could
// hold. Emits BENCH_server.json so CI tracks the trajectory (advisory diff
// in tools/perf_gate.py).

#include <benchmark/benchmark.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/workload.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace {

using namespace seedb;  // NOLINT

double PercentileMs(std::vector<double>* seconds, double p) {
  if (seconds->empty()) return 0.0;
  std::sort(seconds->begin(), seconds->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(seconds->size()));
  idx = std::min(idx, seconds->size() - 1);
  return (*seconds)[idx] * 1e3;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One connection of the sweep: a raw fd so a single poll() thread can
/// multiplex a thousand of them (mirroring how the server itself works).
struct SweepConn {
  int fd = -1;
  std::string rbuf;
  bool done = false;
};

/// E13b — the connection sweep. N unix-socket connections, each holding ONE
/// server-driven push session; a single poll() loop consumes every frame
/// and samples delivery latency = NowUs() - frame.ts_us.
void RunConnectionSweep(bench::JsonWriter* json) {
  std::printf("\n-- connection sweep: v2 push sessions on one epoll loop --\n");
  data::WorkloadSpec spec;
  spec.rows = 4000;
  spec.num_dims = 3;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const std::string socket_path =
      "/tmp/seedb_bench_sweep_" + std::to_string(::getpid()) + ".sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  server::RecommendationServer srv(workload.engine.get(), options);
  if (!srv.Start().ok()) {
    std::printf("cannot start sweep server\n");
    return;
  }

  constexpr size_t kPhases = 2;
  std::printf("table: %zu rows; 1 session x %zu phases per connection\n\n",
              workload.rows, kPhases);
  std::printf("%10s %10s %10s %14s %13s %13s\n", "sessions", "frames",
              "wall(ms)", "sessions/sec", "frame p50(ms)", "frame p99(ms)");

  json->Key("sweep").BeginArray();
  for (size_t n : {64, 256, 1000}) {
    std::vector<SweepConn> conns(n);
    std::vector<double> frame_seconds;
    frame_seconds.reserve(n * (kPhases + 1));
    size_t failures = 0;
    size_t negative_frames = 0;
    Stopwatch wall;
    for (size_t i = 0; i < n; ++i) {
      int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) != 0) {
        if (fd >= 0) ::close(fd);
        ++failures;
        continue;
      }
      // Handshake + open in one write; the server strand preserves order.
      const std::string requests =
          "{\"op\":\"hello\",\"version\":2,\"capabilities\":[\"push\"]}\n"
          "{\"op\":\"open\",\"id\":\"sweep-" + std::to_string(i) +
          "\",\"table\":\"" + workload.table_name +
          "\",\"k\":3,\"phases\":" + std::to_string(kPhases) +
          ",\"strategy\":\"phased-shared-scan\"}\n";
      if (::send(fd, requests.data(), requests.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(requests.size())) {
        ::close(fd);
        ++failures;
        continue;
      }
      conns[i].fd = fd;
    }

    size_t open_conns = 0;
    for (const SweepConn& conn : conns) {
      if (conn.fd >= 0) ++open_conns;
    }
    const int64_t deadline_us = NowUs() + 300 * 1000 * 1000;  // 300s cap
    std::vector<pollfd> pfds;
    while (open_conns > 0 && NowUs() < deadline_us) {
      pfds.clear();
      for (const SweepConn& conn : conns) {
        if (conn.fd >= 0 && !conn.done) {
          pfds.push_back(pollfd{conn.fd, POLLIN, 0});
        }
      }
      if (pfds.empty()) break;
      if (::poll(pfds.data(), pfds.size(), 1000) <= 0) continue;
      for (const pollfd& pfd : pfds) {
        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        SweepConn* conn = nullptr;
        for (SweepConn& candidate : conns) {
          if (candidate.fd == pfd.fd) {
            conn = &candidate;
            break;
          }
        }
        if (conn == nullptr) continue;
        char chunk[16384];
        ssize_t got = ::read(conn->fd, chunk, sizeof(chunk));
        if (got <= 0) {  // peer closed or error: drop the connection
          ::close(conn->fd);
          conn->fd = -1;
          conn->done = true;
          --open_conns;
          ++failures;
          continue;
        }
        const int64_t recv_us = NowUs();
        conn->rbuf.append(chunk, static_cast<size_t>(got));
        size_t start = 0;
        for (size_t end = conn->rbuf.find('\n'); end != std::string::npos;
             end = conn->rbuf.find('\n', start)) {
          auto frame = server::ParseJson(
              conn->rbuf.substr(start, end - start));
          start = end + 1;
          if (!frame.ok()) {
            ++failures;
            continue;
          }
          const std::string type = frame->GetString("type");
          if (frame->GetBool("push")) {
            const int64_t sent_us = frame->GetInt("ts_us");
            // ts_us and recv_us share one steady-clock base (server is
            // in-process), so a negative delta is a measurement artifact —
            // a frame stamped after this read() batch was captured. Skip
            // the sample rather than poisoning the percentiles.
            if (sent_us > 0 && recv_us < sent_us) {
              ++negative_frames;
            } else if (sent_us > 0) {
              frame_seconds.push_back(
                  static_cast<double>(recv_us - sent_us) / 1e6);
            }
            if (type == "drained") {
              const std::string finish =
                  "{\"op\":\"finish\",\"id\":\"" +
                  frame->GetString("id") + "\"}\n";
              if (::send(conn->fd, finish.data(), finish.size(),
                         MSG_NOSIGNAL) !=
                  static_cast<ssize_t>(finish.size())) {
                ++failures;
              }
            }
          } else if (type == "result" || !frame->GetBool("ok")) {
            if (!frame->GetBool("ok")) ++failures;
            ::close(conn->fd);
            conn->fd = -1;
            conn->done = true;
            --open_conns;
            break;  // rbuf dies with the connection
          }
        }
        if (conn->fd >= 0) conn->rbuf.erase(0, start);
      }
    }
    for (SweepConn& conn : conns) {
      if (conn.fd >= 0) {
        ::close(conn.fd);
        ++failures;
      }
    }
    const double wall_ms = wall.ElapsedSeconds() * 1e3;
    if (failures > 0) {
      std::printf("%10zu  FAILED (%zu errors)\n", n, failures);
      continue;
    }
    const double sessions_per_sec =
        static_cast<double>(n) / (wall_ms / 1e3);
    const size_t frames = frame_seconds.size();
    const double p50 = PercentileMs(&frame_seconds, 0.50);
    const double p99 = PercentileMs(&frame_seconds, 0.99);
    std::printf("%10zu %10zu %10.1f %14.1f %13.3f %13.3f\n", n, frames,
                wall_ms, sessions_per_sec, p50, p99);
    if (negative_frames > 0) {
      std::printf("warning: %zu negative-latency frame samples skipped\n",
                  negative_frames);
    }
    json->BeginObject()
        .Key("transport").Value("unix")
        .Key("sessions").Value(n)
        .Key("phases").Value(kPhases)
        .Key("frames").Value(frames)
        .Key("negative_frames").Value(negative_frames)
        .Key("wall_ms").Value(wall_ms)
        .Key("sessions_per_sec").Value(sessions_per_sec)
        .Key("frame_p50_ms").Value(p50)
        .Key("frame_p99_ms").Value(p99)
        .EndObject();
  }
  json->EndArray();

  // Server-side view of the same sweep: the obs registry's request-latency
  // histograms, measured where the work happened (no socket hop). perf_gate
  // diffs these advisorily against the baseline artifact.
  {
    auto metrics_client = server::Client::ConnectUnix(socket_path);
    if (metrics_client.ok()) {
      auto metrics = metrics_client->Metrics();
      if (metrics.ok()) {
        json->Key("server_metrics").BeginObject();
        const server::JsonValue* hists = metrics->Find("histograms");
        if (hists != nullptr) {
          for (const auto& [name, hist] : hists->members()) {
            json->Key(name).BeginObject()
                .Key("count").Value(hist.GetInt("count"))
                .Key("p50_us").Value(hist.GetInt("p50_us"))
                .Key("p95_us").Value(hist.GetInt("p95_us"))
                .Key("p99_us").Value(hist.GetInt("p99_us"))
                .EndObject();
          }
        }
        json->EndObject();
      }
    }
  }
  srv.Stop();
  std::printf("\nExpected shape: delivery latency is the outbox + socket "
              "hop, so p50 stays near-flat with connection count; p99 "
              "tracks event-loop batching under load, not session count — "
              "the epoll loop holds 1k subscribed sessions without "
              "thread-per-connection cost.\n");
}

/// E13c — the result-cache scenario: a zipfian near-duplicate request mix
/// (interactive analysts keep re-asking the popular questions) against two
/// otherwise identical servers, one with the partial-aggregate cache off
/// and one with it on. Reports sessions/sec for both, the speedup, the
/// warm server's cache counters, and whether every session's final ranking
/// was bit-identical across the two servers (it must be — the cache adopts
/// merged state, it never recomputes).
void RunResultCacheScenario(bench::JsonWriter* json) {
  std::printf("\n-- result cache: zipfian near-duplicate requests --\n");
  // Big enough that a cold session is scan-dominated (the protocol's fixed
  // per-session round-trips would otherwise cap the visible speedup), with
  // few enough phases that polling overhead stays small.
  constexpr size_t kSessions = 40;
  constexpr size_t kPoolSize = 8;
  constexpr size_t kPhases = 2;

  // Deterministic zipf-ish draw over the query pool: weight 1/(rank+1).
  std::vector<size_t> draws;
  draws.reserve(kSessions);
  {
    std::minstd_rand rng(42);
    std::vector<double> weights(kPoolSize);
    for (size_t r = 0; r < kPoolSize; ++r) {
      weights[r] = 1.0 / static_cast<double>(r + 1);
    }
    std::discrete_distribution<size_t> zipf(weights.begin(), weights.end());
    for (size_t s = 0; s < kSessions; ++s) draws.push_back(zipf(rng));
  }
  std::vector<bool> seen(kPoolSize, false);
  size_t repeats = 0;
  for (size_t d : draws) {
    if (seen[d]) ++repeats;
    seen[d] = true;
  }
  const double overlap =
      static_cast<double>(repeats) / static_cast<double>(kSessions);

  // One run against a freshly built server; identical WorkloadSpec seeds
  // mean both servers answer over byte-identical tables.
  struct ScenarioResult {
    double wall_ms = 0.0;
    std::vector<std::string> signatures;  // per-session final-ranking pin
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    bool failed = false;
  };
  auto run_against = [&](bool cache_on) {
    ScenarioResult out;
    data::WorkloadSpec spec;
    spec.rows = 960000;
    spec.num_dims = 4;
    spec.num_measures = 2;
    auto workload = data::BuildWorkload(spec).ValueOrDie();
    if (cache_on) {
      workload.engine->EnableResultCache(64ull * 1024 * 1024);
    }
    const std::string socket_path = "/tmp/seedb_bench_cache_" +
                                    std::to_string(::getpid()) +
                                    (cache_on ? "_warm" : "_cold") + ".sock";
    server::ServerOptions options;
    options.unix_path = socket_path;
    server::RecommendationServer srv(workload.engine.get(), options);
    if (!srv.Start().ok()) {
      out.failed = true;
      return out;
    }
    auto client = server::Client::ConnectUnix(socket_path);
    if (!client.ok()) {
      out.failed = true;
      srv.Stop();
      return out;
    }
    // Parallelism 1: deterministic merges, so the bit-identity comparison
    // below is exact double equality, not tolerance.
    Stopwatch wall;
    for (size_t s = 0; s < kSessions && !out.failed; ++s) {
      server::OpenSpec open_spec;
      open_spec.sql = "SELECT * FROM " + workload.table_name +
                      " WHERE dim0 = 'dim0_v" + std::to_string(draws[s]) +
                      "'";
      open_spec.k = 3;
      open_spec.phases = kPhases;
      open_spec.strategy = "phased-shared-scan";
      open_spec.parallelism = 1;
      const std::string id = "zipf-" + std::to_string(s);
      if (!client->Open(id, open_spec).ok()) {
        out.failed = true;
        break;
      }
      while (true) {
        auto progress = client->Next(id);
        if (!progress.ok()) {
          out.failed = true;
          break;
        }
        if (!progress->has_value()) break;
      }
      auto result = client->Finish(id);
      if (!result.ok()) {
        out.failed = true;
        break;
      }
      std::string signature;
      for (const server::RemoteRecommendation& rec : result->top) {
        char line[256];
        std::snprintf(line, sizeof(line), "%zu:%s:%.17g;", rec.rank,
                      rec.view_id.c_str(), rec.utility);
        signature += line;
      }
      out.signatures.push_back(std::move(signature));
    }
    out.wall_ms = wall.ElapsedSeconds() * 1e3;
    if (auto status = client->GetStatus(); status.ok()) {
      out.cache_hits = status->cache_hits;
      out.cache_misses = status->cache_misses;
    }
    srv.Stop();
    return out;
  };

  ScenarioResult cold = run_against(/*cache_on=*/false);
  ScenarioResult warm = run_against(/*cache_on=*/true);
  if (cold.failed || warm.failed) {
    std::printf("result-cache scenario FAILED\n");
    return;
  }
  const bool bit_identical = cold.signatures == warm.signatures;
  const double cold_sps =
      static_cast<double>(kSessions) / (cold.wall_ms / 1e3);
  const double warm_sps =
      static_cast<double>(kSessions) / (warm.wall_ms / 1e3);
  const double speedup = cold.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms
                                            : 0.0;
  std::printf("%zu sessions, pool %zu, overlap %.0f%%: cold %.1f "
              "sessions/sec, warm %.1f sessions/sec (%.1fx); warm cache "
              "%llu hits / %llu misses; results %s\n",
              kSessions, kPoolSize, overlap * 100.0, cold_sps, warm_sps,
              speedup, static_cast<unsigned long long>(warm.cache_hits),
              static_cast<unsigned long long>(warm.cache_misses),
              bit_identical ? "bit-identical" : "DIVERGED");

  json->Key("result_cache").BeginObject()
      .Key("sessions").Value(kSessions)
      .Key("pool").Value(kPoolSize)
      .Key("phases").Value(kPhases)
      .Key("overlap").Value(overlap)
      .Key("cold_wall_ms").Value(cold.wall_ms)
      .Key("warm_wall_ms").Value(warm.wall_ms)
      .Key("cold_sessions_per_sec").Value(cold_sps)
      .Key("warm_sessions_per_sec").Value(warm_sps)
      .Key("speedup").Value(speedup)
      .Key("cache_hits").Value(warm.cache_hits)
      .Key("cache_misses").Value(warm.cache_misses)
      .Key("bit_identical").Value(bit_identical)
      .EndObject();
}

void RunExperiment() {
  bench::Banner(
      "E13 (serving layer)",
      "wire-protocol session throughput and next-latency vs client count",
      "the middleware deployment (§5): one engine serves many interactive "
      "clients; the serving loop should add protocol overhead, not "
      "serialization — throughput grows with clients until cores saturate");

  data::WorkloadSpec spec;
  spec.rows = 30000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();

  const std::string socket_path =
      "/tmp/seedb_bench_server_" + std::to_string(::getpid()) + ".sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  server::RecommendationServer srv(workload.engine.get(), options);
  auto started = srv.Start();
  if (!started.ok()) {
    std::printf("cannot start server: %s\n", started.ToString().c_str());
    return;
  }

  constexpr size_t kPhases = 4;
  constexpr size_t kSessionsPerClient = 6;
  // The analyst query all sessions run (the workload's planted deviation).
  server::OpenSpec open_spec;
  open_spec.table = workload.table_name;
  open_spec.k = 3;
  open_spec.phases = kPhases;
  open_spec.strategy = "phased-shared-scan";

  std::printf("table: %zu rows; %zu sessions x %zu phases per config\n\n",
              workload.rows, kSessionsPerClient, kPhases);
  std::printf("%10s %8s %10s %14s %12s %12s\n", "clients", "sessions",
              "total(ms)", "sessions/sec", "next p50(ms)", "next p99(ms)");

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value("server")
      .Key("rows").Value(workload.rows)
      .Key("sessions_per_client").Value(kSessionsPerClient)
      .Key("runs").BeginArray();

  for (size_t clients : {1, 2, 4, 8}) {
    std::vector<std::vector<double>> next_seconds(clients);
    std::atomic<size_t> failures{0};
    Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = server::Client::ConnectUnix(socket_path);
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t s = 0; s < kSessionsPerClient; ++s) {
          const std::string id =
              "bench-" + std::to_string(c) + "-" + std::to_string(s);
          if (!client->Open(id, open_spec).ok()) {
            failures.fetch_add(1);
            return;
          }
          while (true) {
            Stopwatch next_timer;
            auto progress = client->Next(id);
            if (!progress.ok()) {
              failures.fetch_add(1);
              return;
            }
            if (!progress->has_value()) break;
            next_seconds[c].push_back(next_timer.ElapsedSeconds());
          }
          if (!client->Finish(id).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double total_ms = wall.ElapsedSeconds() * 1e3;
    if (failures.load() > 0) {
      std::printf("%10zu  FAILED (%zu errors)\n", clients, failures.load());
      continue;
    }
    std::vector<double> all_next;
    for (auto& per_client : next_seconds) {
      all_next.insert(all_next.end(), per_client.begin(), per_client.end());
    }
    const size_t sessions = clients * kSessionsPerClient;
    const double sessions_per_sec =
        static_cast<double>(sessions) / (total_ms / 1e3);
    const double p50 = PercentileMs(&all_next, 0.50);
    const double p99 = PercentileMs(&all_next, 0.99);
    std::printf("%10zu %8zu %10.1f %14.1f %12.3f %12.3f\n", clients, sessions,
                total_ms, sessions_per_sec, p50, p99);
    json.BeginObject()
        .Key("transport").Value("unix")
        .Key("clients").Value(clients)
        .Key("phases").Value(kPhases)
        .Key("sessions").Value(sessions)
        .Key("total_ms").Value(total_ms)
        .Key("sessions_per_sec").Value(sessions_per_sec)
        .Key("next_p50_ms").Value(p50)
        .Key("next_p99_ms").Value(p99)
        .EndObject();
  }
  json.EndArray();
  srv.Stop();

  std::printf("\nExpected shape: p50 next-latency ~= one phase of the fused "
              "scan plus a socket round-trip; sessions/sec grows with "
              "clients while the engine has idle cores, then flattens — the "
              "registry itself never serializes distinct sessions.\n");

  RunConnectionSweep(&json);
  RunResultCacheScenario(&json);
  json.EndObject();
  json.WriteFile("BENCH_server.json");
  bench::Footer();
}

// Micro: one full session round-trip over the wire (open + drain + finish),
// single client — the protocol + registry overhead in isolation.
void BM_ServerSessionRoundTrip(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 10000;
  spec.num_dims = 3;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const std::string socket_path =
      "/tmp/seedb_bench_rt_" + std::to_string(::getpid()) + ".sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  server::RecommendationServer srv(workload.engine.get(), options);
  if (!srv.Start().ok()) {
    state.SkipWithError("cannot start server");
    return;
  }
  auto client = server::Client::ConnectUnix(socket_path);
  if (!client.ok()) {
    state.SkipWithError("cannot connect");
    return;
  }
  server::OpenSpec open_spec;
  open_spec.table = workload.table_name;
  open_spec.k = 2;
  open_spec.phases = 2;
  open_spec.strategy = "phased-shared-scan";
  size_t n = 0;
  for (auto _ : state) {
    const std::string id = "rt-" + std::to_string(n++);
    bool ok = client->Open(id, open_spec).ok();
    while (ok) {
      auto progress = client->Next(id);
      if (!progress.ok() || !progress->has_value()) break;
    }
    auto result = client->Finish(id);
    benchmark::DoNotOptimize(result);
  }
  srv.Stop();
}
BENCHMARK(BM_ServerSessionRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
