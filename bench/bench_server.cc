// E13 — the serving layer: sessions/sec and per-`next` latency of the
// recommendation server (src/server) under rising client concurrency.
//
// SeeDB was built as middleware that clients query interactively (§5); the
// question for the serving loop is what the wire + registry add on top of
// the engine: how many full open -> next* -> finish sessions per second one
// server sustains, and what a single `next` round-trip costs at p50/p99
// while N clients hammer the same Engine. Emits BENCH_server.json so CI
// tracks the trajectory (advisory diff in tools/perf_gate.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.h"
#include "data/workload.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace seedb;  // NOLINT

double PercentileMs(std::vector<double>* seconds, double p) {
  if (seconds->empty()) return 0.0;
  std::sort(seconds->begin(), seconds->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(seconds->size()));
  idx = std::min(idx, seconds->size() - 1);
  return (*seconds)[idx] * 1e3;
}

void RunExperiment() {
  bench::Banner(
      "E13 (serving layer)",
      "wire-protocol session throughput and next-latency vs client count",
      "the middleware deployment (§5): one engine serves many interactive "
      "clients; the serving loop should add protocol overhead, not "
      "serialization — throughput grows with clients until cores saturate");

  data::WorkloadSpec spec;
  spec.rows = 30000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();

  const std::string socket_path =
      "/tmp/seedb_bench_server_" + std::to_string(::getpid()) + ".sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  server::RecommendationServer srv(workload.engine.get(), options);
  auto started = srv.Start();
  if (!started.ok()) {
    std::printf("cannot start server: %s\n", started.ToString().c_str());
    return;
  }

  constexpr size_t kPhases = 4;
  constexpr size_t kSessionsPerClient = 6;
  // The analyst query all sessions run (the workload's planted deviation).
  server::OpenSpec open_spec;
  open_spec.table = workload.table_name;
  open_spec.k = 3;
  open_spec.phases = kPhases;
  open_spec.strategy = "phased-shared-scan";

  std::printf("table: %zu rows; %zu sessions x %zu phases per config\n\n",
              workload.rows, kSessionsPerClient, kPhases);
  std::printf("%10s %8s %10s %14s %12s %12s\n", "clients", "sessions",
              "total(ms)", "sessions/sec", "next p50(ms)", "next p99(ms)");

  bench::JsonWriter json;
  json.BeginObject()
      .Key("bench").Value("server")
      .Key("rows").Value(workload.rows)
      .Key("sessions_per_client").Value(kSessionsPerClient)
      .Key("runs").BeginArray();

  for (size_t clients : {1, 2, 4, 8}) {
    std::vector<std::vector<double>> next_seconds(clients);
    std::atomic<size_t> failures{0};
    Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = server::Client::ConnectUnix(socket_path);
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t s = 0; s < kSessionsPerClient; ++s) {
          const std::string id =
              "bench-" + std::to_string(c) + "-" + std::to_string(s);
          if (!client->Open(id, open_spec).ok()) {
            failures.fetch_add(1);
            return;
          }
          while (true) {
            Stopwatch next_timer;
            auto progress = client->Next(id);
            if (!progress.ok()) {
              failures.fetch_add(1);
              return;
            }
            if (!progress->has_value()) break;
            next_seconds[c].push_back(next_timer.ElapsedSeconds());
          }
          if (!client->Finish(id).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double total_ms = wall.ElapsedSeconds() * 1e3;
    if (failures.load() > 0) {
      std::printf("%10zu  FAILED (%zu errors)\n", clients, failures.load());
      continue;
    }
    std::vector<double> all_next;
    for (auto& per_client : next_seconds) {
      all_next.insert(all_next.end(), per_client.begin(), per_client.end());
    }
    const size_t sessions = clients * kSessionsPerClient;
    const double sessions_per_sec =
        static_cast<double>(sessions) / (total_ms / 1e3);
    const double p50 = PercentileMs(&all_next, 0.50);
    const double p99 = PercentileMs(&all_next, 0.99);
    std::printf("%10zu %8zu %10.1f %14.1f %12.3f %12.3f\n", clients, sessions,
                total_ms, sessions_per_sec, p50, p99);
    json.BeginObject()
        .Key("transport").Value("unix")
        .Key("clients").Value(clients)
        .Key("phases").Value(kPhases)
        .Key("sessions").Value(sessions)
        .Key("total_ms").Value(total_ms)
        .Key("sessions_per_sec").Value(sessions_per_sec)
        .Key("next_p50_ms").Value(p50)
        .Key("next_p99_ms").Value(p99)
        .EndObject();
  }
  json.EndArray().EndObject();
  json.WriteFile("BENCH_server.json");
  srv.Stop();

  std::printf("\nExpected shape: p50 next-latency ~= one phase of the fused "
              "scan plus a socket round-trip; sessions/sec grows with "
              "clients while the engine has idle cores, then flattens — the "
              "registry itself never serializes distinct sessions.\n");
  bench::Footer();
}

// Micro: one full session round-trip over the wire (open + drain + finish),
// single client — the protocol + registry overhead in isolation.
void BM_ServerSessionRoundTrip(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 10000;
  spec.num_dims = 3;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  const std::string socket_path =
      "/tmp/seedb_bench_rt_" + std::to_string(::getpid()) + ".sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  server::RecommendationServer srv(workload.engine.get(), options);
  if (!srv.Start().ok()) {
    state.SkipWithError("cannot start server");
    return;
  }
  auto client = server::Client::ConnectUnix(socket_path);
  if (!client.ok()) {
    state.SkipWithError("cannot connect");
    return;
  }
  server::OpenSpec open_spec;
  open_spec.table = workload.table_name;
  open_spec.k = 2;
  open_spec.phases = 2;
  open_spec.strategy = "phased-shared-scan";
  size_t n = 0;
  for (auto _ : state) {
    const std::string id = "rt-" + std::to_string(n++);
    bool ok = client->Open(id, open_spec).ok();
    while (ok) {
      auto progress = client->Next(id);
      if (!progress.ok() || !progress->has_value()) break;
    }
    auto result = client->Finish(id);
    benchmark::DoNotOptimize(result);
  }
  srv.Stop();
}
BENCHMARK(BM_ServerSessionRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
