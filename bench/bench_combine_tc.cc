// E4 — §3.3 "Combine target and comparison view query": "we can easily
// rewrite these two view queries as one. This simple optimization halves the
// time required to compute the results for a single view."
//
// Reports queries, scans, rows scanned, and latency with the optimization
// off/on; the scan count must halve exactly and latency should track it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

void RunExperiment() {
  bench::Banner("E4 (combine target+comparison)",
                "one conditional-aggregation scan instead of two queries",
                "combining the target and comparison view queries halves "
                "per-view work");

  std::printf("%8s %-10s %8s %8s %12s %12s\n", "rows", "mode", "queries",
              "scans", "rows_scan", "latency(ms)");
  for (size_t rows : {20000, 100000}) {
    data::WorkloadSpec spec;
    spec.rows = rows;
    spec.num_dims = 4;
    spec.num_measures = 2;
    auto workload = data::BuildWorkload(spec).ValueOrDie();
    core::SeeDB seedb_engine(workload.engine.get());

    for (bool combine : {false, true}) {
      core::SeeDBOptions options;
      options.optimizer = core::OptimizerOptions::Baseline();
      options.optimizer.combine_target_comparison = combine;
      workload.engine->ResetStats();
      core::RecommendationSet result;
      double ms = bench::MedianSeconds([&] {
                    workload.engine->ResetStats();
                    result = seedb_engine
                                 .Recommend(workload.table_name,
                                            workload.selection, options)
                                 .ValueOrDie();
                  }) *
                  1e3;
      std::printf("%8zu %-10s %8zu %8zu %12llu %12.2f\n", rows,
                  combine ? "combined" : "separate",
                  result.profile.queries_issued, result.profile.table_scans,
                  static_cast<unsigned long long>(
                      result.profile.rows_scanned),
                  ms);
    }
  }
  std::printf("\nExpected shape: combined mode shows exactly half the "
              "queries/scans and roughly half the latency.\n");
  bench::Footer();
}

void BM_SingleViewSeparate(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 2;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::ViewDescriptor view("dim1", "m0", db::AggregateFunction::kSum);
  for (auto _ : state) {
    auto t = workload.engine->Execute(
        core::TargetViewQuery(view, workload.table_name,
                              workload.selection));
    auto c = workload.engine->Execute(
        core::ComparisonViewQuery(view, workload.table_name));
    benchmark::DoNotOptimize(t);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SingleViewSeparate);

void BM_SingleViewCombined(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 50000;
  spec.num_dims = 2;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::ViewDescriptor view("dim1", "m0", db::AggregateFunction::kSum);
  for (auto _ : state) {
    auto r = workload.engine->Execute(core::CombinedViewQuery(
        view, workload.table_name, workload.selection));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SingleViewCombined);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
