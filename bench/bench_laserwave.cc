// E1 — Table 1 / Figures 1-3: the paper's §1 running example.
//
// Regenerates: Table 1 (total sales by store for the Laserwave), Figure 1
// (its visualization), and the Scenario A / Scenario B comparison (Figures
// 2-3): the same target view scored against an opposite-trend overall
// dataset (high utility) and a similar-trend one (low utility), under every
// supported distance metric.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/seedb.h"
#include "db/engine.h"
#include "viz/ascii_renderer.h"

namespace {

using namespace seedb;  // NOLINT

// Store sales data with a controllable overall trend. Laserwave rows exactly
// reproduce Table 1; "Other" product rows form the comparison trend.
db::Table BuildSales(bool similar_trend) {
  db::Schema schema({db::ColumnDef::Dimension("product"),
                     db::ColumnDef::Dimension("store"),
                     db::ColumnDef::Measure("amount")});
  db::Table t(schema);
  const char* stores[] = {"Cambridge, MA", "Seattle, WA", "New York, NY",
                          "San Francisco, CA"};
  const double laser[] = {180.55, 145.50, 122.00, 90.13};
  for (int s = 0; s < 4; ++s) {
    (void)t.AppendRow(
        {db::Value("Laserwave"), db::Value(stores[s]), db::Value(laser[s])});
  }
  // Scenario B ("similar") tracks the Laserwave trend with a few percent of
  // noise so its utility is small but not identically zero; Scenario A
  // ("opposite") reverses the store order.
  const double noise[] = {1.03, 0.97, 1.02, 0.98};
  for (int s = 0; s < 4; ++s) {
    double v = similar_trend ? laser[s] * 220.0 * noise[s]
                             : laser[3 - s] * 220.0;
    (void)t.AppendRow(
        {db::Value("Other"), db::Value(stores[s]), db::Value(v)});
  }
  return t;
}

core::RecommendationSet Recommend(bool similar_trend,
                                  core::DistanceMetric metric) {
  db::Catalog catalog;
  (void)catalog.AddTable("sales", BuildSales(similar_trend));
  db::Engine engine(&catalog);
  core::SeeDB seedb_engine(&engine);
  core::SeeDBOptions options;
  options.k = 10;
  options.metric = metric;
  return seedb_engine
      .RecommendSql("SELECT * FROM sales WHERE product = 'Laserwave'",
                    options)
      .ValueOrDie();
}

double StoreViewUtility(const core::RecommendationSet& set) {
  for (const auto& rec : set.top_views) {
    if (rec.view().dimension == "store" &&
        rec.view().func == db::AggregateFunction::kSum) {
      return rec.utility();
    }
  }
  return -1.0;
}

void RunExperiment() {
  bench::Banner("E1 (Table 1, Figures 1-3)", "Laserwave running example",
                "the Laserwave per-store view is interesting against an "
                "opposite overall trend (Scenario A) and uninteresting "
                "against a similar one (Scenario B)");

  // Table 1 reproduction.
  db::Catalog catalog;
  (void)catalog.AddTable("sales", BuildSales(/*similar_trend=*/false));
  db::Engine engine(&catalog);
  auto table1 = engine
                    .ExecuteSql("SELECT store, SUM(amount) FROM sales WHERE "
                                "product = 'Laserwave' GROUP BY store")
                    .ValueOrDie();
  std::printf("Table 1 — Data: Total Sales by Store for Laserwave\n%s\n",
              table1.ToString().c_str());

  // Figure 1 (+2): the recommended visualization, target vs comparison.
  core::RecommendationSet scenario_a =
      Recommend(false, core::DistanceMetric::kEarthMovers);
  for (const auto& rec : scenario_a.top_views) {
    if (rec.view().dimension == "store" &&
        rec.view().func == db::AggregateFunction::kSum) {
      std::printf("Figure 1/2 — Visualization (Scenario A):\n%s\n",
                  viz::RenderRecommendation(rec).c_str());
      break;
    }
  }

  // Scenario A vs B utilities per metric.
  std::printf("%-18s %14s %14s %10s\n", "metric", "utility(A)", "utility(B)",
              "A >> B?");
  for (core::DistanceMetric metric : core::AllDistanceMetrics()) {
    double a = StoreViewUtility(Recommend(false, metric));
    double b = StoreViewUtility(Recommend(true, metric));
    std::printf("%-18s %14.4f %14.4f %10s\n",
                core::DistanceMetricToString(metric), a, b,
                a > 2 * b ? "yes" : "NO");
  }
  bench::Footer();
}

void BM_LaserwaveRecommend(benchmark::State& state) {
  db::Catalog catalog;
  (void)catalog.AddTable("sales", BuildSales(false));
  db::Engine engine(&catalog);
  core::SeeDB seedb_engine(&engine);
  for (auto _ : state) {
    auto result = seedb_engine.RecommendSql(
        "SELECT * FROM sales WHERE product = 'Laserwave'");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LaserwaveRecommend);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
