// Shared helpers for the experiment benches (E1-E12 in DESIGN.md).
//
// Each bench binary prints a paper-shaped result table on stdout when run
// with no arguments (the repro harness runs every binary that way), then
// runs any registered google-benchmark micro sections.

#ifndef SEEDB_BENCH_BENCH_UTIL_H_
#define SEEDB_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/recommendation.h"
#include "core/seedb.h"
#include "util/timer.h"

namespace seedb::bench {

/// Prints the experiment banner: id, title, and the paper claim the table
/// reproduces.
inline void Banner(const char* experiment_id, const char* title,
                   const char* paper_claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper claim: %s\n", paper_claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Footer() {
  std::printf("==============================================================="
              "=================\n\n");
}

/// Lower-median wall time of `reps` runs of `fn`, in seconds (for 2 reps
/// this is the minimum — robust against one-off scheduling noise on the
/// shared benchmark machine).
inline double MedianSeconds(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[(times.size() - 1) / 2];
}

/// Ids of the top-k views of a recommendation set.
inline std::set<std::string> TopViewIds(const core::RecommendationSet& set) {
  std::set<std::string> ids;
  for (const auto& rec : set.top_views) ids.insert(rec.view().Id());
  return ids;
}

/// Fraction of `truth` ids present in `observed` (top-k recall).
inline double Recall(const std::set<std::string>& truth,
                     const std::set<std::string>& observed) {
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& id : truth) hit += observed.count(id);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

/// 1-based rank of the view (dimension, measure) in the top list; 0 if
/// absent.
inline size_t RankOf(const core::RecommendationSet& set,
                     const std::string& dimension,
                     const std::string& measure) {
  for (const auto& rec : set.top_views) {
    if (rec.view().dimension == dimension && rec.view().measure == measure) {
      return rec.rank;
    }
  }
  return 0;
}

}  // namespace seedb::bench

#endif  // SEEDB_BENCH_BENCH_UTIL_H_
