// Shared helpers for the experiment benches (E1-E12 in DESIGN.md).
//
// Each bench binary prints a paper-shaped result table on stdout when run
// with no arguments (the repro harness runs every binary that way), then
// runs any registered google-benchmark micro sections.

#ifndef SEEDB_BENCH_BENCH_UTIL_H_
#define SEEDB_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "core/recommendation.h"
#include "core/seedb.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seedb::bench {

/// Prints the experiment banner: id, title, and the paper claim the table
/// reproduces.
inline void Banner(const char* experiment_id, const char* title,
                   const char* paper_claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper claim: %s\n", paper_claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Footer() {
  std::printf("==============================================================="
              "=================\n\n");
}

/// Lower-median wall time of `reps` runs of `fn`, in seconds (for 2 reps
/// this is the minimum — robust against one-off scheduling noise on the
/// shared benchmark machine).
inline double MedianSeconds(const std::function<void()>& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[(times.size() - 1) / 2];
}

/// Ids of the top-k views of a recommendation set.
inline std::set<std::string> TopViewIds(const core::RecommendationSet& set) {
  std::set<std::string> ids;
  for (const auto& rec : set.top_views) ids.insert(rec.view().Id());
  return ids;
}

/// Fraction of `truth` ids present in `observed` (top-k recall).
inline double Recall(const std::set<std::string>& truth,
                     const std::set<std::string>& observed) {
  if (truth.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& id : truth) hit += observed.count(id);
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

/// 1-based rank of the view (dimension, measure) in the top list; 0 if
/// absent.
inline size_t RankOf(const core::RecommendationSet& set,
                     const std::string& dimension,
                     const std::string& measure) {
  for (const auto& rec : set.top_views) {
    if (rec.view().dimension == dimension && rec.view().measure == measure) {
      return rec.rank;
    }
  }
  return 0;
}

/// \brief Minimal streaming JSON writer for machine-readable bench results
/// (the BENCH_*.json artifacts CI tracks across PRs).
///
/// Handles comma placement; callers are responsible for well-formed nesting.
///   JsonWriter w;
///   w.BeginObject().Key("bench").Value("parallel").Key("runs").BeginArray();
///   ... w.EndArray().EndObject(); w.WriteFile("BENCH_parallel.json");
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& name) {
    MaybeComma();
    out_ += Quote(name) + ":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) { return Raw(Quote(v)); }
  JsonWriter& Value(const char* v) { return Raw(Quote(v)); }
  JsonWriter& Value(double v) { return Raw(FormatDouble(v, 6)); }
  JsonWriter& Value(bool v) { return Raw(v ? "true" : "false"); }
  /// Any integer type (int, size_t, uint64_t, ...) without overload
  /// ambiguity across platforms where size_t != uint64_t.
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonWriter& Value(T v) {
    return Raw(std::to_string(v));
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; prints a warning on failure (benches
  /// never fail the run over an artifact).
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  JsonWriter& Open(char c) {
    MaybeComma();
    out_ += c;
    need_comma_ = false;
    pending_value_ = false;
    return *this;
  }

  JsonWriter& Close(char c) {
    out_ += c;
    need_comma_ = true;
    return *this;
  }

  JsonWriter& Raw(const std::string& text) {
    MaybeComma();
    out_ += text;
    need_comma_ = true;
    pending_value_ = false;
    return *this;
  }

  void MaybeComma() {
    if (pending_value_) return;  // value directly follows its key
    if (need_comma_) out_ += ',';
    need_comma_ = false;
  }

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace seedb::bench

#endif  // SEEDB_BENCH_BENCH_UTIL_H_
