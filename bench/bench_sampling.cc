// E7 — §3.3 "Sampling": "we construct a sample of the dataset that can fit
// in memory and run all view queries against the sample. However ... the
// size of the sample [affects] view accuracy."
//
// Sweeps the Bernoulli sample fraction and reports latency, rows scanned,
// top-5 recall against the full-data ranking, and mean absolute utility
// error — the latency/accuracy trade-off the demo exposes as a knob.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/seedb.h"
#include "data/workload.h"

namespace {

using namespace seedb;  // NOLINT

std::map<std::string, double> AllUtilities(const core::RecommendationSet& r) {
  std::map<std::string, double> out;
  for (const auto& rec : r.top_views) out[rec.view().Id()] = rec.utility();
  return out;
}

void RunExperiment() {
  bench::Banner("E7 (sampling)",
                "sample fraction vs latency and accuracy",
                "sampling cuts latency roughly linearly while accuracy "
                "degrades gracefully until very small samples");

  data::WorkloadSpec spec;
  spec.rows = 200000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  spec.cardinality = 16;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  core::SeeDB seedb_engine(workload.engine.get());

  // Ground truth at fraction 1.0 (rank all views: k = 0 means all).
  core::SeeDBOptions truth_options;
  truth_options.k = 5;
  auto truth = seedb_engine
                   .Recommend(workload.table_name, workload.selection,
                              truth_options)
                   .ValueOrDie();
  auto truth_top = bench::TopViewIds(truth);
  core::SeeDBOptions full_options;
  full_options.k = 0;  // all views, for utility-error computation
  auto full = seedb_engine
                  .Recommend(workload.table_name, workload.selection,
                             full_options)
                  .ValueOrDie();
  auto full_utilities = AllUtilities(full);

  std::printf("%-13s %9s %12s %12s %10s %12s %6s\n", "strategy",
              "fraction", "latency(ms)", "rows_scan", "recall@5",
              "mean|dU|", "rank");
  auto report = [&](const char* strategy, double fraction,
                    const core::SeeDBOptions& options) {
    core::RecommendationSet result;
    double ms = bench::MedianSeconds([&] {
                  result = seedb_engine
                               .Recommend(workload.table_name,
                                          workload.selection, options)
                               .ValueOrDie();
                }) *
                1e3;
    // recall@5 against full-data top-5.
    std::set<std::string> top5;
    for (size_t i = 0; i < 5 && i < result.top_views.size(); ++i) {
      top5.insert(result.top_views[i].view().Id());
    }
    double err = 0.0;
    auto sampled = AllUtilities(result);
    for (const auto& [id, utility] : full_utilities) {
      err += std::abs(sampled.count(id) ? sampled[id] - utility : utility);
    }
    err /= static_cast<double>(full_utilities.size());
    std::printf("%-13s %9.2f %12.2f %12llu %10.2f %12.4f %6zu\n", strategy,
                fraction, ms,
                static_cast<unsigned long long>(result.profile.rows_scanned),
                bench::Recall(truth_top, top5), err,
                bench::RankOf(result, workload.expected_dimension,
                              workload.expected_measure));
  };

  for (double fraction : {1.0, 0.5, 0.2, 0.1, 0.05, 0.01}) {
    // Inline: TABLESAMPLE BERNOULLI per query. Rows are skipped, not
    // absent, so only aggregation work shrinks.
    core::SeeDBOptions inline_options;
    inline_options.k = 0;
    inline_options.optimizer.sample_fraction = fraction;
    inline_options.optimizer.sample_seed = 17;
    if (fraction < 1.0) {
      inline_options.sampling = core::SamplingStrategy::kInline;
    }
    report("inline", fraction, inline_options);

    // Materialized: the paper's strategy — every query runs against a
    // reservoir sample table of fraction*N rows.
    if (fraction < 1.0) {
      core::SeeDBOptions mat_options;
      mat_options.k = 0;
      mat_options.sampling = core::SamplingStrategy::kMaterialized;
      mat_options.sample_rows = static_cast<size_t>(
          fraction * static_cast<double>(workload.rows));
      mat_options.sample_seed = 17;
      report("materialized", fraction, mat_options);
    }
  }
  std::printf("\nExpected shape: materialized sampling's latency falls "
              "roughly with the fraction (queries touch only the sample); "
              "inline sampling mainly cuts aggregation work. Recall stays "
              "high and the planted view's rank small until tiny samples; "
              "utility error grows as the fraction shrinks.\n");
  bench::Footer();
}

void BM_SampledGroupBy(benchmark::State& state) {
  data::WorkloadSpec spec;
  spec.rows = 100000;
  spec.num_dims = 1;
  spec.num_measures = 1;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  db::GroupByQuery q;
  q.table = workload.table_name;
  q.group_by = {"dim0"};
  q.aggregates = {db::AggregateSpec::Make(db::AggregateFunction::kSum, "m0")};
  q.sample_fraction = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto r = workload.engine->Execute(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SampledGroupBy)->Arg(100)->Arg(10)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
