#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace seedb {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  Random rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);  // expectation 1000; crude uniformity check
    EXPECT_LT(c, 1200);
  }
}

TEST(RandomTest, UniformIntInclusiveRange) {
  Random rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(5);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfTest, SZeroIsUniformish) {
  ZipfDistribution zipf(5, 0.0);
  Random rng(1);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 25000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 4500);
    EXPECT_LT(c, 5500);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution zipf(10, 1.2);
  Random rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  // Rank 0 should take a plurality share under s=1.2.
  EXPECT_GT(counts[0], 50000 / 4);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(3, 2.0);
  Random rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 3u);
  }
}

}  // namespace
}  // namespace seedb
