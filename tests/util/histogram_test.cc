#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace seedb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);  // classic example, population var
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats rs;
  rs.Add(1.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 1.0);
  EXPECT_DOUBLE_EQ(rs.sample_variance(), 2.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.mean(), 5.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Random rng(21);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Gaussian(3.0, 2.0);
    whole.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(EquiWidthHistogramTest, BucketsCounts) {
  EquiWidthHistogram h(0.0, 10.0, 5);
  for (double v : {0.5, 1.5, 2.5, 2.7, 9.9}) h.Add(v);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.5, 1.5
  EXPECT_EQ(h.bucket(1), 2u);  // 2.5, 2.7
  EXPECT_EQ(h.bucket(4), 1u);  // 9.9
  EXPECT_EQ(h.total(), 5u);
}

TEST(EquiWidthHistogramTest, OutOfRangeClampsToEdges) {
  EquiWidthHistogram h(0.0, 10.0, 2);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(EquiWidthHistogramTest, QuantileApproximatesUniform) {
  EquiWidthHistogram h(0.0, 1.0, 100);
  Random rng(8);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble());
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.Quantile(0.1), 0.1, 0.02);
}

TEST(EquiWidthHistogramTest, QuantileEmptyReturnsLo) {
  EquiWidthHistogram h(2.0, 4.0, 4);
  EXPECT_EQ(h.Quantile(0.5), 2.0);
}

TEST(EquiWidthHistogramTest, ToStringMentionsCounts) {
  EquiWidthHistogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  std::string s = h.ToString();
  EXPECT_NE(s.find("[0,1): 1"), std::string::npos);
  EXPECT_NE(s.find("[1,2): 1"), std::string::npos);
}

}  // namespace
}  // namespace seedb
