#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace seedb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto fut = pool.Submit([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<bool> first_running{false};
  std::atomic<bool> second_saw_first{false};
  auto f1 = pool.Submit([&] {
    first_running = true;
    // Busy-wait until the other task observes us (bounded).
    for (int i = 0; i < 100000 && !second_saw_first; ++i) {
    }
  });
  auto f2 = pool.Submit([&] {
    for (int i = 0; i < 100000; ++i) {
      if (first_running) {
        second_saw_first = true;
        break;
      }
    }
  });
  f1.get();
  f2.get();
  EXPECT_TRUE(second_saw_first.load());
}

}  // namespace
}  // namespace seedb
