#include "util/string_util.h"

#include <gtest/gtest.h>

namespace seedb {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWhole) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower("abc123"), "abc123");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("group", "groups"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("view_test.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "view_test.cc"));
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutputIsNotTruncated) {
  std::string big(5000, 'a');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 5000u);
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(120.0), "120");
  EXPECT_EQ(FormatDouble(0.001), "0.001");
  EXPECT_EQ(FormatDouble(-2.50), "-2.5");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(1.23456789, 3), "1.235");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace seedb
