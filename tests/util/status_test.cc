#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace seedb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  SEEDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Internal("reached after macro");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Caller(1).code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  SEEDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  EXPECT_EQ(DoubleIt(21).ValueOrDie(), 42);
  EXPECT_EQ(DoubleIt(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace seedb
