#include "core/online_pruning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/seedb.h"
#include "db/engine.h"
#include "db/predicate.h"

namespace seedb::core {
namespace {

using ::seedb::testing::MakeLaserwaveTable;

TEST(OnlinePrunerTest, ParseRoundTrips) {
  for (OnlinePruner p : {OnlinePruner::kNone, OnlinePruner::kConfidenceInterval,
                         OnlinePruner::kMultiArmedBandit}) {
    auto parsed = ParseOnlinePruner(OnlinePrunerToString(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_TRUE(ParseOnlinePruner("CI").ok());
  EXPECT_TRUE(ParseOnlinePruner("bandit").ok());
  EXPECT_FALSE(ParseOnlinePruner("what").ok());
}

TEST(OnlinePrunerTest, ConfidenceHalfWidthShrinksWithPhases) {
  OnlinePruningOptions options;
  options.delta = 0.05;
  options.utility_range = 1.0;
  double e1 = OnlinePruningState::ConfidenceHalfWidth(options, 1);
  double e4 = OnlinePruningState::ConfidenceHalfWidth(options, 4);
  double e16 = OnlinePruningState::ConfidenceHalfWidth(options, 16);
  EXPECT_GT(e1, e4);
  EXPECT_GT(e4, e16);
  // Hoeffding: eps halves when the phase count quadruples.
  EXPECT_NEAR(e4, e1 / 2.0, 1e-12);
  EXPECT_NEAR(e16, e1 / 4.0, 1e-12);

  // delta -> 0 means "never wrong": the interval is infinite.
  options.delta = 0.0;
  EXPECT_TRUE(std::isinf(OnlinePruningState::ConfidenceHalfWidth(options, 8)));
}

TEST(OnlinePrunerTest, NonePrunerNeverPrunes) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kNone;
  options.keep_k = 1;
  OnlinePruningState state(8, options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(state.Observe({0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0})
                    .empty());
  }
  EXPECT_EQ(state.num_active(), 8u);
  EXPECT_EQ(state.views_pruned(), 0u);
}

TEST(OnlinePrunerTest, CiWithDeltaZeroNeverPrunes) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kConfidenceInterval;
  options.delta = 0.0;
  options.keep_k = 1;
  OnlinePruningState state(4, options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(state.Observe({1.0, 0.0, 0.0, 0.0}).empty());
  }
  EXPECT_EQ(state.num_active(), 4u);
}

TEST(OnlinePrunerTest, CiPrunesClearlySeparatedViews) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kConfidenceInterval;
  options.delta = 0.5;
  options.utility_range = 1.0;
  options.keep_k = 2;
  OnlinePruningState state(4, options);

  // Views 0/1 high, views 2/3 hopeless. eps(1) ~ 0.83: nothing separable
  // after one phase; by m=25 eps ~ 0.167 and the gap (0.9) dominates.
  std::vector<double> utilities = {0.95, 0.90, 0.05, 0.02};
  std::vector<size_t> all_pruned;
  for (int i = 0; i < 25 && all_pruned.size() < 2; ++i) {
    for (size_t v : state.Observe(utilities)) all_pruned.push_back(v);
  }
  ASSERT_EQ(all_pruned.size(), 2u);
  EXPECT_EQ(all_pruned[0], 2u);
  EXPECT_EQ(all_pruned[1], 3u);
  EXPECT_TRUE(state.IsActive(0));
  EXPECT_TRUE(state.IsActive(1));
  EXPECT_EQ(state.views_pruned(), 2u);
}

TEST(OnlinePrunerTest, CiNeverPrunesBelowKeepK) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kConfidenceInterval;
  options.delta = 0.999;  // razor-thin intervals
  options.utility_range = 0.01;
  options.keep_k = 3;
  OnlinePruningState state(5, options);
  for (int i = 0; i < 20; ++i) {
    state.Observe({0.9, 0.8, 0.7, 0.0, 0.0});
  }
  EXPECT_EQ(state.num_active(), 3u);
}

TEST(OnlinePrunerTest, MabHalvesUntilKeepK) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kMultiArmedBandit;
  options.keep_k = 3;
  OnlinePruningState state(16, options);

  // Utility = view index / 16 (higher index = better).
  std::vector<double> utilities(16);
  for (size_t v = 0; v < 16; ++v) {
    utilities[v] = static_cast<double>(v) / 16.0;
  }
  EXPECT_EQ(state.Observe(utilities).size(), 8u);  // 16 -> 8
  EXPECT_EQ(state.num_active(), 8u);
  EXPECT_EQ(state.Observe(utilities).size(), 4u);  // 8 -> 4
  EXPECT_EQ(state.Observe(utilities).size(), 1u);  // 4 -> 3 (floor at k)
  EXPECT_EQ(state.Observe(utilities).size(), 0u);  // stays at k
  EXPECT_EQ(state.num_active(), 3u);
  // The survivors are exactly the 3 best arms.
  for (size_t v = 0; v < 16; ++v) {
    EXPECT_EQ(state.IsActive(v), v >= 13) << v;
  }
}

TEST(OnlinePrunerTest, MabRespectsWarmupPhases) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kMultiArmedBandit;
  options.keep_k = 1;
  options.warmup_phases = 3;
  OnlinePruningState state(8, options);
  std::vector<double> utilities = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(state.Observe(utilities).empty());   // phase 1: warming up
  EXPECT_TRUE(state.Observe(utilities).empty());   // phase 2: warming up
  EXPECT_EQ(state.Observe(utilities).size(), 4u);  // phase 3: halve
}

// --- Acceptance pins on the paper's §1 Laserwave example: conservative
// online-pruning configurations must reproduce the exhaustive top-k
// EXACTLY (ids, order, utilities). ---

class LaserwavePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.AddTable("sales", MakeLaserwaveTable()).ok());
    engine_ = std::make_unique<db::Engine>(&catalog_);
    seedb_ = std::make_unique<SeeDB>(engine_.get());
    selection_ =
        db::PredicatePtr(db::Eq("product", db::Value("Laserwave")));
  }

  RecommendationSet Recommend(const SeeDBOptions& options) {
    return seedb_->Recommend("sales", selection_, options).ValueOrDie();
  }

  static void ExpectSameRanking(const RecommendationSet& got,
                                const RecommendationSet& want) {
    ASSERT_EQ(got.top_views.size(), want.top_views.size());
    for (size_t i = 0; i < want.top_views.size(); ++i) {
      EXPECT_EQ(got.top_views[i].view().Id(), want.top_views[i].view().Id())
          << "rank " << i + 1;
      EXPECT_NEAR(got.top_views[i].utility(), want.top_views[i].utility(),
                  1e-9)
          << "rank " << i + 1;
    }
  }

  db::Catalog catalog_;
  std::unique_ptr<db::Engine> engine_;
  std::unique_ptr<SeeDB> seedb_;
  db::PredicatePtr selection_;
};

TEST_F(LaserwavePipelineTest, CiWithDeltaZeroMatchesExhaustiveTopK) {
  SeeDBOptions exhaustive;
  exhaustive.k = 3;
  RecommendationSet truth = Recommend(exhaustive);

  SeeDBOptions phased = exhaustive;
  phased.strategy = ExecutionStrategy::kPhasedSharedScan;
  phased.online_pruning.pruner = OnlinePruner::kConfidenceInterval;
  phased.online_pruning.delta = 0.0;  // infinite intervals: never prune
  phased.online_pruning.num_phases = 4;
  RecommendationSet got = Recommend(phased);

  ExpectSameRanking(got, truth);
  EXPECT_EQ(got.profile.views_pruned_online, 0u);
  EXPECT_EQ(got.profile.phases_executed, 4u);
  EXPECT_EQ(got.profile.table_scans, 1u);
}

// Auto-calibrated utility range (utility_range = 0: derived from the metric
// and each view's group count) composed with delta -> 0 must still
// reproduce the exhaustive top-k exactly — auto-calibration changes how
// wide the intervals are, never whether delta = 0 means "never wrong".
TEST_F(LaserwavePipelineTest, CiAutoRangeWithDeltaZeroMatchesExhaustiveTopK) {
  SeeDBOptions exhaustive;
  exhaustive.k = 3;
  RecommendationSet truth = Recommend(exhaustive);

  SeeDBOptions phased = exhaustive;
  phased.strategy = ExecutionStrategy::kPhasedSharedScan;
  phased.online_pruning.pruner = OnlinePruner::kConfidenceInterval;
  phased.online_pruning.delta = 0.0;
  phased.online_pruning.utility_range = 0.0;  // auto-calibrate per metric
  phased.online_pruning.num_phases = 4;
  RecommendationSet got = Recommend(phased);

  ExpectSameRanking(got, truth);
  EXPECT_EQ(got.profile.views_pruned_online, 0u);
  EXPECT_EQ(got.profile.phases_executed, 4u);
}

// An unresolved non-positive range fed straight to the CI math (bypassing
// the executor's resolution) must read as infinite intervals, never as
// zero-width ones that would prune everything at the first boundary.
TEST(OnlinePrunerTest, UnresolvedAutoRangeNeverPrunes) {
  OnlinePruningOptions options;
  options.pruner = OnlinePruner::kConfidenceInterval;
  options.delta = 0.5;
  options.utility_range = 0.0;
  options.keep_k = 1;
  EXPECT_TRUE(std::isinf(
      OnlinePruningState::ConfidenceHalfWidth(options, /*phases=*/5)));
  OnlinePruningState state(4, options);
  EXPECT_TRUE(state.Observe({0.9, 0.1, 0.1, 0.1}).empty());
  EXPECT_TRUE(state.Observe({0.9, 0.1, 0.1, 0.1}).empty());
  EXPECT_EQ(state.num_active(), 4u);
}

TEST_F(LaserwavePipelineTest, MabWithOnePhaseMatchesExhaustiveTopK) {
  SeeDBOptions exhaustive;
  exhaustive.k = 3;
  RecommendationSet truth = Recommend(exhaustive);

  SeeDBOptions phased = exhaustive;
  phased.strategy = ExecutionStrategy::kPhasedSharedScan;
  phased.online_pruning.pruner = OnlinePruner::kMultiArmedBandit;
  phased.online_pruning.num_phases = 1;  // no boundaries: nothing to prune
  RecommendationSet got = Recommend(phased);

  ExpectSameRanking(got, truth);
  EXPECT_EQ(got.profile.views_pruned_online, 0u);
  EXPECT_EQ(got.profile.phases_executed, 1u);
}

}  // namespace
}  // namespace seedb::core
