#include "core/topk.h"

#include <gtest/gtest.h>

namespace seedb::core {
namespace {

ViewResult MakeResult(const std::string& dim, double utility) {
  ViewResult r;
  r.view = ViewDescriptor(dim, "m", db::AggregateFunction::kSum);
  r.utility = utility;
  return r;
}

std::vector<ViewResult> SampleResults() {
  return {MakeResult("a", 0.5), MakeResult("b", 0.9), MakeResult("c", 0.1),
          MakeResult("d", 0.7), MakeResult("e", 0.3)};
}

TEST(TopKTest, SelectsHighestUtilityDescending) {
  auto top = SelectTopK(SampleResults(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].view.dimension, "b");
  EXPECT_EQ(top[1].view.dimension, "d");
  EXPECT_EQ(top[2].view.dimension, "a");
}

TEST(TopKTest, KZeroReturnsAllSorted) {
  auto all = SelectTopK(SampleResults(), 0);
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].utility, all[i].utility);
  }
}

TEST(TopKTest, KLargerThanInputReturnsAll) {
  auto all = SelectTopK(SampleResults(), 100);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].view.dimension, "b");
}

TEST(TopKTest, TiesBreakOnViewIdDeterministically) {
  std::vector<ViewResult> tied = {MakeResult("z", 0.5), MakeResult("a", 0.5),
                                  MakeResult("m", 0.5)};
  auto top = SelectTopK(tied, 2);
  EXPECT_EQ(top[0].view.dimension, "a");
  EXPECT_EQ(top[1].view.dimension, "m");
}

TEST(BottomKTest, SelectsLowestAscending) {
  auto bottom = SelectBottomK(SampleResults(), 2);
  ASSERT_EQ(bottom.size(), 2u);
  EXPECT_EQ(bottom[0].view.dimension, "c");
  EXPECT_EQ(bottom[1].view.dimension, "e");
}

TEST(BottomKTest, DisjointFromTopKWhenPossible) {
  auto results = SampleResults();
  auto top = SelectTopK(results, 2);
  auto bottom = SelectBottomK(results, 2);
  for (const auto& t : top) {
    for (const auto& b : bottom) {
      EXPECT_NE(t.view.Id(), b.view.Id());
    }
  }
}

TEST(TopKTest, EmptyInput) {
  EXPECT_TRUE(SelectTopK({}, 3).empty());
  EXPECT_TRUE(SelectBottomK({}, 3).empty());
}

}  // namespace
}  // namespace seedb::core
