// Differential suite for the server-wide partial-aggregate cache
// (db/scan_cache.h): a warm run — every (query, grouping set) pair adopted
// from cache — must be BIT-IDENTICAL to the cold run that populated it,
// across execution strategy x online pruner x phase count. Also pins the
// cache's correctness levers: a table-version bump invalidates every entry
// for that table, and LRU eviction under a tight budget degrades to cold
// re-scans, never to wrong answers.
//
// Runs use parallelism 1: results are deterministic, so EXPECT_EQ on
// doubles (not near) is the right comparison — the cache adopts merged
// aggregate state verbatim, it does not recompute.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "core/seedb.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "db/engine.h"

namespace seedb::core {
namespace {

// Every final ranking observable: top/bottom sets, order, exact utilities.
void ExpectBitIdentical(const RecommendationSet& warm,
                        const RecommendationSet& cold) {
  ASSERT_EQ(warm.top_views.size(), cold.top_views.size());
  for (size_t i = 0; i < warm.top_views.size(); ++i) {
    EXPECT_EQ(warm.top_views[i].rank, cold.top_views[i].rank);
    EXPECT_EQ(warm.top_views[i].view().Id(), cold.top_views[i].view().Id());
    EXPECT_EQ(warm.top_views[i].utility(), cold.top_views[i].utility())
        << warm.top_views[i].view().Id();
  }
  ASSERT_EQ(warm.low_utility_views.size(), cold.low_utility_views.size());
  for (size_t i = 0; i < warm.low_utility_views.size(); ++i) {
    EXPECT_EQ(warm.low_utility_views[i].view().Id(),
              cold.low_utility_views[i].view().Id());
    EXPECT_EQ(warm.low_utility_views[i].utility(),
              cold.low_utility_views[i].utility());
  }
  EXPECT_EQ(warm.metric, cold.metric);
}

class CacheDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = data::GenerateSynthetic(
        data::SyntheticSpec::Simple(4000, 4, 2, 8, 13));
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    selection_ = dataset->selection;
    ASSERT_TRUE(catalog_.AddTable("synth", std::move(dataset->table)).ok());
  }

  SeeDBRequest Request(ExecutionStrategy strategy, OnlinePruner pruner,
                       size_t phases) const {
    SeeDBRequest request("synth");
    request.Where(selection_)
        .WithTopK(3)
        .WithBottomK(2)
        .WithParallelism(1)
        .WithStrategy(strategy);
    if (strategy == ExecutionStrategy::kPhasedSharedScan) {
      request.WithPhases(phases).WithOnlinePruner(pruner);
    }
    return request;
  }

  RecommendationSet Run(db::Engine* engine, const SeeDBRequest& request) {
    SeeDB seedb(engine);
    auto set = seedb.Run(request);
    EXPECT_TRUE(set.ok()) << set.status();
    return *set;
  }

  db::Catalog catalog_;
  db::PredicatePtr selection_;
};

struct Config {
  ExecutionStrategy strategy;
  OnlinePruner pruner;
  size_t phases;
};

TEST_F(CacheDifferentialTest,
       WarmRunsBitIdenticalAcrossStrategyPrunerAndPhases) {
  const Config configs[] = {
      {ExecutionStrategy::kSharedScan, OnlinePruner::kNone, 1},
      {ExecutionStrategy::kPhasedSharedScan, OnlinePruner::kNone, 1},
      {ExecutionStrategy::kPhasedSharedScan, OnlinePruner::kNone, 4},
      {ExecutionStrategy::kPhasedSharedScan, OnlinePruner::kConfidenceInterval,
       4},
      {ExecutionStrategy::kPhasedSharedScan, OnlinePruner::kConfidenceInterval,
       8},
      {ExecutionStrategy::kPhasedSharedScan, OnlinePruner::kMultiArmedBandit,
       4},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(std::string(ExecutionStrategyToString(config.strategy)) +
                 "/" + OnlinePrunerToString(config.pruner) + "/phases=" +
                 std::to_string(config.phases));
    // A fresh cache-enabled engine per config: the first run is fully cold,
    // the second fully warm from exactly that run's published state.
    db::Engine engine(&catalog_);
    engine.EnableResultCache(64 * 1024 * 1024);
    const SeeDBRequest request =
        Request(config.strategy, config.pruner, config.phases);
    const RecommendationSet cold = Run(&engine, request);
    const db::EngineStatsSnapshot after_cold = engine.stats();
    EXPECT_EQ(after_cold.cache_hits, 0u);
    const RecommendationSet warm = Run(&engine, request);
    ExpectBitIdentical(warm, cold);
    const db::EngineStatsSnapshot after_warm = engine.stats();
    if (config.pruner == OnlinePruner::kMultiArmedBandit) {
      // MAB halves by estimate order, which adoption would change; such
      // runs bypass the cache entirely — bit-identity by construction.
      EXPECT_EQ(after_warm.cache_hits, 0u);
      EXPECT_EQ(warm.profile.cache_hits, 0u);
    } else {
      // The warm run adopted at least something (under a pruner, retired
      // views are never published, so the warm run re-scans those only).
      EXPECT_GT(after_warm.cache_hits, 0u);
      EXPECT_GT(warm.profile.cache_hits, 0u);
    }
    // And a cache-free engine agrees with both: adoption changed cost,
    // never answers.
    db::Engine reference(&catalog_);
    ExpectBitIdentical(Run(&reference, request), cold);
  }
}

TEST_F(CacheDifferentialTest, FullyWarmRunScansNoRows) {
  db::Engine engine(&catalog_);
  engine.EnableResultCache(64 * 1024 * 1024);
  const SeeDBRequest request =
      Request(ExecutionStrategy::kSharedScan, OnlinePruner::kNone, 1);
  const RecommendationSet cold = Run(&engine, request);
  EXPECT_GT(cold.profile.rows_scanned, 0u);
  const RecommendationSet warm = Run(&engine, request);
  ExpectBitIdentical(warm, cold);
  // No pruner, one pass: every pair was published, so the warm run adopts
  // everything and never touches the table.
  EXPECT_EQ(warm.profile.rows_scanned, 0u);
  EXPECT_EQ(warm.profile.cache_misses, 0u);
}

TEST_F(CacheDifferentialTest, TableVersionBumpInvalidatesWarmEntries) {
  db::Engine engine(&catalog_);
  engine.EnableResultCache(64 * 1024 * 1024);
  const SeeDBRequest request =
      Request(ExecutionStrategy::kSharedScan, OnlinePruner::kNone, 1);
  const RecommendationSet first = Run(&engine, request);

  // Replace the table with differently-seeded data: same name and schema,
  // new version. Every cached entry keyed at the old version must be dead.
  auto replacement = data::GenerateSynthetic(
      data::SyntheticSpec::Simple(4000, 4, 2, 8, 14));
  ASSERT_TRUE(replacement.ok());
  catalog_.PutTable("synth", std::move(replacement->table));

  const RecommendationSet second = Run(&engine, request);
  EXPECT_GT(second.profile.rows_scanned, 0u)
      << "stale entries adopted across a version bump";
  EXPECT_EQ(second.profile.cache_hits, 0u);
  EXPECT_GT(second.profile.cache_misses, 0u);
  // Differently-seeded data: at least one utility must move, or the
  // invalidation assertion above is vacuous.
  bool any_differs = first.top_views.size() != second.top_views.size();
  for (size_t i = 0; !any_differs && i < first.top_views.size(); ++i) {
    any_differs = first.top_views[i].view().Id() !=
                      second.top_views[i].view().Id() ||
                  first.top_views[i].utility() != second.top_views[i].utility();
  }
  EXPECT_TRUE(any_differs);

  // And the new version warms up normally.
  const RecommendationSet third = Run(&engine, request);
  ExpectBitIdentical(third, second);
  EXPECT_GT(third.profile.cache_hits, 0u);
}

TEST_F(CacheDifferentialTest, LruEvictionUnderBudgetNeverChangesAnswers) {
  // A budget big enough for roughly one request's entries but not two
  // different requests': alternating selections thrash the LRU.
  db::Engine engine(&catalog_);
  engine.EnableResultCache(8 * 1024);
  db::Engine reference(&catalog_);

  const SeeDBRequest wide =
      Request(ExecutionStrategy::kSharedScan, OnlinePruner::kNone, 1);
  SeeDBRequest narrow("synth");
  narrow.WithTopK(3).WithBottomK(2).WithParallelism(1).WithStrategy(
      ExecutionStrategy::kSharedScan);  // whole-table: distinct fingerprint

  const RecommendationSet wide_ref = Run(&reference, wide);
  const RecommendationSet narrow_ref = Run(&reference, narrow);
  for (int round = 0; round < 3; ++round) {
    ExpectBitIdentical(Run(&engine, wide), wide_ref);
    ExpectBitIdentical(Run(&engine, narrow), narrow_ref);
  }
  const db::EngineStatsSnapshot stats = engine.stats();
  EXPECT_GT(stats.cache_evictions, 0u)
      << "budget never pressured the LRU — raise the workload or drop the "
         "budget";
  EXPECT_GT(stats.cache_misses, 0u);
}

}  // namespace
}  // namespace seedb::core
