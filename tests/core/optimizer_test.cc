#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "core/view_space.h"
#include "db/statistics.h"

namespace seedb::core {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : table_(::seedb::testing::MakeTinyTable()),
        stats_(db::ComputeTableStats(table_, "t")),
        selection_(db::Eq("e", db::Value("x"))) {
    // 2 dims x 2 measures x 2 funcs = 8 views.
    ViewSpaceOptions vs;
    vs.functions = {db::AggregateFunction::kSum, db::AggregateFunction::kAvg};
    views_ = EnumerateViews(table_.schema(), vs);
  }

  // Each view must appear in slots with both halves available overall.
  void CheckCoverage(const ExecutionPlan& plan) {
    std::set<std::string> has_target, has_comparison;
    for (const auto& pq : plan.queries) {
      for (const auto& slot : pq.slots) {
        ASSERT_LT(slot.result_index, pq.query.grouping_sets.size());
        // Slot's dimension matches its grouping set.
        EXPECT_EQ(pq.query.grouping_sets[slot.result_index],
                  (std::vector<std::string>{slot.view.dimension}));
        if (!slot.target_column.empty()) has_target.insert(slot.view.Id());
        if (!slot.comparison_column.empty()) {
          has_comparison.insert(slot.view.Id());
        }
      }
    }
    for (const auto& v : views_) {
      EXPECT_TRUE(has_target.count(v.Id())) << v.Id();
      EXPECT_TRUE(has_comparison.count(v.Id())) << v.Id();
    }
  }

  db::Table table_;
  db::TableStats stats_;
  db::PredicatePtr selection_;
  std::vector<ViewDescriptor> views_;
};

TEST_F(OptimizerTest, BaselinePlanIsTwoQueriesPerView) {
  auto plan = BuildExecutionPlan(views_, "t", selection_, stats_,
                                 OptimizerOptions::Baseline())
                  .ValueOrDie();
  EXPECT_EQ(plan.num_queries(), 2 * views_.size());
  EXPECT_EQ(plan.num_views, views_.size());
  CheckCoverage(plan);
  // Target queries carry the WHERE; comparisons do not; no FILTERs anywhere.
  for (const auto& pq : plan.queries) {
    EXPECT_EQ(pq.query.grouping_sets.size(), 1u);
    EXPECT_EQ(pq.query.aggregates.size(), 1u);
    EXPECT_TRUE(pq.query.aggregates[0].filter == nullptr);
    if (pq.half == QueryHalf::kTargetOnly) {
      EXPECT_TRUE(pq.query.where != nullptr);
    } else {
      EXPECT_EQ(pq.half, QueryHalf::kComparisonOnly);
      EXPECT_TRUE(pq.query.where == nullptr);
    }
  }
}

TEST_F(OptimizerTest, CombineTcHalvesQueries) {
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_target_comparison = true;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  EXPECT_EQ(plan.num_queries(), views_.size());  // exactly halved
  CheckCoverage(plan);
  for (const auto& pq : plan.queries) {
    EXPECT_EQ(pq.half, QueryHalf::kCombined);
    EXPECT_TRUE(pq.query.where == nullptr);
    ASSERT_EQ(pq.query.aggregates.size(), 2u);
    EXPECT_TRUE(pq.query.aggregates[0].filter != nullptr);
    EXPECT_TRUE(pq.query.aggregates[1].filter == nullptr);
  }
}

TEST_F(OptimizerTest, CombineAggregatesGroupsByDimension) {
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_aggregates = true;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  // 2 dims x 2 halves = 4 queries, each with all 4 (m,f) aggregates.
  EXPECT_EQ(plan.num_queries(), 4u);
  CheckCoverage(plan);
  for (const auto& pq : plan.queries) {
    EXPECT_EQ(pq.query.aggregates.size(), 4u);
    EXPECT_EQ(pq.slots.size(), 4u);
  }
}

TEST_F(OptimizerTest, CombineGroupBysMergesDimensions) {
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_aggregates = true;
  options.combine_group_bys = true;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  // Tiny cardinalities fit one bin: 1 dim-batch x 2 halves.
  EXPECT_EQ(plan.num_queries(), 2u);
  CheckCoverage(plan);
  for (const auto& pq : plan.queries) {
    EXPECT_EQ(pq.query.grouping_sets.size(), 2u);
  }
}

TEST_F(OptimizerTest, AllOptimizationsOneQuery) {
  auto plan = BuildExecutionPlan(views_, "t", selection_, stats_,
                                 OptimizerOptions::All())
                  .ValueOrDie();
  EXPECT_EQ(plan.num_queries(), 1u);
  EXPECT_EQ(plan.predicted_scans(), 1u);
  CheckCoverage(plan);
  const PlannedQuery& pq = plan.queries[0];
  EXPECT_EQ(pq.query.grouping_sets.size(), 2u);
  EXPECT_EQ(pq.query.aggregates.size(), 8u);  // 4 payloads x 2 halves
  EXPECT_EQ(pq.slots.size(), 8u);
}

TEST_F(OptimizerTest, GroupByCombiningWithoutAggCombiningKeepsLayers) {
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_group_bys = true;  // but not combine_aggregates
  options.combine_target_comparison = true;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  CheckCoverage(plan);
  // One query per (m,f) layer: 4 layers.
  EXPECT_EQ(plan.num_queries(), 4u);
  for (const auto& pq : plan.queries) {
    // Each query carries exactly one payload (x2 halves) applied to both
    // dims — no payload a view did not request.
    EXPECT_EQ(pq.query.aggregates.size(), 2u);
    EXPECT_EQ(pq.query.grouping_sets.size(), 2u);
  }
}

TEST_F(OptimizerTest, MemoryBudgetSplitsBatches) {
  OptimizerOptions options = OptimizerOptions::All();
  options.memory_budget_bytes = 1;  // nothing shares a bin
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  // Two dims, each its own singleton bin -> 2 combined queries.
  EXPECT_EQ(plan.num_queries(), 2u);
  for (const auto& pq : plan.queries) {
    EXPECT_EQ(pq.query.grouping_sets.size(), 1u);
  }
}

TEST_F(OptimizerTest, MaxGroupBysPerQueryCap) {
  OptimizerOptions options = OptimizerOptions::All();
  options.max_group_bys_per_query = 1;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  for (const auto& pq : plan.queries) {
    EXPECT_LE(pq.query.grouping_sets.size(), 1u);
  }
}

TEST_F(OptimizerTest, SamplingPropagatesToQueries) {
  OptimizerOptions options = OptimizerOptions::All();
  options.sample_fraction = 0.25;
  options.sample_seed = 9;
  auto plan =
      BuildExecutionPlan(views_, "t", selection_, stats_, options)
          .ValueOrDie();
  for (const auto& pq : plan.queries) {
    EXPECT_DOUBLE_EQ(pq.query.sample_fraction, 0.25);
    EXPECT_EQ(pq.query.sample_seed, 9u);
  }
}

TEST_F(OptimizerTest, NullSelectionPlansCleanly) {
  auto plan = BuildExecutionPlan(views_, "t", nullptr, stats_,
                                 OptimizerOptions::All())
                  .ValueOrDie();
  EXPECT_EQ(plan.num_queries(), 1u);
  // Target aggregates have no filter when the selection is the whole table.
  for (const auto& agg : plan.queries[0].query.aggregates) {
    EXPECT_TRUE(agg.filter == nullptr);
  }
}

TEST_F(OptimizerTest, ErrorsOnBadInput) {
  EXPECT_FALSE(
      BuildExecutionPlan({}, "t", selection_, stats_, OptimizerOptions::All())
          .ok());
  OptimizerOptions options;
  options.sample_fraction = 0.0;
  EXPECT_FALSE(
      BuildExecutionPlan(views_, "t", selection_, stats_, options).ok());
}

TEST_F(OptimizerTest, DescribeListsQueries) {
  auto plan = BuildExecutionPlan(views_, "t", selection_, stats_,
                                 OptimizerOptions::All())
                  .ValueOrDie();
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("8 view(s)"), std::string::npos);
  EXPECT_NE(desc.find("GROUPING SETS"), std::string::npos);
  EXPECT_NE(desc.find("combined"), std::string::npos);
}

TEST(QueryHalfTest, Names) {
  EXPECT_STREQ(QueryHalfToString(QueryHalf::kCombined), "combined");
  EXPECT_STREQ(QueryHalfToString(QueryHalf::kTargetOnly), "target");
  EXPECT_STREQ(QueryHalfToString(QueryHalf::kComparisonOnly), "comparison");
}

}  // namespace
}  // namespace seedb::core
