#include "core/executor.h"

#include <gtest/gtest.h>

#include <map>

#include "core/view_space.h"
#include "data/synthetic.h"

namespace seedb::core {
namespace {

// Shared environment: a synthetic dataset with a planted deviation, large
// enough for plan-equivalence checks to be meaningful.
class ExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(
        /*rows=*/4000, /*num_dims=*/3, /*num_measures=*/2,
        /*cardinality=*/6, /*seed=*/99);
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    catalog_ = new db::Catalog();
    Status s = catalog_->AddTable("t", std::move(dataset.table));
    (void)s;
    engine_ = new db::Engine(catalog_);
    selection_ = dataset.selection;
    views_ = EnumerateViews(
        catalog_->GetTable("t").ValueOrDie()->schema());
    // Drop views on the selection dimension, as the Query Generator would:
    // they deviate by construction and would drown the planted view.
    std::erase_if(views_, [](const ViewDescriptor& v) {
      return v.dimension == "dim0";
    });
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
    engine_ = nullptr;
    catalog_ = nullptr;
  }

  std::vector<ViewResult> Run(const OptimizerOptions& optimizer,
                              size_t parallelism = 1,
                              ExecutionReport* report = nullptr,
                              ExecutionStrategy strategy =
                                  ExecutionStrategy::kPerQuery) {
    const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
    ExecutionPlan plan =
        BuildExecutionPlan(views_, "t", selection_, *stats, optimizer)
            .ValueOrDie();
    ExecutorOptions exec;
    exec.parallelism = parallelism;
    exec.strategy = strategy;
    return ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers, exec,
                       report)
        .ValueOrDie();
  }

  static std::map<std::string, double> UtilityMap(
      const std::vector<ViewResult>& results) {
    std::map<std::string, double> m;
    for (const auto& r : results) m[r.view.Id()] = r.utility;
    return m;
  }

  static db::Catalog* catalog_;
  static db::Engine* engine_;
  static db::PredicatePtr selection_;
  static std::vector<ViewDescriptor> views_;
};

db::Catalog* ExecutorTest::catalog_ = nullptr;
db::Engine* ExecutorTest::engine_ = nullptr;
db::PredicatePtr ExecutorTest::selection_;
std::vector<ViewDescriptor> ExecutorTest::views_;

TEST_F(ExecutorTest, BaselineProducesAllViews) {
  auto results = Run(OptimizerOptions::Baseline());
  EXPECT_EQ(results.size(), views_.size());
}

// The central correctness property of §3.3: every combination of the three
// query-combining optimizations computes *identical* utilities — the
// optimizations change cost, never answers.
class PlanEquivalenceTest : public ExecutorTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(PlanEquivalenceTest, OptimizationsDoNotChangeUtilities) {
  int mask = GetParam();
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_target_comparison = mask & 1;
  options.combine_aggregates = mask & 2;
  options.combine_group_bys = mask & 4;

  auto baseline = UtilityMap(Run(OptimizerOptions::Baseline()));
  auto optimized = UtilityMap(Run(options));
  ASSERT_EQ(baseline.size(), optimized.size());
  for (const auto& [id, utility] : baseline) {
    ASSERT_TRUE(optimized.count(id)) << id;
    EXPECT_NEAR(optimized[id], utility, 1e-9) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PlanEquivalenceTest,
                         ::testing::Range(0, 8));

TEST_F(ExecutorTest, ParallelExecutionMatchesSerial) {
  auto serial = UtilityMap(Run(OptimizerOptions::Baseline(), 1));
  auto parallel = UtilityMap(Run(OptimizerOptions::Baseline(), 4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [id, utility] : serial) {
    EXPECT_NEAR(parallel[id], utility, 1e-12) << id;
  }
}

TEST_F(ExecutorTest, ReportRecordsPerQueryTimes) {
  ExecutionReport report;
  auto results = Run(OptimizerOptions::Baseline(), 1, &report);
  EXPECT_EQ(report.query_seconds.size(), 2 * views_.size());
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GE(report.MaxQuerySeconds(), report.MeanQuerySeconds());
  // Per-query execution has no fused pass to break into phases.
  EXPECT_TRUE(report.phase_seconds.empty());
  EXPECT_EQ(report.phases_executed, 0u);
}

TEST_F(ExecutorTest, EngineCountsMatchPlanPrediction) {
  engine_->ResetStats();
  ExecutionReport report;
  Run(OptimizerOptions::All(), 1, &report);
  db::EngineStatsSnapshot stats = engine_->stats();
  EXPECT_EQ(stats.queries_executed, 1u);
  EXPECT_EQ(stats.table_scans, 1u);

  engine_->ResetStats();
  Run(OptimizerOptions::Baseline(), 1, &report);
  stats = engine_->stats();
  EXPECT_EQ(stats.queries_executed, 2 * views_.size());
}

TEST_F(ExecutorTest, CombineTcExactlyHalvesScans) {
  engine_->ResetStats();
  Run(OptimizerOptions::Baseline());
  uint64_t baseline_scans = engine_->stats().table_scans;

  engine_->ResetStats();
  OptimizerOptions tc = OptimizerOptions::Baseline();
  tc.combine_target_comparison = true;
  Run(tc);
  uint64_t tc_scans = engine_->stats().table_scans;
  EXPECT_EQ(tc_scans * 2, baseline_scans);
}

// The shared-scan strategy computes the same utilities as per-query
// execution for every optimizer configuration (it is a pure execution-layer
// transformation, like the §3.3 combines).
class SharedScanEquivalenceTest : public ExecutorTest,
                                  public ::testing::WithParamInterface<int> {};

TEST_P(SharedScanEquivalenceTest, SharedScanMatchesPerQuery) {
  int mask = GetParam();
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_target_comparison = mask & 1;
  options.combine_aggregates = mask & 2;
  options.combine_group_bys = mask & 4;

  auto per_query = UtilityMap(Run(options));
  auto fused = UtilityMap(
      Run(options, 4, nullptr, ExecutionStrategy::kSharedScan));
  ASSERT_EQ(per_query.size(), fused.size());
  for (const auto& [id, utility] : per_query) {
    ASSERT_TRUE(fused.count(id)) << id;
    EXPECT_NEAR(fused[id], utility, 1e-9) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, SharedScanEquivalenceTest,
                         ::testing::Range(0, 8));

// The tentpole invariant: a fused multi-query plan is exactly ONE table scan
// in the engine's cost model, regardless of how many views it answers.
TEST_F(ExecutorTest, SharedScanCountsOneScanForWholePlan) {
  engine_->ResetStats();
  Run(OptimizerOptions::Baseline(), 2, nullptr,
      ExecutionStrategy::kSharedScan);
  db::EngineStatsSnapshot stats = engine_->stats();
  EXPECT_EQ(stats.table_scans, 1u);
  EXPECT_EQ(stats.shared_scan_batches, 1u);
  // Every planned query still counts as a query (2 per view, baseline plan).
  EXPECT_EQ(stats.queries_executed, 2 * views_.size());
}

// Fused strategies do not pretend per-query latencies exist: the report
// carries per-phase wall times instead (a single phase for kSharedScan).
TEST_F(ExecutorTest, SharedScanReportRecordsTheFusedPassNotFakeQueryTimes) {
  ExecutionReport report;
  auto results = Run(OptimizerOptions::Baseline(), 1, &report,
                     ExecutionStrategy::kSharedScan);
  EXPECT_EQ(results.size(), views_.size());
  EXPECT_TRUE(report.query_seconds.empty());
  ASSERT_EQ(report.phase_seconds.size(), 1u);
  EXPECT_EQ(report.phases_executed, 1u);
  EXPECT_GT(report.phase_seconds[0], 0.0);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_EQ(report.views_pruned_online, 0u);
}

TEST_F(ExecutorTest, SharedScanReportCountsVectorizedMorsels) {
  ExecutionReport report;
  auto results = Run(OptimizerOptions::All(), 1, &report,
                     ExecutionStrategy::kSharedScan);
  EXPECT_FALSE(results.empty());
  // Every grouping set here is categorical with a small dictionary, so the
  // whole fused pass must take the vectorized inner loop.
  EXPECT_GT(report.vectorized_morsels, 0u);
  EXPECT_GT(report.agg_state_bytes, 0u);
}

// --- Utility-range auto-calibration (OnlinePruningOptions::utility_range
// <= 0): the Hoeffding range comes from the metric and the plan's group
// counts instead of the manual knob. ---

TEST_F(ExecutorTest, AutoUtilityRangeDerivesEmdRangeFromGroupCounts) {
  const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
  ExecutionPlan plan = BuildExecutionPlan(views_, "t", selection_, *stats,
                                          OptimizerOptions::All())
                           .ValueOrDie();
  // Synthetic dims have cardinality 6 and no nulls: EMD's diameter over a
  // 6-bin ground line is 5 — what the manual 2.0 default under-covers.
  auto range =
      AutoUtilityRange(engine_, plan, DistanceMetric::kEarthMovers);
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_DOUBLE_EQ(*range, 5.0);
  // O(1)-diameter metrics ignore the group count.
  auto l1 = AutoUtilityRange(engine_, plan, DistanceMetric::kL1);
  ASSERT_TRUE(l1.ok());
  EXPECT_DOUBLE_EQ(*l1, 2.0);
}

// --- Memory budgets under the blocking strategies (the phased session's
// OutOfRange contract, extended to kPerQuery / kSharedScan). ---

TEST_F(ExecutorTest, PerQueryBudgetStopsIssuingQueriesGracefully) {
  const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
  // Baseline = many small queries, so the cumulative footprint grows query
  // by query and a tiny budget trips after the first one.
  ExecutionPlan plan = BuildExecutionPlan(views_, "t", selection_, *stats,
                                          OptimizerOptions::Baseline())
                           .ValueOrDie();
  ExecutorOptions exec;
  exec.strategy = ExecutionStrategy::kPerQuery;
  exec.memory_budget_bytes = 64;
  ExecutionReport report;
  auto results = ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers,
                             exec, &report);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_LT(report.queries_executed, plan.queries.size());
  EXPECT_GT(report.agg_state_bytes, 64u);
  // Parallel per-query runs observe the same budget.
  exec.parallelism = 4;
  ExecutionReport parallel_report;
  auto parallel = ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers,
                              exec, &parallel_report);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_TRUE(parallel_report.budget_exceeded);
}

TEST_F(ExecutorTest, SharedScanBudgetFlagsTheBreachAtItsOneBoundary) {
  ExecutionReport report;
  const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
  ExecutionPlan plan = BuildExecutionPlan(views_, "t", selection_, *stats,
                                          OptimizerOptions::All())
                           .ValueOrDie();
  ExecutorOptions exec;
  exec.strategy = ExecutionStrategy::kSharedScan;
  exec.memory_budget_bytes = 64;
  auto results = ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers,
                             exec, &report);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_TRUE(report.budget_exceeded);
  EXPECT_GT(report.agg_state_bytes, 64u);
  // A generous budget never trips.
  exec.memory_budget_bytes = 1ull << 30;
  ExecutionReport ok_report;
  auto fine = ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers, exec,
                          &ok_report);
  ASSERT_TRUE(fine.ok());
  EXPECT_FALSE(ok_report.budget_exceeded);
}

// --- Phased execution (kPhasedSharedScan + core/online_pruning.h). ---

class PhasedExecutorTest : public ExecutorTest {
 protected:
  std::vector<ViewResult> RunPhased(const OptimizerOptions& optimizer,
                                    const OnlinePruningOptions& pruning,
                                    ExecutionReport* report = nullptr) {
    const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
    ExecutionPlan plan =
        BuildExecutionPlan(views_, "t", selection_, *stats, optimizer)
            .ValueOrDie();
    ExecutorOptions exec;
    exec.parallelism = 2;
    exec.strategy = ExecutionStrategy::kPhasedSharedScan;
    exec.online_pruning = pruning;
    return ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers, exec,
                       report)
        .ValueOrDie();
  }
};

TEST_F(PhasedExecutorTest, BlockingPhasedRunStopsAtTheBoundaryTheBudgetBreaks) {
  const db::TableStats* stats = catalog_->GetStats("t").ValueOrDie();
  ExecutionPlan plan = BuildExecutionPlan(views_, "t", selection_, *stats,
                                          OptimizerOptions::All())
                           .ValueOrDie();
  ExecutorOptions exec;
  exec.strategy = ExecutionStrategy::kPhasedSharedScan;
  exec.online_pruning.num_phases = 6;
  exec.memory_budget_bytes = 64;
  ExecutionReport report;
  auto results = ExecutePlan(engine_, plan, DistanceMetric::kEarthMovers,
                             exec, &report);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_TRUE(report.budget_exceeded);
  // The first boundary already exceeds 64 bytes, so later phases never ran.
  EXPECT_EQ(report.phases_executed, 1u);
}

// Phases are a pure execution-layer transformation: with no pruner the
// phased scan computes identical utilities for every optimizer combination.
class PhasedEquivalenceTest : public PhasedExecutorTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(PhasedEquivalenceTest, PhasedMatchesPerQuery) {
  int mask = GetParam();
  OptimizerOptions options = OptimizerOptions::Baseline();
  options.combine_target_comparison = mask & 1;
  options.combine_aggregates = mask & 2;
  options.combine_group_bys = mask & 4;

  OnlinePruningOptions pruning;
  pruning.num_phases = 7;  // does not divide 4000 rows evenly
  pruning.pruner = OnlinePruner::kNone;

  auto per_query = UtilityMap(Run(options));
  auto phased = UtilityMap(RunPhased(options, pruning));
  ASSERT_EQ(per_query.size(), phased.size());
  for (const auto& [id, utility] : per_query) {
    ASSERT_TRUE(phased.count(id)) << id;
    EXPECT_NEAR(phased[id], utility, 1e-9) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PhasedEquivalenceTest,
                         ::testing::Range(0, 8));

TEST_F(PhasedExecutorTest, ReportBreaksDownPhases) {
  OnlinePruningOptions pruning;
  pruning.num_phases = 5;
  ExecutionReport report;
  auto results = RunPhased(OptimizerOptions::Baseline(), pruning, &report);
  EXPECT_EQ(results.size(), views_.size());
  EXPECT_TRUE(report.query_seconds.empty());
  ASSERT_EQ(report.phase_seconds.size(), 5u);
  EXPECT_EQ(report.phases_executed, 5u);
  EXPECT_GE(report.MeanPhaseSeconds(), 0.0);
  EXPECT_EQ(report.views_pruned_online, 0u);
}

// However many phases the scan runs, it is still ONE pass over the table in
// the engine's cost model.
TEST_F(PhasedExecutorTest, PhasedScanStillCountsOneTableScan) {
  engine_->ResetStats();
  OnlinePruningOptions pruning;
  pruning.num_phases = 4;
  RunPhased(OptimizerOptions::Baseline(), pruning);
  db::EngineStatsSnapshot stats = engine_->stats();
  EXPECT_EQ(stats.table_scans, 1u);
  EXPECT_EQ(stats.shared_scan_batches, 1u);
  EXPECT_EQ(stats.queries_executed, 2 * views_.size());
}

// MAB successive halving retires views mid-flight; the planted deviation is
// strong enough that the true top view survives to the end and wins.
TEST_F(PhasedExecutorTest, MabPruningKeepsThePlantedTopView) {
  auto exhaustive = Run(OptimizerOptions::Baseline());
  std::sort(exhaustive.begin(), exhaustive.end(),
            [](const ViewResult& a, const ViewResult& b) {
              return a.utility > b.utility;
            });
  const std::string top_id = exhaustive[0].view.Id();

  OnlinePruningOptions pruning;
  pruning.num_phases = 8;
  pruning.pruner = OnlinePruner::kMultiArmedBandit;
  pruning.keep_k = 3;
  ExecutionReport report;
  auto pruned = RunPhased(OptimizerOptions::Baseline(), pruning, &report);

  EXPECT_GT(report.views_pruned_online, 0u);
  EXPECT_GT(report.queries_deactivated, 0u);
  EXPECT_LT(pruned.size(), views_.size());
  EXPECT_GE(pruned.size(), 3u);
  std::sort(pruned.begin(), pruned.end(),
            [](const ViewResult& a, const ViewResult& b) {
              return a.utility > b.utility;
            });
  EXPECT_EQ(pruned[0].view.Id(), top_id);
  EXPECT_NEAR(pruned[0].utility, exhaustive[0].utility, 1e-9);
}

// CI pruning with a practical (tight) configuration retires the hopeless
// tail: this fixture's worst views sit ~0.005 utility against a k-th lower
// bound near 0.07, which separates once eps(m) drops below the gap.
TEST_F(PhasedExecutorTest, CiPruningRetiresTheHopelessTail) {
  OnlinePruningOptions pruning;
  pruning.num_phases = 8;
  pruning.pruner = OnlinePruner::kConfidenceInterval;
  pruning.delta = 0.5;
  pruning.utility_range = 0.1;
  pruning.keep_k = 3;
  ExecutionReport report;
  auto pruned = RunPhased(OptimizerOptions::Baseline(), pruning, &report);
  EXPECT_GT(report.views_pruned_online, 0u);
  EXPECT_GE(pruned.size(), 3u);
  EXPECT_EQ(report.views_pruned_online, views_.size() - pruned.size());
}

TEST_F(ExecutorTest, SamplingStillFindsPlantedView) {
  OptimizerOptions sampled = OptimizerOptions::All();
  sampled.sample_fraction = 0.3;
  sampled.sample_seed = 12;
  auto results = Run(sampled);
  // The planted (dim1, m0, SUM/AVG) views should still be near the top.
  std::sort(results.begin(), results.end(),
            [](const ViewResult& a, const ViewResult& b) {
              return a.utility > b.utility;
            });
  bool found = false;
  for (size_t i = 0; i < 4 && i < results.size(); ++i) {
    found = found || (results[i].view.dimension == "dim1" &&
                      results[i].view.measure == "m0");
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace seedb::core
