#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace seedb::core {
namespace {

TEST(MetricsTest, KnownValues) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(Distance(p, q, DistanceMetric::kL1).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Distance(p, q, DistanceMetric::kChebyshev).ValueOrDie(),
                   0.5);
  EXPECT_NEAR(Distance(p, q, DistanceMetric::kEuclidean).ValueOrDie(),
              std::sqrt(0.5), 1e-12);
  // EMD on adjacent bins: CDF diffs |0.5| then 0 -> 0.5.
  EXPECT_DOUBLE_EQ(Distance(p, q, DistanceMetric::kEarthMovers).ValueOrDie(),
                   0.5);
}

TEST(MetricsTest, KlOfIdenticalIsZero) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(Distance(p, p, DistanceMetric::kKullbackLeibler).ValueOrDie(),
              0.0, 1e-12);
}

TEST(MetricsTest, KlHandlesZeroComparisonBins) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  double kl = Distance(p, q, DistanceMetric::kKullbackLeibler).ValueOrDie();
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);  // log(1/epsilon) is large
}

TEST(MetricsTest, KlIsAsymmetric) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.5, 0.5};
  double pq = Distance(p, q, DistanceMetric::kKullbackLeibler).ValueOrDie();
  double qp = Distance(q, p, DistanceMetric::kKullbackLeibler).ValueOrDie();
  EXPECT_NE(pq, qp);
}

TEST(MetricsTest, JensenShannonBounded) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  double js = Distance(p, q, DistanceMetric::kJensenShannon).ValueOrDie();
  EXPECT_NEAR(js, std::sqrt(std::log(2.0)), 1e-9);  // maximum
}

TEST(MetricsTest, HellingerBoundedByOne) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(Distance(p, q, DistanceMetric::kHellinger).ValueOrDie(), 1.0,
              1e-12);
}

TEST(MetricsTest, EmdDependsOnBinDistance) {
  // Moving mass two bins costs twice as much as one bin.
  std::vector<double> p = {1.0, 0.0, 0.0};
  std::vector<double> near = {0.0, 1.0, 0.0};
  std::vector<double> far = {0.0, 0.0, 1.0};
  double d_near =
      Distance(p, near, DistanceMetric::kEarthMovers).ValueOrDie();
  double d_far = Distance(p, far, DistanceMetric::kEarthMovers).ValueOrDie();
  EXPECT_DOUBLE_EQ(d_far, 2.0 * d_near);
  // L1 cannot see the difference; EMD can.
  EXPECT_DOUBLE_EQ(Distance(p, near, DistanceMetric::kL1).ValueOrDie(),
                   Distance(p, far, DistanceMetric::kL1).ValueOrDie());
}

TEST(MetricsTest, SizeMismatchAndEmptyRejected) {
  EXPECT_FALSE(Distance({0.5, 0.5}, {1.0}, DistanceMetric::kL1).ok());
  EXPECT_FALSE(Distance({}, {}, DistanceMetric::kL1).ok());
}

TEST(MetricsTest, ParseNamesAndAliases) {
  EXPECT_EQ(ParseDistanceMetric("earth_movers").ValueOrDie(),
            DistanceMetric::kEarthMovers);
  EXPECT_EQ(ParseDistanceMetric("EMD").ValueOrDie(),
            DistanceMetric::kEarthMovers);
  EXPECT_EQ(ParseDistanceMetric("l2").ValueOrDie(),
            DistanceMetric::kEuclidean);
  EXPECT_EQ(ParseDistanceMetric("KL").ValueOrDie(),
            DistanceMetric::kKullbackLeibler);
  EXPECT_EQ(ParseDistanceMetric("js").ValueOrDie(),
            DistanceMetric::kJensenShannon);
  EXPECT_FALSE(ParseDistanceMetric("cosine").ok());
}

TEST(MetricsTest, RoundTripNames) {
  for (DistanceMetric m : AllDistanceMetrics()) {
    EXPECT_EQ(ParseDistanceMetric(DistanceMetricToString(m)).ValueOrDie(), m);
  }
}

// Property tests over random distributions, parameterized by metric.
class MetricPropertyTest : public ::testing::TestWithParam<DistanceMetric> {
 protected:
  static std::vector<double> RandomDistribution(Random* rng, size_t n) {
    std::vector<double> p(n);
    double total = 0;
    for (double& v : p) {
      v = rng->NextDouble() + 1e-6;
      total += v;
    }
    for (double& v : p) v /= total;
    return p;
  }
};

TEST_P(MetricPropertyTest, IdentityOfIndiscernibles) {
  Random rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    auto p = RandomDistribution(&rng, 8);
    EXPECT_NEAR(Distance(p, p, GetParam()).ValueOrDie(), 0.0, 1e-9);
  }
}

TEST_P(MetricPropertyTest, NonNegativity) {
  Random rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    auto p = RandomDistribution(&rng, 6);
    auto q = RandomDistribution(&rng, 6);
    EXPECT_GE(Distance(p, q, GetParam()).ValueOrDie(), 0.0);
  }
}

TEST_P(MetricPropertyTest, GreaterDeviationGreaterDistance) {
  // Mixing q toward p must not increase the distance to p.
  Random rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    auto p = RandomDistribution(&rng, 5);
    auto q = RandomDistribution(&rng, 5);
    std::vector<double> mixed(5);
    for (size_t i = 0; i < 5; ++i) mixed[i] = 0.5 * p[i] + 0.5 * q[i];
    double d_full = Distance(p, q, GetParam()).ValueOrDie();
    double d_half = Distance(p, mixed, GetParam()).ValueOrDie();
    EXPECT_LE(d_half, d_full + 1e-12);
  }
}

TEST_P(MetricPropertyTest, SymmetricMetricsAreSymmetric) {
  if (GetParam() == DistanceMetric::kKullbackLeibler) {
    GTEST_SKIP() << "KL divergence is deliberately asymmetric";
  }
  Random rng(34);
  for (int trial = 0; trial < 20; ++trial) {
    auto p = RandomDistribution(&rng, 7);
    auto q = RandomDistribution(&rng, 7);
    EXPECT_NEAR(Distance(p, q, GetParam()).ValueOrDie(),
                Distance(q, p, GetParam()).ValueOrDie(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricPropertyTest,
    ::testing::ValuesIn(AllDistanceMetrics()),
    [](const ::testing::TestParamInfo<DistanceMetric>& info) {
      return std::string(DistanceMetricToString(info.param));
    });

// MetricUtilityRange is the Hoeffding range the online pruner's intervals
// scale with: it must dominate every achievable distance at the given group
// count (otherwise CI pruning could discard a true top-k view).
TEST(MetricUtilityRangeTest, EmdRangeGrowsWithGroupCount) {
  EXPECT_DOUBLE_EQ(MetricUtilityRange(DistanceMetric::kEarthMovers, 2), 1.0);
  EXPECT_DOUBLE_EQ(MetricUtilityRange(DistanceMetric::kEarthMovers, 6), 5.0);
  EXPECT_DOUBLE_EQ(MetricUtilityRange(DistanceMetric::kEarthMovers, 101),
                   100.0);
  // Degenerate group counts still yield a positive range.
  EXPECT_GT(MetricUtilityRange(DistanceMetric::kEarthMovers, 0), 0.0);
  EXPECT_GT(MetricUtilityRange(DistanceMetric::kEarthMovers, 1), 0.0);
}

TEST(MetricUtilityRangeTest, RangesDominateTheWorstCaseDistance) {
  // Worst case over G bins: all target mass on the first bin, all
  // comparison mass on the last.
  for (DistanceMetric metric : AllDistanceMetrics()) {
    for (size_t groups : {2u, 5u, 23u}) {
      std::vector<double> p(groups, 0.0), q(groups, 0.0);
      p.front() = 1.0;
      q.back() = 1.0;
      double d = Distance(p, q, metric).ValueOrDie();
      EXPECT_LE(d, MetricUtilityRange(metric, groups) + 1e-9)
          << DistanceMetricToString(metric) << " groups=" << groups;
    }
  }
}

}  // namespace
}  // namespace seedb::core
