#include "core/seedb.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "data/synthetic.h"

namespace seedb::core {
namespace {

class SeeDBTest : public ::testing::Test {
 protected:
  SeeDBTest() : engine_(&catalog_), seedb_(&engine_) {
    Status s =
        catalog_.AddTable("sales", ::seedb::testing::MakeLaserwaveTable());
    (void)s;
  }
  db::Catalog catalog_;
  db::Engine engine_;
  SeeDB seedb_;
};

TEST_F(SeeDBTest, LaserwaveViewIsRecommended) {
  // The paper's running example: the Laserwave per-store sales distribution
  // deviates from the overall one, so (store, amount) views should rank top.
  SeeDBOptions options;
  options.k = 3;
  auto result =
      seedb_.Recommend("sales",
                       db::PredicatePtr(db::Eq("product",
                                               db::Value("Laserwave"))),
                       options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->top_views.empty());
  EXPECT_EQ(result->top_views[0].view().dimension, "store");
  EXPECT_GT(result->top_views[0].utility(), 0.0);
  EXPECT_EQ(result->top_views[0].rank, 1u);
}

TEST_F(SeeDBTest, RecommendSqlParsesInputQuery) {
  auto result = seedb_.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->top_views.empty());
  EXPECT_FALSE(seedb_.RecommendSql("SELECT broken").ok());
  EXPECT_FALSE(
      seedb_.RecommendSql("SELECT * FROM missing_table").ok());
}

TEST_F(SeeDBTest, RecommendationCarriesSqlTexts) {
  auto result = seedb_.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'");
  ASSERT_TRUE(result.ok());
  const Recommendation& top = result->top_views[0];
  EXPECT_NE(top.target_sql.find("WHERE product = 'Laserwave'"),
            std::string::npos);
  EXPECT_NE(top.comparison_sql.find("GROUP BY"), std::string::npos);
  EXPECT_NE(top.combined_sql.find("FILTER"), std::string::npos);
}

TEST_F(SeeDBTest, BottomKReturnsLowUtilityViews) {
  SeeDBOptions options;
  options.k = 2;
  options.bottom_k = 2;
  auto result = seedb_.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->low_utility_views.size(), 2u);
  EXPECT_LE(result->low_utility_views[0].utility(),
            result->top_views[0].utility());
}

TEST_F(SeeDBTest, ProfileCountsAreConsistent) {
  SeeDBOptions options;
  auto result = seedb_.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'", options);
  ASSERT_TRUE(result.ok());
  const ExecutionProfile& p = result->profile;
  EXPECT_EQ(p.views_enumerated, p.views_pruned + p.views_executed);
  EXPECT_GT(p.views_executed, 0u);
  EXPECT_GT(p.queries_issued, 0u);
  EXPECT_GT(p.rows_scanned, 0u);
  EXPECT_GE(p.total_seconds, 0.0);
  std::string s = p.ToString();
  EXPECT_NE(s.find("views:"), std::string::npos);
}

TEST_F(SeeDBTest, KLimitsResults) {
  SeeDBOptions options;
  options.k = 1;
  auto result = seedb_.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top_views.size(), 1u);
}

TEST_F(SeeDBTest, MetricChoiceChangesScoresNotValidity) {
  for (DistanceMetric metric : AllDistanceMetrics()) {
    SeeDBOptions options;
    options.metric = metric;
    auto result = seedb_.RecommendSql(
        "SELECT * FROM sales WHERE product = 'Laserwave'", options);
    ASSERT_TRUE(result.ok()) << DistanceMetricToString(metric);
    EXPECT_EQ(result->metric, metric);
    EXPECT_FALSE(result->top_views.empty());
  }
}

TEST_F(SeeDBTest, InvalidSelectionColumnFails) {
  auto result = seedb_.Recommend(
      "sales", db::PredicatePtr(db::Eq("ghost", db::Value("x"))), {});
  EXPECT_FALSE(result.ok());
}

TEST_F(SeeDBTest, TableWithoutDimensionsFails) {
  db::Schema schema({db::ColumnDef::Measure("only_measure")});
  db::Table t(schema);
  Status s = t.AppendRow({db::Value(1.0)});
  (void)s;
  catalog_.PutTable("bare", std::move(t));
  EXPECT_FALSE(seedb_.Recommend("bare", nullptr, {}).ok());
}

TEST(SeeDBSyntheticTest, PlantedDeviationRecoveredAsTopView) {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(8000, 4, 2, 8, /*seed=*/123);
  spec.deviation->strength = 6.0;
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();

  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  SeeDBOptions options;
  options.k = 3;
  auto result = seedb.Recommend("synth", dataset.selection, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // The planted (dim, measure) pair should appear among the top views.
  bool found = false;
  for (const auto& rec : result->top_views) {
    found = found || (rec.view().dimension == dataset.expected_dimension &&
                      rec.view().measure == dataset.expected_measure);
  }
  EXPECT_TRUE(found) << "expected (" << dataset.expected_dimension << ", "
                     << dataset.expected_measure << ") in top views";
}

TEST(SeeDBSyntheticTest, PruningPreservesTopViewRecall) {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(6000, 5, 2, 8, /*seed=*/31);
  spec.deviation->strength = 6.0;
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  SeeDBOptions options;
  options.k = 3;
  options.pruning.enable_variance = true;
  options.pruning.enable_correlation = true;
  auto result = seedb.Recommend("synth", dataset.selection, options);
  ASSERT_TRUE(result.ok()) << result.status();
  bool found = false;
  for (const auto& rec : result->top_views) {
    found = found || (rec.view().dimension == dataset.expected_dimension &&
                      rec.view().measure == dataset.expected_measure);
  }
  EXPECT_TRUE(found);
}

TEST(SeeDBSyntheticTest, MaterializedSamplingFindsPlantedView) {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(20000, 4, 2, 6, /*seed=*/41);
  spec.deviation->strength = 8.0;
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  SeeDBOptions options;
  options.sampling = SamplingStrategy::kMaterialized;
  options.sample_rows = 4000;
  options.sample_seed = 3;
  auto result = seedb.Recommend("synth", dataset.selection, options);
  ASSERT_TRUE(result.ok()) << result.status();

  // The sample table was materialized and cached in the catalog.
  std::string sample_name = "__synth_sample_4000_3";
  ASSERT_TRUE(catalog.HasTable(sample_name));
  EXPECT_EQ((*catalog.GetTable(sample_name))->num_rows(), 4000u);
  // Scan cost reflects the sample, not the base table.
  EXPECT_LE(result->profile.rows_scanned, 4000u);

  // Strong planted deviation survives 5x downsampling.
  bool found = false;
  for (const auto& rec : result->top_views) {
    found = found || (rec.view().dimension == dataset.expected_dimension &&
                      rec.view().measure == dataset.expected_measure);
  }
  EXPECT_TRUE(found);

  // A second call reuses the cached sample (no new table).
  size_t tables_before = catalog.TableNames().size();
  ASSERT_TRUE(seedb.Recommend("synth", dataset.selection, options).ok());
  EXPECT_EQ(catalog.TableNames().size(), tables_before);
}

TEST(SeeDBSyntheticTest, MaterializedSamplingNoopOnSmallTables) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(500, 3, 1, 4, 9);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);
  SeeDBOptions options;
  options.sampling = SamplingStrategy::kMaterialized;
  options.sample_rows = 100000;  // larger than the table
  ASSERT_TRUE(seedb.Recommend("synth", dataset.selection, options).ok());
  EXPECT_EQ(catalog.TableNames().size(), 1u);  // no sample table created
}

TEST(SeeDBSyntheticTest, ParallelismYieldsSameTopView) {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(4000, 4, 2, 6, /*seed=*/77);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  SeeDBOptions serial;
  serial.optimizer = OptimizerOptions::Baseline();
  SeeDBOptions parallel = serial;
  parallel.parallelism = 4;
  auto a = seedb.Recommend("synth", dataset.selection, serial).ValueOrDie();
  auto b = seedb.Recommend("synth", dataset.selection, parallel).ValueOrDie();
  ASSERT_FALSE(a.top_views.empty());
  EXPECT_EQ(a.top_views[0].view(), b.top_views[0].view());
  EXPECT_NEAR(a.top_views[0].utility(), b.top_views[0].utility(), 1e-12);
}

}  // namespace
}  // namespace seedb::core
