#include "core/distribution.h"

#include <gtest/gtest.h>

#include <numeric>

#include "db/group_by.h"
#include "../test_util.h"

namespace seedb::core {
namespace {

TEST(NormalizeTest, SumsToOne) {
  auto p = NormalizeToProbabilities({1.0, 3.0});
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(NormalizeTest, PaperExampleTable1) {
  // §2: (180.55, 145.50, 122.00, 90.13) / 538.18.
  auto p = NormalizeToProbabilities({180.55, 145.50, 122.00, 90.13});
  EXPECT_NEAR(p[0], 180.55 / 538.18, 1e-12);
  EXPECT_NEAR(p[1], 145.50 / 538.18, 1e-12);
  EXPECT_NEAR(p[2], 122.00 / 538.18, 1e-12);
  EXPECT_NEAR(p[3], 90.13 / 538.18, 1e-12);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(NormalizeTest, NegativeValuesNormalizeByMagnitude) {
  // SUM(profit) can be negative: |v| / sum|v| keeps a big loss as
  // distribution-defining as a big gain.
  auto p = NormalizeToProbabilities({-2.0, 0.0, 2.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(NormalizeTest, AllZeroBecomesUniform) {
  auto p = NormalizeToProbabilities({0.0, 0.0, 0.0, 0.0});
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(NormalizeTest, AllEqualNegativeBecomesUniform) {
  auto p = NormalizeToProbabilities({-5.0, -5.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(NormalizeTest, MagnitudeRuleFlagsLossConcentration) {
  // One group with a dominant loss, others mildly positive: the loss group
  // must dominate the distribution (this is how a (region, profit) anomaly
  // becomes visible).
  auto p = NormalizeToProbabilities({-80.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(p[0], 0.8);
  EXPECT_DOUBLE_EQ(p[1], 0.1);
}

TEST(NormalizeTest, EmptyStaysEmpty) {
  EXPECT_TRUE(NormalizeToProbabilities({}).empty());
}

db::Table MakeViewResult(std::vector<std::pair<const char*, double>> rows) {
  db::Schema schema({db::ColumnDef::Dimension("k"),
                     db::ColumnDef::Measure("v")});
  db::Table t(schema);
  for (const auto& [k, v] : rows) {
    Status s = t.AppendRow({db::Value(k), db::Value(v)});
    (void)s;
  }
  return t;
}

TEST(AlignTest, UnionOfKeysSorted) {
  db::Table target = MakeViewResult({{"b", 1.0}, {"a", 3.0}});
  db::Table comparison = MakeViewResult({{"c", 2.0}, {"a", 2.0}});
  auto pair = AlignFromTables(target, comparison).ValueOrDie();
  ASSERT_EQ(pair.target.keys.size(), 3u);
  EXPECT_EQ(pair.target.keys[0], db::Value("a"));
  EXPECT_EQ(pair.target.keys[1], db::Value("b"));
  EXPECT_EQ(pair.target.keys[2], db::Value("c"));
  EXPECT_EQ(pair.target_raw, (std::vector<double>{3.0, 1.0, 0.0}));
  EXPECT_EQ(pair.comparison_raw, (std::vector<double>{2.0, 0.0, 2.0}));
}

TEST(AlignTest, ProbabilitiesSumToOneOnBothSides) {
  db::Table target = MakeViewResult({{"a", 1.0}, {"b", 1.0}});
  db::Table comparison = MakeViewResult({{"a", 4.0}, {"b", 12.0}});
  auto pair = AlignFromTables(target, comparison).ValueOrDie();
  EXPECT_NEAR(std::accumulate(pair.target.probabilities.begin(),
                              pair.target.probabilities.end(), 0.0),
              1.0, 1e-12);
  EXPECT_NEAR(std::accumulate(pair.comparison.probabilities.begin(),
                              pair.comparison.probabilities.end(), 0.0),
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pair.comparison.probabilities[0], 0.25);
}

TEST(AlignTest, CustomValueColumns) {
  db::Schema schema({db::ColumnDef::Dimension("k"),
                     db::ColumnDef::Measure("x"),
                     db::ColumnDef::Measure("y")});
  db::Table t(schema);
  ASSERT_TRUE(t.AppendRow({db::Value("a"), db::Value(1.0), db::Value(9.0)})
                  .ok());
  auto pair = AlignFromTables(t, 2, t, 1).ValueOrDie();
  EXPECT_EQ(pair.target_raw[0], 9.0);
  EXPECT_EQ(pair.comparison_raw[0], 1.0);
}

TEST(AlignTest, RejectsOneColumnTable) {
  db::Schema schema({db::ColumnDef::Dimension("k")});
  db::Table t(schema);
  EXPECT_FALSE(AlignFromTables(t, t).ok());
}

TEST(AlignFromCombinedTest, ExtractsNamedColumns) {
  db::Schema schema({db::ColumnDef::Dimension("k"),
                     db::ColumnDef::Measure("tgt"),
                     db::ColumnDef::Measure("cmp")});
  db::Table t(schema);
  ASSERT_TRUE(
      t.AppendRow({db::Value("a"), db::Value(1.0), db::Value(3.0)}).ok());
  ASSERT_TRUE(
      t.AppendRow({db::Value("b"), db::Value(3.0), db::Value(1.0)}).ok());
  auto pair = AlignFromCombined(t, "tgt", "cmp").ValueOrDie();
  EXPECT_EQ(pair.target_raw, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(pair.comparison_raw, (std::vector<double>{3.0, 1.0}));
  EXPECT_DOUBLE_EQ(pair.target.probabilities[0], 0.25);
  EXPECT_DOUBLE_EQ(pair.comparison.probabilities[0], 0.75);
}

TEST(AlignFromCombinedTest, MissingColumnFails) {
  db::Table t = MakeViewResult({{"a", 1.0}});
  EXPECT_FALSE(AlignFromCombined(t, "nope", "v").ok());
}

TEST(DistributionTest, ToStringShowsKeyProbabilityPairs) {
  Distribution d;
  d.keys = {db::Value("a"), db::Value("b")};
  d.probabilities = {0.25, 0.75};
  std::string s = d.ToString();
  EXPECT_NE(s.find("a: 0.25"), std::string::npos);
  EXPECT_NE(s.find("b: 0.75"), std::string::npos);
}

}  // namespace
}  // namespace seedb::core
