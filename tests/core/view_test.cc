#include "core/view.h"

#include <gtest/gtest.h>

namespace seedb::core {
namespace {

TEST(ViewDescriptorTest, IdFormat) {
  ViewDescriptor v("region", "sales", db::AggregateFunction::kSum);
  EXPECT_EQ(v.Id(), "SUM(sales) BY region");
  ViewDescriptor count("region", "", db::AggregateFunction::kCount);
  EXPECT_EQ(count.Id(), "COUNT(*) BY region");
}

TEST(ViewDescriptorTest, EqualityAndOrdering) {
  ViewDescriptor a("d1", "m1", db::AggregateFunction::kSum);
  ViewDescriptor b("d1", "m1", db::AggregateFunction::kSum);
  ViewDescriptor c("d1", "m1", db::AggregateFunction::kAvg);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
  ViewDescriptor d("d0", "m1", db::AggregateFunction::kSum);
  EXPECT_LT(d, a);  // dimension is the primary sort key
}

TEST(ViewDescriptorTest, HashConsistentWithEquality) {
  ViewDescriptorHash h;
  ViewDescriptor a("d", "m", db::AggregateFunction::kSum);
  ViewDescriptor b("d", "m", db::AggregateFunction::kSum);
  EXPECT_EQ(h(a), h(b));
}

TEST(ViewQueryTest, TargetViewMatchesPaperForm) {
  // §2: SELECT a, f(m) FROM D_Q GROUP BY a.
  ViewDescriptor v("store", "amount", db::AggregateFunction::kSum);
  db::PredicatePtr q(db::Eq("product", db::Value("Laserwave")));
  db::GroupByQuery target = TargetViewQuery(v, "sales", q);
  EXPECT_EQ(target.ToSql(),
            "SELECT store, SUM(amount) AS SUM_amount_tgt FROM sales WHERE "
            "product = 'Laserwave' GROUP BY store");
}

TEST(ViewQueryTest, ComparisonViewHasNoWhere) {
  ViewDescriptor v("store", "amount", db::AggregateFunction::kSum);
  db::GroupByQuery cmp = ComparisonViewQuery(v, "sales");
  EXPECT_TRUE(cmp.where == nullptr);
  EXPECT_EQ(cmp.group_by, (std::vector<std::string>{"store"}));
  EXPECT_EQ(cmp.ToSql(),
            "SELECT store, SUM(amount) AS SUM_amount_cmp FROM sales "
            "GROUP BY store");
}

TEST(ViewQueryTest, CombinedViewUsesFilter) {
  ViewDescriptor v("store", "amount", db::AggregateFunction::kSum);
  db::PredicatePtr q(db::Eq("product", db::Value("Laserwave")));
  db::GroupByQuery combined = CombinedViewQuery(v, "sales", q);
  EXPECT_TRUE(combined.where == nullptr);  // scans everything once
  ASSERT_EQ(combined.aggregates.size(), 2u);
  EXPECT_TRUE(combined.aggregates[0].filter != nullptr);
  EXPECT_TRUE(combined.aggregates[1].filter == nullptr);
  std::string sql = combined.ToSql();
  EXPECT_NE(sql.find("FILTER (WHERE product = 'Laserwave')"),
            std::string::npos);
  EXPECT_NE(sql.find("SUM_amount_tgt"), std::string::npos);
  EXPECT_NE(sql.find("SUM_amount_cmp"), std::string::npos);
}

TEST(ViewQueryTest, ColumnNamesDistinguishHalvesAndViews) {
  ViewDescriptor v1("a", "m", db::AggregateFunction::kSum);
  ViewDescriptor v2("a", "m", db::AggregateFunction::kAvg);
  EXPECT_NE(TargetColumnName(v1), ComparisonColumnName(v1));
  EXPECT_NE(TargetColumnName(v1), TargetColumnName(v2));
  ViewDescriptor star("a", "", db::AggregateFunction::kCount);
  EXPECT_EQ(TargetColumnName(star), "COUNT_star_tgt");
}

TEST(ViewQueryTest, NullSelectionMeansWholeTableTarget) {
  ViewDescriptor v("a", "m", db::AggregateFunction::kSum);
  db::GroupByQuery target = TargetViewQuery(v, "t", nullptr);
  EXPECT_TRUE(target.where == nullptr);
}

}  // namespace
}  // namespace seedb::core
