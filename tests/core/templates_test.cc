#include "core/templates.h"

#include <gtest/gtest.h>

#include "core/seedb.h"
#include "data/synthetic.h"
#include "db/sql/parser.h"

namespace seedb::core {
namespace {

class TemplatesTest : public ::testing::Test {
 protected:
  TemplatesTest() : engine_(&catalog_) {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(3000, 3, 2, 5, 23);
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    Status s = catalog_.AddTable("t", std::move(dataset.table));
    (void)s;
  }

  size_t CountMatching(const db::PredicatePtr& pred) {
    const db::Table* table = catalog_.GetTable("t").ValueOrDie();
    std::vector<uint8_t> mask;
    Status s = pred->EvaluateMask(*table, &mask);
    (void)s;
    return static_cast<size_t>(
        std::count(mask.begin(), mask.end(), uint8_t{1}));
  }

  db::Catalog catalog_;
  db::Engine engine_;
};

TEST_F(TemplatesTest, OutlierTemplateSelectsTails) {
  auto q = OutlierTemplate(&engine_, "t", "m0", 2.0).ValueOrDie();
  size_t matched = CountMatching(q.selection);
  // Gaussian data: ~4.6% beyond 2 sigma; the planted deviation inflates the
  // upper tail somewhat.
  EXPECT_GT(matched, 30u);
  EXPECT_LT(matched, 900u);
  EXPECT_NE(q.sql.find("SELECT * FROM t WHERE"), std::string::npos);
  EXPECT_NE(q.description.find("m0"), std::string::npos);
}

TEST_F(TemplatesTest, OutlierTemplateSqlParsesBack) {
  auto q = OutlierTemplate(&engine_, "t", "m0").ValueOrDie();
  auto parsed = db::sql::ParseInputQuery(q.sql);
  ASSERT_TRUE(parsed.ok()) << q.sql;
  EXPECT_EQ(parsed->table, "t");
  EXPECT_TRUE(parsed->selection != nullptr);
}

TEST_F(TemplatesTest, OutlierTemplateRejectsBadInputs) {
  EXPECT_FALSE(OutlierTemplate(&engine_, "t", "dim0").ok());    // string col
  EXPECT_FALSE(OutlierTemplate(&engine_, "t", "ghost").ok());   // missing
  EXPECT_FALSE(OutlierTemplate(&engine_, "t", "m0", 0.0).ok()); // bad sigma
  EXPECT_FALSE(OutlierTemplate(&engine_, "ghost", "m0").ok());  // no table
}

TEST_F(TemplatesTest, TopValueTemplateSelectsDominantValue) {
  auto q = TopValueTemplate(&engine_, "t", "dim0").ValueOrDie();
  size_t matched = CountMatching(q.selection);
  // 5 uniform values over 3000 rows: the mode holds >= 1/5 of rows.
  EXPECT_GE(matched, 3000u / 5u);
  EXPECT_NE(q.description.find("most frequent"), std::string::npos);
}

TEST_F(TemplatesTest, HighValueTemplateSelectsUpperRange) {
  auto q = HighValueTemplate(&engine_, "t", "m0", 0.25).ValueOrDie();
  size_t matched = CountMatching(q.selection);
  EXPECT_GT(matched, 0u);
  EXPECT_LT(matched, 3000u);
  EXPECT_FALSE(HighValueTemplate(&engine_, "t", "m0", 0.0).ok());
  EXPECT_FALSE(HighValueTemplate(&engine_, "t", "m0", 1.0).ok());
}

TEST_F(TemplatesTest, TemplateQueryDrivesRecommendation) {
  // End to end: template -> SeeDB recommendation (the §3.2 one-click flow).
  auto q = TopValueTemplate(&engine_, "t", "dim0").ValueOrDie();
  SeeDB seedb(&engine_);
  auto result = seedb.RecommendSql(q.sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->top_views.empty());
}

}  // namespace
}  // namespace seedb::core
