#include "core/bin_packing.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/random.h"

namespace seedb::core {
namespace {

std::vector<BinPackingItem> MakeItems(std::vector<uint64_t> weights) {
  std::vector<BinPackingItem> items;
  for (size_t i = 0; i < weights.size(); ++i) {
    items.push_back({i, weights[i]});
  }
  return items;
}

// Every bin respects capacity (unless it is a singleton oversized item) and
// every item appears exactly once.
void CheckValid(const std::vector<BinPackingItem>& items,
                const BinPackingSolution& solution,
                const BinPackingOptions& options) {
  std::set<size_t> seen;
  for (const auto& bin : solution.bins) {
    uint64_t load = 0;
    for (size_t id : bin) {
      EXPECT_TRUE(seen.insert(id).second) << "item " << id << " duplicated";
      load += items[id].weight;
    }
    if (bin.size() > 1) {
      EXPECT_LE(load, options.capacity);
    }
    if (options.max_items_per_bin > 0) {
      EXPECT_LE(bin.size(), options.max_items_per_bin);
    }
  }
  EXPECT_EQ(seen.size(), items.size());
}

TEST(FfdTest, AllFitInOneBin) {
  auto items = MakeItems({10, 20, 30});
  BinPackingOptions options;
  options.capacity = 100;
  auto solution = FirstFitDecreasing(items, options);
  EXPECT_EQ(solution.num_bins(), 1u);
  CheckValid(items, solution, options);
}

TEST(FfdTest, EachNeedsOwnBin) {
  auto items = MakeItems({60, 70, 80});
  BinPackingOptions options;
  options.capacity = 100;
  auto solution = FirstFitDecreasing(items, options);
  EXPECT_EQ(solution.num_bins(), 3u);
  CheckValid(items, solution, options);
}

TEST(FfdTest, OversizedItemGetsSingletonBin) {
  auto items = MakeItems({500, 10});
  BinPackingOptions options;
  options.capacity = 100;
  auto solution = FirstFitDecreasing(items, options);
  EXPECT_EQ(solution.num_bins(), 2u);
  CheckValid(items, solution, options);
}

TEST(FfdTest, MaxItemsPerBinRespected) {
  auto items = MakeItems({1, 1, 1, 1, 1});
  BinPackingOptions options;
  options.capacity = 100;
  options.max_items_per_bin = 2;
  auto solution = FirstFitDecreasing(items, options);
  EXPECT_EQ(solution.num_bins(), 3u);
  CheckValid(items, solution, options);
}

TEST(FfdTest, EmptyInput) {
  BinPackingOptions options;
  auto solution = FirstFitDecreasing({}, options);
  EXPECT_EQ(solution.num_bins(), 0u);
}

TEST(ExactTest, FindsOptimalWhereFfdFails) {
  // Classic FFD-suboptimal instance: capacity 10,
  // weights {6, 5, 5, 4}: FFD gives [6,4][5,5] = 2 — fine; use a case where
  // FFD is provably worse: capacity 10, {3, 3, 3, 3, 4, 4, 4, 4, 5, 5}.
  // Optimal: 4 bins ([5,5],[4,3,3],[4,3,3],[4,4]) FFD: [5,5],[4,4],[4,4],
  // [3,3,3],[3] = 5 bins.
  auto items = MakeItems({3, 3, 3, 3, 4, 4, 4, 4, 5, 5});
  BinPackingOptions options;
  options.capacity = 10;
  auto ffd = FirstFitDecreasing(items, options);
  auto exact = ExactBinPacking(items, options);
  CheckValid(items, exact, options);
  EXPECT_TRUE(exact.exact);
  EXPECT_EQ(exact.num_bins(), 4u);
  EXPECT_GE(ffd.num_bins(), exact.num_bins());
}

TEST(ExactTest, EmptyInputIsExact) {
  auto solution = ExactBinPacking({}, {});
  EXPECT_TRUE(solution.exact);
  EXPECT_EQ(solution.num_bins(), 0u);
}

TEST(ExactTest, SingleItem) {
  auto items = MakeItems({42});
  BinPackingOptions options;
  options.capacity = 100;
  auto solution = ExactBinPacking(items, options);
  EXPECT_EQ(solution.num_bins(), 1u);
}

TEST(PackBinsTest, DispatchesBySize) {
  BinPackingOptions options;
  options.capacity = 10;
  options.exact_solver_limit = 4;
  auto small = PackBins(MakeItems({5, 5, 5}), options);
  EXPECT_TRUE(small.exact);
  std::vector<uint64_t> many(10, 5);
  auto large = PackBins(MakeItems(many), options);
  EXPECT_FALSE(large.exact);
}

// Property sweep: on random instances the exact solver is valid, never worse
// than FFD, and never below the capacity lower bound.
class BinPackingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BinPackingPropertyTest, ExactNeverWorseThanFfdAndAboveLowerBound) {
  Random rng(static_cast<uint64_t>(GetParam()));
  size_t n = 3 + rng.Uniform(8);  // up to 10 items
  std::vector<uint64_t> weights;
  for (size_t i = 0; i < n; ++i) weights.push_back(1 + rng.Uniform(50));
  auto items = MakeItems(weights);
  BinPackingOptions options;
  options.capacity = 60;

  auto ffd = FirstFitDecreasing(items, options);
  auto exact = ExactBinPacking(items, options);
  CheckValid(items, ffd, options);
  CheckValid(items, exact, options);
  EXPECT_LE(exact.num_bins(), ffd.num_bins());

  uint64_t total = std::accumulate(weights.begin(), weights.end(),
                                   uint64_t{0});
  size_t lower_bound =
      static_cast<size_t>((total + options.capacity - 1) / options.capacity);
  EXPECT_GE(exact.num_bins(), lower_bound);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BinPackingPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace seedb::core
