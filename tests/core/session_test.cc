#include "core/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "../test_util.h"
#include "data/synthetic.h"
#include "data/workload.h"

namespace seedb::core {
namespace {

// Shared environment: a synthetic dataset with a planted deviation, big
// enough for multi-phase runs to see several boundaries.
class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(
        /*rows=*/8000, /*num_dims=*/4, /*num_measures=*/2,
        /*cardinality=*/6, /*seed=*/123);
    spec.deviation->strength = 6.0;
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    catalog_ = new db::Catalog();
    ASSERT_TRUE(catalog_->AddTable("synth", std::move(dataset.table)).ok());
    engine_ = new db::Engine(catalog_);
    selection_ = dataset.selection;
    // Warm the stats cache so concurrent sessions do not race on first use.
    ASSERT_TRUE(catalog_->GetStats("synth").ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
    engine_ = nullptr;
    catalog_ = nullptr;
  }

  static SeeDBRequest PhasedRequest(size_t phases, size_t k = 3) {
    return SeeDBRequest("synth")
        .Where(selection_)
        .WithTopK(k)
        .WithPhases(phases);
  }

  static std::vector<std::string> TopIds(const RecommendationSet& set) {
    std::vector<std::string> ids;
    for (const auto& rec : set.top_views) ids.push_back(rec.view().Id());
    return ids;
  }

  static db::Catalog* catalog_;
  static db::Engine* engine_;
  static db::PredicatePtr selection_;
};

db::Catalog* SessionTest::catalog_ = nullptr;
db::Engine* SessionTest::engine_ = nullptr;
db::PredicatePtr SessionTest::selection_;

TEST_F(SessionTest, OneProgressUpdatePerPhase) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(5));
  ASSERT_TRUE(session.ok()) << session.status();

  size_t updates = 0;
  uint64_t last_rows = 0;
  while (true) {
    auto update = session->Next();
    ASSERT_TRUE(update.ok()) << update.status();
    if (!update->has_value()) break;
    const ProgressUpdate& u = **update;
    ++updates;
    EXPECT_EQ(u.phase, updates);
    EXPECT_EQ(u.total_phases, 5u);
    EXPECT_GT(u.rows_scanned, last_rows);
    last_rows = u.rows_scanned;
    EXPECT_EQ(u.total_rows, 8000u);
    EXPECT_GT(u.views_active, 0u);
    // Every boundary carries a provisional top-k with CI bounds around the
    // running estimate.
    ASSERT_FALSE(u.top_views.empty());
    EXPECT_LE(u.top_views.size(), 3u);
    for (const ProvisionalView& pv : u.top_views) {
      EXPECT_LE(pv.lower, pv.utility);
      EXPECT_GE(pv.upper, pv.utility);
    }
    for (size_t i = 1; i < u.top_views.size(); ++i) {
      EXPECT_GE(u.top_views[i - 1].utility, u.top_views[i].utility);
    }
  }
  EXPECT_EQ(updates, 5u);
  EXPECT_EQ(last_rows, 8000u);

  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->profile.phases_executed, 5u);
  EXPECT_FALSE(set->profile.cancelled);
}

TEST_F(SessionTest, DrainedSessionMatchesBlockingRecommend) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(4));
  ASSERT_TRUE(session.ok());
  while ((*session->Next())->phase < 4) {
  }
  auto streamed = session->Finish();
  ASSERT_TRUE(streamed.ok());

  SeeDBOptions options;
  options.k = 3;
  options.strategy = ExecutionStrategy::kPhasedSharedScan;
  options.online_pruning.num_phases = 4;
  auto blocking = seedb.Recommend("synth", selection_, options);
  ASSERT_TRUE(blocking.ok());

  ASSERT_EQ(streamed->top_views.size(), blocking->top_views.size());
  for (size_t i = 0; i < streamed->top_views.size(); ++i) {
    EXPECT_EQ(streamed->top_views[i].view(), blocking->top_views[i].view());
    EXPECT_NEAR(streamed->top_views[i].utility(),
                blocking->top_views[i].utility(), 1e-12);
  }
}

TEST_F(SessionTest, LastUpdateOfNonPhasedStrategiesCarriesFinalRanking) {
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kPerQuery, ExecutionStrategy::kSharedScan}) {
    SeeDB seedb(engine_);
    auto session = seedb.Open(
        SeeDBRequest("synth").Where(selection_).WithTopK(2).WithStrategy(
            strategy));
    ASSERT_TRUE(session.ok());
    auto update = session->Next();
    ASSERT_TRUE(update.ok());
    ASSERT_TRUE(update->has_value());
    EXPECT_EQ((*update)->phase, 1u);
    ASSERT_EQ((*update)->top_views.size(), 2u);
    auto none = session->Next();
    ASSERT_TRUE(none.ok());
    EXPECT_FALSE(none->has_value());
    auto set = session->Finish();
    ASSERT_TRUE(set.ok());
    EXPECT_EQ((*update)->top_views[0].view, set->top_views[0].view());
  }
}

TEST_F(SessionTest, CancelBetweenPhasesYieldsPartialResults) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(8));
  ASSERT_TRUE(session.ok());
  auto first = session->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());

  session->Cancel();
  EXPECT_TRUE(session->done());
  auto none = session->Next();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_TRUE(set->profile.cancelled);
  // Only the first of 8 phases ran; results estimate from that slice.
  EXPECT_EQ(set->profile.phases_executed, 1u);
  EXPECT_FALSE(set->top_views.empty());
  EXPECT_LT(set->profile.rows_scanned, 8000u);
}

TEST_F(SessionTest, CancelledSessionLeavesEngineReusable) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(8));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Next().ok());
  session->Cancel();
  ASSERT_TRUE(session->Finish().ok());

  // The same engine serves a fresh full run afterwards.
  auto fresh = seedb.Run(PhasedRequest(4));
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->top_views.empty());
  EXPECT_FALSE(fresh->profile.cancelled);
}

TEST_F(SessionTest, CancelBeforeFirstPhaseReturnsImmediately) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(4));
  ASSERT_TRUE(session.ok());
  session->Cancel();
  auto none = session->Next();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_TRUE(set->profile.cancelled);
  EXPECT_TRUE(set->top_views.empty());  // nothing was scanned
}

TEST_F(SessionTest, CancelFromAnotherThreadMidRun) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(16));
  ASSERT_TRUE(session.ok());

  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) std::this_thread::yield();
    session->Cancel();
  });
  size_t updates = 0;
  while (true) {
    started.store(true);
    auto update = session->Next();
    ASSERT_TRUE(update.ok());
    if (!update->has_value()) break;
    ++updates;
  }
  canceller.join();
  EXPECT_LE(updates, 16u);
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  // The cancel may race past the last phase; "cancelled" is only flagged
  // when the scan was actually truncated.
  EXPECT_EQ(set->profile.cancelled, set->profile.phases_executed < 16u);
}

TEST_F(SessionTest, ConcurrentSessionsOnOneEngineAreSafe) {
  SeeDB seedb(engine_);
  auto serial = seedb.Run(PhasedRequest(4));
  ASSERT_TRUE(serial.ok());
  const std::vector<std::string> expected = TopIds(*serial);

  constexpr int kSessions = 4;
  std::vector<std::vector<std::string>> results(kSessions);
  std::vector<ExecutionProfile> profiles(kSessions);
  std::vector<Status> statuses(kSessions, Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = seedb.Open(PhasedRequest(4));
      if (!session.ok()) {
        statuses[i] = session.status();
        return;
      }
      while (true) {
        auto update = session->Next();
        if (!update.ok()) {
          statuses[i] = update.status();
          return;
        }
        if (!update->has_value()) break;
      }
      auto set = session->Finish();
      if (!set.ok()) {
        statuses[i] = set.status();
        return;
      }
      results[i] = TopIds(*set);
      profiles[i] = set->profile;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i];
    EXPECT_EQ(results[i], expected) << "session " << i;
    // Profiles attribute the session's OWN work, not the engine-wide total
    // the overlapping sessions racked up together.
    EXPECT_EQ(profiles[i].table_scans, 1u) << "session " << i;
    EXPECT_EQ(profiles[i].rows_scanned, 8000u) << "session " << i;
  }
}

TEST_F(SessionTest, SharedScanStrategyIsCancellableToo) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(SeeDBRequest("synth")
                                .Where(selection_)
                                .WithTopK(3)
                                .WithStrategy(ExecutionStrategy::kSharedScan));
  ASSERT_TRUE(session.ok());
  session->Cancel();
  // The one-shot fused scan observes the token before any morsel: the run
  // completes with partial (here: empty) results, not an error.
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_TRUE(set->profile.cancelled);
  EXPECT_EQ(set->profile.rows_scanned, 0u);
}

TEST_F(SessionTest, OnlinePrunedViewsCarryPartialEstimates) {
  SeeDB seedb(engine_);
  OnlinePruningOptions pruning;
  pruning.num_phases = 4;
  pruning.pruner = OnlinePruner::kMultiArmedBandit;
  auto set = seedb.Run(SeeDBRequest("synth")
                           .Where(selection_)
                           .WithTopK(2)
                           .WithOnlinePruning(pruning));
  ASSERT_TRUE(set.ok()) << set.status();

  ASSERT_GT(set->online_pruned_views.size(), 0u);
  EXPECT_EQ(set->online_pruned_views.size(),
            set->profile.views_pruned_online);
  EXPECT_EQ(set->profile.examined_view_count,
            set->profile.views_executed - set->profile.views_pruned_online);

  std::set<std::string> survivors;
  for (const auto& rec : set->top_views) survivors.insert(rec.view().Id());
  for (const OnlinePrunedView& pv : set->online_pruned_views) {
    EXPECT_GE(pv.pruned_at_phase, 1u);
    EXPECT_LT(pv.pruned_at_phase, 4u);
    EXPECT_GT(pv.rows_seen, 0u);
    EXPECT_GE(pv.partial_utility, 0.0);
    EXPECT_FALSE(survivors.count(pv.view.Id()))
        << pv.view.Id() << " was pruned yet recommended";
  }
}

TEST_F(SessionTest, BottomKRanksOnlyExaminedSurvivors) {
  SeeDB seedb(engine_);
  OnlinePruningOptions pruning;
  pruning.num_phases = 4;
  pruning.pruner = OnlinePruner::kMultiArmedBandit;
  auto set = seedb.Run(SeeDBRequest("synth")
                           .Where(selection_)
                           .WithTopK(2)
                           .WithBottomK(3)
                           .WithOnlinePruning(pruning));
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_GT(set->online_pruned_views.size(), 0u);
  ASSERT_FALSE(set->low_utility_views.empty());

  // Bottom-k never resurrects a pruned view: it ranks survivors only.
  std::set<std::string> pruned;
  for (const auto& pv : set->online_pruned_views) pruned.insert(pv.view.Id());
  for (const auto& rec : set->low_utility_views) {
    EXPECT_FALSE(pruned.count(rec.view().Id())) << rec.view().Id();
  }
  EXPECT_LE(set->low_utility_views.size(),
            set->profile.examined_view_count);
}

TEST_F(SessionTest, RequestFromSqlMatchesRecommendSql) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(500, 3, 1, 4, 7);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  auto request = SeeDBRequest::FromSql("SELECT * FROM t WHERE dim0 = 'v0'");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->table(), "t");
  auto via_request = seedb.Run(request->WithTopK(2));
  ASSERT_TRUE(via_request.ok());

  SeeDBOptions options;
  options.k = 2;
  auto via_sql =
      seedb.RecommendSql("SELECT * FROM t WHERE dim0 = 'v0'", options);
  ASSERT_TRUE(via_sql.ok());
  ASSERT_EQ(via_request->top_views.size(), via_sql->top_views.size());
  for (size_t i = 0; i < via_sql->top_views.size(); ++i) {
    EXPECT_EQ(via_request->top_views[i].view(), via_sql->top_views[i].view());
  }

  EXPECT_FALSE(SeeDBRequest::FromSql("SELECT broken").ok());
}

// The acceptance shape, pinned on the E8 bench workload itself: one update
// per phase, each carrying a provisional top-k; the final set lists pruned
// views with partial estimates.
TEST(SessionE8WorkloadTest, ProgressPerPhaseWithProvisionalTopK) {
  data::WorkloadSpec spec;
  spec.rows = 20000;
  spec.num_dims = 5;
  spec.num_measures = 2;
  auto workload = data::BuildWorkload(spec).ValueOrDie();
  SeeDB seedb(workload.engine.get());

  OnlinePruningOptions pruning;
  pruning.num_phases = 6;
  pruning.pruner = OnlinePruner::kMultiArmedBandit;
  auto session = seedb.Open(SeeDBRequest(workload.table_name)
                                .Where(workload.selection)
                                .WithTopK(3)
                                .WithOnlinePruning(pruning));
  ASSERT_TRUE(session.ok()) << session.status();

  size_t updates = 0;
  while (true) {
    auto update = session->Next();
    ASSERT_TRUE(update.ok()) << update.status();
    if (!update->has_value()) break;
    ++updates;
    EXPECT_EQ((*update)->phase, updates);
    EXPECT_FALSE((*update)->top_views.empty());
  }
  EXPECT_EQ(updates, 6u);

  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_GT(set->online_pruned_views.size(), 0u);
  for (const auto& pv : set->online_pruned_views) {
    EXPECT_GT(pv.rows_seen, 0u);
  }

  // The blocking wrapper with identical options lands on the identical
  // ranking — Recommend() really is a thin wrapper over the session.
  SeeDBOptions options;
  options.k = 3;
  options.strategy = ExecutionStrategy::kPhasedSharedScan;
  options.online_pruning = pruning;
  auto blocking =
      seedb.Recommend(workload.table_name, workload.selection, options);
  ASSERT_TRUE(blocking.ok());
  ASSERT_EQ(blocking->top_views.size(), set->top_views.size());
  for (size_t i = 0; i < set->top_views.size(); ++i) {
    EXPECT_EQ(blocking->top_views[i].view(), set->top_views[i].view());
  }
  EXPECT_EQ(blocking->online_pruned_views.size(),
            set->online_pruned_views.size());
}

// --- Early stop (§3.3 endgame): CI-stable top-k ends the scan. ---

TEST(SessionEarlyStopTest, EarlyStopMatchesExhaustiveOnLaserwave) {
  db::Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable("sales", ::seedb::testing::MakeLaserwaveTable()).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);
  auto laserwave = db::PredicatePtr(db::Eq("product", db::Value("Laserwave")));

  SeeDBRequest exhaustive("sales");
  exhaustive.Where(laserwave).WithTopK(1).WithPhases(9);
  auto truth = seedb.Run(exhaustive);
  ASSERT_TRUE(truth.ok()) << truth.status();
  ASSERT_FALSE(truth->profile.early_stopped);

  // Loose delta and a tight utility range shrink the Hoeffding interval
  // enough to separate the top view after a few boundaries.
  SeeDBRequest stopping("sales");
  stopping.Where(laserwave).WithTopK(1).WithPhases(9).WithEarlyStop(2);
  {
    SeeDBOptions opts = stopping.options();
    opts.online_pruning.delta = 0.5;
    opts.online_pruning.utility_range = 0.05;
    stopping.WithOptions(opts);
  }
  auto stopped = seedb.Run(stopping);
  ASSERT_TRUE(stopped.ok()) << stopped.status();
  EXPECT_TRUE(stopped->profile.early_stopped);
  EXPECT_LT(stopped->profile.phases_executed, 9u);

  // The early-stopped top-k names the same view the exhaustive scan does.
  ASSERT_FALSE(stopped->top_views.empty());
  EXPECT_EQ(stopped->top_views[0].view(), truth->top_views[0].view());
}

// --- Per-session memory budgets (SeeDBOptions::memory_budget_bytes). ---

TEST_F(SessionTest, MemoryBudgetExceededMidScanIsACleanError) {
  SeeDB seedb(engine_);
  // A budget no real aggregation state fits: the first phase trips it.
  auto session = seedb.Open(PhasedRequest(4).WithMemoryBudget(64));
  ASSERT_TRUE(session.ok()) << session.status();
  auto update = session->Next();
  ASSERT_FALSE(update.ok());
  EXPECT_EQ(update.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(session->budget_exceeded());
  EXPECT_TRUE(session->done());
  // Further Next()s are a clean no-more-work, not another error.
  auto drained = session->Next();
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained->has_value());

  // Finish() assembles partial results over the one phase that ran.
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_TRUE(set->profile.budget_exceeded);
  EXPECT_EQ(set->profile.phases_executed, 1u);
  EXPECT_LT(set->profile.rows_scanned, 8000u);
  EXPECT_FALSE(set->top_views.empty());

  // The engine is unharmed: a budget-free run still works.
  auto fresh = seedb.Run(PhasedRequest(4));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->profile.budget_exceeded);
}

TEST_F(SessionTest, GenerousMemoryBudgetNeverTriggers) {
  SeeDB seedb(engine_);
  auto set = seedb.Run(PhasedRequest(4).WithMemoryBudget(1ull << 30));
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_FALSE(set->profile.budget_exceeded);
  EXPECT_EQ(set->profile.phases_executed, 4u);
}

TEST_F(SessionTest, BudgetStopsTheSilentFinishDrainToo) {
  SeeDB seedb(engine_);
  // Finish() without any Next(): the drain itself must respect the budget
  // instead of scanning to the end.
  auto session = seedb.Open(PhasedRequest(8).WithMemoryBudget(64));
  ASSERT_TRUE(session.ok());
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_TRUE(set->profile.budget_exceeded);
  EXPECT_EQ(set->profile.phases_executed, 1u);
  EXPECT_TRUE(session->budget_exceeded());
}

// Budget enforcement is strategy-complete: the blocking strategies return
// the same graceful OutOfRange from Next() as the phased path, and Finish()
// assembles partial results with profile.budget_exceeded set.
TEST_F(SessionTest, BlockingStrategiesEnforceTheBudgetToo) {
  SeeDB seedb(engine_);
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kPerQuery, ExecutionStrategy::kSharedScan}) {
    SeeDBRequest request =
        SeeDBRequest("synth").Where(selection_).WithTopK(3).WithMemoryBudget(
            64);
    {
      SeeDBOptions opts = request.options();
      opts.strategy = strategy;
      request.WithOptions(opts);
    }
    auto session = seedb.Open(request);
    ASSERT_TRUE(session.ok()) << session.status();
    auto update = session->Next();
    ASSERT_FALSE(update.ok())
        << ExecutionStrategyToString(strategy) << " ignored the budget";
    EXPECT_EQ(update.status().code(), StatusCode::kOutOfRange);
    EXPECT_TRUE(session->budget_exceeded());
    EXPECT_TRUE(session->done());
    auto set = session->Finish();
    ASSERT_TRUE(set.ok()) << set.status();
    EXPECT_TRUE(set->profile.budget_exceeded);

    // A generous budget under the same strategy is untouched.
    SeeDBRequest fine =
        SeeDBRequest("synth").Where(selection_).WithTopK(3).WithMemoryBudget(
            1ull << 30);
    {
      SeeDBOptions opts = fine.options();
      opts.strategy = strategy;
      fine.WithOptions(opts);
    }
    auto ok = seedb.Run(fine);
    ASSERT_TRUE(ok.ok()) << ok.status();
    EXPECT_FALSE(ok->profile.budget_exceeded);
    EXPECT_FALSE(ok->top_views.empty());
  }
}

TEST_F(SessionTest, FusedProfileReportsVectorizedMorsels) {
  SeeDB seedb(engine_);
  SeeDBRequest request = SeeDBRequest("synth").Where(selection_).WithTopK(3);
  {
    SeeDBOptions opts = request.options();
    opts.strategy = ExecutionStrategy::kSharedScan;
    request.WithOptions(opts);
  }
  auto set = seedb.Run(request);
  ASSERT_TRUE(set.ok()) << set.status();
  // Synthetic dimensions are small categorical dictionaries: the fused scan
  // must take the vectorized inner loop for every morsel.
  EXPECT_GT(set->profile.vectorized_morsels, 0u);

  auto per_query = seedb.Run(SeeDBRequest("synth").Where(selection_));
  ASSERT_TRUE(per_query.ok());
  EXPECT_EQ(per_query->profile.vectorized_morsels, 0u);
}

TEST_F(SessionTest, ProgressUpdatesCarryTheMemoryFootprint) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(3));
  ASSERT_TRUE(session.ok());
  auto update = session->Next();
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(update->has_value());
  EXPECT_GT((*update)->memory_bytes, 0u);
  EXPECT_EQ((*update)->memory_bytes, session->memory_bytes());
  ASSERT_TRUE(session->Finish().ok());
}

// --- ProgressSink: push-style updates. ---

TEST_F(SessionTest, ProgressSinkSeesEveryPhaseIncludingFinishDrain) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(PhasedRequest(5));
  ASSERT_TRUE(session.ok());
  std::vector<ProgressUpdate> pushed;
  session->SetProgressSink(
      [&pushed](const ProgressUpdate& u) { pushed.push_back(u); });

  // Two polled phases, then Finish() drains the remaining three — the sink
  // must see all five, in order, with the drained phases' provisional
  // rankings included (a sink-less Finish drain skips estimate collection).
  ASSERT_TRUE(session->Next().ok());
  ASSERT_TRUE(session->Next().ok());
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_EQ(pushed.size(), 5u);
  for (size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(pushed[i].phase, i + 1);
    EXPECT_FALSE(pushed[i].top_views.empty()) << "phase " << i + 1;
  }
  EXPECT_EQ(set->profile.phases_executed, 5u);
}

TEST_F(SessionTest, ProgressSinkFiresOnceForBlockingStrategies) {
  SeeDB seedb(engine_);
  auto session = seedb.Open(SeeDBRequest("synth")
                                .Where(selection_)
                                .WithTopK(2)
                                .WithStrategy(ExecutionStrategy::kSharedScan));
  ASSERT_TRUE(session.ok());
  size_t pushes = 0;
  ProvisionalView first_top;
  session->SetProgressSink([&](const ProgressUpdate& u) {
    ++pushes;
    if (!u.top_views.empty()) first_top = u.top_views[0];
  });
  auto set = session->Finish();  // no Next() at all
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(pushes, 1u);
  ASSERT_FALSE(set->top_views.empty());
  EXPECT_EQ(first_top.view, set->top_views[0].view());
}

// --- Resume-after-cancel: the session keeps its merged aggregates. ---

class SessionResumeTest : public ::testing::Test {
 protected:
  SessionResumeTest() : engine_(&catalog_) {
    Status added =
        catalog_.AddTable("sales", ::seedb::testing::MakeLaserwaveTable());
    EXPECT_TRUE(added.ok());
    laserwave_ = db::PredicatePtr(db::Eq("product", db::Value("Laserwave")));
  }

  SeeDBRequest Request(size_t phases) {
    return SeeDBRequest("sales").Where(laserwave_).WithTopK(2).WithPhases(
        phases);
  }

  db::Catalog catalog_;
  db::Engine engine_;
  db::PredicatePtr laserwave_;
};

TEST_F(SessionResumeTest, CancelThenResumeEqualsUninterruptedRun) {
  SeeDB seedb(&engine_);
  auto truth = seedb.Run(Request(6));
  ASSERT_TRUE(truth.ok()) << truth.status();

  auto session = seedb.Open(Request(6));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Next().ok());
  session->Cancel();
  EXPECT_TRUE(session->done());
  {
    auto drained = session->Next();
    ASSERT_TRUE(drained.ok());
    EXPECT_FALSE(drained->has_value());
  }

  ASSERT_TRUE(session->Resume().ok());
  EXPECT_FALSE(session->cancelled());
  EXPECT_FALSE(session->done());
  size_t more = 0;
  while (true) {
    auto update = session->Next();
    ASSERT_TRUE(update.ok());
    if (!update->has_value()) break;
    ++more;
  }
  EXPECT_EQ(more, 5u);  // phases 2..6 after the resume

  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_FALSE(set->profile.cancelled);
  EXPECT_EQ(set->profile.phases_executed, 6u);
  EXPECT_EQ(set->profile.rows_scanned, truth->profile.rows_scanned);
  ASSERT_EQ(set->top_views.size(), truth->top_views.size());
  for (size_t i = 0; i < set->top_views.size(); ++i) {
    EXPECT_EQ(set->top_views[i].view(), truth->top_views[i].view());
    // Bit-identical: the resumed scan covered exactly the same rows in the
    // same single-worker order as the uninterrupted one.
    EXPECT_EQ(set->top_views[i].utility(), truth->top_views[i].utility());
  }
}

TEST_F(SessionResumeTest, CancelBeforeFirstPhaseThenResumeRunsInFull) {
  SeeDB seedb(&engine_);
  auto truth = seedb.Run(Request(4));
  ASSERT_TRUE(truth.ok());

  auto session = seedb.Open(Request(4));
  ASSERT_TRUE(session.ok());
  session->Cancel();
  ASSERT_TRUE(session->Resume().ok());
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_FALSE(set->profile.cancelled);
  EXPECT_EQ(set->profile.phases_executed, 4u);
  ASSERT_FALSE(set->top_views.empty());
  EXPECT_EQ(set->top_views[0].view(), truth->top_views[0].view());
  EXPECT_EQ(set->top_views[0].utility(), truth->top_views[0].utility());
}

TEST_F(SessionResumeTest, ResumeDemandsACancelledUnfinishedSession) {
  SeeDB seedb(&engine_);
  auto session = seedb.Open(Request(4));
  ASSERT_TRUE(session.ok());
  // Not cancelled: refused.
  EXPECT_FALSE(session->Resume().ok());
  session->Cancel();
  ASSERT_TRUE(session->Finish().ok());
  // Finished: refused (even though it was cancelled).
  EXPECT_FALSE(session->Resume().ok());

  // Blocking strategies cannot resume a cancelled run...
  auto blocking = seedb.Open(SeeDBRequest("sales")
                                 .Where(laserwave_)
                                 .WithTopK(1)
                                 .WithStrategy(
                                     ExecutionStrategy::kSharedScan));
  ASSERT_TRUE(blocking.ok());
  ASSERT_TRUE(blocking->Next().ok());  // executes the one-shot run
  blocking->Cancel();
  EXPECT_FALSE(blocking->Resume().ok());

  // ...except a cancel that landed before the first Next() just re-arms.
  auto unstarted = seedb.Open(SeeDBRequest("sales")
                                  .Where(laserwave_)
                                  .WithTopK(1)
                                  .WithStrategy(
                                      ExecutionStrategy::kSharedScan));
  ASSERT_TRUE(unstarted.ok());
  unstarted->Cancel();
  ASSERT_TRUE(unstarted->Resume().ok());
  auto set = unstarted->Finish();
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(set->profile.cancelled);
  EXPECT_FALSE(set->top_views.empty());
}

TEST_F(SessionTest, MidScanCancelFromAnotherThreadThenResumeMatchesSerial) {
  SeeDB seedb(engine_);
  auto truth = seedb.Run(PhasedRequest(8));
  ASSERT_TRUE(truth.ok());
  const std::vector<std::string> expected = TopIds(*truth);

  auto session = seedb.Open(PhasedRequest(8));
  ASSERT_TRUE(session.ok());
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) std::this_thread::yield();
    session->Cancel();
  });
  while (true) {
    started.store(true);
    auto update = session->Next();
    ASSERT_TRUE(update.ok());
    if (!update->has_value()) break;
  }
  canceller.join();

  // Wherever the cancel landed — mid-phase, between phases, or after the
  // last one — resuming (when still possible) and draining must land on
  // the serial run's ranking, with every row covered exactly once.
  if (session->cancelled()) {
    ASSERT_TRUE(session->Resume().ok());
    while (true) {
      auto update = session->Next();
      ASSERT_TRUE(update.ok());
      if (!update->has_value()) break;
    }
  }
  auto set = session->Finish();
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_FALSE(set->profile.cancelled);
  EXPECT_EQ(set->profile.rows_scanned, 8000u);
  EXPECT_EQ(set->profile.phases_executed, 8u);
  EXPECT_EQ(TopIds(*set), expected);
  for (size_t i = 0; i < set->top_views.size(); ++i) {
    EXPECT_NEAR(set->top_views[i].utility(), truth->top_views[i].utility(),
                1e-9);
  }
}

TEST(SessionEarlyStopTest, DeltaZeroNeverStopsEarly) {
  db::Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable("sales", ::seedb::testing::MakeLaserwaveTable()).ok());
  db::Engine engine(&catalog);
  SeeDB seedb(&engine);

  SeeDBRequest request("sales");
  request.Where(db::PredicatePtr(db::Eq("product", db::Value("Laserwave"))))
      .WithTopK(1)
      .WithPhases(6)
      .WithEarlyStop(1);
  SeeDBOptions opts = request.options();
  opts.online_pruning.delta = 0.0;  // infinite intervals: provably never
  request.WithOptions(opts);
  auto set = seedb.Run(request);
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(set->profile.early_stopped);
  EXPECT_EQ(set->profile.phases_executed, 6u);
}

}  // namespace
}  // namespace seedb::core
