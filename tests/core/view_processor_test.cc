#include "core/view_processor.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/view_space.h"
#include "db/engine.h"
#include "db/statistics.h"

namespace seedb::core {
namespace {

class ViewProcessorTest : public ::testing::Test {
 protected:
  ViewProcessorTest() : engine_(&catalog_) {
    Status s = catalog_.AddTable("t", ::seedb::testing::MakeTinyTable());
    (void)s;
    selection_ = db::PredicatePtr(db::Eq("e", db::Value("x")));
    view_ = ViewDescriptor("d", "m1", db::AggregateFunction::kSum);
  }

  // Plans `views` with `options`, executes serially, returns Finish().
  Result<std::vector<ViewResult>> RunPlan(
      const std::vector<ViewDescriptor>& views,
      const OptimizerOptions& options) {
    SEEDB_ASSIGN_OR_RETURN(const db::TableStats* stats,
                           catalog_.GetStats("t"));
    SEEDB_ASSIGN_OR_RETURN(
        ExecutionPlan plan,
        BuildExecutionPlan(views, "t", selection_, *stats, options));
    ViewProcessor processor(DistanceMetric::kL1);
    for (const auto& pq : plan.queries) {
      SEEDB_ASSIGN_OR_RETURN(std::vector<db::Table> results,
                             engine_.Execute(pq.query));
      SEEDB_RETURN_IF_ERROR(processor.Consume(pq, std::move(results)));
    }
    return processor.Finish();
  }

  db::Catalog catalog_;
  db::Engine engine_;
  db::PredicatePtr selection_;
  ViewDescriptor view_;
};

TEST_F(ViewProcessorTest, CombinedPlanProducesUtility) {
  auto results = RunPlan({view_}, OptimizerOptions::All()).ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].view, view_);
  // Target: a=6, b=3 -> (2/3, 1/3); comparison: a=8, b=13 -> (8/21, 13/21).
  double expect_l1 = std::abs(2.0 / 3 - 8.0 / 21) * 2;
  EXPECT_NEAR(results[0].utility, expect_l1, 1e-9);
  EXPECT_EQ(results[0].distributions.target.keys.size(), 2u);
}

TEST_F(ViewProcessorTest, SplitPlanMatchesCombined) {
  auto combined = RunPlan({view_}, OptimizerOptions::All()).ValueOrDie();
  auto split = RunPlan({view_}, OptimizerOptions::Baseline()).ValueOrDie();
  ASSERT_EQ(combined.size(), 1u);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_NEAR(combined[0].utility, split[0].utility, 1e-12);
}

TEST_F(ViewProcessorTest, MissingHalfIsError) {
  const db::TableStats* stats = catalog_.GetStats("t").ValueOrDie();
  auto plan = BuildExecutionPlan({view_}, "t", selection_, *stats,
                                 OptimizerOptions::Baseline())
                  .ValueOrDie();
  ASSERT_EQ(plan.queries.size(), 2u);
  ViewProcessor processor(DistanceMetric::kL1);
  // Feed only the target query.
  auto results = engine_.Execute(plan.queries[0].query).ValueOrDie();
  ASSERT_TRUE(processor.Consume(plan.queries[0], std::move(results)).ok());
  EXPECT_FALSE(processor.Finish().ok());
}

TEST_F(ViewProcessorTest, ResultSetCountMismatchIsError) {
  const db::TableStats* stats = catalog_.GetStats("t").ValueOrDie();
  auto plan = BuildExecutionPlan({view_}, "t", selection_, *stats,
                                 OptimizerOptions::All())
                  .ValueOrDie();
  ViewProcessor processor(DistanceMetric::kL1);
  EXPECT_FALSE(processor.Consume(plan.queries[0], {}).ok());
}

TEST_F(ViewProcessorTest, ManyViewsPreserveFirstSeenOrder) {
  ViewSpaceOptions vs;
  vs.functions = {db::AggregateFunction::kSum, db::AggregateFunction::kAvg};
  auto views = EnumerateViews(
      catalog_.GetTable("t").ValueOrDie()->schema(), vs);
  auto results = RunPlan(views, OptimizerOptions::All()).ValueOrDie();
  ASSERT_EQ(results.size(), views.size());
  // All views are present exactly once.
  std::set<std::string> ids;
  for (const auto& r : results) ids.insert(r.view.Id());
  EXPECT_EQ(ids.size(), views.size());
}

TEST_F(ViewProcessorTest, UtilityZeroWhenSelectionIsWholeTable) {
  selection_ = nullptr;
  auto results = RunPlan({view_}, OptimizerOptions::All()).ValueOrDie();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].utility, 0.0, 1e-12);
}

}  // namespace
}  // namespace seedb::core
