#include "core/view_space.h"

#include <gtest/gtest.h>

#include <set>

namespace seedb::core {
namespace {

db::Schema MakeSchema(size_t dims, size_t measures) {
  db::Schema schema;
  for (size_t i = 0; i < dims; ++i) {
    Status s =
        schema.AddColumn(db::ColumnDef::Dimension("d" + std::to_string(i)));
    (void)s;
  }
  for (size_t i = 0; i < measures; ++i) {
    Status s =
        schema.AddColumn(db::ColumnDef::Measure("m" + std::to_string(i)));
    (void)s;
  }
  return schema;
}

TEST(ViewSpaceTest, CrossProductSize) {
  ViewSpaceOptions options;  // 3 default functions
  auto views = EnumerateViews(MakeSchema(4, 3), options);
  EXPECT_EQ(views.size(), 4u * 3u * 3u);
  EXPECT_EQ(views.size(),
            ViewSpaceSize(4, 3, options.functions.size(), false));
}

TEST(ViewSpaceTest, AllViewsDistinct) {
  auto views = EnumerateViews(MakeSchema(5, 4));
  std::set<std::string> ids;
  for (const auto& v : views) ids.insert(v.Id());
  EXPECT_EQ(ids.size(), views.size());
}

TEST(ViewSpaceTest, CountStarViews) {
  ViewSpaceOptions options;
  options.include_count_star = true;
  auto views = EnumerateViews(MakeSchema(3, 2), options);
  EXPECT_EQ(views.size(), 3u * 2u * 3u + 3u);
  size_t star = 0;
  for (const auto& v : views) {
    if (v.measure.empty()) {
      EXPECT_EQ(v.func, db::AggregateFunction::kCount);
      ++star;
    }
  }
  EXPECT_EQ(star, 3u);
}

TEST(ViewSpaceTest, CustomFunctionList) {
  ViewSpaceOptions options;
  options.functions = {db::AggregateFunction::kMax};
  auto views = EnumerateViews(MakeSchema(2, 2), options);
  EXPECT_EQ(views.size(), 4u);
  for (const auto& v : views) {
    EXPECT_EQ(v.func, db::AggregateFunction::kMax);
  }
}

TEST(ViewSpaceTest, NoDimensionsOrMeasuresEmpty) {
  EXPECT_TRUE(EnumerateViews(MakeSchema(0, 3)).empty());
  EXPECT_TRUE(EnumerateViews(MakeSchema(3, 0)).empty());
}

TEST(ViewSpaceTest, DeterministicOrder) {
  auto a = EnumerateViews(MakeSchema(3, 2));
  auto b = EnumerateViews(MakeSchema(3, 2));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Schema order: first views are on d0.
  EXPECT_EQ(a[0].dimension, "d0");
}

TEST(ViewSpaceTest, QuadraticGrowthShape) {
  // §1 challenge (b): with n attributes split evenly, the view count grows
  // as (n/2)^2 * |F| — verify the quadratic shape via ratios.
  size_t f = ViewSpaceOptions{}.functions.size();
  size_t at_10 = ViewSpaceSize(5, 5, f, false);
  size_t at_20 = ViewSpaceSize(10, 10, f, false);
  size_t at_40 = ViewSpaceSize(20, 20, f, false);
  EXPECT_EQ(at_20, at_10 * 4);
  EXPECT_EQ(at_40, at_20 * 4);
}

TEST(ViewSpaceTest, OtherRoleColumnsExcluded) {
  db::Schema schema = MakeSchema(2, 2);
  Status s = schema.AddColumn(
      db::ColumnDef::Other("id", db::ValueType::kInt64));
  (void)s;
  auto views = EnumerateViews(schema);
  for (const auto& v : views) {
    EXPECT_NE(v.dimension, "id");
    EXPECT_NE(v.measure, "id");
  }
}

}  // namespace
}  // namespace seedb::core
