#include "core/pruning.h"

#include <gtest/gtest.h>

#include "core/view_space.h"
#include "util/random.h"

namespace seedb::core {
namespace {

// Table: good_dim (diverse), flat_dim (constant), twin_a/twin_b (correlated),
// measures m (varying), const_m (constant).
db::Table MakePruningTable() {
  db::Schema schema({
      db::ColumnDef::Dimension("good_dim"),
      db::ColumnDef::Dimension("flat_dim"),
      db::ColumnDef::Dimension("twin_a"),
      db::ColumnDef::Dimension("twin_b"),
      db::ColumnDef::Measure("m"),
      db::ColumnDef::Measure("const_m"),
  });
  db::Table t(schema);
  Random rng(5);
  const char* good[] = {"g0", "g1", "g2", "g3"};
  const char* twins[] = {"t0", "t1", "t2"};
  for (int i = 0; i < 500; ++i) {
    size_t k = rng.Uniform(3);
    Status s = t.AppendRow({
        db::Value(good[rng.Uniform(4)]),
        db::Value("always"),
        db::Value(twins[k]),
        db::Value(std::string("T") + twins[k]),
        db::Value(rng.Gaussian(10, 2)),
        db::Value(7.0),
    });
    (void)s;
  }
  return t;
}

class PruningTest : public ::testing::Test {
 protected:
  PruningTest()
      : table_(MakePruningTable()),
        stats_(db::ComputeTableStats(table_, "t")),
        views_(EnumerateViews(table_.schema())) {}

  bool IsKept(const PruningReport& report, const std::string& dim) const {
    for (const auto& v : report.kept) {
      if (v.dimension == dim) return true;
    }
    return false;
  }
  size_t PrunedWithReason(const PruningReport& report,
                          PruneReason reason) const {
    size_t n = 0;
    for (const auto& p : report.pruned) {
      if (p.reason == reason) ++n;
    }
    return n;
  }

  db::Table table_;
  db::TableStats stats_;
  std::vector<ViewDescriptor> views_;
};

TEST_F(PruningTest, NoPruningKeepsEverything) {
  auto report = PruneViews(views_, table_, stats_, nullptr, "t",
                           PruningOptions::None())
                    .ValueOrDie();
  EXPECT_EQ(report.kept.size(), views_.size());
  EXPECT_TRUE(report.pruned.empty());
  EXPECT_EQ(report.total_considered(), views_.size());
}

TEST_F(PruningTest, VariancePrunesConstantDimension) {
  PruningOptions options;
  options.enable_variance = true;
  auto report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  EXPECT_FALSE(IsKept(report, "flat_dim"));
  EXPECT_TRUE(IsKept(report, "good_dim"));
  EXPECT_GT(PrunedWithReason(report, PruneReason::kLowVariance), 0u);
}

TEST_F(PruningTest, VariancePrunesConstantMeasure) {
  PruningOptions options;
  options.enable_variance = true;
  auto report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  for (const auto& v : report.kept) {
    EXPECT_NE(v.measure, "const_m") << v.Id();
  }
  // But not when prune_constant_measures is off.
  options.prune_constant_measures = false;
  report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  bool const_m_kept = false;
  for (const auto& v : report.kept) const_m_kept |= v.measure == "const_m";
  EXPECT_TRUE(const_m_kept);
}

TEST_F(PruningTest, CorrelationKeepsOneTwin) {
  PruningOptions options;
  options.enable_correlation = true;
  options.correlation_threshold = 0.9;
  auto report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  bool a_kept = IsKept(report, "twin_a");
  bool b_kept = IsKept(report, "twin_b");
  EXPECT_NE(a_kept, b_kept);  // exactly one survives
  EXPECT_TRUE(IsKept(report, "good_dim"));
  // Pruned twins carry the representative's name.
  for (const auto& p : report.pruned) {
    if (p.reason == PruneReason::kCorrelatedDimension) {
      EXPECT_FALSE(p.detail.empty());
    }
  }
}

TEST_F(PruningTest, AccessFrequencyNeedsHistory) {
  db::AccessTracker tracker;
  PruningOptions options;
  options.enable_access_frequency = true;
  options.min_recorded_queries = 20;
  // Cold tracker: nothing pruned.
  auto report =
      PruneViews(views_, table_, stats_, &tracker, "t", options).ValueOrDie();
  EXPECT_EQ(report.kept.size(), views_.size());
}

TEST_F(PruningTest, AccessFrequencyPrunesColdColumns) {
  db::AccessTracker tracker;
  // 30 queries, all touching good_dim and m only.
  for (int i = 0; i < 30; ++i) tracker.RecordQuery("t", {"good_dim", "m"});
  PruningOptions options;
  options.enable_access_frequency = true;
  options.min_recorded_queries = 20;
  options.min_access_frequency = 0.1;
  auto report =
      PruneViews(views_, table_, stats_, &tracker, "t", options).ValueOrDie();
  EXPECT_TRUE(IsKept(report, "good_dim"));
  EXPECT_FALSE(IsKept(report, "twin_a"));
  EXPECT_FALSE(IsKept(report, "flat_dim"));
  // Views on hot dim but cold measure also pruned.
  for (const auto& v : report.kept) {
    EXPECT_EQ(v.measure, "m");
  }
  EXPECT_GT(PrunedWithReason(report, PruneReason::kRarelyAccessed), 0u);
}

TEST_F(PruningTest, KeptPlusPrunedIsPartition) {
  db::AccessTracker tracker;
  for (int i = 0; i < 25; ++i) tracker.RecordQuery("t", {"good_dim", "m"});
  auto report = PruneViews(views_, table_, stats_, &tracker, "t",
                           PruningOptions::All())
                    .ValueOrDie();
  EXPECT_EQ(report.kept.size() + report.pruned.size(), views_.size());
  // No view appears twice.
  std::set<std::string> seen;
  for (const auto& v : report.kept) EXPECT_TRUE(seen.insert(v.Id()).second);
  for (const auto& p : report.pruned) {
    EXPECT_TRUE(seen.insert(p.view.Id()).second);
  }
}

TEST_F(PruningTest, ThresholdControlsVariancePruning) {
  PruningOptions options;
  options.enable_variance = true;
  options.min_dimension_diversity = 0.0;  // nothing is below 0
  auto report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  EXPECT_TRUE(IsKept(report, "flat_dim"));  // diversity 0 >= 0 not < 0
  options.min_dimension_diversity = 0.99;   // everything below
  report =
      PruneViews(views_, table_, stats_, nullptr, "t", options).ValueOrDie();
  EXPECT_TRUE(report.kept.empty());
}

TEST(PruneReasonTest, Names) {
  EXPECT_STREQ(PruneReasonToString(PruneReason::kLowVariance),
               "low variance");
  EXPECT_STREQ(PruneReasonToString(PruneReason::kCorrelatedDimension),
               "correlated dimension");
  EXPECT_STREQ(PruneReasonToString(PruneReason::kRarelyAccessed),
               "rarely accessed");
}

}  // namespace
}  // namespace seedb::core
