#include "core/correlation.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace seedb::core {
namespace {

// Table with: a/b perfectly correlated, c independent, d near-constant.
db::Table MakeCorrelatedTable() {
  db::Schema schema({
      db::ColumnDef::Dimension("a"),
      db::ColumnDef::Dimension("b"),
      db::ColumnDef::Dimension("c"),
      db::ColumnDef::Dimension("d"),
  });
  db::Table t(schema);
  Random rng(17);
  const char* va[] = {"a0", "a1", "a2"};
  const char* vb[] = {"b0", "b1", "b2"};
  const char* vc[] = {"c0", "c1", "c2", "c3"};
  for (int i = 0; i < 600; ++i) {
    size_t k = rng.Uniform(3);
    Status s = t.AppendRow({db::Value(va[k]), db::Value(vb[k]),
                            db::Value(vc[rng.Uniform(4)]),
                            db::Value(rng.Bernoulli(0.02) ? "rare" : "common")});
    (void)s;
  }
  return t;
}

TEST(CorrelationTest, PerfectPairClustersTogether) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  auto clusters =
      ClusterCorrelatedDimensions(t, stats, {"a", "b", "c", "d"}, 0.9)
          .ValueOrDie();
  // Expect {a, b} together, c alone, d alone.
  ASSERT_EQ(clusters.size(), 3u);
  const DimensionCluster* ab = nullptr;
  for (const auto& cl : clusters) {
    if (cl.members.size() == 2) ab = &cl;
  }
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->members, (std::vector<std::string>{"a", "b"}));
}

TEST(CorrelationTest, MembersPartitionInput) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  auto clusters =
      ClusterCorrelatedDimensions(t, stats, {"a", "b", "c", "d"}, 0.9)
          .ValueOrDie();
  std::vector<std::string> all;
  for (const auto& cl : clusters) {
    for (const auto& m : cl.members) all.push_back(m);
    // Representative is a member.
    EXPECT_NE(std::find(cl.members.begin(), cl.members.end(),
                        cl.representative),
              cl.members.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(CorrelationTest, LowThresholdMergesEverything) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  auto clusters =
      ClusterCorrelatedDimensions(t, stats, {"a", "b", "c"}, 0.0)
          .ValueOrDie();
  EXPECT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
}

TEST(CorrelationTest, HighThresholdKeepsAllSeparate) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  // Threshold above 1.0 can never trigger.
  auto clusters =
      ClusterCorrelatedDimensions(t, stats, {"a", "b", "c", "d"}, 1.01)
          .ValueOrDie();
  EXPECT_EQ(clusters.size(), 4u);
  for (const auto& cl : clusters) EXPECT_EQ(cl.members.size(), 1u);
}

TEST(CorrelationTest, RepresentativeHasHighestDiversity) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  // Force a cluster containing the near-constant 'd' plus 'c'. Using
  // threshold 0, everything merges; the representative must not be 'd'
  // (lowest diversity).
  auto clusters =
      ClusterCorrelatedDimensions(t, stats, {"d", "c"}, 0.0).ValueOrDie();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].representative, "c");
}

TEST(CorrelationTest, EmptyInput) {
  db::Table t = MakeCorrelatedTable();
  db::TableStats stats = db::ComputeTableStats(t, "t");
  auto clusters = ClusterCorrelatedDimensions(t, stats, {}, 0.5).ValueOrDie();
  EXPECT_TRUE(clusters.empty());
}

}  // namespace
}  // namespace seedb::core
