// End-to-end integration tests: the full Figure-4 pipeline on realistic
// data, including the paper's §1/§2 running example executed through every
// layer (SQL input -> metadata -> pruning -> optimizer -> engine -> view
// processor -> top-k -> rendering).

#include <gtest/gtest.h>

#include "core/seedb.h"
#include "data/store_orders.h"
#include "data/synthetic.h"
#include "db/csv.h"
#include "db/engine.h"
#include "test_util.h"
#include "viz/ascii_renderer.h"
#include "viz/metadata.h"
#include "viz/vega.h"

namespace seedb {
namespace {

TEST(IntegrationTest, LaserwavePipelineEndToEnd) {
  db::Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable("sales", ::seedb::testing::MakeLaserwaveTable()).ok());
  db::Engine engine(&catalog);
  core::SeeDB seedb(&engine);

  core::SeeDBOptions options;
  options.k = 2;
  options.bottom_k = 1;
  auto result = seedb.RecommendSql(
      "SELECT * FROM sales WHERE product = 'Laserwave'", options);
  ASSERT_TRUE(result.ok()) << result.status();

  // §2's normalization example: the target distribution over stores is
  // (amount/538.18); check it flows through to the recommendation.
  const core::Recommendation* store_view = nullptr;
  for (const auto& rec : result->top_views) {
    if (rec.view().dimension == "store" &&
        rec.view().func == db::AggregateFunction::kSum) {
      store_view = &rec;
      break;
    }
  }
  ASSERT_NE(store_view, nullptr);
  const core::AlignedPair& d = store_view->result.distributions;
  ASSERT_EQ(d.target.keys.size(), 4u);
  for (size_t i = 0; i < d.target.keys.size(); ++i) {
    if (d.target.keys[i] == db::Value("Cambridge, MA")) {
      EXPECT_NEAR(d.target.probabilities[i], 180.55 / 538.18, 1e-9);
    }
  }

  // Rendering works end to end.
  std::string chart = viz::RenderRecommendation(*store_view);
  EXPECT_NE(chart.find("Cambridge, MA"), std::string::npos);
  std::string json = viz::ToVegaLite(viz::BuildChartSpec(store_view->result));
  EXPECT_NE(json.find("vega-lite"), std::string::npos);
  viz::ViewMetadata meta = viz::ComputeViewMetadata(store_view->result);
  EXPECT_NEAR(meta.target_total, 538.18, 1e-9);
}

TEST(IntegrationTest, ScenarioAHasHigherUtilityThanScenarioB) {
  // Figure 2 vs Figure 3: the same target view is interesting against an
  // opposite-trend comparison (A) and uninteresting against a similar-trend
  // comparison (B).
  auto build = [](bool similar) {
    db::Schema schema({db::ColumnDef::Dimension("product"),
                       db::ColumnDef::Dimension("store"),
                       db::ColumnDef::Measure("amount")});
    db::Table t(schema);
    const char* stores[] = {"Cambridge", "NewYork", "SanFrancisco",
                            "Seattle"};
    double laser[] = {180.55, 122.00, 90.13, 145.50};
    for (int s = 0; s < 4; ++s) {
      Status st = t.AppendRow({db::Value("Laserwave"), db::Value(stores[s]),
                               db::Value(laser[s])});
      (void)st;
    }
    for (int s = 0; s < 4; ++s) {
      // Similar trend: proportional to laser; opposite: reversed.
      double v = similar ? laser[s] * 100 : laser[3 - s] * 100;
      Status st = t.AppendRow({db::Value("Other"), db::Value(stores[s]),
                               db::Value(v)});
      (void)st;
    }
    return t;
  };

  auto utility_of_store_view = [](db::Table table) {
    db::Catalog catalog;
    Status s = catalog.AddTable("sales", std::move(table));
    (void)s;
    db::Engine engine(&catalog);
    core::SeeDB seedb(&engine);
    core::SeeDBOptions options;
    options.k = 20;
    auto result =
        seedb
            .RecommendSql("SELECT * FROM sales WHERE product = 'Laserwave'",
                          options)
            .ValueOrDie();
    for (const auto& rec : result.top_views) {
      if (rec.view().dimension == "store" &&
          rec.view().measure == "amount" &&
          rec.view().func == db::AggregateFunction::kSum) {
        return rec.utility();
      }
    }
    return -1.0;
  };

  double scenario_a = utility_of_store_view(build(/*similar=*/false));
  double scenario_b = utility_of_store_view(build(/*similar=*/true));
  ASSERT_GE(scenario_a, 0.0);
  ASSERT_GE(scenario_b, 0.0);
  EXPECT_GT(scenario_a, 3 * scenario_b);
  EXPECT_LT(scenario_b, 0.05);  // near-identical distributions
}

TEST(IntegrationTest, CsvRoundTripThroughRecommendation) {
  // Export a demo dataset, re-import it, and verify identical
  // recommendations — exercising the CSV + catalog + facade path.
  auto dataset =
      data::MakeStoreOrders({.rows = 3000, .seed = 21}).ValueOrDie();
  std::string path = ::testing::TempDir() + "/seedb_integration_orders.csv";
  ASSERT_TRUE(db::WriteCsv(dataset.table, path).ok());
  auto reloaded = db::ReadCsv(path, dataset.table.schema()).ValueOrDie();
  std::remove(path.c_str());

  auto recommend = [](db::Table table) {
    db::Catalog catalog;
    Status s = catalog.AddTable("orders", std::move(table));
    (void)s;
    db::Engine engine(&catalog);
    core::SeeDB seedb(&engine);
    auto result =
        seedb
            .RecommendSql(
                "SELECT * FROM orders WHERE category = 'Furniture'")
            .ValueOrDie();
    std::vector<std::pair<std::string, double>> out;
    for (const auto& rec : result.top_views) {
      out.emplace_back(rec.view().Id(), rec.utility());
    }
    return out;
  };

  auto original = recommend(std::move(dataset.table));
  auto roundtrip = recommend(std::move(reloaded));
  ASSERT_EQ(original.size(), roundtrip.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].first, roundtrip[i].first);
    EXPECT_NEAR(original[i].second, roundtrip[i].second, 1e-9);
  }
}

TEST(IntegrationTest, FullOptimizerAndPruningAgreeOnTopView) {
  data::SyntheticSpec spec =
      data::SyntheticSpec::Simple(10000, 6, 2, 10, /*seed=*/55);
  spec.deviation->strength = 8.0;
  // Add a correlated twin and a constant dim as pruning fodder.
  spec.dimensions[4].correlated_with = 1;
  spec.dimensions[4].correlation_noise = 0.02;
  spec.dimensions[5].cardinality = 1;
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();

  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("synth", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  core::SeeDB seedb(&engine);

  core::SeeDBOptions plain;
  plain.optimizer = core::OptimizerOptions::Baseline();
  core::SeeDBOptions tuned;
  tuned.pruning.enable_variance = true;
  tuned.pruning.enable_correlation = true;
  tuned.parallelism = 4;

  auto a = seedb.Recommend("synth", dataset.selection, plain).ValueOrDie();
  auto b = seedb.Recommend("synth", dataset.selection, tuned).ValueOrDie();
  ASSERT_FALSE(a.top_views.empty());
  ASSERT_FALSE(b.top_views.empty());
  // Both configurations must surface the planted deviation. dim4 is a
  // near-copy of the deviating dim1, so either twin counts: with
  // correlation pruning only the cluster representative survives.
  auto is_planted = [](const core::Recommendation& rec) {
    return (rec.view().dimension == "dim1" ||
            rec.view().dimension == "dim4") &&
           rec.view().measure == "m0";
  };
  EXPECT_TRUE(is_planted(a.top_views[0]))
      << a.top_views[0].view().Id();
  EXPECT_TRUE(is_planted(b.top_views[0]))
      << b.top_views[0].view().Id();
  // Pruning must have dropped something (constant dim at minimum).
  EXPECT_GT(b.profile.views_pruned, 0u);
  EXPECT_LT(b.profile.views_executed, a.profile.views_executed);
}

TEST(IntegrationTest, AccessFrequencyPruningLearnsFromHistory) {
  auto dataset =
      data::MakeStoreOrders({.rows = 5000, .seed = 3}).ValueOrDie();
  db::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("orders", std::move(dataset.table)).ok());
  db::Engine engine(&catalog);

  // Simulate an analyst history that only ever touches region/profit.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine
                    .ExecuteSql("SELECT region, SUM(profit) FROM orders "
                                "GROUP BY region")
                    .ok());
  }

  core::SeeDB seedb(&engine);
  core::SeeDBOptions options;
  options.pruning.enable_access_frequency = true;
  options.pruning.min_recorded_queries = 20;
  options.pruning.min_access_frequency = 0.5;
  auto result = seedb.RecommendSql(
      "SELECT * FROM orders WHERE category = 'Furniture'", options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Only (region, profit) views survive.
  EXPECT_EQ(result->profile.views_executed, 3u);  // SUM/AVG/COUNT on profit
  for (const auto& rec : result->top_views) {
    EXPECT_EQ(rec.view().dimension, "region");
    EXPECT_EQ(rec.view().measure, "profit");
  }
}

}  // namespace
}  // namespace seedb
