// Protocol golden tests: request/response framing round-trips exactly, and
// malformed input of every shape (truncated JSON, unknown ops, ids after
// finish) produces an error response — never a crash, never a wedged loop.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <thread>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "../test_util.h"
#include "db/engine.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace seedb::server {
namespace {

// --- JSON layer ---

TEST(JsonTest, ScalarsRoundTrip) {
  auto parse = [](const std::string& text) {
    auto v = ParseJson(text);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status();
    return std::move(v).ValueOrDie();
  };
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").AsBool(), true);
  EXPECT_EQ(parse("false").AsBool(), false);
  EXPECT_EQ(parse("42").AsInt(), 42);
  EXPECT_EQ(parse("-7").AsInt(), -7);
  EXPECT_DOUBLE_EQ(parse("3.25e2").AsDouble(), 325.0);
  EXPECT_EQ(parse("\"hi\"").AsString(), "hi");
  EXPECT_EQ(parse("\"a\\n\\\"b\\\\\"").AsString(), "a\n\"b\\");
  EXPECT_EQ(parse("\"\\u0041\\u00e9\"").AsString(), "Aé");
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  // The differential suite depends on this: a utility serialized by the
  // server parses back to the identical bit pattern.
  for (double d : {0.1, 1.0 / 3.0, 0.6855198756264697, 1e-300, 6.02e23,
                   -0.0, 123456789.123456789}) {
    JsonValue v = JsonValue::Number(d);
    auto parsed = ParseJson(v.Dump());
    ASSERT_TRUE(parsed.ok()) << v.Dump();
    EXPECT_EQ(parsed->AsDouble(), d) << v.Dump();
  }
}

TEST(JsonTest, ObjectsKeepInsertionOrderAndRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Number(1));
  obj.Set("a", JsonValue::Str("two"));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Bool(true)).Append(JsonValue::Null());
  obj.Set("list", std::move(arr));
  const std::string text = obj.Dump();
  EXPECT_EQ(text, "{\"z\":1,\"a\":\"two\",\"list\":[true,null]}");
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, MalformedInputsErrorGracefully) {
  const char* cases[] = {
      "",
      "{",
      "[1,2",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "\"unterminated",
      "\"bad\\escape\"",
      "\"\\u12g4\"",
      "\"\\ud800\"",
      "01",
      "1.",
      "1e",
      "-",
      "tru",
      "nul",
      "{}garbage",
      "12 34",
      "\x01",
  };
  for (const char* text : cases) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "'" << text << "' should not parse";
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonTest, NonFiniteAndOverlongNumbersAreRejectedExplicitly) {
  // A non-finite value has no JSON spelling and must never enter a wire
  // frame — these are rejected with a clean parse error, not passed through
  // strtod (which accepts "NaN"/"Infinity" and saturates "1e999" to inf).
  const char* cases[] = {
      "NaN",       "-NaN",       "nan",  "Infinity", "-Infinity",
      "infinity",  "Inf",        "-inf", "1e999",    "-1e999",
      "1e308999",  "{\"v\":NaN}", "[Infinity]",
  };
  for (const char* text : cases) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "'" << text << "' should not parse";
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Overlong tokens are rejected before strtod ever runs.
  const std::string overlong_int = std::string(200, '9');
  EXPECT_FALSE(ParseJson(overlong_int).ok());
  const std::string overlong_frac = "1." + std::string(200, '3');
  EXPECT_FALSE(ParseJson(overlong_frac).ok());
  // The extremes that must still parse: max double, denormals, and an
  // underflow that rounds to zero (loses precision, not kind).
  EXPECT_DOUBLE_EQ(ParseJson("1.7976931348623157e308")->AsDouble(),
                   std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(ParseJson("-1.7976931348623157e308")->AsDouble(),
                   std::numeric_limits<double>::lowest());
  EXPECT_DOUBLE_EQ(ParseJson("5e-324")->AsDouble(),
                   std::numeric_limits<double>::denorm_min());
  EXPECT_DOUBLE_EQ(ParseJson("1e-999")->AsDouble(), 0.0);
}

TEST(JsonTest, DeepNestingIsRejectedNotOverflowed) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, QuoteEscapesControlBytes) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd\x01"), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// --- Error-code round-trip ---

TEST(ProtocolTest, StatusCodesRoundTripThroughErrorFrames) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kNotImplemented, StatusCode::kIOError,
        StatusCode::kInternal}) {
    Status original(code, "the message");
    JsonValue frame = ErrorResponse(original, "s9");
    EXPECT_FALSE(frame.GetBool("ok"));
    EXPECT_EQ(frame.GetString("id"), "s9");
    Status back = StatusFromErrorResponse(frame);
    EXPECT_EQ(back.code(), code);
    EXPECT_EQ(back.message(), "the message");
  }
}

// --- Open round-trip: spec -> JSON -> core request ---

TEST(ProtocolTest, OpenSpecRoundTripsIntoCoreRequest) {
  OpenSpec spec;
  spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
  spec.k = 4;
  spec.bottom_k = 2;
  spec.metric = "l1";
  spec.phases = 7;
  spec.pruner = "ci";
  spec.early_stop = 3;
  spec.delta = 0.25;
  spec.utility_range = 0.5;
  spec.memory_budget = 12345;
  spec.parallelism = 2;
  JsonValue wire = OpenRequestToJson("s1", spec);
  auto request = OpenRequestFromJson(wire);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->table(), "sales");
  ASSERT_NE(request->selection(), nullptr);
  const core::SeeDBOptions& options = request->options();
  EXPECT_EQ(options.k, 4u);
  EXPECT_EQ(options.bottom_k, 2u);
  EXPECT_EQ(options.metric, core::DistanceMetric::kL1);
  EXPECT_EQ(options.strategy, core::ExecutionStrategy::kPhasedSharedScan);
  EXPECT_EQ(options.online_pruning.num_phases, 7u);
  EXPECT_EQ(options.online_pruning.pruner,
            core::OnlinePruner::kConfidenceInterval);
  EXPECT_EQ(options.online_pruning.early_stop_stable_phases, 3u);
  EXPECT_DOUBLE_EQ(options.online_pruning.delta, 0.25);
  EXPECT_DOUBLE_EQ(options.online_pruning.utility_range, 0.5);
  EXPECT_EQ(options.memory_budget_bytes, 12345u);
  EXPECT_EQ(options.parallelism, 2u);
}

TEST(ProtocolTest, OpenRejectsBadFields) {
  auto open_with = [](const std::string& extra) {
    std::string line = "{\"op\":\"open\",\"id\":\"x\"" + extra + "}";
    auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    return OpenRequestFromJson(*parsed);
  };
  EXPECT_FALSE(open_with("").ok());  // neither sql nor table
  EXPECT_FALSE(open_with(",\"sql\":\"SELECT broken\"").ok());
  EXPECT_FALSE(open_with(",\"table\":\"t\",\"metric\":\"nope\"").ok());
  EXPECT_FALSE(open_with(",\"table\":\"t\",\"strategy\":\"warp\"").ok());
  EXPECT_FALSE(open_with(",\"table\":\"t\",\"pruner\":\"psychic\"").ok());
  EXPECT_FALSE(open_with(",\"table\":\"t\",\"k\":0").ok());
  EXPECT_FALSE(open_with(",\"table\":\"t\",\"k\":\"three\"").ok());
}

// --- Progress / result frame round-trips ---

TEST(ProtocolTest, ProgressFrameRoundTrips) {
  core::ProgressUpdate update;
  update.phase = 3;
  update.total_phases = 8;
  update.phase_seconds = 0.0125;
  update.rows_scanned = 3000;
  update.total_rows = 8000;
  update.views_active = 12;
  update.views_pruned_online = 4;
  update.ci_half_width = 0.75;
  update.memory_bytes = 4096;
  core::ProvisionalView pv;
  pv.view = core::ViewDescriptor("region", "sales",
                                 db::AggregateFunction::kSum);
  pv.utility = 0.6855198756264697;
  pv.lower = pv.utility - 0.75;
  pv.upper = pv.utility + 0.75;
  update.top_views.push_back(pv);

  auto parsed = ParseJson(ProgressToJson("s1", update).Dump());
  ASSERT_TRUE(parsed.ok());
  auto progress = ProgressFromJson(*parsed);
  ASSERT_TRUE(progress.ok()) << progress.status();
  EXPECT_EQ(progress->phase, 3u);
  EXPECT_EQ(progress->total_phases, 8u);
  EXPECT_DOUBLE_EQ(progress->phase_seconds, 0.0125);
  EXPECT_EQ(progress->rows_scanned, 3000u);
  EXPECT_EQ(progress->total_rows, 8000u);
  EXPECT_EQ(progress->views_active, 12u);
  EXPECT_EQ(progress->views_pruned, 4u);
  EXPECT_EQ(progress->ci_half_width, 0.75);
  EXPECT_EQ(progress->memory_bytes, 4096u);
  ASSERT_EQ(progress->top.size(), 1u);
  EXPECT_EQ(progress->top[0].id, pv.view.Id());
  EXPECT_EQ(progress->top[0].utility, pv.utility);  // exact
  EXPECT_EQ(progress->top[0].lower, pv.lower);
  EXPECT_EQ(progress->top[0].upper, pv.upper);
}

TEST(ProtocolTest, InfiniteHalfWidthIsOmittedAndComesBackInfinite) {
  core::ProgressUpdate update;
  update.phase = 1;
  update.total_phases = 2;
  update.ci_half_width = std::numeric_limits<double>::infinity();
  const std::string text = ProgressToJson("s", update).Dump();
  EXPECT_EQ(text.find("ci_half_width"), std::string::npos);
  auto progress = ProgressFromJson(*ParseJson(text));
  ASSERT_TRUE(progress.ok());
  EXPECT_TRUE(std::isinf(progress->ci_half_width));
}

// --- The dispatcher, driven without a socket ---

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest()
      : engine_(&catalog_),
        server_(&engine_, ServerOptions{}) {
    Status added =
        catalog_.AddTable("sales", ::seedb::testing::MakeLaserwaveTable());
    EXPECT_TRUE(added.ok());
  }

  /// Runs one request line and parses the response.
  JsonValue Call(const std::string& line) {
    auto parsed = ParseJson(server_.HandleLine(line));
    EXPECT_TRUE(parsed.ok()) << "response not JSON for: " << line;
    return parsed.ok() ? std::move(parsed).ValueOrDie() : JsonValue();
  }

  db::Catalog catalog_;
  db::Engine engine_;
  RecommendationServer server_;
};

TEST_F(DispatchTest, MalformedRequestsGetErrorResponsesNotCrashes) {
  const char* lines[] = {
      "not json at all",
      "{\"op\":\"open\",\"id\":\"x\"",  // truncated
      "[1,2,3]",                        // not an object
      "{}",                             // no op
      "{\"op\":\"teleport\",\"id\":\"x\"}",
      "{\"op\":\"next\"}",              // missing id
      "{\"op\":\"next\",\"id\":\"ghost\"}",
      "{\"op\":\"open\",\"id\":\"x\",\"table\":\"no_such_table\"}",
      "{\"op\":\"open\",\"id\":\"x\",\"sql\":\"DROP TABLE sales\"}",
  };
  for (const char* line : lines) {
    JsonValue response = Call(line);
    EXPECT_FALSE(response.GetBool("ok")) << line;
    EXPECT_FALSE(response.GetString("error").empty()) << line;
    EXPECT_FALSE(response.GetString("code").empty()) << line;
  }
  // The loop is intact: a well-formed request still works.
  JsonValue ok = Call(
      "{\"op\":\"open\",\"id\":\"s1\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\"}");
  EXPECT_TRUE(ok.GetBool("ok"));
}

TEST_F(DispatchTest, SessionLifecycleAndIdsAfterFinish) {
  const std::string open =
      "{\"op\":\"open\",\"id\":\"s1\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\","
      "\"k\":2,\"phases\":3}";
  EXPECT_TRUE(Call(open).GetBool("ok"));
  // Double open on a live id is refused.
  JsonValue dup = Call(open);
  EXPECT_FALSE(dup.GetBool("ok"));
  EXPECT_EQ(dup.GetString("code"), "already_exists");

  // Drain: 3 progress frames, then drained.
  for (int i = 1; i <= 3; ++i) {
    JsonValue progress = Call("{\"op\":\"next\",\"id\":\"s1\"}");
    ASSERT_TRUE(progress.GetBool("ok"));
    EXPECT_EQ(progress.GetString("type"), "progress");
    EXPECT_EQ(progress.GetInt("phase"), i);
  }
  EXPECT_EQ(Call("{\"op\":\"next\",\"id\":\"s1\"}").GetString("type"),
            "drained");

  JsonValue result = Call("{\"op\":\"finish\",\"id\":\"s1\"}");
  ASSERT_TRUE(result.GetBool("ok"));
  EXPECT_EQ(result.GetString("type"), "result");
  const JsonValue* top = result.Find("top");
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->size(), 2u);

  // The id is gone: every op on it now answers not_found, and the id can
  // be reused by a fresh open.
  for (const char* op : {"next", "cancel", "resume", "finish", "status"}) {
    JsonValue gone = Call(std::string("{\"op\":\"") + op +
                          "\",\"id\":\"s1\"}");
    EXPECT_FALSE(gone.GetBool("ok")) << op;
    EXPECT_EQ(gone.GetString("code"), "not_found") << op;
  }
  EXPECT_TRUE(Call(open).GetBool("ok"));
}

TEST_F(DispatchTest, ResumeRequiresACancelledSession) {
  Call(
      "{\"op\":\"open\",\"id\":\"r1\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\",\"phases\":4}");
  JsonValue premature = Call("{\"op\":\"resume\",\"id\":\"r1\"}");
  EXPECT_FALSE(premature.GetBool("ok"));
  EXPECT_EQ(premature.GetString("code"), "invalid_argument");

  EXPECT_TRUE(Call("{\"op\":\"cancel\",\"id\":\"r1\"}").GetBool("ok"));
  EXPECT_EQ(Call("{\"op\":\"next\",\"id\":\"r1\"}").GetString("type"),
            "drained");
  EXPECT_TRUE(Call("{\"op\":\"resume\",\"id\":\"r1\"}").GetBool("ok"));
  // Resumed: phases run again.
  EXPECT_EQ(Call("{\"op\":\"next\",\"id\":\"r1\"}").GetString("type"),
            "progress");
}

TEST_F(DispatchTest, StatusWorksWithAndWithoutSession) {
  JsonValue server_status = Call("{\"op\":\"status\"}");
  ASSERT_TRUE(server_status.GetBool("ok"));
  EXPECT_EQ(server_status.GetInt("sessions"), 0);

  Call(
      "{\"op\":\"open\",\"id\":\"st\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\",\"phases\":2}");
  Call("{\"op\":\"next\",\"id\":\"st\"}");
  JsonValue session_status = Call("{\"op\":\"status\",\"id\":\"st\"}");
  ASSERT_TRUE(session_status.GetBool("ok"));
  EXPECT_TRUE(session_status.GetBool("session"));
  EXPECT_EQ(session_status.GetInt("phases_run"), 1);
  EXPECT_FALSE(session_status.GetBool("done"));
  EXPECT_EQ(Call("{\"op\":\"status\"}").GetInt("sessions"), 1);
}

// --- Over-the-socket framing ---

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = "/tmp/seedb_protocol_test_" +
                   std::to_string(::getpid()) + ".sock";
    ASSERT_TRUE(
        catalog_.AddTable("sales", ::seedb::testing::MakeLaserwaveTable())
            .ok());
    engine_ = std::make_unique<db::Engine>(&catalog_);
    ServerOptions options;
    options.unix_path = socket_path_;
    options.max_line_bytes = 4096;
    server_ =
        std::make_unique<RecommendationServer>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  db::Catalog catalog_;
  std::unique_ptr<db::Engine> engine_;
  std::unique_ptr<RecommendationServer> server_;
  std::string socket_path_;
};

TEST_F(WireTest, PipelinedAndSplitRequestsFrameCorrectly) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Two requests in ONE write; the first is itself split mid-token over
  // two sends. Three responses must come back, in order.
  const std::string part1 = "{\"op\":\"sta";
  const std::string part2 =
      "tus\"}\n{\"op\":\"status\"}\n{\"op\":\"next\",\"id\":\"nope\"}\n";
  ASSERT_EQ(::send(fd, part1.data(), part1.size(), 0),
            static_cast<ssize_t>(part1.size()));
  ASSERT_EQ(::send(fd, part2.data(), part2.size(), 0),
            static_cast<ssize_t>(part2.size()));

  std::string buffer;
  char chunk[4096];
  while (std::count(buffer.begin(), buffer.end(), '\n') < 3) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "server closed early; got: " << buffer;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  size_t first_end = buffer.find('\n');
  size_t second_end = buffer.find('\n', first_end + 1);
  auto r1 = ParseJson(buffer.substr(0, first_end));
  auto r2 = ParseJson(
      buffer.substr(first_end + 1, second_end - first_end - 1));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->GetString("type"), "status");
  EXPECT_EQ(r2->GetString("type"), "status");
  ::close(fd);
}

TEST_F(WireTest, OverlongLineIsAnsweredThenConnectionCloses) {
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  // One giant un-newlined blob larger than max_line_bytes.
  std::string huge = "{\"op\":\"open\",\"id\":\"" +
                     std::string(8192, 'x') + "\"";
  auto response = client->CallRaw(huge);  // CallRaw appends the newline
  // Either we get the error response before the close, or the close wins
  // the race — both are acceptable; what must not happen is a hang or a
  // crash. A fresh connection works regardless.
  if (response.ok()) {
    auto parsed = ParseJson(*response);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(parsed->GetBool("ok"));
  }
  auto fresh = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(fresh.ok());
  auto status = fresh->GetStatus();
  ASSERT_TRUE(status.ok()) << status.status();
}

TEST_F(WireTest, DisconnectedClientsAreReapedNotAccumulated) {
  // Count this process's open fds (the server is in-process).
  auto open_fds = [] {
    size_t count = 0;
    DIR* dir = ::opendir("/proc/self/fd");
    if (dir == nullptr) return count;
    while (::readdir(dir) != nullptr) ++count;
    ::closedir(dir);
    return count;
  };
  const size_t before = open_fds();
  for (int i = 0; i < 40; ++i) {
    auto client = Client::ConnectUnix(socket_path_);
    ASSERT_TRUE(client.ok()) << "connect " << i << ": " << client.status();
    ASSERT_TRUE(client->GetStatus().ok());
  }  // each client closes on destruction
  // The accept loop reaps disconnected readers on its next poll ticks.
  for (int i = 0; i < 50 && open_fds() > before + 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_LE(open_fds(), before + 5)
      << "server accumulated fds for disconnected clients";
  EXPECT_EQ(server_->stats().connections, 40u);
}

TEST_F(WireTest, EmptyAndCrlfLinesAreTolerated) {
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  // CRLF framing (windows-ish clients) parses fine; blank lines are
  // skipped rather than answered.
  auto response = client->CallRaw("\r\n\r\n{\"op\":\"status\"}\r");
  ASSERT_TRUE(response.ok());
  auto parsed = ParseJson(*response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("type"), "status");
}

}  // namespace
}  // namespace seedb::server
