// Deterministic replay of the checked-in fuzz corpus as a plain ctest
// target: every file under fuzz/corpus/{json,protocol} runs through the
// same invariant harness the libFuzzer targets use (fuzz/harness.h), so a
// corpus regression — including any crasher minimized out of a fuzzing run
// and checked in as a seed — fails the ordinary test suite on every
// toolchain, not just the clang fuzz leg.
//
// SEEDB_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// <repo>/fuzz/corpus in the source tree.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "gtest/gtest.h"

namespace seedb {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const std::string& subdir) {
  const fs::path dir = fs::path(SEEDB_CORPUS_DIR) / subdir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  // directory_iterator order is unspecified; sort for stable replay order.
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ProtocolCorpusTest, JsonCorpusHoldsParserInvariants) {
  const std::vector<fs::path> files = CorpusFiles("json");
  ASSERT_GE(files.size(), 30u) << "json corpus went missing or was gutted";
  for (const fs::path& path : files) {
    const std::string violation = fuzz::RunJsonInput(ReadFile(path));
    EXPECT_TRUE(violation.empty())
        << path.filename().string() << ": " << violation;
  }
}

TEST(ProtocolCorpusTest, ProtocolCorpusHoldsDispatcherInvariants) {
  const std::vector<fs::path> files = CorpusFiles("protocol");
  ASSERT_GE(files.size(), 20u) << "protocol corpus went missing or was gutted";
  for (const fs::path& path : files) {
    const std::string violation = fuzz::RunProtocolInput(ReadFile(path));
    EXPECT_TRUE(violation.empty())
        << path.filename().string() << ": " << violation;
  }
}

// Replay is deterministic: a second pass over the protocol corpus against
// the same long-lived harness engine must also hold (sessions opened by the
// first pass don't poison the second — ids are reused across frames).
TEST(ProtocolCorpusTest, ProtocolCorpusReplayIsIdempotent) {
  for (const fs::path& path : CorpusFiles("protocol")) {
    const std::string violation = fuzz::RunProtocolInput(ReadFile(path));
    EXPECT_TRUE(violation.empty())
        << path.filename().string() << " (second pass): " << violation;
  }
}

}  // namespace
}  // namespace seedb
