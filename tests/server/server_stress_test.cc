// Concurrency stress: 8 client threads interleaving open / next / cancel /
// resume / finish against ONE server over ONE engine — private sessions and
// deliberately contended shared ones. Must be ASan/UBSan-clean (CI runs the
// sanitizer matrix), every response must be a protocol-legal outcome, and
// engine stat accounting must stay EXACT per session: a session that ran to
// completion reports exactly 1 table scan and exactly the table's row count
// no matter how many sessions overlapped it.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "db/engine.h"
#include "server/client.h"
#include "server/server.h"

namespace seedb::server {
namespace {

constexpr size_t kRows = 8000;
constexpr int kThreads = 8;
constexpr int kIterationsPerThread = 10;

/// Base seed for the per-thread interleaving RNGs (thread t uses base + t).
/// Overridable via SEEDB_STRESS_SEED so CI — or a developer chasing a rare
/// interleaving — can sweep schedules without a rebuild; the value in play is
/// attached to every failure message, so a red run is reproducible.
uint32_t StressBaseSeed() {
  static const uint32_t seed = [] {
    const char* env = std::getenv("SEEDB_STRESS_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    }
    return 1000u;
  }();
  return seed;
}

/// Outcomes the protocol permits under contention. Anything else (IO
/// errors, internal errors, crashes) fails the test.
bool IsLegalContendedOutcome(const Status& status) {
  return status.ok() || status.code() == StatusCode::kNotFound ||
         status.code() == StatusCode::kAlreadyExists ||
         status.code() == StatusCode::kInvalidArgument;
}

class ServerStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(
        kRows, /*num_dims=*/3, /*num_measures=*/2, /*cardinality=*/5,
        /*seed=*/7);
    spec.deviation->strength = 5.0;
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    ASSERT_TRUE(catalog_.AddTable("synth", std::move(dataset.table)).ok());
    engine_ = std::make_unique<db::Engine>(&catalog_);
    ASSERT_TRUE(catalog_.GetStats("synth").ok());

    socket_path_ = "/tmp/seedb_stress_" + std::to_string(::getpid()) +
                   ".sock";
    ServerOptions options;
    options.unix_path = socket_path_;
    server_ = std::make_unique<RecommendationServer>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override { server_->Stop(); }

  db::Catalog catalog_;
  std::unique_ptr<db::Engine> engine_;
  std::unique_ptr<RecommendationServer> server_;
  std::string socket_path_;
};

TEST_F(ServerStressTest, EightThreadsInterleavedOpsStayCoherent) {
  std::vector<std::string> failures(kThreads);
  // Sessions that ran start-to-finish uncancelled, with their profiles
  // checked for exact per-session accounting.
  std::atomic<size_t> exact_profiles_checked{0};
  std::atomic<size_t> resumed_full_runs{0};

  auto worker = [&](int t) {
    std::mt19937 rng(StressBaseSeed() + static_cast<uint32_t>(t));
    auto fail = [&](const std::string& what, const Status& status) {
      if (failures[t].empty()) {
        failures[t] = what + ": " + status.ToString();
      }
    };
    auto client_or = Client::ConnectUnix(socket_path_);
    if (!client_or.ok()) {
      fail("connect", client_or.status());
      return;
    }
    Client client = std::move(*client_or);

    OpenSpec spec;
    spec.sql = "SELECT * FROM synth WHERE dim0 = 'dim0_v1'";
    spec.k = 2;
    spec.phases = 4;

    for (int i = 0; i < kIterationsPerThread && failures[t].empty(); ++i) {
      const int scenario = static_cast<int>(rng() % 5);
      const std::string id =
          "t" + std::to_string(t) + "-i" + std::to_string(i);
      switch (scenario) {
        case 0: {  // clean full run: exact per-session accounting
          Status opened = client.Open(id, spec);
          if (!opened.ok()) {
            fail("open", opened);
            break;
          }
          size_t phases = 0;
          while (true) {
            auto progress = client.Next(id);
            if (!progress.ok()) {
              fail("next", progress.status());
              return;
            }
            if (!progress->has_value()) break;
            ++phases;
          }
          auto result = client.Finish(id);
          if (!result.ok()) {
            fail("finish", result.status());
            break;
          }
          if (phases != 4) fail("phases", Status::Internal("ran " +
                                                           std::to_string(
                                                               phases)));
          // THE accounting pin: own work only, however many sessions
          // overlapped on the engine.
          if (result->profile.table_scans != 1) {
            fail("table_scans", Status::Internal(std::to_string(
                                    result->profile.table_scans)));
          }
          if (result->profile.rows_scanned != kRows) {
            fail("rows_scanned", Status::Internal(std::to_string(
                                     result->profile.rows_scanned)));
          }
          if (result->profile.cancelled) {
            fail("cancelled", Status::Internal("clean run flagged"));
          }
          exact_profiles_checked.fetch_add(1);
          break;
        }
        case 1: {  // cancel mid-session, finish partial
          if (!client.Open(id, spec).ok()) break;
          auto first = client.Next(id);
          if (!first.ok()) {
            fail("next", first.status());
            return;
          }
          Status cancelled = client.Cancel(id);
          if (!cancelled.ok()) fail("cancel", cancelled);
          auto drained = client.Next(id);
          if (!drained.ok()) {
            fail("next-after-cancel", drained.status());
            return;
          }
          if (drained->has_value()) {
            fail("drain", Status::Internal("progress after cancel"));
          }
          auto result = client.Finish(id);
          if (!result.ok()) fail("finish-cancelled", result.status());
          break;
        }
        case 2: {  // cancel -> resume -> exact full-run accounting again
          if (!client.Open(id, spec).ok()) break;
          if (auto r = client.Next(id); !r.ok()) {
            fail("next", r.status());
            return;
          }
          if (Status s = client.Cancel(id); !s.ok()) fail("cancel", s);
          if (Status s = client.Resume(id); !s.ok()) {
            fail("resume", s);
            break;
          }
          while (true) {
            auto progress = client.Next(id);
            if (!progress.ok()) {
              fail("next-resumed", progress.status());
              return;
            }
            if (!progress->has_value()) break;
          }
          auto result = client.Finish(id);
          if (!result.ok()) {
            fail("finish-resumed", result.status());
            break;
          }
          if (result->profile.cancelled) {
            fail("resumed-cancelled-flag",
                 Status::Internal("resumed run flagged cancelled"));
          }
          if (result->profile.rows_scanned != kRows ||
              result->profile.table_scans != 1) {
            fail("resumed-accounting",
                 Status::Internal(
                     std::to_string(result->profile.rows_scanned) + "/" +
                     std::to_string(result->profile.table_scans)));
          }
          resumed_full_runs.fetch_add(1);
          break;
        }
        case 3: {  // contended ops on a SHARED session id
          const std::string shared = "shared-" + std::to_string(rng() % 3);
          Status opened = client.Open(shared, spec);
          if (!IsLegalContendedOutcome(opened)) {
            fail("shared-open", opened);
            break;
          }
          auto progress = client.Next(shared);
          if (!IsLegalContendedOutcome(progress.status())) {
            fail("shared-next", progress.status());
            break;
          }
          if (rng() % 2 == 0) {
            Status cancelled = client.Cancel(shared);
            if (!IsLegalContendedOutcome(cancelled)) {
              fail("shared-cancel", cancelled);
            }
            Status resumed = client.Resume(shared);
            if (!IsLegalContendedOutcome(resumed)) {
              fail("shared-resume", resumed);
            }
          }
          if (rng() % 3 == 0) {
            auto finished = client.Finish(shared);
            if (!IsLegalContendedOutcome(finished.status())) {
              fail("shared-finish", finished.status());
            }
          }
          break;
        }
        default: {  // status probes interleaved with everything above
          auto server_status = client.GetStatus();
          if (!server_status.ok()) {
            fail("status", server_status.status());
            break;
          }
          auto session_status = client.GetStatus("shared-0");
          if (!IsLegalContendedOutcome(session_status.status())) {
            fail("session-status", session_status.status());
          }
          break;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty())
        << "thread " << t << " (SEEDB_STRESS_SEED=" << StressBaseSeed()
        << "): " << failures[t];
  }
  // The matrix is seeded, so both exact-accounting scenarios actually ran.
  EXPECT_GT(exact_profiles_checked.load(), 0u);
  EXPECT_GT(resumed_full_runs.load(), 0u);

  // Bookkeeping closes: whatever is still open is exactly the opened-minus-
  // finished difference, and the server shuts down cleanly with them live.
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_opened - stats.sessions_finished,
            server_->open_sessions());
  EXPECT_GE(stats.requests, static_cast<uint64_t>(kThreads));
}

// A second engine-exactness angle: the engine-wide scan counter equals the
// sum of per-session scans when every session runs the fused strategy —
// nothing double-counted, nothing lost, even at full contention.
TEST_F(ServerStressTest, EngineCountersEqualSumOfSessionProfiles) {
  engine_->ResetStats();
  std::atomic<uint64_t> session_scans{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::ConnectUnix(socket_path_);
      if (!client.ok()) {
        ok.store(false);
        return;
      }
      OpenSpec spec;
      spec.sql = "SELECT * FROM synth WHERE dim0 = 'dim0_v1'";
      spec.k = 2;
      spec.phases = 3;
      for (int i = 0; i < 3; ++i) {
        const std::string id =
            "sum-" + std::to_string(t) + "-" + std::to_string(i);
        if (!client->Open(id, spec).ok()) {
          ok.store(false);
          return;
        }
        auto result = client->Finish(id);  // silent full drain
        if (!result.ok()) {
          ok.store(false);
          return;
        }
        session_scans.fetch_add(result->profile.table_scans);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(ok.load());
  EXPECT_EQ(engine_->stats().table_scans, session_scans.load());
  EXPECT_EQ(session_scans.load(),
            static_cast<uint64_t>(kThreads) * 3);
}

}  // namespace
}  // namespace seedb::server
