// Differential oracle: for a seeded matrix of random SeeDBRequest configs
// (strategy x pruner x phases x early-stop x k), results fetched through
// the wire protocol must equal in-process Run() EXACTLY — same view set,
// same order, bit-identical utilities (the protocol serializes doubles with
// %.17g, so the socket round-trip loses nothing).

#include <gtest/gtest.h>

#include <unistd.h>

#include <random>
#include <string>
#include <vector>

#include "core/seedb.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "db/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace seedb::server {
namespace {

class ServerEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticSpec spec = data::SyntheticSpec::Simple(
        /*rows=*/6000, /*num_dims=*/4, /*num_measures=*/2,
        /*cardinality=*/5, /*seed=*/99);
    spec.deviation->strength = 6.0;
    auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
    catalog_ = new db::Catalog();
    ASSERT_TRUE(catalog_->AddTable("synth", std::move(dataset.table)).ok());
    engine_ = new db::Engine(catalog_);
    ASSERT_TRUE(catalog_->GetStats("synth").ok());

    socket_path_ = new std::string(
        "/tmp/seedb_equivalence_" + std::to_string(::getpid()) + ".sock");
    ServerOptions options;
    options.unix_path = *socket_path_;
    server_ = new RecommendationServer(engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }
  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete engine_;
    delete catalog_;
    delete socket_path_;
    server_ = nullptr;
    engine_ = nullptr;
    catalog_ = nullptr;
    socket_path_ = nullptr;
  }

  static db::Catalog* catalog_;
  static db::Engine* engine_;
  static RecommendationServer* server_;
  static std::string* socket_path_;
};

db::Catalog* ServerEquivalenceTest::catalog_ = nullptr;
db::Engine* ServerEquivalenceTest::engine_ = nullptr;
RecommendationServer* ServerEquivalenceTest::server_ = nullptr;
std::string* ServerEquivalenceTest::socket_path_ = nullptr;

/// One config of the seeded matrix, as the wire describes it.
struct MatrixConfig {
  OpenSpec spec;
  std::string label;
};

/// The seeded matrix: every strategy, every pruner, phase counts across the
/// adaptive-morsel boundary, early-stop on and off, k 1..4, occasional
/// bottom-k and alternate metric. Seeded so failures reproduce.
std::vector<MatrixConfig> BuildMatrix() {
  std::mt19937 rng(20260730);
  auto pick = [&rng](size_t n) { return static_cast<size_t>(rng() % n); };
  const char* pruners[] = {"", "none", "ci", "mab"};
  const char* metrics[] = {"", "l1", "euclidean", "jensen_shannon"};

  std::vector<MatrixConfig> matrix;
  for (int i = 0; i < 20; ++i) {
    MatrixConfig config;
    OpenSpec& spec = config.spec;
    spec.sql = "SELECT * FROM synth WHERE dim0 = 'dim0_v1'";
    spec.k = 1 + pick(4);
    spec.metric = metrics[pick(4)];
    const size_t strategy = pick(6);  // weighted toward phased
    if (strategy == 0) {
      spec.strategy = "per-query";
    } else if (strategy == 1) {
      spec.strategy = "shared-scan";
    } else {
      spec.strategy = "phased-shared-scan";
      spec.phases = 1 + pick(8);
      spec.pruner = pruners[pick(4)];
      if (pick(2) == 0) spec.early_stop = 1 + pick(3);
      if (pick(3) == 0) spec.bottom_k = 1 + pick(2);
    }
    config.label = "config " + std::to_string(i) + ": strategy=" +
                   spec.strategy + " phases=" + std::to_string(spec.phases) +
                   " pruner=" + spec.pruner +
                   " early_stop=" + std::to_string(spec.early_stop) +
                   " k=" + std::to_string(spec.k) + " metric=" + spec.metric;
    matrix.push_back(std::move(config));
  }
  return matrix;
}

TEST_F(ServerEquivalenceTest, WireResultsEqualInProcessRunAcrossMatrix) {
  auto client = Client::ConnectUnix(*socket_path_);
  ASSERT_TRUE(client.ok()) << client.status();
  core::SeeDB seedb(engine_);

  size_t config_index = 0;
  for (const MatrixConfig& config : BuildMatrix()) {
    SCOPED_TRACE(config.label);
    const std::string id = "matrix-" + std::to_string(config_index++);

    // In-process truth, built from the SAME wire message the server will
    // decode — the decode path is part of what's under test.
    auto request = OpenRequestFromJson(OpenRequestToJson(id, config.spec));
    ASSERT_TRUE(request.ok()) << request.status();
    auto local = seedb.Run(*request);
    ASSERT_TRUE(local.ok()) << local.status();

    // The same config over the socket.
    ASSERT_TRUE(client->Open(id, config.spec).ok());
    while (true) {
      auto progress = client->Next(id);
      ASSERT_TRUE(progress.ok()) << progress.status();
      if (!progress->has_value()) break;
    }
    auto remote = client->Finish(id);
    ASSERT_TRUE(remote.ok()) << remote.status();

    // View set, order, utilities: exact.
    ASSERT_EQ(remote->top.size(), local->top_views.size());
    for (size_t i = 0; i < remote->top.size(); ++i) {
      EXPECT_EQ(remote->top[i].rank, local->top_views[i].rank) << "rank " << i;
      EXPECT_EQ(remote->top[i].view_id, local->top_views[i].view().Id())
          << "rank " << i + 1;
      EXPECT_EQ(remote->top[i].utility, local->top_views[i].utility())
          << "rank " << i + 1 << " utility must be bit-identical";
      EXPECT_EQ(remote->top[i].target_sql, local->top_views[i].target_sql);
    }
    ASSERT_EQ(remote->low.size(), local->low_utility_views.size());
    for (size_t i = 0; i < remote->low.size(); ++i) {
      EXPECT_EQ(remote->low[i].view_id,
                local->low_utility_views[i].view().Id());
      EXPECT_EQ(remote->low[i].utility,
                local->low_utility_views[i].utility());
    }

    // Pruned-view reporting: same views, same partial estimates.
    ASSERT_EQ(remote->pruned_online.size(),
              local->online_pruned_views.size());
    for (size_t i = 0; i < remote->pruned_online.size(); ++i) {
      EXPECT_EQ(remote->pruned_online[i].view_id,
                local->online_pruned_views[i].view.Id());
      EXPECT_EQ(remote->pruned_online[i].partial_utility,
                local->online_pruned_views[i].partial_utility);
      EXPECT_EQ(remote->pruned_online[i].pruned_at_phase,
                local->online_pruned_views[i].pruned_at_phase);
    }

    // Cost profile: identical execution shape on both sides.
    EXPECT_EQ(remote->metric,
              core::DistanceMetricToString(local->metric));
    EXPECT_EQ(remote->profile.views_enumerated,
              local->profile.views_enumerated);
    EXPECT_EQ(remote->profile.views_executed, local->profile.views_executed);
    EXPECT_EQ(remote->profile.views_pruned_online,
              local->profile.views_pruned_online);
    EXPECT_EQ(remote->profile.examined_view_count,
              local->profile.examined_view_count);
    EXPECT_EQ(remote->profile.phases_executed,
              local->profile.phases_executed);
    EXPECT_EQ(remote->profile.table_scans, local->profile.table_scans);
    EXPECT_EQ(remote->profile.rows_scanned, local->profile.rows_scanned);
    EXPECT_EQ(remote->profile.early_stopped, local->profile.early_stopped);
    EXPECT_FALSE(remote->profile.cancelled);
    EXPECT_FALSE(remote->profile.budget_exceeded);
  }
}

// The same differential oracle under protocol v2: results consumed from
// the server-driven push stream (hello -> open -> Await) must STILL be
// bit-identical to in-process Run() — the transport changed, the numbers
// must not. Progress frames are compared too: the pushed per-phase
// rankings equal the in-process session's, phase for phase.
TEST_F(ServerEquivalenceTest, PushWireResultsEqualInProcessRunAcrossMatrix) {
  auto client = Client::ConnectUnix(*socket_path_);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->Hello().ok());
  ASSERT_TRUE(client->push_enabled());
  core::SeeDB seedb(engine_);

  size_t config_index = 0;
  for (const MatrixConfig& config : BuildMatrix()) {
    SCOPED_TRACE(config.label);
    const std::string id = "push-matrix-" + std::to_string(config_index++);

    // In-process truth: the full streaming session, phase by phase.
    auto request = OpenRequestFromJson(OpenRequestToJson(id, config.spec));
    ASSERT_TRUE(request.ok()) << request.status();
    auto local = seedb.Open(*request);
    ASSERT_TRUE(local.ok()) << local.status();
    std::vector<core::ProgressUpdate> local_updates;
    while (true) {
      auto update = local->Next();
      ASSERT_TRUE(update.ok()) << update.status();
      if (!update->has_value()) break;
      local_updates.push_back(**update);
    }
    auto local_result = local->Finish();
    ASSERT_TRUE(local_result.ok()) << local_result.status();

    // The same config as a server-driven push session.
    auto session = client->OpenSession(id, config.spec);
    ASSERT_TRUE(session.ok()) << session.status();
    std::vector<RemoteProgress> pushed;
    session->OnProgress(
        [&](const RemoteProgress& p) { pushed.push_back(p); });
    auto remote = session->Await();
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_TRUE(session->last_error().ok());

    // Streamed frames: same count, same provisional rankings, exact.
    ASSERT_EQ(pushed.size(), local_updates.size());
    for (size_t i = 0; i < pushed.size(); ++i) {
      EXPECT_EQ(pushed[i].phase, local_updates[i].phase);
      EXPECT_EQ(pushed[i].rows_scanned, local_updates[i].rows_scanned);
      EXPECT_EQ(pushed[i].views_active, local_updates[i].views_active);
      ASSERT_EQ(pushed[i].top.size(), local_updates[i].top_views.size());
      for (size_t j = 0; j < pushed[i].top.size(); ++j) {
        EXPECT_EQ(pushed[i].top[j].id,
                  local_updates[i].top_views[j].view.Id());
        EXPECT_EQ(pushed[i].top[j].utility,
                  local_updates[i].top_views[j].utility);
      }
    }

    // Final ranking: view set, order, utilities — bit-identical.
    ASSERT_EQ(remote->top.size(), local_result->top_views.size());
    for (size_t i = 0; i < remote->top.size(); ++i) {
      EXPECT_EQ(remote->top[i].view_id,
                local_result->top_views[i].view().Id())
          << "rank " << i + 1;
      EXPECT_EQ(remote->top[i].utility,
                local_result->top_views[i].utility())
          << "rank " << i + 1 << " utility must be bit-identical";
    }
    EXPECT_EQ(remote->profile.phases_executed,
              local_result->profile.phases_executed);
    EXPECT_EQ(remote->profile.table_scans,
              local_result->profile.table_scans);
    EXPECT_EQ(remote->profile.rows_scanned,
              local_result->profile.rows_scanned);
  }
}

// Streaming equivalence: the per-phase progress frames a wire session
// yields carry the same provisional rankings the in-process session
// produces, phase for phase.
TEST_F(ServerEquivalenceTest, ProgressFramesMatchInProcessSession) {
  auto client = Client::ConnectUnix(*socket_path_);
  ASSERT_TRUE(client.ok());
  core::SeeDB seedb(engine_);

  OpenSpec spec;
  spec.sql = "SELECT * FROM synth WHERE dim0 = 'dim0_v1'";
  spec.k = 3;
  spec.phases = 5;
  auto request = OpenRequestFromJson(OpenRequestToJson("stream", spec));
  ASSERT_TRUE(request.ok());
  auto local = seedb.Open(*request);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(client->Open("stream", spec).ok());

  while (true) {
    auto local_update = local->Next();
    ASSERT_TRUE(local_update.ok());
    auto remote_update = client->Next("stream");
    ASSERT_TRUE(remote_update.ok());
    ASSERT_EQ(local_update->has_value(), remote_update->has_value());
    if (!local_update->has_value()) break;
    const core::ProgressUpdate& l = **local_update;
    const RemoteProgress& r = **remote_update;
    EXPECT_EQ(r.phase, l.phase);
    EXPECT_EQ(r.total_phases, l.total_phases);
    EXPECT_EQ(r.rows_scanned, l.rows_scanned);
    EXPECT_EQ(r.views_active, l.views_active);
    ASSERT_EQ(r.top.size(), l.top_views.size());
    for (size_t i = 0; i < r.top.size(); ++i) {
      EXPECT_EQ(r.top[i].id, l.top_views[i].view.Id());
      EXPECT_EQ(r.top[i].utility, l.top_views[i].utility);
      EXPECT_EQ(r.top[i].lower, l.top_views[i].lower);
      EXPECT_EQ(r.top[i].upper, l.top_views[i].upper);
    }
  }
  ASSERT_TRUE(local->Finish().ok());
  ASSERT_TRUE(client->Finish("stream").ok());
}

}  // namespace
}  // namespace seedb::server
