// Protocol v2 serving tests: hello negotiation, server-driven push
// sessions (no polling round-trips), the v1 golden back-compat path,
// idle-session eviction via the timer wheel, and admission control under
// both deterministic and 8-thread contended load. ASan/UBSan-clean — CI
// runs the sanitizer matrix over this file.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "data/synthetic.h"
#include "db/engine.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"

namespace seedb::server {
namespace {

// --- Hello negotiation (pure protocol layer) ---

TEST(HelloTest, NegotiatesVersionAndPush) {
  auto negotiate = [](const std::string& line) {
    auto parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    return NegotiateHello(*parsed);
  };
  Handshake v2 = negotiate("{\"op\":\"hello\",\"version\":2,"
                           "\"capabilities\":[\"push\"]}");
  EXPECT_EQ(v2.version, 2);
  EXPECT_TRUE(v2.push);

  // A newer client is clamped to what this server speaks.
  Handshake v9 = negotiate("{\"op\":\"hello\",\"version\":9,"
                           "\"capabilities\":[\"push\"]}");
  EXPECT_EQ(v9.version, kProtocolVersion);
  EXPECT_TRUE(v9.push);

  // v1 never gets push, even if requested.
  Handshake v1 = negotiate("{\"op\":\"hello\",\"version\":1,"
                           "\"capabilities\":[\"push\"]}");
  EXPECT_EQ(v1.version, 1);
  EXPECT_FALSE(v1.push);

  // No capabilities: v2 framing, but polling.
  Handshake plain = negotiate("{\"op\":\"hello\",\"version\":2}");
  EXPECT_EQ(plain.version, 2);
  EXPECT_FALSE(plain.push);

  // Unknown capabilities are dropped silently (forward compatibility —
  // binary_frames is reserved but not implemented).
  Handshake unknown = negotiate(
      "{\"op\":\"hello\",\"version\":2,"
      "\"capabilities\":[\"binary_frames\",\"telepathy\",\"push\"]}");
  EXPECT_TRUE(unknown.push);
}

TEST(HelloTest, ResponseRoundTripsThroughJson) {
  Handshake handshake;
  handshake.version = 2;
  handshake.push = true;
  auto back = HandshakeFromJson(HelloResponseToJson(handshake));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->version, 2);
  EXPECT_TRUE(back->push);
}

TEST(HelloTest, BusyStatusRoundTripsThroughErrorFrames) {
  Status busy = Status::Unavailable("server at capacity");
  JsonValue frame = ErrorResponse(busy, "s1");
  EXPECT_EQ(frame.GetString("code"), "busy");
  Status back = StatusFromErrorResponse(frame);
  EXPECT_EQ(back.code(), StatusCode::kUnavailable);
  EXPECT_EQ(back.message(), "server at capacity");
}

// --- Fixture: a live server over the Laserwave table ---

class PushServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    socket_path_ = "/tmp/seedb_push_test_" + std::to_string(::getpid()) +
                   ".sock";
    ASSERT_TRUE(
        catalog_.AddTable("sales", ::seedb::testing::MakeLaserwaveTable())
            .ok());
    engine_ = std::make_unique<db::Engine>(&catalog_);
    options.unix_path = socket_path_;
    server_ = std::make_unique<RecommendationServer>(engine_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }
  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  OpenSpec LaserwaveSpec(size_t phases = 4) {
    OpenSpec spec;
    spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
    spec.k = 2;
    spec.phases = phases;
    return spec;
  }

  db::Catalog catalog_;
  std::unique_ptr<db::Engine> engine_;
  std::unique_ptr<RecommendationServer> server_;
  std::string socket_path_;
};

// --- v1 golden back-compat: a client that never says hello ---

TEST_F(PushServerTest, V1ClientWithoutHelloStillPolls) {
  StartServer(ServerOptions{});
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_FALSE(client->push_enabled());

  ASSERT_TRUE(client->Open("legacy", LaserwaveSpec(3)).ok());
  for (int i = 1; i <= 3; ++i) {
    auto progress = client->Next("legacy");
    ASSERT_TRUE(progress.ok()) << progress.status();
    ASSERT_TRUE(progress->has_value());
    EXPECT_EQ((**progress).phase, static_cast<size_t>(i));
  }
  auto drained = client->Next("legacy");
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained->has_value());
  auto result = client->Finish("legacy");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->top.size(), 2u);

  // The golden property: no hello, no pushes — the server never sent an
  // unsolicited frame, and every progress update cost one round-trip.
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.push_frames_sent, 0u);
  EXPECT_EQ(stats.requests, 6u);  // open + 4 next + finish
}

// The raw v1 wire shape is pinned byte-level: responses carry no "push",
// "seq", or "ts_us" members, so pre-v2 clients never see unknown keys.
TEST_F(PushServerTest, V1ResponsesCarryNoV2Markers) {
  StartServer(ServerOptions{});
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  std::vector<std::string> responses;
  for (const char* request :
       {"{\"op\":\"open\",\"id\":\"shape\",\"sql\":"
        "\"SELECT * FROM sales WHERE product = 'Laserwave'\",\"phases\":2}",
        "{\"op\":\"next\",\"id\":\"shape\"}", "{\"op\":\"status\"}"}) {
    auto raw = client->CallRaw(request);
    ASSERT_TRUE(raw.ok()) << request;
    responses.push_back(*raw);
  }
  for (const std::string& response : responses) {
    EXPECT_EQ(response.find("\"push\""), std::string::npos) << response;
    EXPECT_EQ(response.find("\"seq\""), std::string::npos) << response;
    EXPECT_EQ(response.find("\"ts_us\""), std::string::npos) << response;
  }
}

// --- v2 push sessions ---

TEST_F(PushServerTest, PushSessionStreamsWithoutPollingRoundTrips) {
  StartServer(ServerOptions{});
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  ASSERT_TRUE(client->push_enabled());
  EXPECT_EQ(client->handshake().version, 2);

  auto session = client->OpenSession("pushed", LaserwaveSpec(4));
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<size_t> phases;
  session->OnProgress(
      [&](const RemoteProgress& p) { phases.push_back(p.phase); });
  auto result = session->Await();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(session->last_error().ok());
  EXPECT_EQ(phases, (std::vector<size_t>{1, 2, 3, 4}));
  EXPECT_EQ(result->top.size(), 2u);
  EXPECT_EQ(result->profile.phases_executed, 4u);

  // THE regression pin for the busy-wait fix: a v2 session costs exactly
  // three request round-trips — hello, open, finish. Every progress frame
  // arrived as a push; `next` never touched the wire.
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.push_frames_sent, 5u);  // 4 progress + drained
}

TEST_F(PushServerTest, PushFramesCarrySequencedV2Markers) {
  StartServer(ServerOptions{});
  // Raw socket: pin the wire shape of the push stream itself.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string requests =
      "{\"op\":\"hello\",\"version\":2,\"capabilities\":[\"push\"]}\n"
      "{\"op\":\"open\",\"id\":\"wire\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\",\"phases\":3}\n";
  ASSERT_EQ(::send(fd, requests.data(), requests.size(), 0),
            static_cast<ssize_t>(requests.size()));

  // Expect: hello ack, opened ack, then 3 progress pushes + drained push.
  std::string buffer;
  char chunk[65536];
  while (std::count(buffer.begin(), buffer.end(), '\n') < 6) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    ASSERT_GT(n, 0) << "server closed early; got: " << buffer;
    buffer.append(chunk, static_cast<size_t>(n));
  }
  std::vector<JsonValue> frames;
  size_t start = 0;
  for (size_t end = buffer.find('\n'); end != std::string::npos;
       end = buffer.find('\n', start)) {
    auto frame = ParseJson(buffer.substr(start, end - start));
    ASSERT_TRUE(frame.ok());
    frames.push_back(std::move(*frame));
    start = end + 1;
  }
  ASSERT_GE(frames.size(), 6u);
  EXPECT_EQ(frames[0].GetString("type"), "hello");
  EXPECT_FALSE(frames[0].GetBool("push"));
  EXPECT_EQ(frames[1].GetString("type"), "opened");
  EXPECT_FALSE(frames[1].GetBool("push"));
  int64_t last_seq = 0;
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_TRUE(frames[i].GetBool("push")) << frames[i].Dump();
    EXPECT_EQ(frames[i].GetString("id"), "wire");
    EXPECT_GT(frames[i].GetInt("seq"), last_seq) << "seq must increase";
    last_seq = frames[i].GetInt("seq");
    EXPECT_GT(frames[i].GetInt("ts_us"), 0) << "missing send stamp";
    EXPECT_EQ(frames[i].GetString("type"), i < 5 ? "progress" : "drained");
  }
  ::close(fd);
}

TEST_F(PushServerTest, DeprecatedNextShimDrainsThePushQueue) {
  StartServer(ServerOptions{});
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  auto session = client->OpenSession("shim", LaserwaveSpec(3));
  ASSERT_TRUE(session.ok());
  size_t phases = 0;
  while (true) {
    auto progress = session->Next();
    ASSERT_TRUE(progress.ok()) << progress.status();
    if (!progress->has_value()) break;
    ++phases;
  }
  EXPECT_EQ(phases, 3u);
  ASSERT_TRUE(session->Finish().ok());
  // Still 3 round-trips: the shim consumed pushes, it did not poll.
  EXPECT_EQ(server_->stats().requests, 3u);
}

TEST_F(PushServerTest, CancelAndResumeKeepStreamingOnAPushConnection) {
  StartServer(ServerOptions{});
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  auto session = client->OpenSession("cr", LaserwaveSpec(6));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Cancel().ok());
  // The stream drains (possibly after frames already in flight).
  while (true) {
    auto progress = session->Next();
    ASSERT_TRUE(progress.ok()) << progress.status();
    if (!progress->has_value()) break;
  }
  Status resumed_status = session->Resume();
  if (!resumed_status.ok()) {
    // The run was already complete before the cancel token landed (the
    // server drives fast): nothing to resume, which the server reports as
    // invalid_argument — same as the in-process session.
    EXPECT_EQ(resumed_status.code(), StatusCode::kInvalidArgument);
  }
  auto result = session->Await();
  ASSERT_TRUE(result.ok()) << result.status();
  // The run completed: all 6 phases executed across cancel+resume, and the
  // final profile is a full clean scan.
  EXPECT_EQ(result->profile.phases_executed, 6u);
  EXPECT_FALSE(result->profile.cancelled);
}

// --- Eviction ---

TEST_F(PushServerTest, IdleSessionsAreEvictedAndMemoryAccountedToZero) {
  ServerOptions options;
  options.session_idle_timeout_ms = 200;
  StartServer(options);
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());

  // Two abandoned v1 sessions: opened, partially driven, never finished.
  ASSERT_TRUE(client->Open("idle-a", LaserwaveSpec()).ok());
  ASSERT_TRUE(client->Open("idle-b", LaserwaveSpec()).ok());
  ASSERT_TRUE(client->Next("idle-a").ok());
  auto before = client->GetStatus();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->sessions, 2u);
  EXPECT_GT(before->memory_bytes, 0u) << "driven session holds agg state";

  // Idle out both sessions. The wheel ticks at timeout/4; give it slack.
  for (int i = 0; i < 100 && server_->open_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server_->open_sessions(), 0u);
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_evicted, 2u);

  // Evicted ids answer not_found on every op.
  for (const char* id : {"idle-a", "idle-b"}) {
    auto next = client->Next(id);
    EXPECT_FALSE(next.ok());
    EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << id;
    auto finish = client->Finish(id);
    EXPECT_EQ(finish.status().code(), StatusCode::kNotFound) << id;
  }

  // And the server-wide memory accounting is back to zero.
  auto after = client->GetStatus();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->sessions, 0u);
  EXPECT_EQ(after->memory_bytes, 0u);
}

TEST_F(PushServerTest, ActiveSessionsSurviveTheIdleTimeout) {
  ServerOptions options;
  options.session_idle_timeout_ms = 300;
  StartServer(options);
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Open("busy-bee", LaserwaveSpec(4)).ok());
  // Touch the session well past several timeout windows: activity must
  // re-arm the (lazy) timer, not race it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(900);
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = client->GetStatus("busy-bee");
    ASSERT_TRUE(status.ok()) << "evicted while active: " << status.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server_->stats().sessions_evicted, 0u);
  ASSERT_TRUE(client->Finish("busy-bee").ok());
}

// Raw-socket pin for the eviction fix: on a v2 connection an evicted
// session's stream ends with EXACTLY ONE `drained`, and no frame for that
// id follows it. The table is big enough (and parallelism 1) that a single
// phase can outlive the idle timeout, in which case eviction lands
// mid-drive and must deliver the terminal drained itself while muting the
// driver's late frames; on a fast box the driver drains first and eviction
// must add nothing. The invariant below holds either way.
TEST_F(PushServerTest, EvictedPushSessionDrainedIsTheLastFrame) {
  {
    auto dataset = ::seedb::data::GenerateSynthetic(
        ::seedb::data::SyntheticSpec::Simple(800000, 3, 2, 8, 7));
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    ASSERT_TRUE(catalog_.AddTable("big", std::move(dataset->table)).ok());
  }
  ServerOptions options;
  options.session_idle_timeout_ms = 30;
  StartServer(options);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string requests =
      "{\"op\":\"hello\",\"version\":2,\"capabilities\":[\"push\"]}\n"
      "{\"op\":\"open\",\"id\":\"doomed\",\"table\":\"big\",\"phases\":1,"
      "\"parallelism\":1,\"k\":2}\n";
  ASSERT_EQ(::send(fd, requests.data(), requests.size(), 0),
            static_cast<ssize_t>(requests.size()));

  // Never finish the session: the wheel must evict it. Read everything the
  // server sends until eviction happened AND the socket stayed silent
  // through a grace window — late frames after drained are exactly what
  // the fix forbids.
  timeval tv{};
  tv.tv_usec = 100 * 1000;  // 100ms read slices
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
  std::string buffer;
  char chunk[65536];
  int silent_slices = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
      silent_slices = 0;
      continue;
    }
    if (n == 0) break;  // server closed — nothing more can arrive
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << strerror(errno);
    // Stop after eviction plus >= 500ms of silence (5 empty slices).
    if (server_->stats().sessions_evicted >= 1 && ++silent_slices >= 5) {
      break;
    }
  }
  ::close(fd);
  EXPECT_EQ(server_->stats().sessions_evicted, 1u);
  EXPECT_EQ(server_->open_sessions(), 0u);

  std::vector<JsonValue> frames;
  size_t start = 0;
  for (size_t end = buffer.find('\n'); end != std::string::npos;
       end = buffer.find('\n', start)) {
    auto frame = ParseJson(buffer.substr(start, end - start));
    ASSERT_TRUE(frame.ok()) << buffer.substr(start, end - start);
    frames.push_back(std::move(*frame));
    start = end + 1;
  }
  // hello ack + opened ack + at least the drained push.
  ASSERT_GE(frames.size(), 3u) << buffer;
  EXPECT_EQ(frames[0].GetString("type"), "hello");
  EXPECT_EQ(frames[1].GetString("type"), "opened");
  size_t drained_count = 0;
  for (size_t i = 2; i < frames.size(); ++i) {
    EXPECT_TRUE(frames[i].GetBool("push")) << frames[i].Dump();
    EXPECT_EQ(frames[i].GetString("id"), "doomed");
    if (frames[i].GetString("type") == "drained") ++drained_count;
  }
  EXPECT_EQ(drained_count, 1u) << buffer;
  EXPECT_EQ(frames.back().GetString("type"), "drained")
      << "frames after the terminal drained: " << frames.back().Dump();
}

// --- Admission control ---

TEST_F(PushServerTest, SaturatedOpensShedBusyWithoutRegistryCorruption) {
  ServerOptions options;
  options.max_inflight_phases = 2;
  StartServer(options);
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());

  // Fill the two admission slots with v1 sessions (in flight until
  // finished or evicted).
  ASSERT_TRUE(client->Open("slot-a", LaserwaveSpec()).ok());
  ASSERT_TRUE(client->Open("slot-b", LaserwaveSpec()).ok());

  // The third open is shed with the structured Busy frame.
  auto raw = client->CallRaw(
      "{\"op\":\"open\",\"id\":\"shed\",\"sql\":"
      "\"SELECT * FROM sales WHERE product = 'Laserwave'\"}");
  ASSERT_TRUE(raw.ok());
  auto busy = ParseJson(*raw);
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy->GetBool("ok"));
  EXPECT_EQ(busy->GetString("code"), "busy");
  EXPECT_EQ(busy->GetInt("retry_after_ms"), 100);
  EXPECT_EQ(StatusFromErrorResponse(*busy).code(),
            StatusCode::kUnavailable);

  // The registry is uncorrupted: both admitted sessions still work, the
  // shed id does not exist.
  EXPECT_EQ(server_->open_sessions(), 2u);
  EXPECT_EQ(client->Next("shed").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client->Next("slot-a").ok());

  // Finishing one releases a slot; the retried open is admitted.
  ASSERT_TRUE(client->Finish("slot-a").ok());
  ASSERT_TRUE(client->Open("shed", LaserwaveSpec()).ok());
  ASSERT_TRUE(client->Finish("shed").ok());
  ASSERT_TRUE(client->Finish("slot-b").ok());
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions_rejected, 1u);
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.sessions_finished, 3u);
  EXPECT_EQ(server_->open_sessions(), 0u);
}

// End-to-end for the client-side retry hint: a shed open's busy frame
// carries retry_after_ms, which the client records (machine-readable) and
// folds into the returned Status message (human-readable).
TEST_F(PushServerTest, ShedOpenSurfacesRetryAfterHintOnClientStatus) {
  ServerOptions options;
  options.max_inflight_phases = 1;
  StartServer(options);
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Open("holder", LaserwaveSpec()).ok());
  EXPECT_EQ(client->last_retry_after_ms(), 0);

  Status shed = client->Open("shed", LaserwaveSpec());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client->last_retry_after_ms(), 100);
  EXPECT_NE(shed.message().find("retry after 100 ms"), std::string::npos)
      << shed.message();

  // The hint is per-response: the next successful call clears it.
  ASSERT_TRUE(client->Next("holder").ok());
  EXPECT_EQ(client->last_retry_after_ms(), 0);
  ASSERT_TRUE(client->Finish("holder").ok());
}

TEST_F(PushServerTest, CompletedPushSessionsReleaseAdmissionSlots) {
  ServerOptions options;
  options.max_inflight_phases = 1;
  StartServer(options);
  auto client = Client::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Hello().ok());
  // A v2 session leaves the in-flight set once its stream drains — even
  // before finish — so back-to-back Await loops never trip the limit.
  for (int i = 0; i < 3; ++i) {
    auto session =
        client->OpenSession("seq-" + std::to_string(i), LaserwaveSpec(2));
    ASSERT_TRUE(session.ok()) << "open " << i << ": " << session.status();
    ASSERT_TRUE(session->Await().ok());
  }
  EXPECT_EQ(server_->stats().sessions_rejected, 0u);
}

TEST_F(PushServerTest, AdmissionUnderEightThreadStress) {
  ServerOptions options;
  options.max_inflight_phases = 3;
  StartServer(options);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 6;
  std::vector<std::string> failures(kThreads);
  std::atomic<size_t> admitted{0};
  std::atomic<size_t> shed{0};

  auto worker = [&](int t) {
    auto client_or = Client::ConnectUnix(socket_path_);
    if (!client_or.ok()) {
      failures[t] = "connect: " + client_or.status().ToString();
      return;
    }
    Client client = std::move(*client_or);
    if (t % 2 == 0) {
      // Half the threads negotiate push; the server must shed/admit both
      // generations with one counter.
      if (Status s = client.Hello(); !s.ok()) {
        failures[t] = "hello: " + s.ToString();
        return;
      }
    }
    OpenSpec spec;
    spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
    spec.k = 2;
    spec.phases = 2;
    for (int i = 0; i < kItersPerThread && failures[t].empty(); ++i) {
      const std::string id =
          "adm-" + std::to_string(t) + "-" + std::to_string(i);
      Status opened = client.Open(id, spec);
      if (opened.code() == StatusCode::kUnavailable) {
        // Shed: legal, and the id must NOT have been registered. The probe
        // only runs on polling clients — on a push connection Next() would
        // wait on frames the server (correctly) never sends for this id.
        shed.fetch_add(1);
        if (!client.push_enabled()) {
          auto probe = client.Next(id);
          if (probe.status().code() != StatusCode::kNotFound) {
            failures[t] = "shed id registered: " + probe.status().ToString();
          }
        }
        continue;
      }
      if (!opened.ok()) {
        failures[t] = "open: " + opened.ToString();
        break;
      }
      admitted.fetch_add(1);
      while (true) {
        auto progress = client.Next(id);
        if (!progress.ok()) {
          failures[t] = "next: " + progress.status().ToString();
          return;
        }
        if (!progress->has_value()) break;
      }
      auto result = client.Finish(id);
      if (!result.ok()) failures[t] = "finish: " + result.status().ToString();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }

  // Registry coherence after the storm: everything admitted was finished,
  // the books balance, and the counters agree with what the threads saw.
  ServerStats stats = server_->stats();
  EXPECT_EQ(server_->open_sessions(), 0u);
  EXPECT_EQ(stats.sessions_opened, admitted.load());
  EXPECT_EQ(stats.sessions_finished, admitted.load());
  EXPECT_EQ(stats.sessions_rejected, shed.load());
  EXPECT_EQ(admitted.load() + shed.load(),
            static_cast<size_t>(kThreads) * kItersPerThread);
}

}  // namespace
}  // namespace seedb::server
