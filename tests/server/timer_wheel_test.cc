// Timer-wheel unit tests: scheduling, cancellation, re-scheduling (the
// lazy re-arm pattern the server's eviction uses), multi-revolution
// delays, and the at-most-once firing guarantee.

#include "server/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace seedb::server {
namespace {

std::vector<std::string> AdvanceTo(TimerWheel* wheel, uint64_t now_ms) {
  std::vector<std::string> expired;
  wheel->Advance(now_ms, &expired);
  std::sort(expired.begin(), expired.end());
  return expired;
}

TEST(TimerWheelTest, FiresAtTheScheduledDelay) {
  TimerWheel wheel(/*tick_ms=*/10, /*num_slots=*/8);
  wheel.Schedule("a", /*now_ms=*/1000, /*delay_ms=*/50);
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(AdvanceTo(&wheel, 1040).empty());
  EXPECT_EQ(AdvanceTo(&wheel, 1060), std::vector<std::string>{"a"});
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ZeroDelayFiresOnTheNextTick) {
  TimerWheel wheel(10, 8);
  wheel.Schedule("now", 500, 0);
  // Same instant: the tick boundary has not been crossed yet.
  EXPECT_TRUE(AdvanceTo(&wheel, 500).empty());
  EXPECT_EQ(AdvanceTo(&wheel, 520), std::vector<std::string>{"now"});
}

TEST(TimerWheelTest, CancelDropsThePendingTimer) {
  TimerWheel wheel(10, 8);
  wheel.Schedule("a", 0, 30);
  wheel.Schedule("b", 0, 30);
  wheel.Cancel("a");
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_EQ(AdvanceTo(&wheel, 100), std::vector<std::string>{"b"});
  // Cancelling an unknown key is a no-op.
  wheel.Cancel("ghost");
}

TEST(TimerWheelTest, RescheduleMovesTheSingleTimer) {
  // The eviction loop's lazy re-arm: a touched session gets its timer
  // pushed out; it must NOT also fire at the original deadline.
  TimerWheel wheel(10, 16);
  wheel.Schedule("s", 0, 40);
  wheel.Schedule("s", 20, 100);  // touched at t=20: due moves to t=120
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(AdvanceTo(&wheel, 60).empty()) << "fired at the stale deadline";
  EXPECT_EQ(AdvanceTo(&wheel, 130), std::vector<std::string>{"s"});
}

TEST(TimerWheelTest, DelaysBeyondOneRevolutionTakeExtraRounds) {
  // 8 slots * 10ms = one 80ms revolution; 250ms needs 3+ passes.
  TimerWheel wheel(10, 8);
  wheel.Schedule("long", 0, 250);
  EXPECT_TRUE(AdvanceTo(&wheel, 80).empty());
  EXPECT_TRUE(AdvanceTo(&wheel, 160).empty());
  EXPECT_TRUE(AdvanceTo(&wheel, 240).empty());
  EXPECT_EQ(AdvanceTo(&wheel, 260), std::vector<std::string>{"long"});
}

TEST(TimerWheelTest, ManyTimersExpireTogetherAndAtMostOnce) {
  TimerWheel wheel(10, 32);
  std::vector<std::string> want;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    wheel.Schedule(key, 0, 10 + (i % 7) * 10);
    want.push_back(std::move(key));
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(AdvanceTo(&wheel, 200), want);
  EXPECT_EQ(wheel.pending(), 0u);
  // Nothing fires twice.
  EXPECT_TRUE(AdvanceTo(&wheel, 10000).empty());
}

TEST(TimerWheelTest, AdvanceFarPastManyRevolutionsStillFiresEverything) {
  TimerWheel wheel(10, 8);
  wheel.Schedule("a", 0, 20);
  wheel.Schedule("b", 0, 500);
  // One giant jump (the loop was blocked): both timers are overdue.
  std::vector<std::string> both = AdvanceTo(&wheel, 100000);
  EXPECT_EQ(both, (std::vector<std::string>{"a", "b"}));
}

TEST(TimerWheelTest, EpochAnchorsAtTheFirstSchedule) {
  // Wall-clock-like now_ms values (large absolute numbers) must not make
  // the wheel spin from zero.
  TimerWheel wheel(100, 512);
  const uint64_t now = 1723100000000ull;
  wheel.Schedule("s", now, 300);
  EXPECT_TRUE(AdvanceTo(&wheel, now + 200).empty());
  EXPECT_EQ(AdvanceTo(&wheel, now + 400), std::vector<std::string>{"s"});
}

}  // namespace
}  // namespace seedb::server
