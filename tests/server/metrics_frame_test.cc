// The `metrics` wire request: golden frame shape (counters/gauges objects,
// per-histogram quantile fields and parallel bucket arrays) and the
// acceptance property of the observability layer — after one session runs
// through the server, the engine.phase.latency_us histogram in the
// `metrics` response is non-zero and the per-request-type server
// histograms counted every request. The obs registry is process-global and
// other tests run sessions too, so assertions are >=, never ==.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "../test_util.h"
#include "db/engine.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"

namespace seedb::server {
namespace {

TEST(MetricsFrameTest, EncoderPinsTheFrameShape) {
  obs::Registry registry;
  registry.GetCounter("test.events")->Add(3);
  registry.GetGauge("test.depth")->Set(-2);
  obs::Histogram* hist = registry.GetHistogram("test.lat_us");
  for (int i = 0; i < 10; ++i) hist->Observe(100);

  JsonValue frame = MetricsToJson(registry.TakeSnapshot());
  EXPECT_TRUE(frame.GetBool("ok"));
  EXPECT_EQ(frame.GetString("type"), "metrics");
  const JsonValue* counters = frame.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetInt("test.events"), 3);
  const JsonValue* gauges = frame.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->GetInt("test.depth"), -2);

  const JsonValue* hists = frame.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* lat = hists->Find("test.lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->GetInt("count"), 10);
  EXPECT_EQ(lat->GetInt("sum_us"), 1000);
  EXPECT_EQ(lat->GetDouble("mean_us"), 100.0);
  // 100us lands in the (64, 128] bucket; quantiles report its upper bound.
  EXPECT_EQ(lat->GetInt("p50_us"), 128);
  EXPECT_EQ(lat->GetInt("p95_us"), 128);
  EXPECT_EQ(lat->GetInt("p99_us"), 128);
  // Parallel bucket arrays cover every bucket and agree on length.
  const JsonValue* bounds = lat->Find("bucket_le_us");
  const JsonValue* counts = lat->Find("bucket_counts");
  ASSERT_NE(bounds, nullptr);
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(bounds->size(), obs::kHistogramBuckets);
  ASSERT_EQ(counts->size(), obs::kHistogramBuckets);
  EXPECT_EQ(bounds->at(0).AsInt(), 1);
  int64_t total = 0;
  for (size_t i = 0; i < counts->size(); ++i) total += counts->at(i).AsInt();
  EXPECT_EQ(total, 10);

  // The request side is one line with just the op.
  EXPECT_EQ(MetricsRequestToJson().Dump(), "{\"op\":\"metrics\"}");
}

TEST(MetricsFrameTest, ServerAnswersMetricsAfterASession) {
  db::Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable("sales", ::seedb::testing::MakeLaserwaveTable()).ok());
  db::Engine engine(&catalog);
  ServerOptions options;
  options.unix_path =
      "/tmp/seedb_metrics_test_" + std::to_string(::getpid()) + ".sock";
  RecommendationServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::ConnectUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  OpenSpec spec;
  spec.sql = "SELECT * FROM sales WHERE product = 'Laserwave'";
  spec.k = 2;
  spec.phases = 3;
  ASSERT_TRUE(client->Open("m1", spec).ok());
  while (true) {
    auto progress = client->Next("m1");
    ASSERT_TRUE(progress.ok()) << progress.status();
    if (!progress->has_value()) break;
  }
  ASSERT_TRUE(client->Finish("m1").ok());

  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  const JsonValue* hists = metrics->Find("histograms");
  ASSERT_NE(hists, nullptr);

  // Acceptance: the engine-phase latency histogram saw this session's
  // phases, and the request-type histograms saw its open/next/finish.
  const JsonValue* phase = hists->Find("engine.phase.latency_us");
  ASSERT_NE(phase, nullptr);
  EXPECT_GE(phase->GetInt("count"), 3);
  EXPECT_GT(phase->GetInt("p99_us"), 0);
  const JsonValue* open_us = hists->Find("server.request.open_us");
  ASSERT_NE(open_us, nullptr);
  EXPECT_GE(open_us->GetInt("count"), 1);
  const JsonValue* next_us = hists->Find("server.request.next_us");
  ASSERT_NE(next_us, nullptr);
  EXPECT_GE(next_us->GetInt("count"), 4);  // 3 progress + 1 drained
  const JsonValue* finish_us = hists->Find("server.request.finish_us");
  ASSERT_NE(finish_us, nullptr);
  EXPECT_GE(finish_us->GetInt("count"), 1);

  // Engine-side counters flowed through the registry too.
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->GetInt("engine.scan.rows"), 0);
  EXPECT_GT(counters->GetInt("engine.scan.morsels"), 0);

  server.Stop();
}

}  // namespace
}  // namespace seedb::server
