// Metrics-registry tests: exactness of the sharded counters under an
// 8-thread hammer (the merged total must equal what the threads added, no
// samples lost), histogram bucket accounting, quantile semantics over the
// log-spaced buckets, and registry reset. The hammer runs under the TSan CI
// leg — the per-thread slots are the whole point of the design, so a data
// race here is a subsystem bug, not test flakiness.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace seedb::obs {
namespace {

TEST(MetricsRegistryTest, GetReturnsSameInstrumentForSameName) {
  Registry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("test.other"));
  EXPECT_EQ(registry.GetHistogram("test.hist_us"),
            registry.GetHistogram("test.hist_us"));
}

TEST(MetricsRegistryTest, EightThreadHammerMergesExactly) {
  Registry registry;
  Counter* counter = registry.GetCounter("hammer.counter");
  Histogram* hist = registry.GetHistogram("hammer.latency_us");
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 50000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter->Add(1);
        // Spread observations across many buckets (values 0..~131k µs).
        hist->Observe((i + static_cast<uint64_t>(t)) % 131072);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactness: the merged counter is the sum of every Add, and the
  // histogram lost no observation — bucket counts sum to the total.
  EXPECT_EQ(counter->Value(), kThreads * kOpsPerThread);
  HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    bucket_total += snapshot.buckets[i];
  }
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_GT(snapshot.sum_us, 0u);
}

TEST(MetricsRegistryTest, GaugeHoldsLastValuePerSlotMerge) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(42);
  EXPECT_EQ(gauge->Value(), 42);
  gauge->Set(7);
  EXPECT_EQ(gauge->Value(), 7);
}

TEST(HistogramTest, BucketIndexIsLogSpaced) {
  // Boundaries are 1, 2, 4, ... 2^25 µs + one overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1u << 25), kHistogramBuckets - 2);
  // Values past the last finite boundary land in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex((1u << 25) + 1), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(HistogramTest, QuantilesReportBucketUpperBounds) {
  Registry registry;
  Histogram* hist = registry.GetHistogram("quantile.test_us");
  // 90 fast observations (bucket le=4), 10 slow ones (bucket le=1024).
  for (int i = 0; i < 90; ++i) hist->Observe(3);
  for (int i = 0; i < 10; ++i) hist->Observe(1000);
  HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.QuantileUs(0.50), 4u);
  EXPECT_EQ(snapshot.QuantileUs(0.95), 1024u);
  EXPECT_EQ(snapshot.QuantileUs(0.99), 1024u);
  EXPECT_NEAR(snapshot.MeanUs(), (90.0 * 3 + 10.0 * 1000) / 100.0, 1e-9);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Registry registry;
  HistogramSnapshot snapshot =
      registry.GetHistogram("empty.test_us")->Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.QuantileUs(0.99), 0u);
  EXPECT_EQ(snapshot.MeanUs(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotCarriesEveryInstrument) {
  Registry registry;
  registry.GetCounter("snap.counter")->Add(5);
  registry.GetGauge("snap.gauge")->Set(11);
  registry.GetHistogram("snap.hist_us")->Observe(100);
  Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "snap.counter");
  EXPECT_EQ(snapshot.counters[0].value, 5u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 11);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].snapshot.count, 1u);
  // Human renderings exist and mention the instruments.
  EXPECT_NE(snapshot.ToString().find("snap.counter"), std::string::npos);
  EXPECT_NE(snapshot.ToOneLine().find("snap.hist_us"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesInstrumentsButKeepsThem) {
  Registry registry;
  Counter* counter = registry.GetCounter("reset.counter");
  Histogram* hist = registry.GetHistogram("reset.hist_us");
  counter->Add(9);
  hist->Observe(500);
  registry.Reset();
  // Pointers stay valid (instruments are never destroyed) and read zero —
  // the \stats reset contract.
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Snapshot().count, 0u);
  EXPECT_EQ(registry.GetCounter("reset.counter"), counter);
  counter->Add(2);
  EXPECT_EQ(counter->Value(), 2u);
}

}  // namespace
}  // namespace seedb::obs
