// Trace-recorder tests: the emitted file is well-formed Chrome trace-event
// JSON (parsed with the server's own JSON parser), begin/end events balance
// and nest per thread, timestamps are monotonic per tid in file order, the
// per-session gate (ShouldTrace) composes with trace_all, and double-start
// is rejected. The recorder is process-global, so these tests serialize on
// it — gtest runs them sequentially in one process.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"

namespace seedb::obs {
namespace {

std::string TempTracePath(const char* tag) {
  return "/tmp/seedb_trace_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class TraceFile {
 public:
  explicit TraceFile(const char* tag) : path_(TempTracePath(tag)) {}
  ~TraceFile() {
    TraceRecorder::StopGlobal();  // safety net when a test fails mid-way
    std::remove(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TraceRecorderTest, DisabledByDefaultAndSpansCostNothing) {
  ASSERT_FALSE(TraceRecorder::Enabled());
  EXPECT_FALSE(TraceRecorder::ShouldTrace(true));
  { SEEDB_TRACE_SPAN(span, "never.recorded", 1); }
  EXPECT_EQ(TraceRecorder::EventCount(), 0u);
}

TEST(TraceRecorderTest, EmitsBalancedWellFormedJson) {
  TraceFile file("balanced");
  ASSERT_TRUE(TraceRecorder::StartGlobal(file.path(), true).ok());
  EXPECT_TRUE(TraceRecorder::Enabled());

  // Nested spans on this thread plus concurrent spans on 4 others.
  {
    SEEDB_TRACE_SPAN(outer, "session.open", 7);
    SEEDB_TRACE_SPAN(inner, "scan.phase", 7);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 8; ++i) {
        SEEDB_TRACE_SPAN(span, "scan.worker", 0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const uint64_t events = TraceRecorder::EventCount();
  EXPECT_EQ(events, 2u * (2 + 4 * 8));
  TraceRecorder::StopGlobal();
  EXPECT_FALSE(TraceRecorder::Enabled());

  auto doc = server::ParseJson(ReadFile(file.path()));
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->size(), events);

  // Per-tid: B/E balance with proper nesting, ts monotone in file order.
  std::map<int64_t, std::vector<std::string>> open;
  std::map<int64_t, int64_t> last_ts;
  for (size_t i = 0; i < doc->size(); ++i) {
    const server::JsonValue& ev = doc->at(i);
    const std::string name = ev.GetString("name");
    const std::string ph = ev.GetString("ph");
    const int64_t ts = ev.GetInt("ts", -1);
    const int64_t tid = ev.GetInt("tid", -1);
    ASSERT_FALSE(name.empty());
    ASSERT_TRUE(ph == "B" || ph == "E") << ph;
    ASSERT_GE(ts, 0);
    ASSERT_GT(tid, 0);
    EXPECT_EQ(ev.GetInt("pid"), 1);
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) EXPECT_GE(ts, it->second);
    last_ts[tid] = ts;
    if (ph == "B") {
      open[tid].push_back(name);
    } else {
      ASSERT_FALSE(open[tid].empty()) << "E without B for " << name;
      EXPECT_EQ(open[tid].back(), name);
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }

  // The session arg rides on the session-lifecycle spans.
  bool saw_session_arg = false;
  for (size_t i = 0; i < doc->size(); ++i) {
    const server::JsonValue* args = doc->at(i).Find("args");
    if (args != nullptr && args->GetInt("session") == 7) {
      saw_session_arg = true;
    }
  }
  EXPECT_TRUE(saw_session_arg);
}

TEST(TraceRecorderTest, PerSessionGateComposesWithTraceAll) {
  TraceFile file("gate");
  // trace_all = false: only sessions that opted in record.
  ASSERT_TRUE(TraceRecorder::StartGlobal(file.path(), false).ok());
  EXPECT_TRUE(TraceRecorder::ShouldTrace(true));
  EXPECT_FALSE(TraceRecorder::ShouldTrace(false));
  {
    SEEDB_TRACE_SPAN_IF(skipped, "session.open", 1,
                        TraceRecorder::ShouldTrace(false));
    SEEDB_TRACE_SPAN_IF(recorded, "session.open", 2,
                        TraceRecorder::ShouldTrace(true));
  }
  EXPECT_EQ(TraceRecorder::EventCount(), 2u);  // one B + one E
  TraceRecorder::StopGlobal();
}

TEST(TraceRecorderTest, SecondStartIsRejectedWhileActive) {
  TraceFile file("double");
  ASSERT_TRUE(TraceRecorder::StartGlobal(file.path(), true).ok());
  Status again = TraceRecorder::StartGlobal(TempTracePath("other"), true);
  EXPECT_FALSE(again.ok());
  TraceRecorder::StopGlobal();
  // After stopping, a fresh recorder may start.
  ASSERT_TRUE(TraceRecorder::StartGlobal(file.path(), true).ok());
  TraceRecorder::StopGlobal();
}

TEST(TraceRecorderTest, UnopenablePathIsIoError) {
  Status bad =
      TraceRecorder::StartGlobal("/nonexistent-dir/trace.json", true);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(TraceRecorder::Enabled());
}

}  // namespace
}  // namespace seedb::obs
