#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "db/group_by.h"
#include "db/statistics.h"

namespace seedb::data {
namespace {

TEST(SyntheticSpecTest, SimpleBuildsExpectedShape) {
  SyntheticSpec spec = SyntheticSpec::Simple(100, 3, 2, 5, 9);
  EXPECT_EQ(spec.rows, 100u);
  EXPECT_EQ(spec.dimensions.size(), 3u);
  EXPECT_EQ(spec.measures.size(), 2u);
  EXPECT_EQ(spec.dimensions[0].cardinality, 5u);
  ASSERT_TRUE(spec.deviation.has_value());
}

TEST(SyntheticTest, GeneratesRequestedRowsAndSchema) {
  auto dataset =
      GenerateSynthetic(SyntheticSpec::Simple(500, 3, 2, 4)).ValueOrDie();
  EXPECT_EQ(dataset.table.num_rows(), 500u);
  EXPECT_EQ(dataset.table.schema().DimensionColumns().size(), 3u);
  EXPECT_EQ(dataset.table.schema().MeasureColumns().size(), 2u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  auto a = GenerateSynthetic(SyntheticSpec::Simple(200, 2, 1, 4, 5))
               .ValueOrDie();
  auto b = GenerateSynthetic(SyntheticSpec::Simple(200, 2, 1, 4, 5))
               .ValueOrDie();
  for (size_t r = 0; r < 200; ++r) {
    for (size_t c = 0; c < a.table.num_columns(); ++c) {
      ASSERT_EQ(a.table.ValueAt(r, c), b.table.ValueAt(r, c));
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto a = GenerateSynthetic(SyntheticSpec::Simple(200, 2, 1, 4, 5))
               .ValueOrDie();
  auto b = GenerateSynthetic(SyntheticSpec::Simple(200, 2, 1, 4, 6))
               .ValueOrDie();
  size_t diffs = 0;
  for (size_t r = 0; r < 200; ++r) {
    if (!(a.table.ValueAt(r, 0) == b.table.ValueAt(r, 0))) ++diffs;
  }
  EXPECT_GT(diffs, 0u);
}

TEST(SyntheticTest, CardinalityRespected) {
  auto dataset =
      GenerateSynthetic(SyntheticSpec::Simple(2000, 2, 1, 7)).ValueOrDie();
  const db::Column& col =
      *dataset.table.ColumnByName("dim0").ValueOrDie();
  EXPECT_LE(col.CountDistinct(), 7u);
  EXPECT_GE(col.CountDistinct(), 6u);  // 2000 rows should hit nearly all
}

TEST(SyntheticTest, GroundTruthSelectionMatchesRows) {
  auto dataset =
      GenerateSynthetic(SyntheticSpec::Simple(1000, 3, 1, 4)).ValueOrDie();
  ASSERT_TRUE(dataset.selection != nullptr);
  std::vector<uint8_t> mask;
  ASSERT_TRUE(dataset.selection->EvaluateMask(dataset.table, &mask).ok());
  size_t matched = std::count(mask.begin(), mask.end(), uint8_t{1});
  // Selector picks one of 4 values of dim0: about a quarter of rows.
  EXPECT_GT(matched, 150u);
  EXPECT_LT(matched, 400u);
  EXPECT_EQ(dataset.expected_dimension, "dim1");
  EXPECT_EQ(dataset.expected_measure, "m0");
}

TEST(SyntheticTest, PlantedDeviationSkewsConditionalMean) {
  SyntheticSpec spec = SyntheticSpec::Simple(20000, 2, 1, 4, 11);
  spec.deviation->strength = 5.0;
  auto dataset = GenerateSynthetic(spec).ValueOrDie();

  // AVG(m0) grouped by dim1, under the selector: odd-indexed dim1 values
  // should average ~5x the even-indexed ones.
  db::GroupByQuery q;
  q.table = "t";
  q.where = dataset.selection;
  q.group_by = {"dim1"};
  q.aggregates = {
      db::AggregateSpec::Make(db::AggregateFunction::kAvg, "m0")};
  auto result = db::ExecuteGroupBy(dataset.table, q, nullptr).ValueOrDie();
  ASSERT_EQ(result.num_rows(), 4u);
  double even_avg = 0, odd_avg = 0;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    std::string key = result.ValueAt(r, 0).ToString();
    double v = result.ValueAt(r, 1).ToDouble().ValueOrDie();
    // Key form: dim1_v<j>.
    int j = std::stoi(key.substr(key.find("_v") + 2));
    (j % 2 == 1 ? odd_avg : even_avg) += v / 2.0;
  }
  EXPECT_NEAR(odd_avg / even_avg, 5.0, 0.5);
}

TEST(SyntheticTest, ZipfDimensionIsSkewed) {
  SyntheticSpec spec = SyntheticSpec::Simple(20000, 2, 1, 10, 3);
  spec.deviation.reset();
  spec.dimensions[0].distribution = DimensionSpec::Dist::kZipf;
  spec.dimensions[0].zipf_s = 1.2;
  auto dataset = GenerateSynthetic(spec).ValueOrDie();
  db::TableStats stats = db::ComputeTableStats(dataset.table, "t");
  const db::ColumnStats* zipf_dim = stats.Find("dim0").ValueOrDie();
  const db::ColumnStats* uniform_dim = stats.Find("dim1").ValueOrDie();
  // Zipf concentrates mass: lower entropy than the uniform dimension.
  EXPECT_LT(zipf_dim->normalized_entropy, uniform_dim->normalized_entropy);
  // Top value share should be large under s=1.2.
  EXPECT_GT(static_cast<double>(zipf_dim->top_values[0].second) / 20000.0,
            0.25);
}

TEST(SyntheticTest, CorrelatedDimensionsHaveHighCramersV) {
  SyntheticSpec spec = SyntheticSpec::Simple(5000, 3, 1, 5, 7);
  spec.deviation.reset();
  spec.dimensions[2].correlated_with = 0;
  spec.dimensions[2].correlation_noise = 0.02;
  auto dataset = GenerateSynthetic(spec).ValueOrDie();
  double v = db::CramersV(dataset.table, "dim0", "dim2").ValueOrDie();
  EXPECT_GT(v, 0.9);
  double independent =
      db::CramersV(dataset.table, "dim0", "dim1").ValueOrDie();
  EXPECT_LT(independent, 0.1);
}

TEST(SyntheticTest, ValidationErrors) {
  SyntheticSpec spec;  // no dims/measures
  EXPECT_FALSE(GenerateSynthetic(spec).ok());

  spec = SyntheticSpec::Simple(10, 2, 1, 4);
  spec.deviation->deviating_dim = 9;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());

  spec = SyntheticSpec::Simple(10, 2, 1, 4);
  spec.deviation->selector_dim = spec.deviation->deviating_dim;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());

  spec = SyntheticSpec::Simple(10, 2, 1, 4);
  spec.dimensions[0].cardinality = 0;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(SyntheticTest, MeasureDistributions) {
  SyntheticSpec spec = SyntheticSpec::Simple(20000, 2, 3, 4, 19);
  spec.deviation.reset();
  spec.measures[0].distribution = MeasureSpec::Dist::kGaussian;
  spec.measures[0].mean = 50.0;
  spec.measures[0].stddev = 5.0;
  spec.measures[1].distribution = MeasureSpec::Dist::kUniform;
  spec.measures[1].lo = 0.0;
  spec.measures[1].hi = 10.0;
  spec.measures[2].distribution = MeasureSpec::Dist::kExponential;
  spec.measures[2].rate = 0.1;
  auto dataset = GenerateSynthetic(spec).ValueOrDie();
  db::TableStats stats = db::ComputeTableStats(dataset.table, "t");
  EXPECT_NEAR(stats.Find("m0").ValueOrDie()->mean, 50.0, 0.5);
  const auto* uniform = stats.Find("m1").ValueOrDie();
  EXPECT_GE(uniform->min, 0.0);
  EXPECT_LT(uniform->max, 10.0);
  EXPECT_NEAR(stats.Find("m2").ValueOrDie()->mean, 10.0, 0.5);  // 1/rate
}

}  // namespace
}  // namespace seedb::data
