#include <gtest/gtest.h>

#include "core/seedb.h"
#include "data/elections.h"
#include "data/medical.h"
#include "data/store_orders.h"
#include "db/statistics.h"

namespace seedb::data {
namespace {

// Runs every known trend of a demo dataset through SeeDB and checks the
// planted view lands in the top k.
void CheckTrendsRecovered(DemoDataset dataset, size_t k,
                          const core::SeeDBOptions& base_options) {
  db::Catalog catalog;
  std::string table = dataset.table_name;
  ASSERT_TRUE(catalog.AddTable(table, std::move(dataset.table)).ok());
  db::Engine engine(&catalog);
  core::SeeDB seedb(&engine);
  for (const auto& trend : dataset.trends) {
    core::SeeDBOptions options = base_options;
    options.k = k;
    auto result = seedb.RecommendSql(trend.query_sql, options);
    ASSERT_TRUE(result.ok()) << trend.description << ": " << result.status();
    bool found = false;
    for (const auto& rec : result->top_views) {
      found = found ||
              (rec.view().dimension == trend.expected_dimension &&
               rec.view().measure == trend.expected_measure);
    }
    EXPECT_TRUE(found) << "trend not recovered: " << trend.description;
  }
}

TEST(StoreOrdersTest, SchemaAndSize) {
  auto dataset = MakeStoreOrders({.rows = 5000, .seed = 7}).ValueOrDie();
  EXPECT_EQ(dataset.table.num_rows(), 5000u);
  EXPECT_EQ(dataset.table_name, "orders");
  EXPECT_EQ(dataset.table.schema().DimensionColumns().size(), 8u);
  EXPECT_EQ(dataset.table.schema().MeasureColumns().size(), 4u);
  EXPECT_FALSE(dataset.trends.empty());
}

TEST(StoreOrdersTest, StoreDeterminesRegion) {
  auto dataset = MakeStoreOrders({.rows = 5000, .seed = 7}).ValueOrDie();
  double v = db::CramersV(dataset.table, "store", "region").ValueOrDie();
  EXPECT_GT(v, 0.95);
}

TEST(StoreOrdersTest, FurnitureCentralLosesMoney) {
  auto dataset = MakeStoreOrders({.rows = 20000, .seed = 7}).ValueOrDie();
  // Direct check of the planted anomaly.
  double central_profit = 0.0, east_profit = 0.0;
  auto region = dataset.table.ColumnByName("region").ValueOrDie();
  auto category = dataset.table.ColumnByName("category").ValueOrDie();
  auto profit = dataset.table.ColumnByName("profit").ValueOrDie();
  for (size_t r = 0; r < dataset.table.num_rows(); ++r) {
    if (category->GetValue(r) != db::Value("Furniture")) continue;
    if (region->GetValue(r) == db::Value("Central")) {
      central_profit += profit->NumericAt(r);
    } else if (region->GetValue(r) == db::Value("East")) {
      east_profit += profit->NumericAt(r);
    }
  }
  EXPECT_LT(central_profit, 0.0);
  EXPECT_GT(east_profit, central_profit);
}

TEST(StoreOrdersTest, TrendsRecoveredBySeeDB) {
  core::SeeDBOptions options;
  options.metric = core::DistanceMetric::kEarthMovers;
  CheckTrendsRecovered(MakeStoreOrders({.rows = 20000, .seed = 7})
                           .ValueOrDie(),
                       /*k=*/8, options);
}

TEST(ElectionsTest, SchemaAndCorrelatedParty) {
  auto dataset = MakeElections({.rows = 8000, .seed = 11}).ValueOrDie();
  EXPECT_EQ(dataset.table_name, "contributions");
  EXPECT_EQ(dataset.table.num_rows(), 8000u);
  double v =
      db::CramersV(dataset.table, "candidate", "party").ValueOrDie();
  EXPECT_GT(v, 0.95);  // candidate determines party
}

TEST(ElectionsTest, AmountsAreHeavyTailed) {
  auto dataset = MakeElections({.rows = 20000, .seed = 11}).ValueOrDie();
  db::TableStats stats = db::ComputeTableStats(dataset.table, "c");
  const db::ColumnStats* amount = stats.Find("amount").ValueOrDie();
  // Log-normal: mean far above median territory, huge max.
  EXPECT_GT(amount->max, amount->mean * 20);
  EXPECT_GT(amount->mean, 0.0);
}

TEST(ElectionsTest, TrendsRecoveredBySeeDB) {
  core::SeeDBOptions options;
  options.metric = core::DistanceMetric::kEarthMovers;
  CheckTrendsRecovered(MakeElections({.rows = 30000, .seed = 11})
                           .ValueOrDie(),
                       /*k=*/8, options);
}

TEST(MedicalTest, WideSchemaFlags) {
  auto dataset =
      MakeMedical({.rows = 3000, .extra_flag_dims = 5, .seed = 13})
          .ValueOrDie();
  EXPECT_EQ(dataset.table_name, "admissions");
  EXPECT_EQ(dataset.table.schema().DimensionColumns().size(), 6u + 5u);
  // Flags are near-constant: low diversity (variance-pruning bait).
  db::TableStats stats = db::ComputeTableStats(dataset.table, "m");
  const db::ColumnStats* flag = stats.Find("flag0").ValueOrDie();
  EXPECT_LT(flag->diversity, 0.1);
}

TEST(MedicalTest, SepsisConcentratesInIcus) {
  auto dataset =
      MakeMedical({.rows = 20000, .extra_flag_dims = 0, .seed = 13})
          .ValueOrDie();
  auto diagnosis = dataset.table.ColumnByName("diagnosis").ValueOrDie();
  auto ward = dataset.table.ColumnByName("ward").ValueOrDie();
  size_t sepsis_total = 0, sepsis_icu = 0;
  for (size_t r = 0; r < dataset.table.num_rows(); ++r) {
    if (diagnosis->GetValue(r) != db::Value("Sepsis")) continue;
    ++sepsis_total;
    db::Value w = ward->GetValue(r);
    if (w == db::Value("MICU") || w == db::Value("SICU")) ++sepsis_icu;
  }
  ASSERT_GT(sepsis_total, 0u);
  EXPECT_GT(static_cast<double>(sepsis_icu) / sepsis_total, 0.6);
}

TEST(MedicalTest, TrendsRecoveredBySeeDBWithPruning) {
  core::SeeDBOptions options;
  options.pruning.enable_variance = true;
  options.pruning.min_dimension_diversity = 0.1;
  CheckTrendsRecovered(
      MakeMedical({.rows = 30000, .extra_flag_dims = 6, .seed = 13})
          .ValueOrDie(),
      /*k=*/8, options);
}

TEST(DatasetsTest, AllGeneratorsDeterministic) {
  auto a = MakeStoreOrders({.rows = 100, .seed = 1}).ValueOrDie();
  auto b = MakeStoreOrders({.rows = 100, .seed = 1}).ValueOrDie();
  for (size_t r = 0; r < 100; ++r) {
    ASSERT_EQ(a.table.ValueAt(r, 0), b.table.ValueAt(r, 0));
    ASSERT_EQ(a.table.ValueAt(r, 8), b.table.ValueAt(r, 8));
  }
}

}  // namespace
}  // namespace seedb::data
