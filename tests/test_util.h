// Shared test fixtures: small hand-built tables with known contents,
// including the paper's §1 Laserwave running example.

#ifndef SEEDB_TESTS_TEST_UTIL_H_
#define SEEDB_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "db/table.h"

namespace seedb::testing {

/// Schema: product (dim), store (dim), amount (measure).
/// Laserwave rows reproduce Table 1 of the paper exactly: totals by store
/// Cambridge 180.55, Seattle 145.50, New York 122.00, San Francisco 90.13.
/// Other products ("Widget") skew toward New York, so the Laserwave's
/// per-store distribution deviates from the overall one (Scenario A).
inline db::Table MakeLaserwaveTable() {
  db::Schema schema({
      db::ColumnDef::Dimension("product"),
      db::ColumnDef::Dimension("store"),
      db::ColumnDef::Measure("amount"),
  });
  db::Table table(schema);
  struct Row {
    const char* product;
    const char* store;
    double amount;
  };
  const Row rows[] = {
      // Laserwave: one row per store, matching Table 1 exactly.
      {"Laserwave", "Cambridge, MA", 180.55},
      {"Laserwave", "Seattle, WA", 145.50},
      {"Laserwave", "New York, NY", 122.00},
      {"Laserwave", "San Francisco, CA", 90.13},
      // Widget: heavy in New York (the "opposite trend" of Figure 2).
      {"Widget", "New York, NY", 20000.0},
      {"Widget", "New York, NY", 18000.0},
      {"Widget", "Cambridge, MA", 1000.0},
      {"Widget", "Seattle, WA", 1200.0},
      {"Widget", "San Francisco, CA", 900.0},
  };
  for (const Row& r : rows) {
    Status s = table.AppendRow(
        {db::Value(r.product), db::Value(r.store), db::Value(r.amount)});
    (void)s;
  }
  return table;
}

/// Tiny generic table: dim d (a/b), dim e (x/y), measures m1, m2.
inline db::Table MakeTinyTable() {
  db::Schema schema({
      db::ColumnDef::Dimension("d"),
      db::ColumnDef::Dimension("e"),
      db::ColumnDef::Measure("m1"),
      db::ColumnDef::Measure("m2"),
  });
  db::Table table(schema);
  struct Row {
    const char* d;
    const char* e;
    double m1;
    double m2;
  };
  const Row rows[] = {
      {"a", "x", 1.0, 10.0}, {"a", "y", 2.0, 20.0}, {"b", "x", 3.0, 30.0},
      {"b", "y", 4.0, 40.0}, {"a", "x", 5.0, 50.0}, {"b", "y", 6.0, 60.0},
  };
  for (const Row& r : rows) {
    Status s = table.AppendRow({db::Value(r.d), db::Value(r.e),
                                db::Value(r.m1), db::Value(r.m2)});
    (void)s;
  }
  return table;
}

/// Finds the (first) row index of `table` whose column 0 equals `key`, or
/// -1. For checking group-by outputs.
inline int FindRowByKey(const db::Table& table, const db::Value& key) {
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.ValueAt(r, 0) == key) return static_cast<int>(r);
  }
  return -1;
}

}  // namespace seedb::testing

#endif  // SEEDB_TESTS_TEST_UTIL_H_
