#include "viz/chart.h"

#include <gtest/gtest.h>

namespace seedb::viz {
namespace {

core::ViewResult MakeResult() {
  core::ViewResult r;
  r.view = core::ViewDescriptor("store", "amount",
                                db::AggregateFunction::kSum);
  r.utility = 0.42;
  r.distributions.target.keys = {db::Value("A"), db::Value("B")};
  r.distributions.target.probabilities = {0.8, 0.2};
  r.distributions.comparison.keys = r.distributions.target.keys;
  r.distributions.comparison.probabilities = {0.5, 0.5};
  r.distributions.target_raw = {80.0, 20.0};
  r.distributions.comparison_raw = {500.0, 500.0};
  return r;
}

TEST(ChooseChartTypeTest, Rules) {
  EXPECT_EQ(ChooseChartType(db::ValueType::kString, 5), ChartType::kBar);
  EXPECT_EQ(ChooseChartType(db::ValueType::kString, 100), ChartType::kTable);
  EXPECT_EQ(ChooseChartType(db::ValueType::kInt64, 100), ChartType::kLine);
  EXPECT_EQ(ChooseChartType(db::ValueType::kDouble, 3), ChartType::kLine);
  EXPECT_EQ(ChooseChartType(db::ValueType::kString, 24), ChartType::kBar);
  EXPECT_EQ(ChooseChartType(db::ValueType::kString, 25), ChartType::kTable);
}

TEST(BuildChartSpecTest, ProbabilityChart) {
  ChartSpec spec = BuildChartSpec(MakeResult());
  EXPECT_EQ(spec.type, ChartType::kBar);
  EXPECT_NE(spec.title.find("SUM(amount) BY store"), std::string::npos);
  EXPECT_NE(spec.title.find("0.42"), std::string::npos);
  EXPECT_EQ(spec.x_label, "store");
  EXPECT_EQ(spec.y_label, "probability");
  ASSERT_EQ(spec.series.size(), 2u);
  EXPECT_EQ(spec.series[0].values, (std::vector<double>{0.8, 0.2}));
  EXPECT_EQ(spec.series[1].values, (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(spec.categories, (std::vector<std::string>{"A", "B"}));
}

TEST(BuildChartSpecTest, RawChartUsesAggregateLabel) {
  ChartSpec spec = BuildRawChartSpec(MakeResult());
  EXPECT_EQ(spec.y_label, "SUM(amount)");
  EXPECT_EQ(spec.series[0].values, (std::vector<double>{80.0, 20.0}));
  EXPECT_EQ(spec.series[1].values, (std::vector<double>{500.0, 500.0}));
}

TEST(BuildChartSpecTest, CountStarLabel) {
  core::ViewResult r = MakeResult();
  r.view = core::ViewDescriptor("store", "", db::AggregateFunction::kCount);
  ChartSpec spec = BuildRawChartSpec(r);
  EXPECT_EQ(spec.y_label, "COUNT(*)");
}

TEST(ChartTypeTest, Names) {
  EXPECT_STREQ(ChartTypeToString(ChartType::kBar), "bar");
  EXPECT_STREQ(ChartTypeToString(ChartType::kLine), "line");
  EXPECT_STREQ(ChartTypeToString(ChartType::kTable), "table");
}

}  // namespace
}  // namespace seedb::viz
