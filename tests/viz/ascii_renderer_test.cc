#include "viz/ascii_renderer.h"

#include <gtest/gtest.h>

namespace seedb::viz {
namespace {

ChartSpec MakeSpec() {
  ChartSpec spec;
  spec.type = ChartType::kBar;
  spec.title = "test chart";
  spec.x_label = "store";
  spec.y_label = "probability";
  spec.categories = {"Cambridge", "Seattle"};
  spec.series = {{"Query (target)", {0.75, 0.25}},
                 {"Overall (comparison)", {0.5, 0.5}}};
  return spec;
}

TEST(AsciiRendererTest, BarChartHasLabelsBarsLegend) {
  std::string out = RenderAscii(MakeSpec());
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("Cambridge"), std::string::npos);
  EXPECT_NE(out.find("Seattle"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);  // bar glyph series 0
  EXPECT_NE(out.find("="), std::string::npos);  // bar glyph series 1
  EXPECT_NE(out.find("Query (target)"), std::string::npos);
  EXPECT_NE(out.find("Overall (comparison)"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
}

TEST(AsciiRendererTest, BarLengthsProportional) {
  AsciiOptions options;
  options.bar_width = 20;
  std::string out = RenderAscii(MakeSpec(), options);
  // Largest value (0.75) renders 20 glyphs; 0.25 renders ~7.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
  EXPECT_EQ(out.find(std::string(21, '#')), std::string::npos);
}

TEST(AsciiRendererTest, NegativeValuesMarked) {
  ChartSpec spec = MakeSpec();
  spec.series[0].values = {-0.5, 0.5};
  std::string out = RenderAscii(spec);
  EXPECT_NE(out.find("-0.5"), std::string::npos);
}

TEST(AsciiRendererTest, TableModeAlignsValues) {
  ChartSpec spec = MakeSpec();
  spec.type = ChartType::kTable;
  std::string out = RenderAscii(spec);
  EXPECT_NE(out.find("store"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
  EXPECT_EQ(out.find("###"), std::string::npos);  // no bars in table mode
}

TEST(AsciiRendererTest, MaxRowsElidesTail) {
  ChartSpec spec = MakeSpec();
  spec.categories.clear();
  spec.series[0].values.clear();
  spec.series[1].values.clear();
  for (int i = 0; i < 40; ++i) {
    spec.categories.push_back("cat" + std::to_string(i));
    spec.series[0].values.push_back(0.025);
    spec.series[1].values.push_back(0.025);
  }
  AsciiOptions options;
  options.max_rows = 10;
  std::string out = RenderAscii(spec, options);
  EXPECT_NE(out.find("(30 more)"), std::string::npos);
  EXPECT_EQ(out.find("cat35"), std::string::npos);
}

TEST(AsciiRendererTest, RenderRecommendationIncludesSql) {
  core::Recommendation rec;
  rec.rank = 1;
  rec.result.view =
      core::ViewDescriptor("store", "amount", db::AggregateFunction::kSum);
  rec.result.utility = 0.3;
  rec.result.distributions.target.keys = {db::Value("A")};
  rec.result.distributions.target.probabilities = {1.0};
  rec.result.distributions.comparison.keys = {db::Value("A")};
  rec.result.distributions.comparison.probabilities = {1.0};
  rec.result.distributions.target_raw = {5.0};
  rec.result.distributions.comparison_raw = {5.0};
  rec.target_sql = "SELECT store, SUM(amount) FROM s GROUP BY store";
  rec.comparison_sql = "SELECT ... comparison";
  std::string out = RenderRecommendation(rec);
  EXPECT_NE(out.find("#1"), std::string::npos);
  EXPECT_NE(out.find("SUM(amount) BY store"), std::string::npos);
  EXPECT_NE(out.find(rec.target_sql), std::string::npos);
  EXPECT_NE(out.find(rec.comparison_sql), std::string::npos);
}

}  // namespace
}  // namespace seedb::viz
