#include "viz/vega.h"

#include <gtest/gtest.h>

#include "viz/metadata.h"

namespace seedb::viz {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("with \"quotes\""), "with \\\"quotes\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

ChartSpec MakeSpec() {
  ChartSpec spec;
  spec.type = ChartType::kBar;
  spec.title = "My \"Chart\"";
  spec.x_label = "store";
  spec.y_label = "probability";
  spec.categories = {"A", "B"};
  spec.series = {{"target", {0.75, 0.25}}, {"comparison", {0.5, 0.5}}};
  return spec;
}

TEST(VegaTest, ContainsSchemaMarkAndData) {
  std::string json = ToVegaLite(MakeSpec());
  EXPECT_NE(json.find("vega-lite/v5.json"), std::string::npos);
  EXPECT_NE(json.find("\"mark\": \"bar\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"series\": \"target\""), std::string::npos);
  EXPECT_NE(json.find("My \\\"Chart\\\""), std::string::npos);
  // 2 series x 2 categories = 4 data rows.
  size_t count = 0;
  for (size_t pos = json.find("\"store\""); pos != std::string::npos;
       pos = json.find("\"store\"", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 4u);
}

TEST(VegaTest, LineChartUsesLineMark) {
  ChartSpec spec = MakeSpec();
  spec.type = ChartType::kLine;
  EXPECT_NE(ToVegaLite(spec).find("\"mark\": \"line\""), std::string::npos);
}

TEST(VegaTest, BalancedBraces) {
  std::string json = ToVegaLite(MakeSpec());
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

core::ViewResult MakeViewResult() {
  core::ViewResult r;
  r.view = core::ViewDescriptor("store", "amount",
                                db::AggregateFunction::kSum);
  r.utility = 0.3;
  r.distributions.target.keys = {db::Value("A"), db::Value("B"),
                                 db::Value("C")};
  r.distributions.target.probabilities = {0.7, 0.3, 0.0};
  r.distributions.comparison.keys = r.distributions.target.keys;
  r.distributions.comparison.probabilities = {0.2, 0.3, 0.5};
  r.distributions.target_raw = {70.0, 30.0, 0.0};
  r.distributions.comparison_raw = {200.0, 300.0, 500.0};
  return r;
}

TEST(MetadataTest, ComputesTotalsAndMaxChange) {
  ViewMetadata meta = ComputeViewMetadata(MakeViewResult());
  EXPECT_EQ(meta.result_size, 3u);
  EXPECT_DOUBLE_EQ(meta.target_total, 100.0);
  EXPECT_DOUBLE_EQ(meta.comparison_total, 1000.0);
  // Max |probability change|: A (+0.5) vs C (-0.5): A wins ties by order.
  EXPECT_DOUBLE_EQ(std::abs(meta.max_change), 0.5);
  EXPECT_EQ(meta.groups_only_in_comparison, 1u);  // C
  EXPECT_EQ(meta.groups_only_in_target, 0u);
}

TEST(MetadataTest, ToStringMentionsFields) {
  std::string s = ComputeViewMetadata(MakeViewResult()).ToString();
  EXPECT_NE(s.find("groups=3"), std::string::npos);
  EXPECT_NE(s.find("max_change"), std::string::npos);
}

}  // namespace
}  // namespace seedb::viz
