#include "db/access_tracker.h"

#include <gtest/gtest.h>

#include <thread>

namespace seedb::db {
namespace {

TEST(AccessTrackerTest, CountsQueriesAndColumns) {
  AccessTracker t;
  t.RecordQuery("sales", {"region", "amount"});
  t.RecordQuery("sales", {"region"});
  EXPECT_EQ(t.QueryCount("sales"), 2u);
  EXPECT_EQ(t.AccessCount("sales", "region"), 2u);
  EXPECT_EQ(t.AccessCount("sales", "amount"), 1u);
  EXPECT_EQ(t.AccessCount("sales", "never"), 0u);
  EXPECT_EQ(t.QueryCount("other"), 0u);
}

TEST(AccessTrackerTest, DuplicateColumnsCountOncePerQuery) {
  AccessTracker t;
  t.RecordQuery("t", {"a", "a", "a"});
  EXPECT_EQ(t.AccessCount("t", "a"), 1u);
}

TEST(AccessTrackerTest, FrequencyIsFractionOfQueries) {
  AccessTracker t;
  for (int i = 0; i < 8; ++i) t.RecordQuery("t", {"hot"});
  for (int i = 0; i < 2; ++i) t.RecordQuery("t", {"cold"});
  EXPECT_DOUBLE_EQ(t.AccessFrequency("t", "hot"), 0.8);
  EXPECT_DOUBLE_EQ(t.AccessFrequency("t", "cold"), 0.2);
  EXPECT_DOUBLE_EQ(t.AccessFrequency("t", "never"), 0.0);
  EXPECT_DOUBLE_EQ(t.AccessFrequency("unknown", "x"), 0.0);
}

TEST(AccessTrackerTest, TopColumnsSorted) {
  AccessTracker t;
  for (int i = 0; i < 3; ++i) t.RecordQuery("t", {"b"});
  for (int i = 0; i < 5; ++i) t.RecordQuery("t", {"a"});
  t.RecordQuery("t", {"c"});
  t.RecordQuery("other", {"z"});
  auto top = t.TopColumns("t");
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "a");
  EXPECT_EQ(top[0].second, 5u);
  EXPECT_EQ(top[1].first, "b");
  EXPECT_EQ(top[2].first, "c");
}

TEST(AccessTrackerTest, TablesAreIsolated) {
  AccessTracker t;
  t.RecordQuery("t1", {"col"});
  EXPECT_EQ(t.AccessCount("t2", "col"), 0u);
  EXPECT_TRUE(t.TopColumns("t2").empty());
}

TEST(AccessTrackerTest, ResetClearsEverything) {
  AccessTracker t;
  t.RecordQuery("t", {"a"});
  t.Reset();
  EXPECT_EQ(t.QueryCount("t"), 0u);
  EXPECT_EQ(t.AccessCount("t", "a"), 0u);
}

TEST(AccessTrackerTest, ConcurrentRecordingIsSafe) {
  AccessTracker t;
  std::vector<std::thread> threads;
  for (int k = 0; k < 4; ++k) {
    threads.emplace_back([&t] {
      for (int i = 0; i < 500; ++i) t.RecordQuery("t", {"a", "b"});
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.QueryCount("t"), 2000u);
  EXPECT_EQ(t.AccessCount("t", "a"), 2000u);
}

}  // namespace
}  // namespace seedb::db
