#include "db/value.h"

#include <gtest/gtest.h>

namespace seedb::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, IntLiteralIsInt64) {
  Value v(7);  // plain int
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, NullChecks) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value(1).is_null());
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, ToDouble) {
  EXPECT_EQ(Value(3).ToDouble().ValueOrDie(), 3.0);
  EXPECT_EQ(Value(3.5).ToDouble().ValueOrDie(), 3.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(3.5).ToString(), "3.5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, SqlLiteralQuotesStrings) {
  EXPECT_EQ(Value("abc").ToSqlLiteral(), "'abc'");
  EXPECT_EQ(Value("o'brien").ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(Value(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, EqualityWithinTypes) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, MixedNumericEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
}

TEST(ValueTest, MixedNumericEqualityImpliesEqualHash) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, OrderingWithinNumerics) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_FALSE(Value(2) < Value(2));
  EXPECT_LE(Value(2), Value(2));
  EXPECT_GT(Value(3), Value(2));
  EXPECT_GE(Value(2), Value(2));
}

TEST(ValueTest, OrderingAcrossFamilies) {
  // null < numeric < string: total order for sorted group keys.
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(999999), Value(""));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, StringOrderingIsLexicographic) {
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_LT(Value("a"), Value("aa"));
}

TEST(ValueTest, HashDistinguishesValues) {
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_EQ(Value("a").Hash(), Value("a").Hash());
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "INT64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "NULL");
}

}  // namespace
}  // namespace seedb::db
