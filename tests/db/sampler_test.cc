#include "db/sampler.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace seedb::db {
namespace {

TEST(BernoulliSelectionTest, FractionOneSelectsAll) {
  auto sel = BernoulliSelection(100, 1.0, 1);
  EXPECT_EQ(sel.size(), 100u);
  EXPECT_EQ(sel.front(), 0u);
  EXPECT_EQ(sel.back(), 99u);
}

TEST(BernoulliSelectionTest, FractionZeroSelectsNone) {
  EXPECT_TRUE(BernoulliSelection(100, 0.0, 1).empty());
  EXPECT_TRUE(BernoulliSelection(100, -0.5, 1).empty());
}

TEST(BernoulliSelectionTest, ApproximatesFraction) {
  auto sel = BernoulliSelection(100000, 0.3, 42);
  EXPECT_NEAR(static_cast<double>(sel.size()) / 100000.0, 0.3, 0.02);
}

TEST(BernoulliSelectionTest, DeterministicAndAscending) {
  auto a = BernoulliSelection(1000, 0.5, 9);
  auto b = BernoulliSelection(1000, 0.5, 9);
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
}

TEST(ReservoirSelectionTest, ExactSize) {
  auto sel = ReservoirSelection(1000, 64, 5);
  EXPECT_EQ(sel.size(), 64u);
  for (uint32_t r : sel) EXPECT_LT(r, 1000u);
}

TEST(ReservoirSelectionTest, KLargerThanNSelectsAll) {
  auto sel = ReservoirSelection(10, 100, 5);
  EXPECT_EQ(sel.size(), 10u);
}

TEST(ReservoirSelectionTest, ZeroKEmpty) {
  EXPECT_TRUE(ReservoirSelection(10, 0, 5).empty());
}

TEST(ReservoirSelectionTest, RoughlyUniform) {
  // Each row should appear with probability k/n across many seeds.
  const size_t n = 100, k = 10, trials = 2000;
  std::vector<int> counts(n, 0);
  for (size_t seed = 0; seed < trials; ++seed) {
    for (uint32_t r : ReservoirSelection(n, k, seed)) ++counts[r];
  }
  double expected = static_cast<double>(trials) * k / n;  // 200
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], expected * 0.6) << "row " << i;
    EXPECT_LT(counts[i], expected * 1.4) << "row " << i;
  }
}

TEST(MaterializeTest, BernoulliSampleHasSchemaAndSubsetRows) {
  Table t = ::seedb::testing::MakeTinyTable();
  auto sample = MaterializeBernoulliSample(t, 0.5, 7);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->schema(), t.schema());
  EXPECT_LE(sample->num_rows(), t.num_rows());
}

TEST(MaterializeTest, InvalidFractionRejected) {
  Table t = ::seedb::testing::MakeTinyTable();
  EXPECT_FALSE(MaterializeBernoulliSample(t, 0.0, 7).ok());
  EXPECT_FALSE(MaterializeBernoulliSample(t, 1.5, 7).ok());
}

TEST(MaterializeTest, ReservoirSampleExactRows) {
  Table t = ::seedb::testing::MakeTinyTable();
  auto sample = MaterializeReservoirSample(t, 3, 7);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_rows(), 3u);
  EXPECT_FALSE(MaterializeReservoirSample(t, 0, 7).ok());
}

TEST(SampleSizeForBudgetTest, FullTableFits) {
  Table t = ::seedb::testing::MakeTinyTable();
  EXPECT_EQ(SampleSizeForBudget(t, 1 << 30), t.num_rows());
}

TEST(SampleSizeForBudgetTest, ScalesWithBudget) {
  Table t = ::seedb::testing::MakeTinyTable();
  size_t full = t.MemoryBytes();
  size_t half_rows = SampleSizeForBudget(t, full / 2);
  EXPECT_LT(half_rows, t.num_rows());
  EXPECT_GT(half_rows, 0u);
}

TEST(SampleSizeForBudgetTest, EmptyTable) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  EXPECT_EQ(SampleSizeForBudget(t, 100), 0u);
}

}  // namespace
}  // namespace seedb::db
