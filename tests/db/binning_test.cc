#include "db/binning.h"

#include <gtest/gtest.h>

#include "db/group_by.h"

namespace seedb::db {
namespace {

Table MakeNumericTable() {
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  Table t(schema);
  for (int i = 0; i < 100; ++i) {
    Status s = t.AppendRow(
        {Value(i % 2 ? "a" : "b"), Value(static_cast<double>(i))});
    (void)s;
  }
  return t;
}

TEST(BinningTest, AddsDimensionColumn) {
  Table t = MakeNumericTable();
  auto binned = WithBinnedColumn(t, "m", {.num_bins = 10}).ValueOrDie();
  EXPECT_EQ(binned.num_columns(), 3u);
  EXPECT_EQ(binned.num_rows(), t.num_rows());
  const ColumnDef& def = binned.schema().column(2);
  EXPECT_EQ(def.name, "m_bin");
  EXPECT_EQ(def.role, ColumnRole::kDimension);
  EXPECT_EQ(def.type, ValueType::kString);
  // Values 0..99 over 10 equi-width bins: 10 distinct labels.
  const Column* col = binned.ColumnByName("m_bin").ValueOrDie();
  EXPECT_EQ(col->CountDistinct(), 10u);
}

TEST(BinningTest, BucketsHoldEqualCounts) {
  Table t = MakeNumericTable();
  auto binned = WithBinnedColumn(t, "m", {.num_bins = 10}).ValueOrDie();
  GroupByQuery q;
  q.table = "t";
  q.group_by = {"m_bin"};
  q.aggregates = {AggregateSpec::Count("n")};
  auto result = ExecuteGroupBy(binned, q, nullptr).ValueOrDie();
  ASSERT_EQ(result.num_rows(), 10u);
  for (size_t r = 0; r < result.num_rows(); ++r) {
    EXPECT_EQ(result.ValueAt(r, 1), Value(10.0));
  }
}

TEST(BinningTest, LabelsSortInBucketOrder) {
  for (size_t k = 1; k < 10; ++k) {
    EXPECT_LT(BinLabel(k - 1, 10, 0, 100, true), BinLabel(k, 10, 0, 100, true));
    EXPECT_LT(BinLabel(k - 1, 10, 0, 100, false),
              BinLabel(k, 10, 0, 100, false));
  }
}

TEST(BinningTest, LastBucketClosedIntervalIncludesMax) {
  Table t = MakeNumericTable();
  auto binned = WithBinnedColumn(t, "m", {.num_bins = 4}).ValueOrDie();
  // Row with m = 99 (the max) lands in the last bucket, not out of range.
  Value last_label = binned.ValueAt(99, 2);
  EXPECT_NE(last_label.ToString().find("]"), std::string::npos);
}

TEST(BinningTest, NullsStayNull) {
  Schema schema({ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(2.0)}).ok());
  auto binned = WithBinnedColumn(t, "m", {.num_bins = 2}).ValueOrDie();
  EXPECT_TRUE(binned.ValueAt(1, 1).is_null());
  EXPECT_FALSE(binned.ValueAt(0, 1).is_null());
}

TEST(BinningTest, CustomNameAndBinStyle) {
  Table t = MakeNumericTable();
  BinningOptions options;
  options.num_bins = 5;
  options.output_name = "m_bucket";
  options.range_labels = false;
  auto binned = WithBinnedColumn(t, "m", options).ValueOrDie();
  EXPECT_TRUE(binned.schema().HasColumn("m_bucket"));
  EXPECT_EQ(binned.ValueAt(0, 2), Value("bin00"));
  EXPECT_EQ(binned.ValueAt(99, 2), Value("bin04"));
}

TEST(BinningTest, ErrorsOnBadInput) {
  Table t = MakeNumericTable();
  EXPECT_FALSE(WithBinnedColumn(t, "d", {}).ok());       // string column
  EXPECT_FALSE(WithBinnedColumn(t, "ghost", {}).ok());   // missing column
  EXPECT_FALSE(WithBinnedColumn(t, "m", {.num_bins = 0}).ok());
  BinningOptions clash;
  clash.output_name = "d";  // existing name
  EXPECT_FALSE(WithBinnedColumn(t, "m", clash).ok());
}

TEST(BinningTest, ConstantColumnGetsOneBucket) {
  Schema schema({ColumnDef::Measure("m")});
  Table t(schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(7.0)}).ok());
  }
  auto binned = WithBinnedColumn(t, "m", {.num_bins = 3}).ValueOrDie();
  const Column* col = binned.ColumnByName("m_bin").ValueOrDie();
  EXPECT_EQ(col->CountDistinct(), 1u);
}

TEST(BinningTest, EmptyNumericColumnFails) {
  Schema schema({ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  EXPECT_FALSE(WithBinnedColumn(t, "m", {}).ok());
}

}  // namespace
}  // namespace seedb::db
