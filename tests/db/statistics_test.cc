#include "db/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/random.h"

namespace seedb::db {
namespace {

TEST(ColumnStatsTest, NumericProfile) {
  Schema schema({ColumnDef::Measure("m")});
  Table t(schema);
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  }
  ColumnStats cs = ComputeColumnStats(t, 0);
  EXPECT_EQ(cs.row_count, 4u);
  EXPECT_EQ(cs.distinct_count, 4u);
  EXPECT_EQ(cs.min, 1.0);
  EXPECT_EQ(cs.max, 4.0);
  EXPECT_DOUBLE_EQ(cs.mean, 2.5);
  EXPECT_DOUBLE_EQ(cs.variance, 1.25);
}

TEST(ColumnStatsTest, DiversityOfUniformColumn) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value(i % 4 == 0   ? "a"
                           : i % 4 == 1 ? "b"
                           : i % 4 == 2 ? "c"
                                        : "d")})
            .ok());
  }
  ColumnStats cs = ComputeColumnStats(t, 0);
  // Uniform over 4 values: diversity = 1 - 4*(1/4)^2 = 0.75, entropy = 1.
  EXPECT_NEAR(cs.diversity, 0.75, 1e-9);
  EXPECT_NEAR(cs.normalized_entropy, 1.0, 1e-9);
}

TEST(ColumnStatsTest, DiversityOfConstantColumnIsZero) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("only")}).ok());
  }
  ColumnStats cs = ComputeColumnStats(t, 0);
  EXPECT_EQ(cs.diversity, 0.0);
  EXPECT_EQ(cs.normalized_entropy, 0.0);
  EXPECT_EQ(cs.distinct_count, 1u);
}

TEST(ColumnStatsTest, NearConstantHasLowDiversity) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i < 97 ? "no" : "yes")}).ok());
  }
  ColumnStats cs = ComputeColumnStats(t, 0);
  EXPECT_LT(cs.diversity, 0.06);
  EXPECT_GT(cs.diversity, 0.0);
}

TEST(ColumnStatsTest, NullsExcluded) {
  Schema schema({ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value(2.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(4.0)}).ok());
  ColumnStats cs = ComputeColumnStats(t, 0);
  EXPECT_EQ(cs.null_count, 1u);
  EXPECT_EQ(cs.distinct_count, 2u);
  EXPECT_DOUBLE_EQ(cs.mean, 3.0);
}

TEST(ColumnStatsTest, TopValuesSortedByCount) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(t.AppendRow({Value("big")}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(t.AppendRow({Value("mid")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("small")}).ok());
  ColumnStats cs = ComputeColumnStats(t, 0);
  ASSERT_EQ(cs.top_values.size(), 3u);
  EXPECT_EQ(cs.top_values[0].first, Value("big"));
  EXPECT_EQ(cs.top_values[0].second, 5u);
  EXPECT_EQ(cs.top_values[1].first, Value("mid"));
  EXPECT_EQ(cs.top_values[2].first, Value("small"));
}

TEST(TableStatsTest, CoversAllColumnsAndFind) {
  Table t = ::seedb::testing::MakeTinyTable();
  TableStats stats = ComputeTableStats(t, "tiny");
  EXPECT_EQ(stats.table_name, "tiny");
  EXPECT_EQ(stats.num_rows, 6u);
  EXPECT_EQ(stats.columns.size(), 4u);
  EXPECT_TRUE(stats.Find("m1").ok());
  EXPECT_EQ((*stats.Find("m1"))->role, ColumnRole::kMeasure);
  EXPECT_FALSE(stats.Find("zzz").ok());
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(CramersVTest, PerfectlyCorrelatedColumns) {
  Schema schema(
      {ColumnDef::Dimension("a"), ColumnDef::Dimension("b")});
  Table t(schema);
  Random rng(3);
  const char* va[] = {"x", "y", "z"};
  const char* vb[] = {"X", "Y", "Z"};
  for (int i = 0; i < 300; ++i) {
    size_t k = rng.Uniform(3);
    ASSERT_TRUE(t.AppendRow({Value(va[k]), Value(vb[k])}).ok());
  }
  double v = CramersV(t, "a", "b").ValueOrDie();
  EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(CramersVTest, IndependentColumnsNearZero) {
  Schema schema(
      {ColumnDef::Dimension("a"), ColumnDef::Dimension("b")});
  Table t(schema);
  Random rng(5);
  const char* vals[] = {"p", "q", "r", "s"};
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(vals[rng.Uniform(4)]),
                             Value(vals[rng.Uniform(4)])})
                    .ok());
  }
  double v = CramersV(t, "a", "b").ValueOrDie();
  EXPECT_LT(v, 0.05);
}

TEST(CramersVTest, DegenerateSingleValueColumnsGiveZero) {
  Schema schema(
      {ColumnDef::Dimension("a"), ColumnDef::Dimension("b")});
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("only"), Value(i % 2 ? "u" : "v")}).ok());
  }
  EXPECT_EQ(CramersV(t, "a", "b").ValueOrDie(), 0.0);
}

TEST(CramersVTest, RejectsNumericDoubleColumns) {
  Table t = ::seedb::testing::MakeTinyTable();
  EXPECT_FALSE(CramersV(t, "d", "m1").ok());
}

TEST(CramersVTest, SymmetricInArguments) {
  Table t = ::seedb::testing::MakeTinyTable();
  double ab = CramersV(t, "d", "e").ValueOrDie();
  double ba = CramersV(t, "e", "d").ValueOrDie();
  EXPECT_NEAR(ab, ba, 1e-12);
}

}  // namespace
}  // namespace seedb::db
