#include "db/sql/lexer.h"

#include <gtest/gtest.h>

namespace seedb::db::sql {
namespace {

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("SELECT foo _bar baz2").ValueOrDie();
  ASSERT_EQ(tokens.size(), 5u);  // 4 + end
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].text, "baz2");
  EXPECT_EQ(tokens[4].type, TokenType::kEnd);
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 3.14 .5").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].text, ".5");
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'hello' 'o''brien' ''").ValueOrDie();
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "o'brien");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, OperatorsSingleAndMulti) {
  auto tokens = Tokenize("= <> != < <= > >= ( ) , * -").ValueOrDie();
  std::vector<std::string> expected = {"=", "<>", "!=", "<", "<=", ">",
                                       ">=", "(",  ")",  ",", "*",  "-"};
  ASSERT_EQ(tokens.size(), expected.size() + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol) << i;
    EXPECT_EQ(tokens[i].text, expected[i]) << i;
  }
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Tokenize("ab  cd").ValueOrDie();
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 4u);
}

TEST(LexerTest, KeywordCheckIsCaseInsensitive) {
  auto tokens = Tokenize("GrOuP").ValueOrDie();
  EXPECT_TRUE(tokens[0].IsKeyword("group"));
  EXPECT_TRUE(tokens[0].IsKeyword("GROUP"));
  EXPECT_FALSE(tokens[0].IsKeyword("order"));
}

TEST(LexerTest, EmptyInputYieldsEndOnly) {
  auto tokens = Tokenize("").ValueOrDie();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, NoSpacesBetweenTokens) {
  auto tokens = Tokenize("SUM(amount)>=5").ValueOrDie();
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].text, "SUM");
  EXPECT_EQ(tokens[1].text, "(");
  EXPECT_EQ(tokens[2].text, "amount");
  EXPECT_EQ(tokens[3].text, ")");
  EXPECT_EQ(tokens[4].text, ">=");
  EXPECT_EQ(tokens[5].text, "5");
}

}  // namespace
}  // namespace seedb::db::sql
