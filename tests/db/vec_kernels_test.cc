// Unit tests for the vectorized kernel subsystem (db/vec/): selection
// vectors, batch filter kernels, dense group-id composition, and flat-slab
// aggregation kernels — the pieces db/shared_scan.cc wires into its morsel
// inner loop.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "db/vec/aggregate_kernels.h"
#include "db/vec/group_ids.h"
#include "db/vec/selection_vector.h"

namespace seedb::db::vec {
namespace {

std::vector<uint32_t> Rows(const SelectionVector& sel) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < sel.size(); ++i) out.push_back(sel[i]);
  return out;
}

TEST(SelectionVectorTest, FromMaskPicksSetBytesWithinRange) {
  const std::vector<uint8_t> mask = {1, 0, 1, 1, 0, 0, 1, 0};
  SelectionVector sel;
  SelectFromMask(mask.data(), 0, mask.size(), &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2, 3, 6}));

  SelectFromMask(mask.data(), 2, 6, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{2, 3}));

  SelectFromMask(mask.data(), 4, 4, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(SelectionVectorTest, SelectAllAndRefine) {
  SelectionVector sel;
  SelectAll(3, 7, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{3, 4, 5, 6}));

  const std::vector<uint8_t> mask = {0, 0, 0, 1, 0, 1, 0, 1};
  Refine(mask.data(), &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{3, 5}));
}

TEST(SelectionVectorTest, CompareInt64AllOps) {
  const std::vector<int64_t> data = {5, 1, 3, 5, 9};
  SelectionVector sel;
  SelectCompareInt64(data.data(), nullptr, CompareOp::kEq, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 3}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kNe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{1, 2, 4}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kLt, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{1, 2}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kLe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 1, 2, 3}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kGt, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{4}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kGe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(SelectionVectorTest, CompareSkipsNullRows) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  const std::vector<uint8_t> validity = {1, 0, 1, 0};
  SelectionVector sel;
  SelectCompareDouble(data.data(), validity.data(), CompareOp::kGe, 0.0, 0, 4,
                      &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2}));
}

TEST(SelectionVectorTest, CompareCodeUsesTruthTableAndValidity) {
  const std::vector<int32_t> codes = {0, 1, 2, 0, 1};
  const std::vector<uint8_t> code_match = {1, 0, 1};
  SelectionVector sel;
  SelectCompareCode(codes.data(), nullptr, code_match.data(), 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2, 3}));

  // Null rows never match, even when their slot holds a matching code 0.
  const std::vector<uint8_t> validity = {0, 1, 1, 1, 1};
  SelectCompareCode(codes.data(), validity.data(), code_match.data(), 0, 5,
                    &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{2, 3}));
}

TEST(GroupIdsTest, SlotCountIsRadixProductWithBudget) {
  DenseDim a{nullptr, nullptr, 5};
  DenseDim b{nullptr, nullptr, 7};
  EXPECT_EQ(DenseSlotCount({}, 100), 1u);  // global aggregate
  EXPECT_EQ(DenseSlotCount({a}, 100), 5u);
  EXPECT_EQ(DenseSlotCount({a, b}, 100), 35u);
  EXPECT_EQ(DenseSlotCount({a, b}, 34), 0u);  // over budget -> hash fallback
  DenseDim huge{nullptr, nullptr, 1u << 31};
  EXPECT_EQ(DenseSlotCount({huge, huge, huge}, 1u << 20), 0u);  // no overflow
}

TEST(GroupIdsTest, SingleDimensionNullTakesLastSlot) {
  const std::vector<int32_t> codes = {2, 0, 1, 0};
  const std::vector<uint8_t> validity = {1, 1, 1, 0};  // row 3 null, code 0
  DenseDim dim{codes.data(), validity.data(), 4};      // dict_size 3 + null
  std::vector<uint32_t> gids(4);
  GroupIdsRange(&dim, 1, 0, 4, gids.data());
  EXPECT_EQ(gids, (std::vector<uint32_t>{2, 0, 1, 3}));  // null != code 0
}

TEST(GroupIdsTest, MultiDimensionRadixComposition) {
  // gid = c0 * slots1 + c1, null of dim1 = slot slots1-1.
  const std::vector<int32_t> c0 = {0, 1, 1};
  const std::vector<int32_t> c1 = {1, 0, 0};
  const std::vector<uint8_t> v1 = {1, 1, 0};
  DenseDim dims[2] = {{c0.data(), nullptr, 2}, {c1.data(), v1.data(), 3}};
  std::vector<uint32_t> gids(3);
  GroupIdsRange(dims, 2, 0, 3, gids.data());
  EXPECT_EQ(gids, (std::vector<uint32_t>{1, 3, 5}));

  SelectionVector sel;
  SelectAll(1, 3, &sel);
  GroupIdsSel(dims, 2, sel, gids.data());
  EXPECT_EQ(gids[0], 3u);
  EXPECT_EQ(gids[1], 5u);
}

TEST(AggregateKernelsTest, TouchRecordsFirstSeenOrderAndRepRows) {
  DenseAggTable t;
  t.Init(4, 1);
  const std::vector<uint32_t> gids = {2, 0, 2, 1, 0};
  TouchGroupsRange(gids.data(), 10, gids.size(), &t);
  EXPECT_EQ(t.touched, (std::vector<uint32_t>{2, 0, 1}));
  EXPECT_EQ(t.rep_row, (std::vector<uint32_t>{10, 11, 13}));
}

TEST(AggregateKernelsTest, CountKernelHonorsFilterAndValidity) {
  DenseAggTable t;
  t.Init(2, 1);
  const std::vector<uint32_t> gids = {0, 1, 0, 1};
  const std::vector<uint8_t> filter = {1, 1, 0, 1};
  const std::vector<uint8_t> validity = {1, 0, 1, 1};
  AccumulateCountRange(gids.data(), 0, 4, filter.data(), validity.data(),
                       t.slab(0));
  EXPECT_EQ(t.slab(0)[0].count, 1);  // row 2 filtered out
  EXPECT_EQ(t.slab(0)[1].count, 1);  // row 1 null input
  // COUNT(*): no validity — every filtered-in row counts.
  DenseAggTable star;
  star.Init(2, 1);
  AccumulateCountRange(gids.data(), 0, 4, nullptr, nullptr, star.slab(0));
  EXPECT_EQ(star.slab(0)[0].count, 2);
  EXPECT_EQ(star.slab(0)[1].count, 2);
}

TEST(AggregateKernelsTest, TypedAccumulationMatchesAggStateAdd) {
  DenseAggTable t;
  t.Init(2, 2);
  const std::vector<uint32_t> gids = {0, 1, 0};
  const std::vector<int64_t> ints = {4, -2, 10};
  const std::vector<double> doubles = {0.5, 2.5, -1.5};
  AccumulateInt64Range(gids.data(), 0, 3, ints.data(), nullptr, nullptr,
                       t.slab(0));
  AccumulateDoubleRange(gids.data(), 0, 3, doubles.data(), nullptr, nullptr,
                        t.slab(1));

  AggState want_int;
  want_int.Add(4.0);
  want_int.Add(10.0);
  EXPECT_EQ(t.slab(0)[0].count, want_int.count);
  EXPECT_EQ(t.slab(0)[0].sum, want_int.sum);
  EXPECT_EQ(t.slab(0)[0].min, want_int.min);
  EXPECT_EQ(t.slab(0)[0].max, want_int.max);
  EXPECT_EQ(t.slab(1)[0].sum, -1.0);
  EXPECT_EQ(t.slab(1)[0].min, -1.5);
  EXPECT_EQ(t.slab(1)[0].max, 0.5);
  EXPECT_EQ(t.slab(1)[1].count, 1);
}

TEST(AggregateKernelsTest, SelVariantsWalkSelectedRowsOnly) {
  DenseAggTable t;
  t.Init(3, 1);
  const std::vector<double> data = {1.0, 2.0, 4.0, 8.0};
  // Select rows 1 and 3; gids are sel-aligned.
  SelectionVector sel;
  sel.Append(1);
  sel.Append(3);
  const std::vector<uint32_t> gids = {2, 2};
  TouchGroupsSel(gids.data(), sel, &t);
  AccumulateDoubleSel(gids.data(), sel, data.data(), nullptr, nullptr,
                      t.slab(0));
  EXPECT_EQ(t.touched, (std::vector<uint32_t>{2}));
  EXPECT_EQ(t.rep_row, (std::vector<uint32_t>{1}));
  EXPECT_EQ(t.slab(0)[2].count, 2);
  EXPECT_EQ(t.slab(0)[2].sum, 10.0);
  EXPECT_EQ(t.slab(0)[0].count, 0);
}

TEST(AggregateKernelsTest, AllNullInputLeavesEmptyAccumulators) {
  DenseAggTable t;
  t.Init(1, 1);
  const std::vector<uint32_t> gids = {0, 0, 0};
  const std::vector<double> data = {1.0, 2.0, 3.0};
  const std::vector<uint8_t> validity = {0, 0, 0};
  TouchGroupsRange(gids.data(), 0, 3, &t);
  AccumulateDoubleRange(gids.data(), 0, 3, data.data(), nullptr,
                        validity.data(), t.slab(0));
  // The group exists (selected rows touch it) but no value accumulated —
  // exactly the scalar path's semantics for an all-null morsel.
  EXPECT_EQ(t.touched.size(), 1u);
  EXPECT_EQ(t.slab(0)[0].count, 0);
  EXPECT_EQ(t.slab(0)[0].sum, 0.0);
}

}  // namespace
}  // namespace seedb::db::vec
