// Unit tests for the vectorized kernel subsystem (db/vec/): selection
// vectors, batch filter kernels, dense group-id composition, and flat-slab
// aggregation kernels — the pieces db/shared_scan.cc wires into its morsel
// inner loop — plus the explicit-SIMD tier (db/vec/simd/), which must agree
// with the scalar-vectorized kernels BIT for bit on every input shape:
// lane-width tails, unaligned range starts, validity masks, all-null runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "db/vec/aggregate_kernels.h"
#include "db/vec/group_ids.h"
#include "db/vec/selection_vector.h"
#include "db/vec/simd/simd.h"
#include "util/random.h"

namespace seedb::db::vec {
namespace {

std::vector<uint32_t> Rows(const SelectionVector& sel) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < sel.size(); ++i) out.push_back(sel[i]);
  return out;
}

TEST(SelectionVectorTest, FromMaskPicksSetBytesWithinRange) {
  const std::vector<uint8_t> mask = {1, 0, 1, 1, 0, 0, 1, 0};
  SelectionVector sel;
  SelectFromMask(mask.data(), 0, mask.size(), &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2, 3, 6}));

  SelectFromMask(mask.data(), 2, 6, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{2, 3}));

  SelectFromMask(mask.data(), 4, 4, &sel);
  EXPECT_TRUE(sel.empty());
}

TEST(SelectionVectorTest, SelectAllAndRefine) {
  SelectionVector sel;
  SelectAll(3, 7, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{3, 4, 5, 6}));

  const std::vector<uint8_t> mask = {0, 0, 0, 1, 0, 1, 0, 1};
  Refine(mask.data(), &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{3, 5}));
}

TEST(SelectionVectorTest, CompareInt64AllOps) {
  const std::vector<int64_t> data = {5, 1, 3, 5, 9};
  SelectionVector sel;
  SelectCompareInt64(data.data(), nullptr, CompareOp::kEq, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 3}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kNe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{1, 2, 4}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kLt, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{1, 2}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kLe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 1, 2, 3}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kGt, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{4}));
  SelectCompareInt64(data.data(), nullptr, CompareOp::kGe, 5, 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(SelectionVectorTest, CompareSkipsNullRows) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  const std::vector<uint8_t> validity = {1, 0, 1, 0};
  SelectionVector sel;
  SelectCompareDouble(data.data(), validity.data(), CompareOp::kGe, 0.0, 0, 4,
                      &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2}));
}

TEST(SelectionVectorTest, CompareCodeUsesTruthTableAndValidity) {
  const std::vector<int32_t> codes = {0, 1, 2, 0, 1};
  const std::vector<uint8_t> code_match = {1, 0, 1};
  SelectionVector sel;
  SelectCompareCode(codes.data(), nullptr, code_match.data(), 0, 5, &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{0, 2, 3}));

  // Null rows never match, even when their slot holds a matching code 0.
  const std::vector<uint8_t> validity = {0, 1, 1, 1, 1};
  SelectCompareCode(codes.data(), validity.data(), code_match.data(), 0, 5,
                    &sel);
  EXPECT_EQ(Rows(sel), (std::vector<uint32_t>{2, 3}));
}

TEST(GroupIdsTest, SlotCountIsRadixProductWithBudget) {
  DenseDim a{nullptr, nullptr, 5};
  DenseDim b{nullptr, nullptr, 7};
  EXPECT_EQ(DenseSlotCount({}, 100), 1u);  // global aggregate
  EXPECT_EQ(DenseSlotCount({a}, 100), 5u);
  EXPECT_EQ(DenseSlotCount({a, b}, 100), 35u);
  EXPECT_EQ(DenseSlotCount({a, b}, 34), 0u);  // over budget -> hash fallback
  DenseDim huge{nullptr, nullptr, 1u << 31};
  EXPECT_EQ(DenseSlotCount({huge, huge, huge}, 1u << 20), 0u);  // no overflow
}

TEST(GroupIdsTest, SingleDimensionNullTakesLastSlot) {
  const std::vector<int32_t> codes = {2, 0, 1, 0};
  const std::vector<uint8_t> validity = {1, 1, 1, 0};  // row 3 null, code 0
  DenseDim dim{codes.data(), validity.data(), 4};      // dict_size 3 + null
  std::vector<uint32_t> gids(4);
  GroupIdsRange(&dim, 1, 0, 4, gids.data());
  EXPECT_EQ(gids, (std::vector<uint32_t>{2, 0, 1, 3}));  // null != code 0
}

TEST(GroupIdsTest, MultiDimensionRadixComposition) {
  // gid = c0 * slots1 + c1, null of dim1 = slot slots1-1.
  const std::vector<int32_t> c0 = {0, 1, 1};
  const std::vector<int32_t> c1 = {1, 0, 0};
  const std::vector<uint8_t> v1 = {1, 1, 0};
  DenseDim dims[2] = {{c0.data(), nullptr, 2}, {c1.data(), v1.data(), 3}};
  std::vector<uint32_t> gids(3);
  GroupIdsRange(dims, 2, 0, 3, gids.data());
  EXPECT_EQ(gids, (std::vector<uint32_t>{1, 3, 5}));

  SelectionVector sel;
  SelectAll(1, 3, &sel);
  GroupIdsSel(dims, 2, sel, gids.data());
  EXPECT_EQ(gids[0], 3u);
  EXPECT_EQ(gids[1], 5u);
}

TEST(AggregateKernelsTest, TouchRecordsFirstSeenOrderAndRepRows) {
  DenseAggTable t;
  t.Init(4, 1);
  const std::vector<uint32_t> gids = {2, 0, 2, 1, 0};
  TouchGroupsRange(gids.data(), 10, gids.size(), &t);
  EXPECT_EQ(t.touched, (std::vector<uint32_t>{2, 0, 1}));
  EXPECT_EQ(t.rep_row, (std::vector<uint32_t>{10, 11, 13}));
}

TEST(AggregateKernelsTest, CountKernelHonorsFilterAndValidity) {
  DenseAggTable t;
  t.Init(2, 1);
  const std::vector<uint32_t> gids = {0, 1, 0, 1};
  const std::vector<uint8_t> filter = {1, 1, 0, 1};
  const std::vector<uint8_t> validity = {1, 0, 1, 1};
  AccumulateCountRange(gids.data(), 0, 4, filter.data(), validity.data(),
                       t.slab(0));
  EXPECT_EQ(t.slab(0)[0].count, 1);  // row 2 filtered out
  EXPECT_EQ(t.slab(0)[1].count, 1);  // row 1 null input
  // COUNT(*): no validity — every filtered-in row counts.
  DenseAggTable star;
  star.Init(2, 1);
  AccumulateCountRange(gids.data(), 0, 4, nullptr, nullptr, star.slab(0));
  EXPECT_EQ(star.slab(0)[0].count, 2);
  EXPECT_EQ(star.slab(0)[1].count, 2);
}

TEST(AggregateKernelsTest, TypedAccumulationMatchesAggStateAdd) {
  DenseAggTable t;
  t.Init(2, 2);
  const std::vector<uint32_t> gids = {0, 1, 0};
  const std::vector<int64_t> ints = {4, -2, 10};
  const std::vector<double> doubles = {0.5, 2.5, -1.5};
  AccumulateInt64Range(gids.data(), 0, 3, ints.data(), nullptr, nullptr,
                       t.slab(0));
  AccumulateDoubleRange(gids.data(), 0, 3, doubles.data(), nullptr, nullptr,
                        t.slab(1));

  AggState want_int;
  want_int.Add(4.0);
  want_int.Add(10.0);
  EXPECT_EQ(t.slab(0)[0].count, want_int.count);
  EXPECT_EQ(t.slab(0)[0].sum, want_int.sum);
  EXPECT_EQ(t.slab(0)[0].min, want_int.min);
  EXPECT_EQ(t.slab(0)[0].max, want_int.max);
  EXPECT_EQ(t.slab(1)[0].sum, -1.0);
  EXPECT_EQ(t.slab(1)[0].min, -1.5);
  EXPECT_EQ(t.slab(1)[0].max, 0.5);
  EXPECT_EQ(t.slab(1)[1].count, 1);
}

TEST(AggregateKernelsTest, SelVariantsWalkSelectedRowsOnly) {
  DenseAggTable t;
  t.Init(3, 1);
  const std::vector<double> data = {1.0, 2.0, 4.0, 8.0};
  // Select rows 1 and 3; gids are sel-aligned.
  SelectionVector sel;
  sel.Append(1);
  sel.Append(3);
  const std::vector<uint32_t> gids = {2, 2};
  TouchGroupsSel(gids.data(), sel, &t);
  AccumulateDoubleSel(gids.data(), sel, data.data(), nullptr, nullptr,
                      t.slab(0));
  EXPECT_EQ(t.touched, (std::vector<uint32_t>{2}));
  EXPECT_EQ(t.rep_row, (std::vector<uint32_t>{1}));
  EXPECT_EQ(t.slab(0)[2].count, 2);
  EXPECT_EQ(t.slab(0)[2].sum, 10.0);
  EXPECT_EQ(t.slab(0)[0].count, 0);
}

TEST(AggregateKernelsTest, AllNullInputLeavesEmptyAccumulators) {
  DenseAggTable t;
  t.Init(1, 1);
  const std::vector<uint32_t> gids = {0, 0, 0};
  const std::vector<double> data = {1.0, 2.0, 3.0};
  const std::vector<uint8_t> validity = {0, 0, 0};
  TouchGroupsRange(gids.data(), 0, 3, &t);
  AccumulateDoubleRange(gids.data(), 0, 3, data.data(), nullptr,
                        validity.data(), t.slab(0));
  // The group exists (selected rows touch it) but no value accumulated —
  // exactly the scalar path's semantics for an all-null morsel.
  EXPECT_EQ(t.touched.size(), 1u);
  EXPECT_EQ(t.slab(0)[0].count, 0);
  EXPECT_EQ(t.slab(0)[0].sum, 0.0);
}

TEST(AggregateKernelsTest, ResetReusesSlabWithoutReallocating) {
  DenseAggTable t;
  t.Init(8, 2);
  EXPECT_EQ(t.allocations, 1u);
  const AggState* slab_before = t.slab(0);

  const std::vector<uint32_t> gids = {3, 5, 3};
  const std::vector<double> data = {1.0, 2.0, 4.0};
  TouchGroupsRange(gids.data(), 0, 3, &t);
  AccumulateDoubleRange(gids.data(), 0, 3, data.data(), nullptr, nullptr,
                        t.slab(0));
  ASSERT_EQ(t.touched, (std::vector<uint32_t>{3, 5}));
  EXPECT_EQ(t.slab(0)[3].sum, 5.0);

  t.Reset();
  EXPECT_EQ(t.allocations, 1u);        // Reset never reallocates
  EXPECT_EQ(t.slab(0), slab_before);   // same slab memory
  EXPECT_TRUE(t.touched.empty());
  EXPECT_TRUE(t.rep_row.empty());
  // Every previously touched slot is back to the empty accumulator, in both
  // aggregates' slabs.
  for (uint32_t slot : {3u, 5u}) {
    for (uint32_t a = 0; a < 2; ++a) {
      EXPECT_EQ(t.slab(a)[slot].count, 0) << "agg " << a << " slot " << slot;
      EXPECT_EQ(t.slab(a)[slot].sum, 0.0);
      EXPECT_EQ(t.seen[slot], 0);
    }
  }
  // The table accumulates correctly again after Reset.
  TouchGroupsRange(gids.data(), 0, 3, &t);
  AccumulateDoubleRange(gids.data(), 0, 3, data.data(), nullptr, nullptr,
                        t.slab(0));
  EXPECT_EQ(t.slab(0)[3].count, 2);
  EXPECT_EQ(t.slab(0)[3].sum, 5.0);
}

// -- Explicit-SIMD tier equivalence -----------------------------------------
//
// Every simd:: kernel must emit exactly what its vec:: counterpart emits —
// same rows, same order, same accumulator BITS — across a fuzz matrix of
// sizes chosen to hit every lane-width tail (0..2·lane+3), range offsets
// that misalign the 8-row blocks, and validity shapes including all-null
// and null runs straddling the 8-byte mask words the AVX2 path consumes.

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

void ExpectSameSelection(const SelectionVector& got,
                         const SelectionVector& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << label << " index " << i;
  }
}

TEST(SimdEquivalenceTest, SelectFromMaskMatchesScalarOnAllShapes) {
  Random rng(101);
  for (size_t n : {0, 1, 7, 8, 9, 31, 32, 33, 63, 64, 70, 257}) {
    for (size_t offset : {0, 1, 3, 13}) {
      std::vector<uint8_t> mask(offset + n);
      for (auto& b : mask) b = rng.Bernoulli(0.4) ? 1 : 0;
      SelectionVector simd_sel, scalar_sel;
      simd::SelectFromMask(mask.data(), offset, offset + n, &simd_sel);
      SelectFromMask(mask.data(), offset, offset + n, &scalar_sel);
      ExpectSameSelection(simd_sel, scalar_sel,
                          "mask n=" + std::to_string(n) +
                              " off=" + std::to_string(offset));
      // Degenerate shapes the block loops special-case: all-zero, all-one.
      std::fill(mask.begin(), mask.end(), 0);
      simd::SelectFromMask(mask.data(), offset, offset + n, &simd_sel);
      EXPECT_TRUE(simd_sel.empty());
      std::fill(mask.begin(), mask.end(), 1);
      simd::SelectFromMask(mask.data(), offset, offset + n, &simd_sel);
      SelectFromMask(mask.data(), offset, offset + n, &scalar_sel);
      ExpectSameSelection(simd_sel, scalar_sel,
                          "all-ones n=" + std::to_string(n));
    }
  }
}

TEST(SimdEquivalenceTest, RefineMatchesScalarOnAllShapes) {
  Random rng(102);
  for (size_t n : {0, 1, 7, 8, 9, 31, 32, 33, 70}) {
    std::vector<uint8_t> base(2 * n + 8, 0), refine(2 * n + 8, 0);
    for (auto& b : base) b = rng.Bernoulli(0.6) ? 1 : 0;
    for (auto& b : refine) b = rng.Bernoulli(0.5) ? 1 : 0;
    SelectionVector simd_sel, scalar_sel;
    simd::SelectFromMask(base.data(), 0, n, &simd_sel);
    SelectFromMask(base.data(), 0, n, &scalar_sel);
    simd::Refine(refine.data(), &simd_sel);
    Refine(refine.data(), &scalar_sel);
    ExpectSameSelection(simd_sel, scalar_sel, "refine n=" + std::to_string(n));
  }
}

TEST(SimdEquivalenceTest, CompareKernelsMatchScalarOnAllOpsAndShapes) {
  Random rng(103);
  for (size_t n : {0, 1, 3, 7, 8, 9, 15, 16, 17, 33, 64, 67}) {
    for (size_t offset : {0, 1, 3}) {
      const size_t total = offset + n;
      std::vector<int64_t> i64(total);
      std::vector<double> f64(total);
      std::vector<int32_t> codes(total);
      std::vector<uint8_t> validity(total);
      for (size_t i = 0; i < total; ++i) {
        i64[i] = rng.UniformInt(-5, 5);
        f64[i] = rng.Bernoulli(0.1) ? std::numeric_limits<double>::quiet_NaN()
                                    : rng.UniformDouble(-5.0, 5.0);
        codes[i] = static_cast<int32_t>(rng.UniformInt(0, 3));
        validity[i] = rng.Bernoulli(0.25) ? 0 : 1;
      }
      const std::vector<uint8_t> code_match = {1, 0, 1, 0};
      for (const uint8_t* v :
           {(const uint8_t*)validity.data(), (const uint8_t*)nullptr}) {
        for (CompareOp op : kAllOps) {
          const std::string label =
              "n=" + std::to_string(n) + " off=" + std::to_string(offset) +
              " op=" + std::to_string(static_cast<int>(op)) +
              (v ? " valid" : " novalid");
          SelectionVector simd_sel, scalar_sel;
          simd::SelectCompareInt64(i64.data(), v, op, 1, offset, total,
                                   &simd_sel);
          SelectCompareInt64(i64.data(), v, op, 1, offset, total,
                             &scalar_sel);
          ExpectSameSelection(simd_sel, scalar_sel, "i64 " + label);
          // NaN rows must never be selected, matching scalar semantics for
          // every op — including kNe.
          simd::SelectCompareDouble(f64.data(), v, op, 0.5, offset, total,
                                    &simd_sel);
          SelectCompareDouble(f64.data(), v, op, 0.5, offset, total,
                              &scalar_sel);
          ExpectSameSelection(simd_sel, scalar_sel, "f64 " + label);
        }
        SelectionVector simd_sel, scalar_sel;
        simd::SelectCompareCode(codes.data(), v, code_match.data(), offset,
                                total, &simd_sel);
        SelectCompareCode(codes.data(), v, code_match.data(), offset, total,
                          &scalar_sel);
        ExpectSameSelection(simd_sel, scalar_sel,
                            "code n=" + std::to_string(n));
      }
      // All-null: nothing selected on either tier.
      std::vector<uint8_t> none(total, 0);
      SelectionVector simd_sel;
      simd::SelectCompareInt64(i64.data(), none.data(), CompareOp::kGe,
                               -100, offset, total, &simd_sel);
      EXPECT_TRUE(simd_sel.empty());
    }
  }
}

// Accumulation: run the simd Range kernels against the scalar ones over the
// same inputs and require bitwise-equal AggStates — count, sum, min, max.
// Gid layouts cover long runs (the vector fast path), run-length-1 data
// (pure scalar probing), and runs straddling the kernel's internal
// block boundaries.
void ExpectSlabsBitIdentical(const std::vector<AggState>& got,
                             const std::vector<AggState>& want,
                             const std::string& label) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].count, want[i].count) << label << " slot " << i;
    // Bitwise, not ==: distinguishes +0.0 / -0.0 and fails on NaN drift.
    EXPECT_EQ(std::memcmp(&got[i].sum, &want[i].sum, sizeof(double)), 0)
        << label << " slot " << i << " sum " << got[i].sum << " vs "
        << want[i].sum;
    EXPECT_EQ(std::memcmp(&got[i].min, &want[i].min, sizeof(double)), 0)
        << label << " slot " << i;
    EXPECT_EQ(std::memcmp(&got[i].max, &want[i].max, sizeof(double)), 0)
        << label << " slot " << i;
  }
}

std::vector<uint32_t> MakeGids(Random* rng, size_t n, bool clustered) {
  std::vector<uint32_t> gids(n);
  uint32_t g = 0;
  size_t run_left = 0;
  for (size_t i = 0; i < n; ++i) {
    if (clustered) {
      if (run_left == 0) {
        run_left = static_cast<size_t>(rng->UniformInt(1, 40));
        g = static_cast<uint32_t>(rng->UniformInt(0, 7));
      }
      --run_left;
      gids[i] = g;
    } else {
      gids[i] = static_cast<uint32_t>(rng->UniformInt(0, 7));
    }
  }
  return gids;
}

TEST(SimdEquivalenceTest, AccumulateKernelsMatchScalarBitForBit) {
  Random rng(104);
  for (bool clustered : {true, false}) {
    for (size_t n : {0, 1, 15, 16, 17, 100, 1000}) {
      for (size_t offset : {0, 3}) {
        const size_t total = offset + n;
        std::vector<uint32_t> gids = MakeGids(&rng, total, clustered);
        std::vector<int64_t> i64(total);
        std::vector<double> f64(total);
        std::vector<uint8_t> validity(total), filter(total);
        for (size_t i = 0; i < total; ++i) {
          i64[i] = rng.UniformInt(-1000, 1000);
          f64[i] = rng.UniformDouble(-1000.0, 1000.0);
          validity[i] = rng.Bernoulli(0.2) ? 0 : 1;
          filter[i] = rng.Bernoulli(0.3) ? 0 : 1;
        }
        const std::string label = std::string(clustered ? "runs" : "random") +
                                  " n=" + std::to_string(n) +
                                  " off=" + std::to_string(offset);
        // Filter/validity combinations; the (nullptr, nullptr) case is the
        // one the vector run fast path accelerates.
        for (const uint8_t* f :
             {(const uint8_t*)nullptr, (const uint8_t*)filter.data()}) {
          for (const uint8_t* v :
               {(const uint8_t*)nullptr, (const uint8_t*)validity.data()}) {
            std::vector<AggState> simd_slab(8), scalar_slab(8);
            simd::AccumulateCountRange(gids.data(), offset, n, f, v,
                                       simd_slab.data());
            AccumulateCountRange(gids.data(), offset, n, f, v,
                                 scalar_slab.data());
            ExpectSlabsBitIdentical(simd_slab, scalar_slab, "count " + label);

            simd_slab.assign(8, AggState{});
            scalar_slab.assign(8, AggState{});
            simd::AccumulateInt64Range(gids.data(), offset, n, i64.data(), f,
                                       v, simd_slab.data());
            AccumulateInt64Range(gids.data(), offset, n, i64.data(), f, v,
                                 scalar_slab.data());
            ExpectSlabsBitIdentical(simd_slab, scalar_slab, "i64 " + label);

            simd_slab.assign(8, AggState{});
            scalar_slab.assign(8, AggState{});
            simd::AccumulateDoubleRange(gids.data(), offset, n, f64.data(), f,
                                        v, simd_slab.data());
            AccumulateDoubleRange(gids.data(), offset, n, f64.data(), f, v,
                                  scalar_slab.data());
            ExpectSlabsBitIdentical(simd_slab, scalar_slab, "f64 " + label);
          }
        }
      }
    }
  }
}

TEST(SimdEquivalenceTest, Int64SumExactnessPrecheckFallsBackBitIdentically) {
  // Values large enough that a double-rounded vector sum would diverge from
  // the scalar left-fold: the kernel's exactness precheck must reject the
  // vector path and fall back per-row, keeping the sums bit-identical.
  const int64_t big = (int64_t{1} << 62) + 12345;
  std::vector<uint32_t> gids(64, 0);
  std::vector<int64_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = (i % 2 == 0) ? big : -big + static_cast<int64_t>(i);
  }
  std::vector<AggState> simd_slab(1), scalar_slab(1);
  simd::AccumulateInt64Range(gids.data(), 0, data.size(), data.data(),
                             nullptr, nullptr, simd_slab.data());
  AccumulateInt64Range(gids.data(), 0, data.size(), data.data(), nullptr,
                       nullptr, scalar_slab.data());
  ExpectSlabsBitIdentical(simd_slab, scalar_slab, "big-int64");
}

TEST(SimdEquivalenceTest, IsaNameIsConsistentWithAvailability) {
  // Whatever the build/CPU, the pair (IsaName, Available) must be coherent:
  // a scalar build never reports available, and an available tier reports
  // a vector ISA name.
  if (simd::Available()) {
    EXPECT_NE(std::string(simd::IsaName()), "scalar");
  }
  if (std::string(simd::IsaName()) == "scalar") {
    EXPECT_FALSE(simd::Available());
  }
}

}  // namespace
}  // namespace seedb::db::vec
