#include "db/group_by.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace seedb::db {
namespace {

using ::seedb::testing::FindRowByKey;
using ::seedb::testing::MakeLaserwaveTable;
using ::seedb::testing::MakeTinyTable;

GroupByQuery BasicQuery() {
  GroupByQuery q;
  q.table = "t";
  q.group_by = {"d"};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1")};
  return q;
}

TEST(GroupByTest, SingleDimensionSum) {
  Table t = MakeTinyTable();
  GroupByStats stats;
  auto result = ExecuteGroupBy(t, BasicQuery(), &stats);
  ASSERT_TRUE(result.ok());
  const Table& r = *result;
  ASSERT_EQ(r.num_rows(), 2u);
  // Rows sorted by key: a, b.
  EXPECT_EQ(r.ValueAt(0, 0), Value("a"));
  EXPECT_EQ(r.ValueAt(0, 1), Value(8.0));  // 1 + 2 + 5
  EXPECT_EQ(r.ValueAt(1, 0), Value("b"));
  EXPECT_EQ(r.ValueAt(1, 1), Value(13.0));  // 3 + 4 + 6
  EXPECT_EQ(stats.num_groups, 2u);
  EXPECT_EQ(stats.rows_scanned, 6u);
  EXPECT_EQ(stats.rows_matched, 6u);
}

TEST(GroupByTest, WhereFiltersRows) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.where = PredicatePtr(Eq("e", Value("x")));
  GroupByStats stats;
  auto result = ExecuteGroupBy(t, q, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->ValueAt(0, 1), Value(6.0));   // a: 1 + 5
  EXPECT_EQ(result->ValueAt(1, 1), Value(3.0));   // b: 3
  EXPECT_EQ(stats.rows_matched, 3u);
}

TEST(GroupByTest, MultipleAggregates) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "s"),
      AggregateSpec::Make(AggregateFunction::kAvg, "m2", "a"),
      AggregateSpec::Make(AggregateFunction::kMax, "m1", "mx"),
      AggregateSpec::Count("n"),
  };
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_columns(), 5u);
  int a_row = FindRowByKey(*result, Value("a"));
  ASSERT_GE(a_row, 0);
  EXPECT_EQ(result->ValueAt(a_row, 1), Value(8.0));              // sum m1
  EXPECT_NEAR(result->ValueAt(a_row, 2).ToDouble().ValueOrDie(),
              (10.0 + 20.0 + 50.0) / 3.0, 1e-9);                 // avg m2
  EXPECT_EQ(result->ValueAt(a_row, 3), Value(5.0));              // max m1
  EXPECT_EQ(result->ValueAt(a_row, 4), Value(3.0));              // count
}

TEST(GroupByTest, FilterAggregates) {
  // The combined target/comparison pattern: one unconditional aggregate, one
  // FILTER-ed aggregate, same scan.
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "tgt",
                          PredicatePtr(Eq("e", Value("x")))),
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "cmp"),
  };
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  int a_row = FindRowByKey(*result, Value("a"));
  int b_row = FindRowByKey(*result, Value("b"));
  ASSERT_GE(a_row, 0);
  ASSERT_GE(b_row, 0);
  EXPECT_EQ(result->ValueAt(a_row, 1), Value(6.0));   // filtered
  EXPECT_EQ(result->ValueAt(a_row, 2), Value(8.0));   // unconditional
  EXPECT_EQ(result->ValueAt(b_row, 1), Value(3.0));
  EXPECT_EQ(result->ValueAt(b_row, 2), Value(13.0));
}

TEST(GroupByTest, FilteredEqualsWhereSemantics) {
  // f(m) FILTER (WHERE p) over all rows == f(m) WHERE p, for groups present
  // in both. (Groups absent from p's selection appear with 0 in the former.)
  Table t = MakeTinyTable();
  PredicatePtr p(Eq("e", Value("y")));

  GroupByQuery filtered = BasicQuery();
  filtered.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "v", p)};
  GroupByQuery where_q = BasicQuery();
  where_q.where = p;
  where_q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1", "v")};

  auto fr = ExecuteGroupBy(t, filtered, nullptr);
  auto wr = ExecuteGroupBy(t, where_q, nullptr);
  ASSERT_TRUE(fr.ok());
  ASSERT_TRUE(wr.ok());
  for (size_t r = 0; r < wr->num_rows(); ++r) {
    int fi = FindRowByKey(*fr, wr->ValueAt(r, 0));
    ASSERT_GE(fi, 0);
    EXPECT_EQ(fr->ValueAt(fi, 1), wr->ValueAt(r, 1));
  }
}

TEST(GroupByTest, MultiColumnGroupBy) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.group_by = {"d", "e"};
  GroupByStats stats;
  auto result = ExecuteGroupBy(t, q, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4u);  // (a,x),(a,y),(b,x),(b,y)
  EXPECT_EQ(stats.num_groups, 4u);
  // Sorted lexicographically: (a,x) first.
  EXPECT_EQ(result->ValueAt(0, 0), Value("a"));
  EXPECT_EQ(result->ValueAt(0, 1), Value("x"));
  EXPECT_EQ(result->ValueAt(0, 2), Value(6.0));  // m1: 1 + 5
}

TEST(GroupByTest, EmptyGroupByIsGlobalAggregate) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.group_by = {};
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->ValueAt(0, 0), Value(21.0));  // sum of all m1
}

TEST(GroupByTest, NullGroupKeyFormsItsOwnGroup) {
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(2.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(3.0)}).ok());
  GroupByQuery q = BasicQuery();
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m")};
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  // Null sorts first.
  EXPECT_TRUE(result->ValueAt(0, 0).is_null());
  EXPECT_EQ(result->ValueAt(0, 1), Value(5.0));
}

TEST(GroupByTest, NullMeasuresSkipped) {
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value::Null()}).ok());
  GroupByQuery q = BasicQuery();
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m", "s"),
                  AggregateSpec::Make(AggregateFunction::kCount, "m", "c"),
                  AggregateSpec::Count("star")};
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ValueAt(0, 1), Value(1.0));  // sum skips null
  EXPECT_EQ(result->ValueAt(0, 2), Value(1.0));  // COUNT(m) skips null
  EXPECT_EQ(result->ValueAt(0, 3), Value(2.0));  // COUNT(*) does not
}

TEST(GroupByTest, SamplingReducesRowsScanned) {
  Table t = MakeLaserwaveTable();
  GroupByQuery q;
  q.table = "t";
  q.group_by = {"store"};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "amount")};
  q.sample_fraction = 0.5;
  q.sample_seed = 3;
  GroupByStats stats;
  auto result = ExecuteGroupBy(t, q, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(stats.rows_scanned, t.num_rows());
  EXPECT_GT(stats.rows_scanned, 0u);
}

TEST(GroupByTest, SampleFractionValidated) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.sample_fraction = 0.0;
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());
  q.sample_fraction = 1.5;
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());
}

TEST(GroupByTest, ValidationErrors) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.group_by = {"missing"};
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());

  q = BasicQuery();
  q.aggregates = {};
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());

  q = BasicQuery();
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "d")};
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());  // string measure

  q = BasicQuery();
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "")};
  EXPECT_FALSE(ExecuteGroupBy(t, q, nullptr).ok());  // SUM needs input
}

TEST(GroupByTest, AggStateBytesReported) {
  Table t = MakeTinyTable();
  GroupByQuery q = BasicQuery();
  q.aggregates.push_back(AggregateSpec::Make(AggregateFunction::kAvg, "m2"));
  GroupByStats stats;
  ASSERT_TRUE(ExecuteGroupBy(t, q, &stats).ok());
  EXPECT_EQ(stats.agg_state_bytes, 2u * 2u * sizeof(AggState));
}

TEST(GroupByTest, ToSqlRendering) {
  GroupByQuery q = BasicQuery();
  q.where = PredicatePtr(Eq("e", Value("x")));
  EXPECT_EQ(q.ToSql(),
            "SELECT d, SUM(m1) FROM t WHERE e = 'x' GROUP BY d");
  q.sample_fraction = 0.25;
  EXPECT_NE(q.ToSql().find("TABLESAMPLE BERNOULLI (25)"), std::string::npos);
}

TEST(GroupByTest, LaserwaveTable1Reproduction) {
  // The paper's Table 1: total sales by store for the Laserwave.
  Table t = MakeLaserwaveTable();
  GroupByQuery q;
  q.table = "sales";
  q.where = PredicatePtr(Eq("product", Value("Laserwave")));
  q.group_by = {"store"};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "amount")};
  auto result = ExecuteGroupBy(t, q, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 4u);
  int cambridge = FindRowByKey(*result, Value("Cambridge, MA"));
  int seattle = FindRowByKey(*result, Value("Seattle, WA"));
  int ny = FindRowByKey(*result, Value("New York, NY"));
  int sf = FindRowByKey(*result, Value("San Francisco, CA"));
  EXPECT_NEAR(result->ValueAt(cambridge, 1).ToDouble().ValueOrDie(), 180.55,
              1e-9);
  EXPECT_NEAR(result->ValueAt(seattle, 1).ToDouble().ValueOrDie(), 145.50,
              1e-9);
  EXPECT_NEAR(result->ValueAt(ny, 1).ToDouble().ValueOrDie(), 122.00, 1e-9);
  EXPECT_NEAR(result->ValueAt(sf, 1).ToDouble().ValueOrDie(), 90.13, 1e-9);
}

}  // namespace
}  // namespace seedb::db
