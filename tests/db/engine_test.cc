#include "db/engine.h"

#include <gtest/gtest.h>

#include <thread>

#include "../test_util.h"

namespace seedb::db {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(&catalog_) {
    Status s = catalog_.AddTable("t", ::seedb::testing::MakeTinyTable());
    (void)s;
  }
  Catalog catalog_;
  Engine engine_;
};

GroupByQuery SimpleQuery() {
  GroupByQuery q;
  q.table = "t";
  q.group_by = {"d"};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1")};
  return q;
}

TEST_F(EngineTest, ExecuteGroupBy) {
  auto result = engine_.Execute(SimpleQuery());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST_F(EngineTest, MissingTableFails) {
  GroupByQuery q = SimpleQuery();
  q.table = "ghost";
  EXPECT_EQ(engine_.Execute(q).status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, StatsCountQueriesAndScans) {
  engine_.ResetStats();
  ASSERT_TRUE(engine_.Execute(SimpleQuery()).ok());
  ASSERT_TRUE(engine_.Execute(SimpleQuery()).ok());
  EngineStatsSnapshot s = engine_.stats();
  EXPECT_EQ(s.queries_executed, 2u);
  EXPECT_EQ(s.table_scans, 2u);
  EXPECT_EQ(s.rows_scanned, 12u);
  EXPECT_EQ(s.groups_created, 4u);
  EXPECT_GT(s.peak_agg_state_bytes, 0u);
}

// Pins the \stats reset contract: every cumulative counter reads zero
// after ResetStats(), and counting resumes from zero afterwards.
TEST_F(EngineTest, ResetStatsZeroesEveryCounter) {
  ASSERT_TRUE(engine_.Execute(SimpleQuery()).ok());
  EXPECT_GT(engine_.stats().queries_executed, 0u);
  engine_.ResetStats();
  EngineStatsSnapshot s = engine_.stats();
  EXPECT_EQ(s.queries_executed, 0u);
  EXPECT_EQ(s.table_scans, 0u);
  EXPECT_EQ(s.shared_scan_batches, 0u);
  EXPECT_EQ(s.vectorized_morsels, 0u);
  EXPECT_EQ(s.simd_morsels, 0u);
  EXPECT_EQ(s.rows_scanned, 0u);
  EXPECT_EQ(s.groups_created, 0u);
  EXPECT_EQ(s.peak_agg_state_bytes, 0u);
  EXPECT_EQ(s.total_exec_micros, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
  ASSERT_TRUE(engine_.Execute(SimpleQuery()).ok());
  EXPECT_EQ(engine_.stats().queries_executed, 1u);
}

TEST_F(EngineTest, GroupingSetsCountsOneScan) {
  engine_.ResetStats();
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}, {"e"}, {"d", "e"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1")};
  auto results = engine_.Execute(q);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);
  EngineStatsSnapshot s = engine_.stats();
  EXPECT_EQ(s.queries_executed, 1u);
  EXPECT_EQ(s.table_scans, 1u);  // the whole point of GROUPING SETS
}

TEST_F(EngineTest, FailedQueryDoesNotCount) {
  engine_.ResetStats();
  GroupByQuery q = SimpleQuery();
  q.group_by = {"missing"};
  EXPECT_FALSE(engine_.Execute(q).ok());
  EXPECT_EQ(engine_.stats().queries_executed, 0u);
}

TEST_F(EngineTest, AccessTrackerRecordsColumns) {
  GroupByQuery q = SimpleQuery();
  q.where = PredicatePtr(Eq("e", Value("x")));
  ASSERT_TRUE(engine_.Execute(q).ok());
  AccessTracker* tracker = engine_.access_tracker();
  EXPECT_EQ(tracker->QueryCount("t"), 1u);
  EXPECT_EQ(tracker->AccessCount("t", "d"), 1u);
  EXPECT_EQ(tracker->AccessCount("t", "m1"), 1u);
  EXPECT_EQ(tracker->AccessCount("t", "e"), 1u);
  EXPECT_EQ(tracker->AccessCount("t", "m2"), 0u);
}

TEST_F(EngineTest, AccessTrackerSeesFilterColumns) {
  GroupByQuery q = SimpleQuery();
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1", "v",
                                      PredicatePtr(Eq("e", Value("y"))))};
  ASSERT_TRUE(engine_.Execute(q).ok());
  EXPECT_EQ(engine_.access_tracker()->AccessCount("t", "e"), 1u);
}

TEST_F(EngineTest, ExecuteSqlEndToEnd) {
  auto result = engine_.ExecuteSql(
      "SELECT d, SUM(m1) AS total FROM t WHERE e = 'x' GROUP BY d");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->schema().column(1).name, "total");
  EXPECT_EQ(result->ValueAt(0, 1), Value(6.0));
}

TEST_F(EngineTest, ExecuteSqlGroupingSetsReturnsFirstSet) {
  auto result = engine_.ExecuteSql(
      "SELECT d, e, COUNT(*) FROM t GROUP BY GROUPING SETS ((d), (e))");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->schema().column(0).name, "d");
}

TEST_F(EngineTest, ExecuteSqlParseErrorPropagates) {
  EXPECT_FALSE(engine_.ExecuteSql("SELEKT broken").ok());
  EXPECT_FALSE(engine_.ExecuteSql("SELECT d FROM t").ok());  // no aggregate
}

TEST_F(EngineTest, ConcurrentExecutionIsSafe) {
  engine_.ResetStats();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int k = 0; k < 4; ++k) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!engine_.Execute(SimpleQuery()).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine_.stats().queries_executed, 200u);
}

TEST(EngineStatsTest, ToStringMentionsCounters) {
  EngineStatsSnapshot s;
  s.queries_executed = 3;
  s.table_scans = 2;
  std::string str = s.ToString();
  EXPECT_NE(str.find("queries=3"), std::string::npos);
  EXPECT_NE(str.find("scans=2"), std::string::npos);
}

}  // namespace
}  // namespace seedb::db
