#include "db/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "../test_util.h"

namespace seedb::db {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/seedb_csv_" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, ParseCsvLineBasics) {
  EXPECT_EQ(ParseCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ParseCsvLine("", ','), (std::vector<std::string>{""}));
}

TEST_F(CsvTest, ParseCsvLineQuoting) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x", ','),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST_F(CsvTest, RoundTripWriteRead) {
  Table t = ::seedb::testing::MakeTinyTable();
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path, t.schema());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_EQ(loaded->ValueAt(r, c), t.ValueAt(r, c));
    }
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, RoundTripPreservesNulls) {
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value::Null()}).ok());
  std::string path = TempPath("nulls.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path, schema);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ValueAt(0, 0).is_null());
  EXPECT_TRUE(loaded->ValueAt(1, 1).is_null());
  EXPECT_EQ(loaded->ValueAt(0, 1), Value(1.5));
  std::remove(path.c_str());
}

TEST_F(CsvTest, HeaderReordersColumns) {
  std::string path = TempPath("reorder.csv");
  WriteFile(path, "m,d\n1.5,a\n2.5,b\n");
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  auto loaded = ReadCsv(path, schema);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ValueAt(0, 0), Value("a"));
  EXPECT_EQ(loaded->ValueAt(0, 1), Value(1.5));
  std::remove(path.c_str());
}

TEST_F(CsvTest, BadCellTypeFails) {
  std::string path = TempPath("bad.csv");
  WriteFile(path, "d,m\na,notanumber\n");
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  EXPECT_FALSE(ReadCsv(path, schema).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, WrongFieldCountFails) {
  std::string path = TempPath("short.csv");
  WriteFile(path, "d,m\nonlyone\n");
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  EXPECT_FALSE(ReadCsv(path, schema).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingFileFails) {
  Schema schema({ColumnDef::Dimension("d")});
  auto r = ReadCsv("/nonexistent/path.csv", schema);
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, InferSchemaTypesAndRoles) {
  std::string path = TempPath("infer.csv");
  WriteFile(path, "name,age,score\nalice,30,1.5\nbob,41,2.25\n");
  auto loaded = ReadCsvInferSchema(path);
  ASSERT_TRUE(loaded.ok());
  const Schema& s = loaded->schema();
  EXPECT_EQ(s.column(0).type, ValueType::kString);
  EXPECT_EQ(s.column(0).role, ColumnRole::kDimension);
  EXPECT_EQ(s.column(1).type, ValueType::kInt64);
  EXPECT_EQ(s.column(1).role, ColumnRole::kMeasure);
  EXPECT_EQ(s.column(2).type, ValueType::kDouble);
  EXPECT_EQ(loaded->ValueAt(1, 1), Value(41));
  std::remove(path.c_str());
}

TEST_F(CsvTest, InferSchemaHandlesNullsAndMixed) {
  std::string path = TempPath("infer2.csv");
  WriteFile(path, "a,b\n,1\nx,2\n");
  auto loaded = ReadCsvInferSchema(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema().column(0).type, ValueType::kString);
  EXPECT_TRUE(loaded->ValueAt(0, 0).is_null());
  std::remove(path.c_str());
}

TEST_F(CsvTest, WriteQuotesSpecialCharacters) {
  Schema schema({ColumnDef::Dimension("d")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value("has,comma")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("has\"quote")}).ok());
  std::string path = TempPath("quotes.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path, schema);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ValueAt(0, 0), Value("has,comma"));
  EXPECT_EQ(loaded->ValueAt(1, 0), Value("has\"quote"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace seedb::db
