#include "db/predicate.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_util.h"

namespace seedb::db {
namespace {

using ::seedb::testing::MakeTinyTable;

size_t CountMask(const std::vector<uint8_t>& mask) {
  return static_cast<size_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));
}

TEST(PredicateTest, StringEquality) {
  Table t = MakeTinyTable();
  auto p = Eq("d", Value("a"));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 3u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(mask[r] == 1, t.ValueAt(r, 0) == Value("a"));
  }
}

TEST(PredicateTest, NumericComparisons) {
  Table t = MakeTinyTable();
  struct Case {
    std::unique_ptr<Predicate> pred;
    size_t expected;
  };
  EXPECT_EQ([&] {
    std::vector<uint8_t> m;
    (void)Gt("m1", Value(3.0))->EvaluateMask(t, &m);
    return CountMask(m);
  }(), 3u);  // 4, 5, 6
  EXPECT_EQ([&] {
    std::vector<uint8_t> m;
    (void)Le("m1", Value(2.0))->EvaluateMask(t, &m);
    return CountMask(m);
  }(), 2u);  // 1, 2
  EXPECT_EQ([&] {
    std::vector<uint8_t> m;
    (void)Ne("m1", Value(1.0))->EvaluateMask(t, &m);
    return CountMask(m);
  }(), 5u);
}

TEST(PredicateTest, RowMatchesAgreesWithMask) {
  Table t = MakeTinyTable();
  auto p = And(Eq("d", Value("a")), Gt("m1", Value(1.5)));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p->EvaluateMask(t, &mask).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(p->Matches(t, r), mask[r] == 1) << "row " << r;
  }
}

TEST(PredicateTest, InPredicate) {
  Table t = MakeTinyTable();
  auto p = In("e", {Value("x"), Value("zzz")});
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 3u);  // rows with e == "x"
}

TEST(PredicateTest, InRejectsEmptyList) {
  Table t = MakeTinyTable();
  auto p = In("e", {});
  EXPECT_EQ(p->Validate(t.schema()).code(), StatusCode::kInvalidArgument);
}

TEST(PredicateTest, BetweenInclusive) {
  Table t = MakeTinyTable();
  auto p = Between("m1", Value(2.0), Value(4.0));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 3u);  // 2, 3, 4
}

TEST(PredicateTest, AndOrNot) {
  Table t = MakeTinyTable();
  std::vector<uint8_t> mask;

  auto both = And(Eq("d", Value("a")), Eq("e", Value("x")));
  ASSERT_TRUE(both->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 2u);

  auto either = Or(Eq("d", Value("a")), Eq("e", Value("x")));
  ASSERT_TRUE(either->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 4u);

  auto negated = Not(Eq("d", Value("a")));
  ASSERT_TRUE(negated->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), 3u);
}

TEST(PredicateTest, TrueMatchesEverything) {
  Table t = MakeTinyTable();
  std::vector<uint8_t> mask;
  ASSERT_TRUE(True()->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(CountMask(mask), t.num_rows());
}

TEST(PredicateTest, NullCellsNeverMatchComparisons) {
  Schema schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(1.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value::Null()}).ok());
  std::vector<uint8_t> mask;

  ASSERT_TRUE(Eq("d", Value("a"))->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(mask, (std::vector<uint8_t>{0, 1}));

  ASSERT_TRUE(Ne("d", Value("a"))->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(mask[0], 0);  // null != 'a' is still false (2VL)

  ASSERT_TRUE(Gt("m", Value(0.0))->EvaluateMask(t, &mask).ok());
  EXPECT_EQ(mask, (std::vector<uint8_t>{1, 0}));
}

TEST(PredicateTest, ValidateCatchesMissingColumn) {
  Table t = MakeTinyTable();
  EXPECT_EQ(Eq("nope", Value(1))->Validate(t.schema()).code(),
            StatusCode::kNotFound);
}

TEST(PredicateTest, ValidateCatchesTypeMismatch) {
  Table t = MakeTinyTable();
  EXPECT_FALSE(Eq("d", Value(1))->Validate(t.schema()).ok());
  EXPECT_FALSE(Gt("m1", Value("x"))->Validate(t.schema()).ok());
  EXPECT_FALSE(Eq("d", Value::Null())->Validate(t.schema()).ok());
}

TEST(PredicateTest, ToSqlForms) {
  EXPECT_EQ(Eq("a", Value("x"))->ToSql(), "a = 'x'");
  EXPECT_EQ(Lt("m", Value(5))->ToSql(), "m < 5");
  EXPECT_EQ(In("a", {Value(1), Value(2)})->ToSql(), "a IN (1, 2)");
  EXPECT_EQ(Between("m", Value(1), Value(2))->ToSql(), "m BETWEEN 1 AND 2");
  EXPECT_EQ(And(Eq("a", Value("x")), Gt("m", Value(1)))->ToSql(),
            "(a = 'x' AND m > 1)");
  EXPECT_EQ(Not(True())->ToSql(), "NOT (TRUE)");
}

TEST(PredicateTest, CloneIsDeepAndEquivalent) {
  Table t = MakeTinyTable();
  auto p = Or(And(Eq("d", Value("a")), Gt("m1", Value(2.0))),
              Between("m2", Value(30.0), Value(50.0)));
  auto clone = p->Clone();
  std::vector<uint8_t> m1, m2;
  ASSERT_TRUE(p->EvaluateMask(t, &m1).ok());
  ASSERT_TRUE(clone->EvaluateMask(t, &m2).ok());
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(p->ToSql(), clone->ToSql());
}

TEST(PredicateTest, CollectColumns) {
  auto p = And(Eq("a", Value("x")), Or(Gt("m", Value(1)), Eq("a", Value("y"))));
  std::vector<std::string> cols;
  p->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "m", "a"}));
}

// Parameterized sweep: every operator against the dictionary fast path and
// the numeric path must agree with row-at-a-time Matches.
class CompareOpTest : public ::testing::TestWithParam<CompareOp> {};

TEST_P(CompareOpTest, MaskAgreesWithMatchesOnStrings) {
  Table t = MakeTinyTable();
  ComparisonPredicate p("d", GetParam(), Value("b"));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p.EvaluateMask(t, &mask).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(p.Matches(t, r), mask[r] == 1) << "row " << r;
  }
}

TEST_P(CompareOpTest, MaskAgreesWithMatchesOnNumerics) {
  Table t = MakeTinyTable();
  ComparisonPredicate p("m1", GetParam(), Value(3.0));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(p.EvaluateMask(t, &mask).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(p.Matches(t, r), mask[r] == 1) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, CompareOpTest,
                         ::testing::Values(CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLt, CompareOp::kLe,
                                           CompareOp::kGt, CompareOp::kGe));

}  // namespace
}  // namespace seedb::db
