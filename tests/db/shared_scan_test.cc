#include "db/shared_scan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "../test_util.h"
#include "data/synthetic.h"
#include "db/engine.h"
#include "db/predicate.h"

namespace seedb::db {
namespace {

using ::seedb::testing::MakeLaserwaveTable;
using ::seedb::testing::MakeTinyTable;

// Checks two tables cell-for-cell. Aggregate doubles may differ by float
// reassociation across morsel boundaries, so doubles compare with EXPECT_NEAR.
void ExpectTablesMatch(const Table& got, const Table& want,
                       const std::string& label) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << label;
  ASSERT_EQ(got.num_columns(), want.num_columns()) << label;
  for (size_t r = 0; r < got.num_rows(); ++r) {
    for (size_t c = 0; c < got.num_columns(); ++c) {
      Value g = got.ValueAt(r, c);
      Value w = want.ValueAt(r, c);
      if (g.type() == ValueType::kDouble && w.type() == ValueType::kDouble) {
        EXPECT_NEAR(g.ToDouble().ValueOrDie(), w.ToDouble().ValueOrDie(),
                    1e-9 + 1e-12 * std::abs(w.ToDouble().ValueOrDie()))
            << label << " row " << r << " col " << c;
      } else {
        EXPECT_EQ(g, w) << label << " row " << r << " col " << c;
      }
    }
  }
}

// Runs `queries` through both the fused shared scan (with `options`) and
// query-at-a-time ExecuteGroupingSets, and requires identical results.
void ExpectParity(const Table& table,
                  const std::vector<GroupingSetsQuery>& queries,
                  const SharedScanOptions& options,
                  SharedScanStats* stats = nullptr) {
  auto fused = ExecuteSharedScan(table, queries, options, stats);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(fused->size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto expected = ExecuteGroupingSets(table, queries[q], nullptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_EQ((*fused)[q].size(), expected->size()) << "query " << q;
    for (size_t s = 0; s < expected->size(); ++s) {
      ExpectTablesMatch((*fused)[q][s], (*expected)[s],
                        "query " + std::to_string(q) + " set " +
                            std::to_string(s));
    }
  }
}

// The paper's §1 running example: the fused pass answers the Laserwave
// target query, the comparison query, and a combined FILTER query exactly
// like three independent scans would.
TEST(SharedScanTest, LaserwaveParity) {
  Table t = MakeLaserwaveTable();
  PredicatePtr laserwave(Eq("product", Value("Laserwave")));

  GroupingSetsQuery target;
  target.table = "sales";
  target.where = laserwave;
  target.grouping_sets = {{"store"}};
  target.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "amount")};

  GroupingSetsQuery comparison = target;
  comparison.where = nullptr;

  GroupingSetsQuery combined;
  combined.table = "sales";
  combined.grouping_sets = {{"store"}};
  combined.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "amount", "tgt", laserwave),
      AggregateSpec::Make(AggregateFunction::kSum, "amount", "cmp"),
  };

  SharedScanStats stats;
  ExpectParity(t, {target, comparison, combined}, SharedScanOptions{}, &stats);
  EXPECT_EQ(stats.rows_scanned, t.num_rows());
  // store has 4 distinct values; target sees them all under the Laserwave
  // selection, so every query materializes 4 groups.
  EXPECT_EQ(stats.total_groups, 12u);

  // Spot-check Table 1 of the paper through the fused path.
  auto fused =
      ExecuteSharedScan(t, {target}, SharedScanOptions{}, nullptr);
  ASSERT_TRUE(fused.ok());
  const Table& by_store = (*fused)[0][0];
  int cambridge =
      ::seedb::testing::FindRowByKey(by_store, Value("Cambridge, MA"));
  ASSERT_GE(cambridge, 0);
  EXPECT_DOUBLE_EQ(
      by_store.ValueAt(cambridge, 1).ToDouble().ValueOrDie(), 180.55);
}

TEST(SharedScanTest, TinyTableManyQueryShapes) {
  Table t = MakeTinyTable();
  PredicatePtr sel(Eq("d", Value("a")));

  std::vector<GroupingSetsQuery> queries;
  {
    GroupingSetsQuery q;  // multi-set, multi-aggregate
    q.table = "t";
    q.grouping_sets = {{"d"}, {"e"}, {"d", "e"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1"),
                    AggregateSpec::Make(AggregateFunction::kAvg, "m2"),
                    AggregateSpec::Count("n")};
    queries.push_back(q);
  }
  {
    GroupingSetsQuery q;  // WHERE + FILTER mix
    q.table = "t";
    q.where = PredicatePtr(Gt("m1", Value(1.0)));
    q.grouping_sets = {{"e"}};
    q.aggregates = {
        AggregateSpec::Make(AggregateFunction::kSum, "m1", "tgt", sel),
        AggregateSpec::Make(AggregateFunction::kSum, "m1", "cmp")};
    queries.push_back(q);
  }
  {
    GroupingSetsQuery q;  // global aggregate (empty grouping set)
    q.table = "t";
    q.grouping_sets = {{}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kMax, "m2")};
    queries.push_back(q);
  }
  ExpectParity(t, queries, SharedScanOptions{});
}

// Morsel boundaries and multi-threading must not change any result: force
// many tiny morsels over a synthetic table and sweep thread counts.
TEST(SharedScanTest, MorselAndThreadSweepParity) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(
      /*rows=*/5000, /*num_dims=*/3, /*num_measures=*/2,
      /*cardinality=*/7, /*seed=*/11);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  const Table& t = dataset.table;

  std::vector<GroupingSetsQuery> queries;
  {
    GroupingSetsQuery q;
    q.table = "synthetic";
    q.where = dataset.selection;
    q.grouping_sets = {{"dim1"}, {"dim2"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0"),
                    AggregateSpec::Make(AggregateFunction::kAvg, "m1")};
    queries.push_back(q);
  }
  {
    GroupingSetsQuery q;
    q.table = "synthetic";
    q.grouping_sets = {{"dim1", "dim2"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kMin, "m0")};
    queries.push_back(q);
  }

  for (size_t threads : {1, 2, 4}) {
    for (size_t morsel_rows : {64, 1024, 100000}) {
      SharedScanOptions options;
      options.num_threads = threads;
      options.morsel_rows = morsel_rows;
      SharedScanStats stats;
      ExpectParity(t, queries, options, &stats);
      EXPECT_EQ(stats.morsels, (t.num_rows() + morsel_rows - 1) / morsel_rows);
      EXPECT_LE(stats.threads_used, threads);
    }
  }
}

// A global aggregate whose WHERE matches nothing still yields its one group
// (COUNT = 0), exactly like ExecuteGroupingSets.
TEST(SharedScanTest, EmptySelectionGlobalAggregateKeepsItsGroup) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  q.where = PredicatePtr(Eq("d", Value("no-such-value")));
  q.grouping_sets = {{}};
  q.aggregates = {AggregateSpec::Count("n")};
  ExpectParity(t, {q}, SharedScanOptions{});

  auto fused = ExecuteSharedScan(t, {q}, SharedScanOptions{});
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ((*fused)[0][0].num_rows(), 1u);
  EXPECT_EQ((*fused)[0][0].ValueAt(0, 0), Value(0.0));
}

TEST(SharedScanTest, SamplingSharedAcrossQueries) {
  Table t = MakeTinyTable();
  GroupingSetsQuery a;
  a.table = "t";
  a.grouping_sets = {{"d"}};
  a.aggregates = {AggregateSpec::Count("n")};
  a.sample_fraction = 0.5;
  a.sample_seed = 3;
  GroupingSetsQuery b = a;
  b.grouping_sets = {{"e"}};
  ExpectParity(t, {a, b}, SharedScanOptions{});
}

TEST(SharedScanTest, ValidationErrors) {
  Table t = MakeTinyTable();
  SharedScanOptions options;
  EXPECT_FALSE(ExecuteSharedScan(t, {}, options).ok());

  GroupingSetsQuery q;
  q.table = "t";
  EXPECT_FALSE(ExecuteSharedScan(t, {q}, options).ok());  // no sets

  q.grouping_sets = {{"missing"}};
  q.aggregates = {AggregateSpec::Count()};
  EXPECT_FALSE(ExecuteSharedScan(t, {q}, options).ok());

  q.grouping_sets = {{"d"}};
  q.sample_fraction = 0.0;
  EXPECT_FALSE(ExecuteSharedScan(t, {q}, options).ok());

  // morsel_rows = 0 is NOT an error: it selects adaptive sizing.
  q.sample_fraction = 1.0;
  options.morsel_rows = 0;
  EXPECT_TRUE(ExecuteSharedScan(t, {q}, options).ok());
}

TEST(SharedScanTest, AdaptiveMorselRowsHasFloorAndCeiling) {
  // Small tables resolve to the floor: one morsel, no over-scheduling.
  EXPECT_EQ(AdaptiveMorselRows(0, 8), AdaptiveMorselRows(1, 8));
  EXPECT_EQ(AdaptiveMorselRows(5000, 8), AdaptiveMorselRows(1, 8));
  // Large tables cap at the ceiling so work stealing keeps granularity.
  EXPECT_EQ(AdaptiveMorselRows(100'000'000, 1), AdaptiveMorselRows(1u << 30, 1));
  // In between, more threads mean smaller morsels.
  EXPECT_LE(AdaptiveMorselRows(1'000'000, 8), AdaptiveMorselRows(1'000'000, 2));
  // Never zero (it is a divisor in the scan).
  EXPECT_GT(AdaptiveMorselRows(0, 0), 0u);
}

TEST(SharedScanTest, AdaptiveSizingCapsThreadsOnSmallTables) {
  Table t = MakeTinyTable();  // 6 rows
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}};
  q.aggregates = {AggregateSpec::Count("n")};
  SharedScanOptions options;
  options.num_threads = 8;
  options.morsel_rows = 0;  // adaptive: 6 rows -> 1 morsel -> 1 thread
  SharedScanStats stats;
  ExpectParity(t, {q}, options, &stats);
  EXPECT_EQ(stats.morsels, 1u);
  EXPECT_EQ(stats.threads_used, 1u);
}

// --- Edge cases: degenerate tables and boundary alignment. ---

TEST(SharedScanTest, EmptyTableParity) {
  Table t(MakeTinyTable().schema());
  ASSERT_EQ(t.num_rows(), 0u);

  std::vector<GroupingSetsQuery> queries;
  {
    GroupingSetsQuery q;
    q.table = "t";
    q.grouping_sets = {{"d"}, {"d", "e"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1"),
                    AggregateSpec::Count("n")};
    queries.push_back(q);
  }
  {
    GroupingSetsQuery q;  // global aggregate keeps its one (empty) group
    q.table = "t";
    q.grouping_sets = {{}};
    q.aggregates = {AggregateSpec::Count("n")};
    queries.push_back(q);
  }
  SharedScanStats stats;
  ExpectParity(t, queries, SharedScanOptions{}, &stats);
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_EQ(stats.morsels, 0u);
}

TEST(SharedScanTest, SingleRowTableParity) {
  Table t(MakeTinyTable().schema());
  ASSERT_TRUE(
      t.AppendRow({Value("a"), Value("x"), Value(1.5), Value(2.5)}).ok());

  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}, {"e"}, {}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kAvg, "m1"),
                  AggregateSpec::Make(AggregateFunction::kMax, "m2")};
  for (size_t threads : {1, 4}) {
    SharedScanOptions options;
    options.num_threads = threads;
    SharedScanStats stats;
    ExpectParity(t, {q}, options, &stats);
    EXPECT_EQ(stats.rows_scanned, 1u);
  }
}

TEST(SharedScanTest, RowCountExactlyOnMorselBoundary) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(
      /*rows=*/4096, /*num_dims=*/2, /*num_measures=*/1,
      /*cardinality=*/5, /*seed=*/7);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  const Table& t = dataset.table;

  GroupingSetsQuery q;
  q.table = "synthetic";
  q.where = dataset.selection;
  q.grouping_sets = {{"dim1"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0")};

  SharedScanOptions options;
  options.num_threads = 4;
  options.morsel_rows = 1024;  // divides 4096 exactly: no ragged tail morsel
  SharedScanStats stats;
  ExpectParity(t, {q}, options, &stats);
  EXPECT_EQ(stats.morsels, 4u);
}

// --- Phased execution: SharedScanState slices must compose to the same
// answer as the one-shot pass, whatever the boundaries. ---

// Runs `queries` as explicit phases with the given boundaries and checks
// the final results match the one-shot fused pass exactly.
void ExpectPhasedParity(const Table& t,
                        const std::vector<GroupingSetsQuery>& queries,
                        const std::vector<size_t>& boundaries,
                        const SharedScanOptions& options) {
  auto state = SharedScanState::Create(t, queries, options);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  size_t begin = 0;
  for (size_t end : boundaries) {
    ASSERT_TRUE(state->RunPhase(begin, end).ok());
    begin = end;
  }
  ASSERT_TRUE(state->RunPhase(begin, t.num_rows()).ok());
  auto phased = state->FinalResults();
  ASSERT_TRUE(phased.ok()) << phased.status().ToString();

  SharedScanStats stats = state->stats();
  EXPECT_EQ(stats.phases, boundaries.size() + 1);

  auto one_shot = ExecuteSharedScan(t, queries, options);
  ASSERT_TRUE(one_shot.ok());
  ASSERT_EQ(phased->size(), one_shot->size());
  for (size_t q = 0; q < one_shot->size(); ++q) {
    ASSERT_EQ((*phased)[q].size(), (*one_shot)[q].size()) << "query " << q;
    for (size_t s = 0; s < (*one_shot)[q].size(); ++s) {
      ExpectTablesMatch((*phased)[q][s], (*one_shot)[q][s],
                        "query " + std::to_string(q) + " set " +
                            std::to_string(s));
    }
  }
}

TEST(SharedScanStateTest, PhasesComposeToOneShotResult) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(
      /*rows=*/5000, /*num_dims=*/3, /*num_measures=*/2,
      /*cardinality=*/7, /*seed=*/11);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  const Table& t = dataset.table;

  std::vector<GroupingSetsQuery> queries;
  {
    GroupingSetsQuery q;
    q.table = "synthetic";
    q.where = dataset.selection;
    q.grouping_sets = {{"dim1"}, {"dim2"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0"),
                    AggregateSpec::Make(AggregateFunction::kAvg, "m1")};
    queries.push_back(q);
  }
  {
    GroupingSetsQuery q;  // sampled query: mask must slice consistently
    q.table = "synthetic";
    q.grouping_sets = {{"dim0"}};
    q.aggregates = {AggregateSpec::Count("n")};
    q.sample_fraction = 0.5;
    q.sample_seed = 3;
    queries.push_back(q);
  }

  SharedScanOptions options;
  options.num_threads = 2;
  options.morsel_rows = 512;
  // Phase boundaries that do NOT divide the table evenly, including a
  // mid-morsel split, a tiny sliver, and an empty phase.
  ExpectPhasedParity(t, queries, {1, 1, 1700, 4999}, options);
  ExpectPhasedParity(t, queries, {2500}, options);
  ExpectPhasedParity(t, queries, {}, options);
}

TEST(SharedScanStateTest, PhasesMustBeContiguousAndForward) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}};
  q.aggregates = {AggregateSpec::Count("n")};
  auto state = SharedScanState::Create(t, {q}, SharedScanOptions{});
  ASSERT_TRUE(state.ok());

  EXPECT_FALSE(state->RunPhase(1, 3).ok());   // gap at the start
  ASSERT_TRUE(state->RunPhase(0, 3).ok());
  EXPECT_FALSE(state->RunPhase(0, 3).ok());   // re-scan
  EXPECT_FALSE(state->RunPhase(2, 5).ok());   // overlap
  EXPECT_FALSE(state->RunPhase(3, 99).ok());  // past the end
  ASSERT_TRUE(state->RunPhase(3, t.num_rows()).ok());

  ASSERT_TRUE(state->FinalResults().ok());
  EXPECT_FALSE(state->RunPhase(6, 6).ok());   // finalized
}

TEST(SharedScanStateTest, PartialResultsTrackRowsSeenSoFar) {
  Table t = MakeLaserwaveTable();  // 9 rows: 4 Laserwave then 5 Widget
  GroupingSetsQuery q;
  q.table = "sales";
  q.grouping_sets = {{"store"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "amount")};

  auto state = SharedScanState::Create(t, {q}, SharedScanOptions{});
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->RunPhase(0, 4).ok());  // the Laserwave rows only

  auto partial = state->PartialResults(0);
  ASSERT_TRUE(partial.ok());
  const Table& by_store = (*partial)[0];
  EXPECT_EQ(by_store.num_rows(), 4u);  // all 4 stores seen already
  int cambridge =
      ::seedb::testing::FindRowByKey(by_store, Value("Cambridge, MA"));
  ASSERT_GE(cambridge, 0);
  // Only the Laserwave Cambridge row so far (Widget's 1000.0 comes later).
  EXPECT_DOUBLE_EQ(
      by_store.ValueAt(cambridge, 1).ToDouble().ValueOrDie(), 180.55);

  ASSERT_TRUE(state->RunPhase(4, t.num_rows()).ok());
  auto full = state->FinalResults();
  ASSERT_TRUE(full.ok());
  cambridge = ::seedb::testing::FindRowByKey((*full)[0][0],
                                             Value("Cambridge, MA"));
  ASSERT_GE(cambridge, 0);
  EXPECT_DOUBLE_EQ(
      (*full)[0][0].ValueAt(cambridge, 1).ToDouble().ValueOrDie(), 1180.55);
}

TEST(SharedScanStateTest, DeactivatedQueryIsFrozenAndYieldsNoFinalTables) {
  Table t = MakeLaserwaveTable();
  GroupingSetsQuery by_store;
  by_store.table = "sales";
  by_store.grouping_sets = {{"store"}};
  by_store.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "amount")};
  GroupingSetsQuery by_product = by_store;
  by_product.grouping_sets = {{"product"}};

  auto state =
      SharedScanState::Create(t, {by_store, by_product}, SharedScanOptions{});
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->RunPhase(0, 4).ok());
  ASSERT_TRUE(state->DeactivateQuery(1).ok());
  EXPECT_FALSE(state->query_active(1));
  EXPECT_EQ(state->active_queries(), 1u);
  ASSERT_TRUE(state->RunPhase(4, t.num_rows()).ok());

  // The retired query's partials are frozen at the rows it saw.
  auto frozen = state->PartialResults(1);
  ASSERT_TRUE(frozen.ok());
  int laserwave =
      ::seedb::testing::FindRowByKey((*frozen)[0], Value("Laserwave"));
  ASSERT_GE(laserwave, 0);
  EXPECT_DOUBLE_EQ(
      (*frozen)[0].ValueAt(laserwave, 1).ToDouble().ValueOrDie(),
      180.55 + 145.50 + 122.00 + 90.13);

  auto final_results = state->FinalResults();
  ASSERT_TRUE(final_results.ok());
  EXPECT_EQ((*final_results)[0].size(), 1u);  // survivor materialized
  EXPECT_TRUE((*final_results)[1].empty());   // retired query: no tables

  // The survivor still matches an independent full scan.
  auto expected = ExecuteGroupingSets(t, by_store, nullptr);
  ASSERT_TRUE(expected.ok());
  ExpectTablesMatch((*final_results)[0][0], (*expected)[0], "survivor");
}

// The engine-level invariant the tentpole exists for: a fused batch is ONE
// table scan however many queries ride in it.
TEST(SharedScanTest, EngineCountsOneScanPerBatch) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("sales", MakeLaserwaveTable()).ok());
  Engine engine(&catalog);

  std::vector<GroupingSetsQuery> queries;
  for (int i = 0; i < 5; ++i) {
    GroupingSetsQuery q;
    q.table = "sales";
    q.grouping_sets = {{"store"}};
    q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "amount")};
    if (i % 2 == 0) q.where = PredicatePtr(Eq("product", Value("Laserwave")));
    queries.push_back(q);
  }

  auto results = engine.ExecuteShared(queries);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);

  EngineStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.queries_executed, 5u);
  EXPECT_EQ(stats.table_scans, 1u);
  EXPECT_EQ(stats.shared_scan_batches, 1u);
  EXPECT_EQ(stats.rows_scanned, 9u);

  // Mixed-table batches are rejected.
  GroupingSetsQuery other = queries[0];
  other.table = "elsewhere";
  queries.push_back(other);
  EXPECT_FALSE(engine.ExecuteShared(queries).ok());
}

// --- Cooperative cancellation (observed at morsel boundaries). ---

TEST(SharedScanStateTest, CancelTokenStopsPhaseAtMorselGranularity) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(5000, 2, 1, 4, 11);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  Table t = std::move(dataset.table);

  GroupingSetsQuery q;
  q.table = "synthetic";
  q.grouping_sets = {{"dim0"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0")};

  std::atomic<bool> cancel{false};
  SharedScanOptions options;
  options.num_threads = 1;
  options.morsel_rows = 512;
  options.cancel = &cancel;

  auto state = SharedScanState::Create(t, {q}, options);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->RunPhase(0, 2000).ok());
  EXPECT_FALSE(state->cancelled());

  // A token already set when the phase starts stops it before any morsel.
  cancel.store(true);
  ASSERT_TRUE(state->RunPhase(2000, t.num_rows()).ok());
  EXPECT_TRUE(state->cancelled());
  EXPECT_EQ(state->rows_consumed(), 2000u);  // nothing new was covered
  EXPECT_EQ(state->stats().morsels, 4u);     // phase 1's morsels only

  // A cancelled scan refuses further phases but still materializes what it
  // saw — and the partial equals an honest scan of the first phase's rows.
  EXPECT_FALSE(state->RunPhase(2000, t.num_rows()).ok());
  auto final_results = state->FinalResults();
  ASSERT_TRUE(final_results.ok());

  auto prefix = SharedScanState::Create(t, {q}, SharedScanOptions{});
  ASSERT_TRUE(prefix.ok());
  ASSERT_TRUE(prefix->RunPhase(0, 2000).ok());
  auto expected = prefix->PartialResults(0);
  ASSERT_TRUE(expected.ok());
  ExpectTablesMatch((*final_results)[0][0], (*expected)[0], "cancelled");
}

// A cancelled scan is not dead: ResumeAfterCancel() scans exactly the
// morsels the cancel skipped, and the final results equal an uninterrupted
// scan's bit for bit (single worker: same accumulation order).
TEST(SharedScanStateTest, ResumeAfterCancelCompletesExactly) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(5000, 2, 1, 4, 11);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  Table t = std::move(dataset.table);

  GroupingSetsQuery q;
  q.table = "synthetic";
  q.grouping_sets = {{"dim0"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0")};

  std::atomic<bool> cancel{false};
  SharedScanOptions options;
  options.num_threads = 1;
  options.morsel_rows = 512;
  options.cancel = &cancel;

  auto state = SharedScanState::Create(t, {q}, options);
  ASSERT_TRUE(state.ok());
  // Resume without a cancellation is refused.
  EXPECT_FALSE(state->ResumeAfterCancel().ok());

  ASSERT_TRUE(state->RunPhase(0, 2000).ok());
  cancel.store(true);
  ASSERT_TRUE(state->RunPhase(2000, t.num_rows()).ok());
  ASSERT_TRUE(state->cancelled());
  EXPECT_EQ(state->rows_consumed(), 2000u);

  // A resume with the token STILL SET cancels itself again — the pending
  // record survives for the next attempt.
  ASSERT_TRUE(state->ResumeAfterCancel().ok());
  EXPECT_TRUE(state->cancelled());

  cancel.store(false);
  ASSERT_TRUE(state->ResumeAfterCancel().ok());
  EXPECT_FALSE(state->cancelled());
  EXPECT_EQ(state->rows_consumed(), t.num_rows());
  EXPECT_EQ(state->stats().rows_scanned, t.num_rows());

  auto resumed = state->FinalResults();
  ASSERT_TRUE(resumed.ok());

  // Identical to a never-cancelled scan — morsel for morsel.
  SharedScanOptions clean;
  clean.num_threads = 1;
  clean.morsel_rows = 512;
  auto baseline = ExecuteSharedScan(t, {q}, clean);
  ASSERT_TRUE(baseline.ok());
  ExpectTablesMatch((*resumed)[0][0], (*baseline)[0][0], "resumed");
}

// Cancel landing mid-phase (some morsels done): the resume covers the
// complement only, so every row is aggregated exactly once. Driven with
// threads so the completed set is a nondeterministic non-prefix subset —
// parity with the per-query baseline is the invariant.
TEST(SharedScanStateTest, ThreadedCancelThenResumeKeepsParity) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(20000, 2, 1, 6, 3);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  Table t = std::move(dataset.table);

  GroupingSetsQuery q;
  q.table = "synthetic";
  q.grouping_sets = {{"dim0"}, {"dim1"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0"),
                  AggregateSpec::Make(AggregateFunction::kCount, "")};

  std::atomic<bool> cancel{false};
  SharedScanOptions options;
  options.num_threads = 4;
  options.morsel_rows = 256;
  options.cancel = &cancel;

  auto state = SharedScanState::Create(t, {q}, options);
  ASSERT_TRUE(state.ok());

  // Fire the cancel from another thread while the phase runs; wherever it
  // lands (possibly after the phase completed), resume + finish must agree
  // with the uninterrupted result.
  std::thread canceller([&cancel] { cancel.store(true); });
  ASSERT_TRUE(state->RunPhase(0, t.num_rows()).ok());
  canceller.join();
  if (state->cancelled()) {
    cancel.store(false);
    ASSERT_TRUE(state->ResumeAfterCancel().ok());
  }
  ASSERT_FALSE(state->cancelled());
  EXPECT_EQ(state->rows_consumed(), t.num_rows());

  auto resumed = state->FinalResults();
  ASSERT_TRUE(resumed.ok());
  auto expected = ExecuteGroupingSets(t, q, nullptr);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ((*resumed)[0].size(), expected->size());
  for (size_t s = 0; s < expected->size(); ++s) {
    ExpectTablesMatch((*resumed)[0][s], (*expected)[s],
                      "set " + std::to_string(s));
  }
}

// --- Per-phase adaptive morsel sizing. ---

TEST(SharedScanStateTest, AdaptiveMorselsCoarsenAsQueriesRetire) {
  data::SyntheticSpec spec = data::SyntheticSpec::Simple(40000, 4, 2, 8, 5);
  auto dataset = data::GenerateSynthetic(spec).ValueOrDie();
  Table t = std::move(dataset.table);

  // Eight single-dimension queries riding one scan.
  std::vector<GroupingSetsQuery> queries;
  for (int d = 0; d < 4; ++d) {
    for (int m = 0; m < 2; ++m) {
      GroupingSetsQuery q;
      q.table = "synthetic";
      q.grouping_sets = {{"dim" + std::to_string(d)}};
      q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum,
                                          "m" + std::to_string(m))};
      queries.push_back(q);
    }
  }

  SharedScanOptions options;
  options.num_threads = 2;
  options.morsel_rows = 0;  // adaptive

  auto state = SharedScanState::Create(t, queries, options);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(state->RunPhase(0, 20000).ok());
  const size_t full_batch_morsel = state->stats().last_phase_morsel_rows;
  EXPECT_GT(full_batch_morsel, 0u);

  // Retire 7 of 8 queries: the same-sized next phase takes coarser morsels
  // (same rows, an eighth of the per-row work — no point over-scheduling).
  for (size_t q = 1; q < queries.size(); ++q) {
    ASSERT_TRUE(state->DeactivateQuery(q).ok());
  }
  ASSERT_TRUE(state->RunPhase(20000, 40000).ok());
  EXPECT_GT(state->stats().last_phase_morsel_rows, full_batch_morsel);

  // The survivor still matches an independent full scan.
  auto final_results = state->FinalResults();
  ASSERT_TRUE(final_results.ok());
  auto expected = ExecuteGroupingSets(t, queries[0], nullptr);
  ASSERT_TRUE(expected.ok());
  ExpectTablesMatch((*final_results)[0][0], (*expected)[0], "survivor");
}

}  // namespace
}  // namespace seedb::db
