#include "db/aggregates.h"

#include <gtest/gtest.h>

namespace seedb::db {
namespace {

TEST(AggStateTest, AccumulatesAllStatistics) {
  AggState s;
  for (double v : {4.0, 1.0, 7.0}) s.Add(v);
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount), 3.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kSum), 12.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kAvg), 4.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kMin), 1.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kMax), 7.0);
}

TEST(AggStateTest, EmptyFinalizesSafely) {
  AggState s;
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount), 0.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kSum), 0.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kAvg), 0.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kMin), 0.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kMax), 0.0);
}

TEST(AggStateTest, CountOnlyIgnoresValueStats) {
  AggState s;
  s.AddCountOnly();
  s.AddCountOnly();
  EXPECT_EQ(s.Finalize(AggregateFunction::kCount), 2.0);
  EXPECT_EQ(s.Finalize(AggregateFunction::kSum), 0.0);
}

TEST(AggStateTest, MergeCombines) {
  AggState a, b;
  a.Add(1.0);
  a.Add(5.0);
  b.Add(3.0);
  b.Add(-2.0);
  a.Merge(b);
  EXPECT_EQ(a.Finalize(AggregateFunction::kCount), 4.0);
  EXPECT_EQ(a.Finalize(AggregateFunction::kSum), 7.0);
  EXPECT_EQ(a.Finalize(AggregateFunction::kMin), -2.0);
  EXPECT_EQ(a.Finalize(AggregateFunction::kMax), 5.0);
}

TEST(AggregateFunctionTest, SqlNamesRoundTrip) {
  for (AggregateFunction f : AllAggregateFunctions()) {
    auto parsed = ParseAggregateFunction(AggregateFunctionToSql(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), f);
  }
}

TEST(AggregateFunctionTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseAggregateFunction("sum").ValueOrDie(),
            AggregateFunction::kSum);
  EXPECT_EQ(ParseAggregateFunction("Avg").ValueOrDie(),
            AggregateFunction::kAvg);
  EXPECT_EQ(ParseAggregateFunction("mean").ValueOrDie(),
            AggregateFunction::kAvg);
  EXPECT_FALSE(ParseAggregateFunction("median").ok());
}

TEST(AggregateSpecTest, EffectiveNameDerivation) {
  EXPECT_EQ(AggregateSpec::Make(AggregateFunction::kSum, "amount")
                .EffectiveName(),
            "SUM(amount)");
  EXPECT_EQ(AggregateSpec::Count().EffectiveName(), "COUNT(*)");
  EXPECT_EQ(
      AggregateSpec::Make(AggregateFunction::kAvg, "x", "my_avg")
          .EffectiveName(),
      "my_avg");
}

TEST(AggregateSpecTest, ToSqlWithFilterAndAlias) {
  PredicatePtr filter(Eq("product", Value("Laserwave")));
  AggregateSpec spec = AggregateSpec::Make(AggregateFunction::kSum, "amount",
                                           "target", filter);
  EXPECT_EQ(spec.ToSql(),
            "SUM(amount) FILTER (WHERE product = 'Laserwave') AS target");
}

TEST(AggregateSpecTest, ToSqlPlain) {
  EXPECT_EQ(AggregateSpec::Make(AggregateFunction::kMax, "m").ToSql(),
            "MAX(m)");
  EXPECT_EQ(AggregateSpec::Count("n").ToSql(), "COUNT(*) AS n");
}

}  // namespace
}  // namespace seedb::db
