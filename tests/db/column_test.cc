#include "db/column.h"

#include <gtest/gtest.h>

namespace seedb::db {
namespace {

TEST(ColumnTest, Int64AppendAndRead) {
  Column c(ValueType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.int64_data()[0], 1);
  EXPECT_EQ(c.GetValue(1), Value(2));
  EXPECT_EQ(c.NumericAt(0), 1.0);
}

TEST(ColumnTest, DoubleAppendAndRead) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.5);
  EXPECT_EQ(c.GetValue(0), Value(1.5));
  EXPECT_EQ(c.NumericAt(0), 1.5);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column c(ValueType::kString);
  c.AppendString("red");
  c.AppendString("blue");
  c.AppendString("red");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.dict_size(), 2u);  // "red" interned once
  EXPECT_EQ(c.codes()[0], c.codes()[2]);
  EXPECT_NE(c.codes()[0], c.codes()[1]);
  EXPECT_EQ(c.dict_value(c.codes()[1]), "blue");
  EXPECT_EQ(c.FindCode("red"), c.codes()[0]);
  EXPECT_EQ(c.FindCode("green"), -1);
}

TEST(ColumnTest, NullsTrackedLazily) {
  Column c(ValueType::kInt64);
  c.AppendInt64(1);
  EXPECT_FALSE(c.IsNull(0));
  c.AppendNull();
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_FALSE(c.IsNull(0));  // retroactively valid
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c(ValueType::kInt64);
  EXPECT_TRUE(c.Append(Value(1)).ok());
  EXPECT_FALSE(c.Append(Value("x")).ok());
  EXPECT_FALSE(c.Append(Value(1.5)).ok());  // double into int column
  EXPECT_TRUE(c.Append(Value::Null()).ok());
  EXPECT_EQ(c.size(), 2u);
}

TEST(ColumnTest, DoubleColumnAcceptsIntLiterals) {
  Column c(ValueType::kDouble);
  EXPECT_TRUE(c.Append(Value(3)).ok());
  EXPECT_EQ(c.GetValue(0), Value(3.0));
}

TEST(ColumnTest, StringColumnRejectsNumbers) {
  Column c(ValueType::kString);
  EXPECT_FALSE(c.Append(Value(1)).ok());
  EXPECT_TRUE(c.Append(Value("ok")).ok());
}

TEST(ColumnTest, CountDistinctNumeric) {
  Column c(ValueType::kInt64);
  for (int64_t v : {1, 2, 2, 3, 3, 3}) c.AppendInt64(v);
  EXPECT_EQ(c.CountDistinct(), 3u);
}

TEST(ColumnTest, CountDistinctStringsIgnoresNullPlaceholders) {
  Column c(ValueType::kString);
  c.AppendNull();  // placeholder code 0 without any real value
  c.AppendString("a");
  c.AppendString("b");
  c.AppendNull();
  EXPECT_EQ(c.CountDistinct(), 2u);
  EXPECT_EQ(c.null_count(), 2u);
}

TEST(ColumnTest, CountDistinctDoubleWithNulls) {
  Column c(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendDouble(1.5);
  c.AppendDouble(2.5);
  EXPECT_EQ(c.CountDistinct(), 2u);
}

TEST(ColumnTest, NullFirstRowThenValues) {
  Column c(ValueType::kString);
  c.AppendNull();
  c.AppendString("z");
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_FALSE(c.IsNull(1));
  EXPECT_EQ(c.GetValue(1), Value("z"));
}

// The invariants the vectorized kernels (db/vec/) lean on. A null string
// row's slot physically holds code 0 — the same code the first interned
// value gets — so null-vs-code-0 must be distinguished by the validity
// vector alone.
TEST(ColumnTest, DictionaryCodeZeroDistinctFromNull) {
  Column c(ValueType::kString);
  c.AppendNull();        // slot holds code 0, validity 0
  c.AppendString("a");   // interned at code 0, validity 1
  c.AppendString("a");
  c.AppendNull();
  ASSERT_EQ(c.codes().size(), 4u);
  EXPECT_EQ(c.codes()[0], 0);  // placeholder ...
  EXPECT_EQ(c.codes()[1], 0);  // ... and the real code 0 look identical
  ASSERT_EQ(c.validity().size(), 4u);
  EXPECT_EQ(c.validity()[0], 0);  // only validity separates them
  EXPECT_EQ(c.validity()[1], 1);
  EXPECT_EQ(c.FindCode("a"), 0);
  EXPECT_EQ(c.dict_size(), 1u);
  EXPECT_EQ(c.null_count(), 2u);
}

// validity() is empty until the first null (the kernels' "no nulls" fast
// path), then tracks every row.
TEST(ColumnTest, ValidityVectorAllocatedOnFirstNull) {
  Column c(ValueType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(2);
  EXPECT_TRUE(c.validity().empty());
  c.AppendNull();
  ASSERT_EQ(c.validity().size(), 3u);
  EXPECT_EQ(c.validity()[0], 1);
  EXPECT_EQ(c.validity()[1], 1);
  EXPECT_EQ(c.validity()[2], 0);
}

TEST(ColumnTest, CountDistinctInt64WithValidityVector) {
  Column c(ValueType::kInt64);
  c.AppendInt64(7);
  c.AppendNull();   // slot holds 0
  c.AppendInt64(0); // a REAL zero — must count despite matching the null slot
  c.AppendInt64(7);
  c.AppendNull();
  EXPECT_EQ(c.CountDistinct(), 2u);  // {7, 0}; nulls excluded
  EXPECT_EQ(c.null_count(), 2u);
}

TEST(ColumnTest, CountDistinctStringWithValidityVectorExact) {
  Column c(ValueType::kString);
  c.AppendString("x");
  c.AppendNull();
  c.AppendString("y");
  c.AppendString("x");
  // Dictionary holds 2 entries; nulls never intern and never count.
  EXPECT_EQ(c.CountDistinct(), 2u);
  EXPECT_EQ(c.dict_size(), 2u);
}

TEST(ColumnTest, AllNullColumnHasZeroDistinct) {
  Column c(ValueType::kDouble);
  c.AppendNull();
  c.AppendNull();
  EXPECT_EQ(c.CountDistinct(), 0u);
  EXPECT_EQ(c.null_count(), 2u);
  EXPECT_EQ(c.validity().size(), 2u);
}

}  // namespace
}  // namespace seedb::db
