#include "db/grouping_sets.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace seedb::db {
namespace {

using ::seedb::testing::MakeTinyTable;

GroupingSetsQuery TwoSetQuery() {
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}, {"e"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1")};
  return q;
}

TEST(GroupingSetsTest, MatchesIndependentGroupBys) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q = TwoSetQuery();
  GroupingSetsStats stats;
  auto results = ExecuteGroupingSets(t, q, &stats);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);

  // Cross-check each result set against ExecuteGroupBy for the same set.
  for (size_t s = 0; s < 2; ++s) {
    GroupByQuery single;
    single.table = "t";
    single.group_by = q.grouping_sets[s];
    single.aggregates = q.aggregates;
    auto expected = ExecuteGroupBy(t, single, nullptr);
    ASSERT_TRUE(expected.ok());
    const Table& got = (*results)[s];
    ASSERT_EQ(got.num_rows(), expected->num_rows());
    for (size_t r = 0; r < got.num_rows(); ++r) {
      for (size_t c = 0; c < got.num_columns(); ++c) {
        EXPECT_EQ(got.ValueAt(r, c), expected->ValueAt(r, c))
            << "set " << s << " row " << r << " col " << c;
      }
    }
  }
  EXPECT_EQ(stats.total_groups, 4u);  // 2 values of d + 2 values of e
}

TEST(GroupingSetsTest, SharedWhere) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q = TwoSetQuery();
  q.where = PredicatePtr(Gt("m1", Value(2.0)));
  GroupingSetsStats stats;
  auto results = ExecuteGroupingSets(t, q, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.rows_matched, 4u);  // m1 in {3,4,5,6}
  // Set 0 (by d): a -> 5, b -> 13.
  const Table& by_d = (*results)[0];
  EXPECT_EQ(by_d.ValueAt(0, 1), Value(5.0));
  EXPECT_EQ(by_d.ValueAt(1, 1), Value(13.0));
}

TEST(GroupingSetsTest, FilterAggregatesPerSet) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q = TwoSetQuery();
  q.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "tgt",
                          PredicatePtr(Eq("e", Value("x")))),
      AggregateSpec::Make(AggregateFunction::kSum, "m1", "cmp"),
  };
  auto results = ExecuteGroupingSets(t, q, nullptr);
  ASSERT_TRUE(results.ok());
  const Table& by_d = (*results)[0];
  // a: filtered 1+5=6, unfiltered 8. b: filtered 3, unfiltered 13.
  EXPECT_EQ(by_d.ValueAt(0, 1), Value(6.0));
  EXPECT_EQ(by_d.ValueAt(0, 2), Value(8.0));
  EXPECT_EQ(by_d.ValueAt(1, 1), Value(3.0));
  EXPECT_EQ(by_d.ValueAt(1, 2), Value(13.0));
  const Table& by_e = (*results)[1];
  // x: filtered=unfiltered=9; y: filtered 0, unfiltered 12.
  EXPECT_EQ(by_e.ValueAt(0, 1), Value(9.0));
  EXPECT_EQ(by_e.ValueAt(0, 2), Value(9.0));
  EXPECT_EQ(by_e.ValueAt(1, 1), Value(0.0));
  EXPECT_EQ(by_e.ValueAt(1, 2), Value(12.0));
}

TEST(GroupingSetsTest, MultiColumnSet) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d", "e"}, {"d"}};
  q.aggregates = {AggregateSpec::Count("n")};
  auto results = ExecuteGroupingSets(t, q, nullptr);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].num_rows(), 4u);
  EXPECT_EQ((*results)[1].num_rows(), 2u);
  EXPECT_EQ((*results)[0].num_columns(), 3u);  // d, e, n
}

TEST(GroupingSetsTest, SingleSetEquivalentToGroupBy) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kAvg, "m2")};
  auto results = ExecuteGroupingSets(t, q, nullptr);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].num_rows(), 2u);
}

TEST(GroupingSetsTest, StatsCountAllSetsGroups) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  q.grouping_sets = {{"d"}, {"e"}, {"d", "e"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1"),
                  AggregateSpec::Make(AggregateFunction::kSum, "m2")};
  GroupingSetsStats stats;
  ASSERT_TRUE(ExecuteGroupingSets(t, q, &stats).ok());
  EXPECT_EQ(stats.total_groups, 8u);  // 2 + 2 + 4
  EXPECT_EQ(stats.agg_state_bytes, 8u * 2u * sizeof(AggState));
  EXPECT_EQ(stats.rows_scanned, 6u);
}

TEST(GroupingSetsTest, ValidationErrors) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q;
  q.table = "t";
  EXPECT_FALSE(ExecuteGroupingSets(t, q, nullptr).ok());  // no sets
  q.grouping_sets = {{"missing"}};
  q.aggregates = {AggregateSpec::Count()};
  EXPECT_FALSE(ExecuteGroupingSets(t, q, nullptr).ok());
}

TEST(GroupingSetsTest, ToSqlUsesGroupingSetsSyntax) {
  GroupingSetsQuery q = TwoSetQuery();
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("GROUP BY GROUPING SETS ((d), (e))"), std::string::npos);
  EXPECT_NE(sql.find("SELECT d, e, SUM(m1)"), std::string::npos);
}

TEST(GroupingSetsTest, SamplingSharedAcrossSets) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q = TwoSetQuery();
  q.sample_fraction = 0.5;
  q.sample_seed = 1;
  GroupingSetsStats stats;
  auto results = ExecuteGroupingSets(t, q, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_LE(stats.rows_scanned, 6u);
  // Both sets saw the same sampled subset: their total row counts agree.
  double sum_d = 0, sum_e = 0;
  for (size_t r = 0; r < (*results)[0].num_rows(); ++r) {
    sum_d += (*results)[0].ValueAt(r, 1).ToDouble().ValueOrDie();
  }
  for (size_t r = 0; r < (*results)[1].num_rows(); ++r) {
    sum_e += (*results)[1].ValueAt(r, 1).ToDouble().ValueOrDie();
  }
  EXPECT_EQ(sum_d, sum_e);
}

}  // namespace
}  // namespace seedb::db
