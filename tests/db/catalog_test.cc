#include "db/catalog.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace seedb::db {
namespace {

TEST(CatalogTest, AddGetDrop) {
  Catalog c;
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  EXPECT_TRUE(c.HasTable("t"));
  auto t = c.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 6u);
  ASSERT_TRUE(c.DropTable("t").ok());
  EXPECT_FALSE(c.HasTable("t"));
  EXPECT_EQ(c.GetTable("t").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, AddDuplicateFails) {
  Catalog c;
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  EXPECT_EQ(c.AddTable("t", ::seedb::testing::MakeTinyTable()).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropMissingFails) {
  Catalog c;
  EXPECT_EQ(c.DropTable("nope").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, PutReplaces) {
  Catalog c;
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  c.PutTable("t", ::seedb::testing::MakeLaserwaveTable());
  EXPECT_EQ((*c.GetTable("t"))->num_rows(), 9u);
}

TEST(CatalogTest, TableNames) {
  Catalog c;
  ASSERT_TRUE(c.AddTable("b", ::seedb::testing::MakeTinyTable()).ok());
  ASSERT_TRUE(c.AddTable("a", ::seedb::testing::MakeTinyTable()).ok());
  auto names = c.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(CatalogTest, StatsCachedAndInvalidatedOnPut) {
  Catalog c;
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  auto s1 = c.GetStats("t");
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ((*s1)->num_rows, 6u);
  // Same pointer on second call (cached).
  auto s2 = c.GetStats("t");
  EXPECT_EQ(*s1, *s2);
  // Replacing the table invalidates.
  c.PutTable("t", ::seedb::testing::MakeLaserwaveTable());
  auto s3 = c.GetStats("t");
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ((*s3)->num_rows, 9u);
}

TEST(CatalogTest, TableVersionsAreMonotonic) {
  Catalog c;
  EXPECT_EQ(c.TableVersion("t"), 0u);  // never registered
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  uint64_t v1 = c.TableVersion("t");
  EXPECT_GT(v1, 0u);
  c.PutTable("t", ::seedb::testing::MakeLaserwaveTable());
  uint64_t v2 = c.TableVersion("t");
  EXPECT_GT(v2, v1);
  // Versions survive a drop, so a re-created name never reuses an old one.
  ASSERT_TRUE(c.DropTable("t").ok());
  uint64_t v3 = c.TableVersion("t");
  EXPECT_GT(v3, v2);
  ASSERT_TRUE(c.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  EXPECT_GT(c.TableVersion("t"), v3);
  // A failed mutation does not bump.
  uint64_t v4 = c.TableVersion("t");
  EXPECT_EQ(c.AddTable("t", ::seedb::testing::MakeTinyTable()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(c.TableVersion("t"), v4);
}

TEST(CatalogTest, StatsForMissingTableFails) {
  Catalog c;
  EXPECT_FALSE(c.GetStats("ghost").ok());
}

}  // namespace
}  // namespace seedb::db
