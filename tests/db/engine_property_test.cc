// Randomized property tests over engine invariants. Each test sweeps random
// tables, predicates, and queries (parameterized by seed) and checks
// algebraic identities that must hold for any input:
//
//   1. vectorized predicate masks == row-at-a-time evaluation
//   2. sum of per-group COUNT(*) == number of WHERE-matching rows
//   3. per-group SUMs add up to the global SUM under the same predicate
//   4. GROUPING SETS results == independent GROUP BY results, set by set
//   5. SQL round trip: executing ToSql() output == executing the query
//   6. FILTER-ed aggregates == WHERE-ed aggregates on common groups

#include <gtest/gtest.h>

#include <map>

#include "db/engine.h"
#include "db/sql/parser.h"
#include "util/random.h"

namespace seedb::db {
namespace {

// Random table: 2-4 string dims (cardinality 2-8), 1-3 double measures,
// ~3% nulls everywhere.
Table RandomTable(Random* rng) {
  size_t num_dims = 2 + rng->Uniform(3);
  size_t num_measures = 1 + rng->Uniform(3);
  Schema schema;
  std::vector<size_t> cards;
  for (size_t d = 0; d < num_dims; ++d) {
    Status s = schema.AddColumn(
        ColumnDef::Dimension("d" + std::to_string(d)));
    (void)s;
    cards.push_back(2 + rng->Uniform(7));
  }
  for (size_t m = 0; m < num_measures; ++m) {
    Status s = schema.AddColumn(ColumnDef::Measure("m" + std::to_string(m)));
    (void)s;
  }
  Table table(schema);
  size_t rows = 200 + rng->Uniform(800);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (size_t d = 0; d < num_dims; ++d) {
      if (rng->Bernoulli(0.03)) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value("v" + std::to_string(rng->Uniform(cards[d]))));
      }
    }
    for (size_t m = 0; m < num_measures; ++m) {
      if (rng->Bernoulli(0.03)) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value(rng->Gaussian(50.0, 30.0)));  // signed values
      }
    }
    Status s = table.AppendRow(row);
    (void)s;
  }
  return table;
}

// Random predicate tree of depth <= 3 over the table's columns.
std::unique_ptr<Predicate> RandomPredicate(const Schema& schema, Random* rng,
                                           int depth = 0) {
  auto dims = schema.DimensionColumns();
  auto measures = schema.MeasureColumns();
  int kind = static_cast<int>(rng->Uniform(depth >= 3 ? 4 : 7));
  switch (kind) {
    case 0:
      return Eq(dims[rng->Uniform(dims.size())],
                Value("v" + std::to_string(rng->Uniform(8))));
    case 1: {
      CompareOp op = static_cast<CompareOp>(rng->Uniform(6));
      return std::make_unique<ComparisonPredicate>(
          measures[rng->Uniform(measures.size())], op,
          Value(rng->Gaussian(50.0, 40.0)));
    }
    case 2: {
      std::vector<Value> vals;
      size_t n = 1 + rng->Uniform(3);
      for (size_t i = 0; i < n; ++i) {
        vals.emplace_back("v" + std::to_string(rng->Uniform(8)));
      }
      return In(dims[rng->Uniform(dims.size())], std::move(vals));
    }
    case 3: {
      double lo = rng->Gaussian(30.0, 20.0);
      return Between(measures[rng->Uniform(measures.size())], Value(lo),
                     Value(lo + rng->UniformDouble(5.0, 60.0)));
    }
    case 4:
      return And(RandomPredicate(schema, rng, depth + 1),
                 RandomPredicate(schema, rng, depth + 1));
    case 5:
      return Or(RandomPredicate(schema, rng, depth + 1),
                RandomPredicate(schema, rng, depth + 1));
    default:
      return Not(RandomPredicate(schema, rng, depth + 1));
  }
}

class EnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, MaskAgreesWithRowEvaluation) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  Table table = RandomTable(&rng);
  for (int trial = 0; trial < 5; ++trial) {
    auto pred = RandomPredicate(table.schema(), &rng);
    std::vector<uint8_t> mask;
    ASSERT_TRUE(pred->EvaluateMask(table, &mask).ok()) << pred->ToSql();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ASSERT_EQ(pred->Matches(table, r), mask[r] == 1)
          << pred->ToSql() << " row " << r;
    }
  }
}

TEST_P(EnginePropertyTest, GroupCountsSumToMatchedRows) {
  Random rng(static_cast<uint64_t>(GetParam()) * 104729 + 2);
  Table table = RandomTable(&rng);
  PredicatePtr where(RandomPredicate(table.schema(), &rng));
  std::vector<uint8_t> mask;
  ASSERT_TRUE(where->EvaluateMask(table, &mask).ok());
  auto matched = static_cast<double>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));

  GroupByQuery q;
  q.table = "t";
  q.where = where;
  q.group_by = {"d0"};
  q.aggregates = {AggregateSpec::Count("n")};
  auto result = ExecuteGroupBy(table, q, nullptr).ValueOrDie();
  double total = 0.0;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    total += result.ValueAt(r, 1).ToDouble().ValueOrDie();
  }
  EXPECT_EQ(total, matched);
}

TEST_P(EnginePropertyTest, GroupSumsAddUpToGlobalSum) {
  Random rng(static_cast<uint64_t>(GetParam()) * 1299709 + 3);
  Table table = RandomTable(&rng);
  PredicatePtr where(RandomPredicate(table.schema(), &rng));

  GroupByQuery grouped;
  grouped.table = "t";
  grouped.where = where;
  grouped.group_by = {"d1"};
  grouped.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0")};
  auto by_group = ExecuteGroupBy(table, grouped, nullptr).ValueOrDie();
  double group_total = 0.0;
  for (size_t r = 0; r < by_group.num_rows(); ++r) {
    group_total += by_group.ValueAt(r, 1).ToDouble().ValueOrDie();
  }

  GroupByQuery global = grouped;
  global.group_by = {};
  auto overall = ExecuteGroupBy(table, global, nullptr).ValueOrDie();
  ASSERT_EQ(overall.num_rows(), 1u);
  EXPECT_NEAR(group_total, overall.ValueAt(0, 0).ToDouble().ValueOrDie(),
              1e-6);
}

TEST_P(EnginePropertyTest, GroupingSetsMatchIndependentGroupBys) {
  Random rng(static_cast<uint64_t>(GetParam()) * 15485863 + 4);
  Table table = RandomTable(&rng);
  PredicatePtr where(RandomPredicate(table.schema(), &rng));
  auto dims = table.schema().DimensionColumns();

  GroupingSetsQuery gs;
  gs.table = "t";
  gs.where = where;
  for (const auto& d : dims) gs.grouping_sets.push_back({d});
  gs.grouping_sets.push_back({dims[0], dims[1]});  // one multi-column set
  gs.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0", "s"),
                   AggregateSpec::Count("n")};
  auto results = ExecuteGroupingSets(table, gs, nullptr).ValueOrDie();
  ASSERT_EQ(results.size(), gs.grouping_sets.size());

  for (size_t s = 0; s < gs.grouping_sets.size(); ++s) {
    GroupByQuery single;
    single.table = "t";
    single.where = where;
    single.group_by = gs.grouping_sets[s];
    single.aggregates = gs.aggregates;
    auto expected = ExecuteGroupBy(table, single, nullptr).ValueOrDie();
    ASSERT_EQ(results[s].num_rows(), expected.num_rows()) << "set " << s;
    for (size_t r = 0; r < expected.num_rows(); ++r) {
      for (size_t c = 0; c < expected.num_columns(); ++c) {
        ASSERT_EQ(results[s].ValueAt(r, c), expected.ValueAt(r, c))
            << "set " << s << " row " << r << " col " << c;
      }
    }
  }
}

TEST_P(EnginePropertyTest, SqlRoundTripExecutesIdentically) {
  Random rng(static_cast<uint64_t>(GetParam()) * 32452843 + 5);
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", RandomTable(&rng)).ok());
  Engine engine(&catalog);
  const Table* table = catalog.GetTable("t").ValueOrDie();

  GroupByQuery q;
  q.table = "t";
  q.where = PredicatePtr(RandomPredicate(table->schema(), &rng));
  q.group_by = {"d0"};
  q.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m0", "s"),
      AggregateSpec::Make(AggregateFunction::kAvg, "m0", "a",
                          PredicatePtr(RandomPredicate(table->schema(), &rng))),
      AggregateSpec::Count("n"),
  };

  auto direct = engine.Execute(q).ValueOrDie();
  auto via_sql = engine.ExecuteSql(q.ToSql());
  ASSERT_TRUE(via_sql.ok()) << q.ToSql() << " -> " << via_sql.status();
  ASSERT_EQ(direct.num_rows(), via_sql->num_rows()) << q.ToSql();
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    for (size_t c = 0; c < direct.num_columns(); ++c) {
      db::Value a = direct.ValueAt(r, c);
      db::Value b = via_sql->ValueAt(r, c);
      if (a.is_numeric() && b.is_numeric()) {
        // SQL text carries doubles through decimal printing; allow rounding
        // slack proportional to magnitude.
        double av = a.ToDouble().ValueOrDie();
        double bv = b.ToDouble().ValueOrDie();
        ASSERT_NEAR(av, bv, 1e-6 * (1.0 + std::abs(av))) << q.ToSql();
      } else {
        ASSERT_EQ(a, b) << q.ToSql();
      }
    }
  }
}

TEST_P(EnginePropertyTest, FilterAggregateMatchesWhereAggregate) {
  Random rng(static_cast<uint64_t>(GetParam()) * 49979687 + 6);
  Table table = RandomTable(&rng);
  PredicatePtr pred(RandomPredicate(table.schema(), &rng));

  GroupByQuery filtered;
  filtered.table = "t";
  filtered.group_by = {"d0"};
  filtered.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m0", "v", pred)};
  auto fr = ExecuteGroupBy(table, filtered, nullptr).ValueOrDie();

  GroupByQuery whered;
  whered.table = "t";
  whered.where = pred;
  whered.group_by = {"d0"};
  whered.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m0", "v")};
  auto wr = ExecuteGroupBy(table, whered, nullptr).ValueOrDie();

  // Every group present in the WHERE result matches the FILTER result.
  std::map<std::string, double> filtered_vals;
  for (size_t r = 0; r < fr.num_rows(); ++r) {
    filtered_vals[fr.ValueAt(r, 0).ToString()] =
        fr.ValueAt(r, 1).ToDouble().ValueOrDie();
  }
  for (size_t r = 0; r < wr.num_rows(); ++r) {
    auto it = filtered_vals.find(wr.ValueAt(r, 0).ToString());
    ASSERT_NE(it, filtered_vals.end());
    EXPECT_NEAR(it->second, wr.ValueAt(r, 1).ToDouble().ValueOrDie(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedSweeps, EnginePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace seedb::db
