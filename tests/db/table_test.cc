#include "db/table.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace seedb::db {
namespace {

Schema TwoColSchema() {
  return Schema({ColumnDef::Dimension("d"), ColumnDef::Measure("m")});
}

TEST(TableTest, AppendRowAndRead) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b"), Value(2.5)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.ValueAt(0, 0), Value("a"));
  EXPECT_EQ(t.ValueAt(1, 1), Value(2.5));
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.AppendRow({Value("a")}).ok());
  EXPECT_FALSE(t.AppendRow({Value("a"), Value(1.0), Value(2.0)}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, AppendRowTypeMismatchLeavesTableUnchanged) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(1.0)}).ok());
  // Second cell wrong type: whole row rejected atomically.
  EXPECT_FALSE(t.AppendRow({Value("b"), Value("not a number")}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.column(0).size(), 1u);
  EXPECT_EQ(t.column(1).size(), 1u);
}

TEST(TableTest, NullsAllowedAnywhere) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(t.ValueAt(0, 0).is_null());
  EXPECT_TRUE(t.ValueAt(0, 1).is_null());
}

TEST(TableTest, ColumnByName) {
  Table t(TwoColSchema());
  EXPECT_TRUE(t.ColumnByName("d").ok());
  EXPECT_FALSE(t.ColumnByName("nope").ok());
}

TEST(TableTest, SelectRowsSubsetsAndReorders) {
  Table t = ::seedb::testing::MakeTinyTable();
  Table sub = t.SelectRows({5, 0, 0});
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_EQ(sub.ValueAt(0, 0), t.ValueAt(5, 0));
  EXPECT_EQ(sub.ValueAt(1, 2), t.ValueAt(0, 2));
  EXPECT_EQ(sub.ValueAt(2, 2), t.ValueAt(0, 2));  // repeats allowed
  EXPECT_EQ(sub.schema(), t.schema());
}

TEST(TableTest, SelectRowsEmpty) {
  Table t = ::seedb::testing::MakeTinyTable();
  Table sub = t.SelectRows({});
  EXPECT_EQ(sub.num_rows(), 0u);
}

TEST(TableTest, SelectRowsPreservesNulls) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(2.0)}).ok());
  Table sub = t.SelectRows({1, 0});
  EXPECT_TRUE(sub.ValueAt(0, 0).is_null());
  EXPECT_TRUE(sub.ValueAt(1, 1).is_null());
  EXPECT_EQ(sub.ValueAt(0, 1), Value(2.0));
}

TEST(TableTest, MemoryBytesGrowsWithRows) {
  Table t(TwoColSchema());
  size_t empty = t.MemoryBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("key"), Value(1.0)}).ok());
  }
  EXPECT_GT(t.MemoryBytes(), empty);
}

TEST(TableTest, FinishBulkLoadChecksColumnLengths) {
  Table t(TwoColSchema());
  t.mutable_column(0)->AppendString("a");
  // Column 1 left empty: mismatch.
  EXPECT_FALSE(t.FinishBulkLoad().ok());
  t.mutable_column(1)->AppendDouble(1.0);
  EXPECT_TRUE(t.FinishBulkLoad().ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ToStringContainsHeaderAndValues) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value("hello"), Value(3.5)}).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("d"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(TableTest, ToStringElidesRows) {
  Table t(TwoColSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("r"), Value(1.0)}).ok());
  }
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("15 more rows"), std::string::npos);
}

TEST(LaserwaveFixtureTest, MatchesPaperTable1) {
  Table t = ::seedb::testing::MakeLaserwaveTable();
  EXPECT_EQ(t.num_rows(), 9u);
  // Laserwave total = 538.18 as in §2's normalization example.
  double total = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.ValueAt(r, 0) == Value("Laserwave")) {
      total += t.ValueAt(r, 2).ToDouble().ValueOrDie();
    }
  }
  EXPECT_NEAR(total, 538.18, 1e-9);
}

}  // namespace
}  // namespace seedb::db
