#include "db/sql/parser.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "db/engine.h"
#include "db/sql/printer.h"

namespace seedb::db::sql {
namespace {

TEST(ParserTest, MinimalAggregateQuery) {
  auto stmt = ParseSelect("SELECT store, SUM(amount) FROM sales GROUP BY store")
                  .ValueOrDie();
  EXPECT_EQ(stmt.table, "sales");
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_FALSE(stmt.items[0].is_aggregate);
  EXPECT_EQ(stmt.items[0].column, "store");
  EXPECT_TRUE(stmt.items[1].is_aggregate);
  EXPECT_EQ(stmt.items[1].func, AggregateFunction::kSum);
  EXPECT_EQ(stmt.items[1].column, "amount");
  EXPECT_EQ(stmt.group_by, (std::vector<std::string>{"store"}));
}

TEST(ParserTest, PaperQueryQPrime) {
  // The exact Q' from §1 of the paper.
  auto stmt = ParseSelect(
                  "SELECT store, SUM(amount) FROM Sales WHERE "
                  "Product = 'Laserwave' GROUP BY store")
                  .ValueOrDie();
  ASSERT_TRUE(stmt.where != nullptr);
  EXPECT_EQ(stmt.where->ToSql(), "Product = 'Laserwave'");
}

TEST(ParserTest, CountStarAndAliases) {
  auto stmt =
      ParseSelect("SELECT d, COUNT(*) AS n, AVG(m) AS mean FROM t GROUP BY d")
          .ValueOrDie();
  EXPECT_EQ(stmt.items[1].func, AggregateFunction::kCount);
  EXPECT_EQ(stmt.items[1].column, "");
  EXPECT_EQ(stmt.items[1].alias, "n");
  EXPECT_EQ(stmt.items[2].alias, "mean");
}

TEST(ParserTest, StarOnlyForCount) {
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, FilterClause) {
  auto stmt = ParseSelect(
                  "SELECT a, SUM(m) FILTER (WHERE p = 'x') AS tgt, SUM(m) "
                  "AS cmp FROM t GROUP BY a")
                  .ValueOrDie();
  ASSERT_TRUE(stmt.items[1].filter != nullptr);
  EXPECT_EQ(stmt.items[1].filter->ToSql(), "p = 'x'");
  EXPECT_TRUE(stmt.items[2].filter == nullptr);
}

TEST(ParserTest, WherePrecedenceAndParens) {
  auto p = ParsePredicate("a = 'x' OR b = 'y' AND c > 3").ValueOrDie();
  // AND binds tighter than OR.
  EXPECT_EQ(p->ToSql(), "(a = 'x' OR (b = 'y' AND c > 3))");
  auto q = ParsePredicate("(a = 'x' OR b = 'y') AND c > 3").ValueOrDie();
  EXPECT_EQ(q->ToSql(), "((a = 'x' OR b = 'y') AND c > 3)");
}

TEST(ParserTest, NotInBetween) {
  EXPECT_EQ(ParsePredicate("NOT a = 'x'").ValueOrDie()->ToSql(),
            "NOT (a = 'x')");
  EXPECT_EQ(ParsePredicate("a IN ('x', 'y')").ValueOrDie()->ToSql(),
            "a IN ('x', 'y')");
  EXPECT_EQ(ParsePredicate("a NOT IN (1, 2)").ValueOrDie()->ToSql(),
            "NOT (a IN (1, 2))");
  EXPECT_EQ(ParsePredicate("m BETWEEN 1 AND 5").ValueOrDie()->ToSql(),
            "m BETWEEN 1 AND 5");
  EXPECT_EQ(ParsePredicate("TRUE").ValueOrDie()->ToSql(), "TRUE");
}

TEST(ParserTest, NumericLiteralTypes) {
  auto p = ParsePredicate("m = 5").ValueOrDie();
  EXPECT_EQ(p->ToSql(), "m = 5");
  auto q = ParsePredicate("m = 5.5").ValueOrDie();
  EXPECT_EQ(q->ToSql(), "m = 5.5");
}

TEST(ParserTest, NegativeLiterals) {
  EXPECT_EQ(ParsePredicate("m < -81.5").ValueOrDie()->ToSql(), "m < -81.5");
  EXPECT_EQ(ParsePredicate("m = -3").ValueOrDie()->ToSql(), "m = -3");
  EXPECT_EQ(
      ParsePredicate("m BETWEEN -5 AND -1").ValueOrDie()->ToSql(),
      "m BETWEEN -5 AND -1");
  EXPECT_EQ(ParsePredicate("m IN (-1, 2)").ValueOrDie()->ToSql(),
            "m IN (-1, 2)");
  EXPECT_FALSE(ParsePredicate("m = -").ok());
  EXPECT_FALSE(ParsePredicate("m = -'x'").ok());
}

TEST(ParserTest, Tablesample) {
  auto stmt = ParseSelect(
                  "SELECT d, COUNT(*) FROM t TABLESAMPLE BERNOULLI (25) "
                  "GROUP BY d")
                  .ValueOrDie();
  EXPECT_DOUBLE_EQ(stmt.sample_fraction, 0.25);
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t TABLESAMPLE BERNOULLI (0)").ok());
  EXPECT_FALSE(
      ParseSelect("SELECT COUNT(*) FROM t TABLESAMPLE BERNOULLI (150)").ok());
}

TEST(ParserTest, GroupingSets) {
  auto stmt = ParseSelect(
                  "SELECT a, b, SUM(m) FROM t GROUP BY GROUPING SETS "
                  "((a), (b), (a, b))")
                  .ValueOrDie();
  ASSERT_EQ(stmt.grouping_sets.size(), 3u);
  EXPECT_EQ(stmt.grouping_sets[0], (std::vector<std::string>{"a"}));
  EXPECT_EQ(stmt.grouping_sets[2], (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM t extra").ok());
  EXPECT_FALSE(ParsePredicate("a = 1 garbage").ok());
}

TEST(ParserTest, ErrorsMentionOffset) {
  auto r = ParseSelect("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(PlanTest, PlanGroupByChecksGroupMembership) {
  auto stmt =
      ParseSelect("SELECT d, SUM(m) FROM t GROUP BY d").ValueOrDie();
  EXPECT_TRUE(PlanGroupBy(stmt).ok());
  auto bad = ParseSelect("SELECT e, SUM(m) FROM t GROUP BY d").ValueOrDie();
  EXPECT_FALSE(PlanGroupBy(bad).ok());
}

TEST(PlanTest, PlanRequiresAggregates) {
  auto stmt = ParseSelect("SELECT d FROM t GROUP BY d").ValueOrDie();
  EXPECT_FALSE(PlanGroupBy(stmt).ok());
}

TEST(PlanTest, GroupingSetsPlanner) {
  auto stmt = ParseSelect(
                  "SELECT a, b, COUNT(*) FROM t GROUP BY GROUPING SETS "
                  "((a), (b))")
                  .ValueOrDie();
  EXPECT_FALSE(PlanGroupBy(stmt).ok());  // wrong planner
  auto q = PlanGroupingSets(stmt).ValueOrDie();
  EXPECT_EQ(q.grouping_sets.size(), 2u);
  EXPECT_EQ(q.aggregates.size(), 1u);
}

TEST(InputQueryTest, ParsesSelectStar) {
  auto q = ParseInputQuery("SELECT * FROM sales").ValueOrDie();
  EXPECT_EQ(q.table, "sales");
  EXPECT_TRUE(q.selection == nullptr);
}

TEST(InputQueryTest, ParsesWhere) {
  auto q = ParseInputQuery(
               "SELECT * FROM sales WHERE product = 'Laserwave' AND m > 3")
               .ValueOrDie();
  EXPECT_EQ(q.table, "sales");
  ASSERT_TRUE(q.selection != nullptr);
  EXPECT_EQ(q.selection->ToSql(), "(product = 'Laserwave' AND m > 3)");
}

TEST(InputQueryTest, RejectsNonStar) {
  EXPECT_FALSE(ParseInputQuery("SELECT a FROM t").ok());
  EXPECT_FALSE(ParseInputQuery("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseInputQuery("SELECT * FROM t junk").ok());
}

// Round-trip property: printing an executable query and re-parsing it plans
// back to a query with identical SQL.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParseIsStable) {
  std::string sql = GetParam();
  auto stmt = ParseSelect(sql).ValueOrDie();
  std::string printed = stmt.ToSql();
  auto reparsed = ParseSelect(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(reparsed->ToSql(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Dialect, RoundTripTest,
    ::testing::Values(
        "SELECT d, SUM(m1) FROM t GROUP BY d",
        "SELECT d, SUM(m1) AS s, COUNT(*) AS n FROM t WHERE e = 'x' GROUP "
        "BY d",
        "SELECT d, SUM(m1) FILTER (WHERE e = 'x') AS tgt, SUM(m1) AS cmp "
        "FROM t GROUP BY d",
        "SELECT d, e, AVG(m2) FROM t GROUP BY GROUPING SETS ((d), (e))",
        "SELECT d, MIN(m1) FROM t TABLESAMPLE BERNOULLI (10) GROUP BY d",
        "SELECT d, MAX(m1) FROM t WHERE m1 BETWEEN 1 AND 4 GROUP BY d",
        "SELECT d, COUNT(m1) FROM t WHERE d IN ('a', 'b') OR NOT (e = 'x') "
        "GROUP BY d"));

TEST(PrinterTest, ToStatementRoundTripsGroupByQuery) {
  GroupByQuery q;
  q.table = "t";
  q.where = PredicatePtr(Eq("e", Value("x")));
  q.group_by = {"d"};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1", "s")};
  SelectStatement stmt = ToStatement(q);
  EXPECT_EQ(stmt.ToSql(), q.ToSql());
}

TEST(PrinterTest, PrettyPrintMultiline) {
  auto stmt = ParseSelect("SELECT d, SUM(m1) FROM t WHERE e = 'x' GROUP BY d")
                  .ValueOrDie();
  std::string pretty = PrettyPrint(stmt);
  EXPECT_NE(pretty.find("\nFROM t"), std::string::npos);
  EXPECT_NE(pretty.find("\nWHERE e = 'x'"), std::string::npos);
  EXPECT_NE(pretty.find("\nGROUP BY d"), std::string::npos);
}

// Executable round trip: run original and printed SQL, same results.
TEST(RoundTripExecutionTest, PrintedSqlExecutesIdentically) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", ::seedb::testing::MakeTinyTable()).ok());
  Engine engine(&catalog);
  std::string sql =
      "SELECT d, SUM(m1) FILTER (WHERE e = 'x') AS tgt, SUM(m1) AS cmp "
      "FROM t WHERE m1 < 6 GROUP BY d";
  auto stmt = ParseSelect(sql).ValueOrDie();
  auto direct = engine.ExecuteSql(sql).ValueOrDie();
  auto printed = engine.ExecuteSql(stmt.ToSql()).ValueOrDie();
  ASSERT_EQ(direct.num_rows(), printed.num_rows());
  for (size_t r = 0; r < direct.num_rows(); ++r) {
    for (size_t c = 0; c < direct.num_columns(); ++c) {
      EXPECT_EQ(direct.ValueAt(r, c), printed.ValueAt(r, c));
    }
  }
}

}  // namespace
}  // namespace seedb::db::sql
