#include "db/scan_cache.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "db/catalog.h"
#include "db/engine.h"
#include "db/predicate.h"
#include "db/shared_scan.h"

namespace seedb::db {
namespace {

using ::seedb::testing::MakeTinyTable;

// -- Literal normalization ---------------------------------------------------

TEST(NormalizedValueKeyTest, NumericSpellingsCollapse) {
  // `1` vs `1.0`: equal as doubles, and the engine compares in the double
  // domain, so they must share one key.
  EXPECT_EQ(NormalizedValueKey(Value(static_cast<int64_t>(1))),
            NormalizedValueKey(Value(1.0)));
  // IEEE -0.0 == +0.0 selects the same rows.
  EXPECT_EQ(NormalizedValueKey(Value(0.0)), NormalizedValueKey(Value(-0.0)));
  EXPECT_EQ(NormalizedValueKey(Value(static_cast<int64_t>(0))),
            NormalizedValueKey(Value(-0.0)));
}

TEST(NormalizedValueKeyTest, DistinctValuesAndTypesStayDistinct) {
  EXPECT_NE(NormalizedValueKey(Value(1.0)), NormalizedValueKey(Value(2.0)));
  EXPECT_NE(NormalizedValueKey(Value(1.0)), NormalizedValueKey(Value(1.5)));
  // The string "1" never collides with the number 1.
  EXPECT_NE(NormalizedValueKey(Value("1")),
            NormalizedValueKey(Value(static_cast<int64_t>(1))));
  EXPECT_NE(NormalizedValueKey(Value()), NormalizedValueKey(Value(0.0)));
  EXPECT_NE(NormalizedValueKey(Value()), NormalizedValueKey(Value("")));
}

TEST(PredicateFingerprintTest, EqualSpellingsShareFingerprint) {
  Table t = MakeTinyTable();
  ComparisonPredicate as_int("m1", CompareOp::kEq, Value(static_cast<int64_t>(1)));
  ComparisonPredicate as_double("m1", CompareOp::kEq, Value(1.0));
  EXPECT_EQ(PredicateFingerprint(&as_int, t.schema()),
            PredicateFingerprint(&as_double, t.schema()));

  ComparisonPredicate pos_zero("m1", CompareOp::kGt, Value(0.0));
  ComparisonPredicate neg_zero("m1", CompareOp::kGt, Value(-0.0));
  EXPECT_EQ(PredicateFingerprint(&pos_zero, t.schema()),
            PredicateFingerprint(&neg_zero, t.schema()));
}

TEST(PredicateFingerprintTest, TypesAndColumnsNeverCollide) {
  Table t = MakeTinyTable();
  // Same column, string literal vs numeric literal.
  ComparisonPredicate str("d", CompareOp::kEq, Value("1"));
  ComparisonPredicate num("d", CompareOp::kEq, Value(static_cast<int64_t>(1)));
  EXPECT_NE(PredicateFingerprint(&str, t.schema()),
            PredicateFingerprint(&num, t.schema()));

  // Same literal, different columns (d vs e) or different ops.
  ComparisonPredicate on_d("d", CompareOp::kEq, Value("a"));
  ComparisonPredicate on_e("e", CompareOp::kEq, Value("a"));
  EXPECT_NE(PredicateFingerprint(&on_d, t.schema()),
            PredicateFingerprint(&on_e, t.schema()));
  ComparisonPredicate ge("m1", CompareOp::kGe, Value(1.0));
  ComparisonPredicate gt("m1", CompareOp::kGt, Value(1.0));
  EXPECT_NE(PredicateFingerprint(&ge, t.schema()),
            PredicateFingerprint(&gt, t.schema()));

  // Same column name backed by different physical types on two tables.
  Schema int_schema({ColumnDef::Measure("x", ValueType::kInt64)});
  Schema dbl_schema({ColumnDef::Measure("x", ValueType::kDouble)});
  ComparisonPredicate on_x("x", CompareOp::kEq, Value(1.0));
  EXPECT_NE(PredicateFingerprint(&on_x, int_schema),
            PredicateFingerprint(&on_x, dbl_schema));
}

TEST(PredicateFingerprintTest, NullAndCompoundPredicates) {
  Table t = MakeTinyTable();
  EXPECT_EQ(PredicateFingerprint(nullptr, t.schema()), "*");
  // Non-comparison predicates stay total via the SQL rendering fallback.
  auto between = Between("m1", Value(1.0), Value(3.0));
  std::string fp = PredicateFingerprint(between.get(), t.schema());
  EXPECT_EQ(fp.rfind("sql:", 0), 0u) << fp;
}

// -- Cache key ---------------------------------------------------------------

GroupingSetsQuery TinyQuery(PredicatePtr where = nullptr) {
  GroupingSetsQuery q;
  q.table = "t";
  q.where = std::move(where);
  q.grouping_sets = {{"d"}, {"e"}};
  q.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m1")};
  return q;
}

TEST(PartialAggCacheKeyTest, VersionSetAndSpellingSemantics) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q1 = TinyQuery(PredicatePtr(Eq("m1", Value(1.0))));
  GroupingSetsQuery q2 =
      TinyQuery(PredicatePtr(Eq("m1", Value(static_cast<int64_t>(1)))));

  // Differently spelled but equal literals: one key.
  EXPECT_EQ(PartialAggCacheKey(t, 1, q1, 0), PartialAggCacheKey(t, 1, q2, 0));
  // Grouping sets and table versions partition the key space.
  EXPECT_NE(PartialAggCacheKey(t, 1, q1, 0), PartialAggCacheKey(t, 1, q1, 1));
  EXPECT_NE(PartialAggCacheKey(t, 1, q1, 0), PartialAggCacheKey(t, 2, q1, 0));

  // A FILTER on an aggregate changes the key; the aggregate *function* does
  // not (AggState carries every function's accumulators).
  GroupingSetsQuery filtered = q1;
  filtered.aggregates[0].filter = PredicatePtr(Eq("d", Value("a")));
  EXPECT_NE(PartialAggCacheKey(t, 1, q1, 0),
            PartialAggCacheKey(t, 1, filtered, 0));
  GroupingSetsQuery avg = q1;
  avg.aggregates[0].func = AggregateFunction::kAvg;
  EXPECT_EQ(PartialAggCacheKey(t, 1, q1, 0), PartialAggCacheKey(t, 1, avg, 0));

  // Sampling configuration participates too.
  GroupingSetsQuery sampled = q1;
  sampled.sample_fraction = 0.5;
  sampled.sample_seed = 7;
  EXPECT_NE(PartialAggCacheKey(t, 1, q1, 0),
            PartialAggCacheKey(t, 1, sampled, 0));
}

// -- LRU cache mechanics -----------------------------------------------------

CachedPartialAgg EntryOfBytes(size_t bytes) {
  CachedPartialAgg e;
  e.bytes = bytes;
  return e;
}

TEST(PartialAggCacheTest, HitMissAndLruEviction) {
  PartialAggCache cache(100);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", EntryOfBytes(40));
  cache.Insert("b", EntryOfBytes(40));
  EXPECT_NE(cache.Lookup("a"), nullptr);  // a is now most recent
  cache.Insert("c", EntryOfBytes(40));    // over budget: evicts b, not a
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);

  ScanCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 80u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(PartialAggCacheTest, OversizedEntryRefusedReplacementAccounted) {
  PartialAggCache cache(100);
  cache.Insert("big", EntryOfBytes(101));  // larger than the whole budget
  EXPECT_EQ(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);

  cache.Insert("k", EntryOfBytes(30));
  cache.Insert("k", EntryOfBytes(60));  // replacement, not accumulation
  ScanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 60u);
}

TEST(PartialAggCacheTest, EvictedEntryStaysReadableThroughSharedPtr) {
  PartialAggCache cache(64);
  CachedPartialAgg e;
  e.rep_row = {1, 2, 3};
  e.bytes = 64;
  cache.Insert("a", std::move(e));
  std::shared_ptr<const CachedPartialAgg> held = cache.Lookup("a");
  ASSERT_NE(held, nullptr);
  cache.Insert("b", EntryOfBytes(64));  // evicts a
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(held->rep_row.size(), 3u);  // adopter unaffected by eviction
}

TEST(PartialAggCacheTest, UtilityPriors) {
  PartialAggCache cache(100);
  double u = 0;
  uint64_t w = 0;
  EXPECT_FALSE(cache.LookupUtilityPrior("k", &u, &w));
  cache.PutUtilityPrior("k", 0.75, 10);
  ASSERT_TRUE(cache.LookupUtilityPrior("k", &u, &w));
  EXPECT_DOUBLE_EQ(u, 0.75);
  EXPECT_EQ(w, 10u);
  cache.PutUtilityPrior("k", 0.25, 4);  // overwrite
  ASSERT_TRUE(cache.LookupUtilityPrior("k", &u, &w));
  EXPECT_DOUBLE_EQ(u, 0.25);
  EXPECT_EQ(w, 4u);
}

// -- Shared-scan integration -------------------------------------------------

// Two queries whose row filters differ only in literal spelling must share
// one selection recipe — hence one SelectionVector per morsel — and, through
// the engine cache, one cache entry.
TEST(ScanCacheIntegrationTest, EqualSpellingsShareRecipeAndEntry) {
  Table t = MakeTinyTable();
  GroupingSetsQuery q1 = TinyQuery(PredicatePtr(Gt("m1", Value(0.0))));
  GroupingSetsQuery q2 = TinyQuery(PredicatePtr(Gt("m1", Value(-0.0))));
  GroupingSetsQuery q3 =
      TinyQuery(PredicatePtr(Gt("m1", Value(static_cast<int64_t>(0)))));

  SharedScanStats stats;
  auto r = ExecuteSharedScan(t, {q1, q2, q3}, SharedScanOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.selection_recipes, 1u);

  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", MakeTinyTable()).ok());
  Engine engine(&catalog);
  engine.EnableResultCache(1 << 20);
  ASSERT_TRUE(engine.ExecuteShared({q1}).ok());
  // One entry per grouping set of q1; q2/q3 resolve to the same keys.
  EXPECT_EQ(engine.result_cache()->stats().entries, 2u);
  ASSERT_TRUE(engine.ExecuteShared({q2, q3}).ok());
  EXPECT_EQ(engine.result_cache()->stats().entries, 2u);
  EngineStatsSnapshot snap = engine.stats();
  EXPECT_EQ(snap.cache_misses, 2u);  // q1's two sets, cold
  EXPECT_EQ(snap.cache_hits, 4u);    // q2 and q3, two sets each
}

// Distinct literal *types* (string "1" vs number 1) must produce distinct
// cache keys even when the spelling matches — and at the engine level,
// distinct literal values must produce disjoint entries.
TEST(ScanCacheIntegrationTest, DifferentTypesAndValuesNeverShareEntries) {
  Table t = MakeTinyTable();
  GroupingSetsQuery as_str = TinyQuery(PredicatePtr(Eq("d", Value("1"))));
  GroupingSetsQuery as_num =
      TinyQuery(PredicatePtr(Eq("d", Value(static_cast<int64_t>(1)))));
  EXPECT_NE(PartialAggCacheKey(t, 1, as_str, 0),
            PartialAggCacheKey(t, 1, as_num, 0));

  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", MakeTinyTable()).ok());
  Engine engine(&catalog);
  engine.EnableResultCache(1 << 20);
  GroupingSetsQuery on_a = TinyQuery(PredicatePtr(Eq("d", Value("a"))));
  GroupingSetsQuery on_b = TinyQuery(PredicatePtr(Eq("d", Value("b"))));
  ASSERT_TRUE(engine.ExecuteShared({on_a}).ok());
  ASSERT_TRUE(engine.ExecuteShared({on_b}).ok());
  EngineStatsSnapshot snap = engine.stats();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 4u);
  EXPECT_EQ(engine.result_cache()->stats().entries, 4u);
}

TEST(ScanCacheIntegrationTest, WarmRunAdoptsWithoutScanning) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", MakeTinyTable()).ok());
  Engine engine(&catalog);
  engine.EnableResultCache(1 << 20);
  GroupingSetsQuery q = TinyQuery(PredicatePtr(Eq("d", Value("a"))));

  auto cold = engine.ExecuteShared({q});
  ASSERT_TRUE(cold.ok());
  engine.ResetStats();
  auto warm = engine.ExecuteShared({q});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(engine.stats().rows_scanned, 0u);  // fully adopted: no scan

  // Bit-identical results, not approximately equal.
  ASSERT_EQ(warm->size(), cold->size());
  for (size_t qi = 0; qi < cold->size(); ++qi) {
    ASSERT_EQ((*warm)[qi].size(), (*cold)[qi].size());
    for (size_t s = 0; s < (*cold)[qi].size(); ++s) {
      const Table& a = (*cold)[qi][s];
      const Table& b = (*warm)[qi][s];
      ASSERT_EQ(a.num_rows(), b.num_rows());
      ASSERT_EQ(a.num_columns(), b.num_columns());
      for (size_t r = 0; r < a.num_rows(); ++r) {
        for (size_t c = 0; c < a.num_columns(); ++c) {
          EXPECT_EQ(a.ValueAt(r, c), b.ValueAt(r, c))
              << "q" << qi << " set " << s << " row " << r << " col " << c;
        }
      }
    }
  }
}

TEST(ScanCacheIntegrationTest, TableReplaceInvalidatesEntries) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable("t", MakeTinyTable()).ok());
  Engine engine(&catalog);
  engine.EnableResultCache(1 << 20);
  GroupingSetsQuery q = TinyQuery();
  ASSERT_TRUE(engine.ExecuteShared({q}).ok());
  EXPECT_EQ(engine.stats().cache_misses, 2u);

  // Replacing the table bumps its version: old entries are unreachable.
  catalog.PutTable("t", MakeTinyTable());
  engine.ResetStats();
  ASSERT_TRUE(engine.ExecuteShared({q}).ok());
  EngineStatsSnapshot snap = engine.stats();
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 2u);
  EXPECT_GT(snap.rows_scanned, 0u);
}

}  // namespace
}  // namespace seedb::db
