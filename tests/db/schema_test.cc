#include "db/schema.h"

#include <gtest/gtest.h>

namespace seedb::db {
namespace {

Schema MakeSchema() {
  return Schema({
      ColumnDef::Dimension("region"),
      ColumnDef::Dimension("product"),
      ColumnDef::Measure("sales"),
      ColumnDef::Measure("profit"),
      ColumnDef::Other("order_id", ValueType::kInt64),
  });
}

TEST(SchemaTest, ConstructionAndLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 5u);
  EXPECT_EQ(s.FindColumn("region").ValueOrDie(), 0u);
  EXPECT_EQ(s.FindColumn("profit").ValueOrDie(), 3u);
  EXPECT_FALSE(s.FindColumn("missing").ok());
  EXPECT_TRUE(s.HasColumn("sales"));
  EXPECT_FALSE(s.HasColumn("Sales"));  // case-sensitive
}

TEST(SchemaTest, RolesFilter) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.DimensionColumns(),
            (std::vector<std::string>{"region", "product"}));
  EXPECT_EQ(s.MeasureColumns(), (std::vector<std::string>{"sales", "profit"}));
  EXPECT_EQ(s.ColumnsWithRole(ColumnRole::kOther),
            (std::vector<std::string>{"order_id"}));
}

TEST(SchemaTest, DefaultTypes) {
  ColumnDef dim = ColumnDef::Dimension("d");
  EXPECT_EQ(dim.type, ValueType::kString);
  EXPECT_EQ(dim.role, ColumnRole::kDimension);
  ColumnDef m = ColumnDef::Measure("m");
  EXPECT_EQ(m.type, ValueType::kDouble);
  EXPECT_EQ(m.role, ColumnRole::kMeasure);
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddColumn(ColumnDef::Dimension("a")).ok());
  Status dup = s.AddColumn(ColumnDef::Measure("a"));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.num_columns(), 1u);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(MakeSchema(), MakeSchema());
  Schema other({ColumnDef::Dimension("x")});
  EXPECT_FALSE(MakeSchema() == other);
}

TEST(SchemaTest, ToStringShowsTypesAndRoles) {
  Schema s({ColumnDef::Dimension("a"), ColumnDef::Measure("m")});
  std::string str = s.ToString();
  EXPECT_NE(str.find("a STRING [dimension]"), std::string::npos);
  EXPECT_NE(str.find("m DOUBLE [measure]"), std::string::npos);
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_columns(), 0u);
  EXPECT_TRUE(s.DimensionColumns().empty());
  EXPECT_FALSE(s.FindColumn("x").ok());
}

TEST(ColumnRoleTest, Names) {
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kDimension), "dimension");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kMeasure), "measure");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kOther), "other");
}

}  // namespace
}  // namespace seedb::db
