// Vectorized-vs-hash equivalence: the dense kernel path of the fused scan
// (db/vec/) must produce BIT-identical results to the hash fallback across
// a seeded matrix of nulls x dictionary shapes x multi-attribute group-bys
// x morsel boundaries. Not "close" — identical: both paths accumulate and
// merge in the same float order by construction, and this suite is the pin
// that keeps that true.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "db/grouping_sets.h"
#include "db/predicate.h"
#include "db/shared_scan.h"
#include "db/table.h"
#include "db/vec/simd/simd.h"
#include "util/random.h"

namespace seedb::db {
namespace {

// Seeded table: three string dimensions (one with nulls — including rows
// whose dictionary code would be 0 — one with a wide dictionary), an int64
// measure with nulls, and a double measure. Values are deterministic per
// seed so failures reproduce.
Table MakeMatrixTable(uint64_t seed, size_t rows) {
  Schema schema({
      ColumnDef::Dimension("d_small"),
      ColumnDef::Dimension("d_nullable"),
      ColumnDef::Dimension("d_wide"),
      ColumnDef::Measure("m_int", ValueType::kInt64),
      ColumnDef::Measure("m_double"),
  });
  Table table(schema);
  Random rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.emplace_back("s" + std::to_string(rng.UniformInt(0, 3)));
    // ~20% nulls; "n0" interns at dictionary code 0, so null-vs-code-0
    // disambiguation is actually exercised.
    if (rng.Bernoulli(0.2)) {
      row.emplace_back();
    } else {
      row.emplace_back("n" + std::to_string(rng.UniformInt(0, 4)));
    }
    row.emplace_back("w" + std::to_string(rng.UniformInt(0, 40)));
    if (rng.Bernoulli(0.15)) {
      row.emplace_back();
    } else {
      row.emplace_back(static_cast<int64_t>(rng.UniformInt(-50, 50)));
    }
    row.emplace_back(rng.UniformDouble(-50.0, 50.0));
    EXPECT_TRUE(table.AppendRow(row).ok());
  }
  return table;
}

std::vector<GroupingSetsQuery> MatrixQueries() {
  std::vector<GroupingSetsQuery> queries;

  GroupingSetsQuery plain;
  plain.table = "t";
  plain.grouping_sets = {{"d_small"}, {"d_nullable"}, {}};
  plain.aggregates = {
      AggregateSpec::Count(),
      AggregateSpec::Make(AggregateFunction::kCount, "m_int"),
      AggregateSpec::Make(AggregateFunction::kSum, "m_int"),
      AggregateSpec::Make(AggregateFunction::kAvg, "m_double"),
      AggregateSpec::Make(AggregateFunction::kMin, "m_double"),
      AggregateSpec::Make(AggregateFunction::kMax, "m_int"),
  };
  queries.push_back(plain);

  GroupingSetsQuery filtered;
  filtered.table = "t";
  filtered.where = PredicatePtr(Gt("m_double", Value(-20.0)));
  filtered.grouping_sets = {{"d_nullable", "d_small"}, {"d_wide"}};
  filtered.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m_double"),
      AggregateSpec::Make(AggregateFunction::kSum, "m_int", "t_half",
                          PredicatePtr(Eq("d_small", Value("s1")))),
  };
  queries.push_back(filtered);

  GroupingSetsQuery multi;
  multi.table = "t";
  multi.where = PredicatePtr(Ne("d_wide", Value("w7")));
  multi.grouping_sets = {{"d_small", "d_nullable", "d_wide"}};
  multi.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m_double"),
      AggregateSpec::Count(),
  };
  queries.push_back(multi);

  GroupingSetsQuery sampled;
  sampled.table = "t";
  sampled.grouping_sets = {{"d_nullable"}};
  sampled.aggregates = {AggregateSpec::Make(AggregateFunction::kSum, "m_int")};
  sampled.sample_fraction = 0.6;
  sampled.sample_seed = 17;
  queries.push_back(sampled);

  // int64-column WHERE: fuses to the typed int64 compare recipe on the
  // vectorized path (the literal is integral and small, so the int64-domain
  // compare provably matches EvaluateMask's double-domain semantics).
  GroupingSetsQuery int_where;
  int_where.table = "t";
  int_where.where = PredicatePtr(Ge("m_int", Value(static_cast<int64_t>(3))));
  int_where.grouping_sets = {{"d_small"}, {}};
  int_where.aggregates = {
      AggregateSpec::Count(),
      AggregateSpec::Make(AggregateFunction::kSum, "m_double"),
  };
  queries.push_back(int_where);

  // Sampled AND filtered: the fused compare must Refine by the sample mask
  // after the compare, matching the combined-mask path exactly.
  GroupingSetsQuery sampled_where;
  sampled_where.table = "t";
  sampled_where.where = PredicatePtr(Lt("m_double", Value(10.0)));
  sampled_where.grouping_sets = {{"d_small", "d_nullable"}};
  sampled_where.aggregates = {
      AggregateSpec::Make(AggregateFunction::kSum, "m_int")};
  sampled_where.sample_fraction = 0.5;
  sampled_where.sample_seed = 23;
  queries.push_back(sampled_where);

  return queries;
}

// Bit-exact table comparison: doubles compare by ==, not by tolerance.
void ExpectTablesBitIdentical(const Table& got, const Table& want,
                              const std::string& label) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << label;
  ASSERT_EQ(got.num_columns(), want.num_columns()) << label;
  for (size_t r = 0; r < got.num_rows(); ++r) {
    for (size_t c = 0; c < got.num_columns(); ++c) {
      EXPECT_EQ(got.ValueAt(r, c), want.ValueAt(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

class VecEquivalenceTest : public ::testing::TestWithParam<
                               std::tuple<uint64_t, size_t, size_t>> {};

TEST_P(VecEquivalenceTest, VectorizedMatchesHashBitForBit) {
  const auto [seed, rows, morsel_rows] = GetParam();
  Table table = MakeMatrixTable(seed, rows);
  std::vector<GroupingSetsQuery> queries = MatrixQueries();

  SharedScanOptions vec_options;
  vec_options.num_threads = 1;
  vec_options.morsel_rows = morsel_rows;
  vec_options.enable_vectorized = true;

  SharedScanOptions hash_options = vec_options;
  hash_options.enable_vectorized = false;

  SharedScanStats vec_stats, hash_stats;
  auto vec = ExecuteSharedScan(table, queries, vec_options, &vec_stats);
  auto hash = ExecuteSharedScan(table, queries, hash_options, &hash_stats);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();

  // The fast path must actually engage (and never when disabled).
  EXPECT_GT(vec_stats.vectorized_morsels, 0u);
  EXPECT_EQ(vec_stats.vectorized_morsels, vec_stats.morsels);
  EXPECT_EQ(hash_stats.vectorized_morsels, 0u);

  ASSERT_EQ(vec->size(), hash->size());
  for (size_t q = 0; q < vec->size(); ++q) {
    ASSERT_EQ((*vec)[q].size(), (*hash)[q].size()) << "query " << q;
    for (size_t s = 0; s < (*vec)[q].size(); ++s) {
      ExpectTablesBitIdentical((*vec)[q][s], (*hash)[q][s],
                               "query " + std::to_string(q) + " set " +
                                   std::to_string(s));
    }
  }
}

// Morsel sizes straddle group/null runs every which way: 7 leaves nulls
// split across many tiny morsels, 256/1000 exercise partial tail morsels,
// 0 = adaptive sizing.
INSTANTIATE_TEST_SUITE_P(
    SeededMatrix, VecEquivalenceTest,
    ::testing::Values(std::make_tuple(uint64_t{1}, size_t{997}, size_t{7}),
                      std::make_tuple(uint64_t{2}, size_t{2048}, size_t{256}),
                      std::make_tuple(uint64_t{3}, size_t{3001}, size_t{1000}),
                      std::make_tuple(uint64_t{4}, size_t{512}, size_t{0})));

// Multi-threaded runs must agree with the single-threaded ones exactly for
// a fixed morsel grid... they cannot in general (merge order follows worker
// assignment), but vectorized and hash paths under the SAME thread count
// and morsel grid see identical worker-to-morsel assignment only when
// threads = 1. What CAN be pinned for threads > 1 is vec-vs-hash value
// equality within the usual float tolerance; do that here so the
// multi-threaded integration is still covered.
TEST(VecEquivalenceThreadedTest, VectorizedMatchesHashWithinUlps) {
  Table table = MakeMatrixTable(11, 4096);
  std::vector<GroupingSetsQuery> queries = MatrixQueries();

  SharedScanOptions vec_options;
  vec_options.num_threads = 4;
  vec_options.morsel_rows = 128;
  vec_options.enable_vectorized = true;
  SharedScanOptions hash_options = vec_options;
  hash_options.enable_vectorized = false;

  auto vec = ExecuteSharedScan(table, queries, vec_options, nullptr);
  auto hash = ExecuteSharedScan(table, queries, hash_options, nullptr);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  for (size_t q = 0; q < vec->size(); ++q) {
    for (size_t s = 0; s < (*vec)[q].size(); ++s) {
      const Table& g = (*vec)[q][s];
      const Table& w = (*hash)[q][s];
      ASSERT_EQ(g.num_rows(), w.num_rows());
      for (size_t r = 0; r < g.num_rows(); ++r) {
        for (size_t c = 0; c < g.num_columns(); ++c) {
          Value gv = g.ValueAt(r, c);
          Value wv = w.ValueAt(r, c);
          if (gv.type() == ValueType::kDouble) {
            EXPECT_NEAR(gv.ToDouble().ValueOrDie(),
                        wv.ToDouble().ValueOrDie(),
                        1e-9 + 1e-12 * std::abs(wv.ToDouble().ValueOrDie()))
                << "query " << q << " set " << s << " row " << r;
          } else {
            EXPECT_EQ(gv, wv);
          }
        }
      }
    }
  }
}

// Shrinking the slot budget to 1 forces every non-global set onto the hash
// path — the fallback trigger — and results must be unchanged.
TEST(VecEquivalenceTest, SlotBudgetFallbackStaysCorrect) {
  Table table = MakeMatrixTable(5, 1500);
  std::vector<GroupingSetsQuery> queries = MatrixQueries();

  SharedScanOptions tiny;
  tiny.num_threads = 1;
  tiny.morsel_rows = 97;
  tiny.dense_slot_budget = 1;

  SharedScanOptions full = tiny;
  full.dense_slot_budget = SharedScanOptions{}.dense_slot_budget;

  SharedScanStats tiny_stats;
  auto constrained = ExecuteSharedScan(table, queries, tiny, &tiny_stats);
  auto normal = ExecuteSharedScan(table, queries, full, nullptr);
  ASSERT_TRUE(constrained.ok()) << constrained.status().ToString();
  ASSERT_TRUE(normal.ok()) << normal.status().ToString();
  // The empty grouping set (global aggregate, 1 slot) still vectorizes.
  EXPECT_GT(tiny_stats.vectorized_morsels, 0u);
  for (size_t q = 0; q < constrained->size(); ++q) {
    for (size_t s = 0; s < (*constrained)[q].size(); ++s) {
      ExpectTablesBitIdentical((*constrained)[q][s], (*normal)[q][s],
                               "query " + std::to_string(q) + " set " +
                                   std::to_string(s));
    }
  }
}

// The explicit-SIMD tier is a third leg of the equivalence matrix: with the
// tier enabled, disabled, and the whole vectorized path off, results must
// be BIT-identical — the simd kernels share the scalar kernels' exact
// accumulation order by construction, and this is the pin.
TEST(VecEquivalenceTest, SimdTierMatchesScalarTierBitForBit) {
  Table table = MakeMatrixTable(7, 2500);
  std::vector<GroupingSetsQuery> queries = MatrixQueries();

  SharedScanOptions simd_on;
  simd_on.num_threads = 1;
  simd_on.morsel_rows = 333;  // partial tail morsel
  simd_on.enable_simd = true;

  SharedScanOptions simd_off = simd_on;
  simd_off.enable_simd = false;

  SharedScanOptions hash = simd_on;
  hash.enable_vectorized = false;

  SharedScanStats on_stats, off_stats, hash_stats;
  auto with_simd = ExecuteSharedScan(table, queries, simd_on, &on_stats);
  auto without = ExecuteSharedScan(table, queries, simd_off, &off_stats);
  auto hashed = ExecuteSharedScan(table, queries, hash, &hash_stats);
  ASSERT_TRUE(with_simd.ok()) << with_simd.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();

  // The tier engages on every vectorized morsel when the build and CPU
  // support it, never when switched off (and never on the hash path).
  if (vec::simd::Available()) {
    EXPECT_EQ(on_stats.simd_morsels, on_stats.morsels);
    EXPECT_GT(on_stats.simd_morsels, 0u);
  } else {
    EXPECT_EQ(on_stats.simd_morsels, 0u);
  }
  EXPECT_EQ(off_stats.simd_morsels, 0u);
  EXPECT_EQ(hash_stats.simd_morsels, 0u);

  ASSERT_EQ(with_simd->size(), without->size());
  for (size_t q = 0; q < with_simd->size(); ++q) {
    for (size_t s = 0; s < (*with_simd)[q].size(); ++s) {
      const std::string label =
          "query " + std::to_string(q) + " set " + std::to_string(s);
      ExpectTablesBitIdentical((*with_simd)[q][s], (*without)[q][s],
                               label + " (simd vs scalar tier)");
      ExpectTablesBitIdentical((*with_simd)[q][s], (*hashed)[q][s],
                               label + " (simd vs hash)");
    }
  }
}

// Slab reuse across phases: a two-phase run must allocate each worker's
// dense slabs exactly once — the second phase reuses them via the
// capacity-preserving Reset instead of reallocating.
TEST(VecEquivalenceTest, PhasedRunAllocatesWorkerSlabsOnce) {
  Table table = MakeMatrixTable(9, 2000);
  std::vector<GroupingSetsQuery> queries = MatrixQueries();

  SharedScanOptions options;
  options.num_threads = 1;
  options.morsel_rows = 128;
  auto scan = SharedScanState::Create(table, queries, options);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();

  ASSERT_TRUE(scan->RunPhase(0, 1000).ok());
  const size_t after_one = scan->stats().agg_slab_allocations;
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(scan->RunPhase(1000, 2000).ok());
  EXPECT_EQ(scan->stats().agg_slab_allocations, after_one)
      << "second phase must reuse the first phase's slabs";

  // One allocation per (query, vectorized set) for the single worker.
  size_t vec_sets = 0;
  SharedScanOptions probe_opts = options;
  {
    SharedScanStats stats;
    auto probe = ExecuteSharedScan(table, queries, probe_opts, &stats);
    ASSERT_TRUE(probe.ok());
    vec_sets = stats.agg_slab_allocations;
  }
  EXPECT_EQ(after_one, vec_sets);

  // And the reused-slab results still match a hash-path run with the SAME
  // phase structure bit for bit (phased vs one-shot may differ by float
  // reassociation at the phase boundary — that is documented — but vec vs
  // hash under identical phases must not).
  auto phased = scan->FinalResults();
  ASSERT_TRUE(phased.ok());
  SharedScanOptions hash_options = options;
  hash_options.enable_vectorized = false;
  auto hash_scan = SharedScanState::Create(table, queries, hash_options);
  ASSERT_TRUE(hash_scan.ok());
  ASSERT_TRUE(hash_scan->RunPhase(0, 1000).ok());
  ASSERT_TRUE(hash_scan->RunPhase(1000, 2000).ok());
  auto hash_results = hash_scan->FinalResults();
  ASSERT_TRUE(hash_results.ok());
  for (size_t q = 0; q < phased->size(); ++q) {
    for (size_t s = 0; s < (*phased)[q].size(); ++s) {
      ExpectTablesBitIdentical((*phased)[q][s], (*hash_results)[q][s],
                               "phased query " + std::to_string(q) + " set " +
                                   std::to_string(s));
    }
  }
}

// Null-mask aggregation at morsel granularity: a morsel consisting entirely
// of null measures (and null dimensions) must create the right groups with
// empty accumulators, and null runs straddling a morsel boundary must not
// double- or under-count — with morsel_rows = 4 the 12-row layout below
// puts an all-null morsel in the middle and splits a null run across the
// second boundary.
TEST(VecEquivalenceTest, AllNullMorselAndStraddlingNullRuns) {
  Schema schema({
      ColumnDef::Dimension("d"),
      ColumnDef::Measure("m"),
  });
  Table table(schema);
  // Rows 0-3: normal. Rows 4-7: all null (both columns). Rows 8-9 null,
  // 10-11 normal — the null run crosses the morsel boundary at row 8.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table.AppendRow({Value("a"), Value(1.0 + i)}).ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table.AppendRow({Value(), Value()}).ok());
  }
  ASSERT_TRUE(table.AppendRow({Value("b"), Value()}).ok());
  ASSERT_TRUE(table.AppendRow({Value(), Value(5.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value("b"), Value(7.0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value("a"), Value(9.0)}).ok());

  GroupingSetsQuery query;
  query.table = "t";
  query.grouping_sets = {{"d"}, {}};
  query.aggregates = {
      AggregateSpec::Count(),
      AggregateSpec::Make(AggregateFunction::kCount, "m"),
      AggregateSpec::Make(AggregateFunction::kSum, "m"),
      AggregateSpec::Make(AggregateFunction::kMin, "m"),
  };

  SharedScanOptions options;
  options.num_threads = 1;
  options.morsel_rows = 4;
  SharedScanStats stats;
  auto got = ExecuteSharedScan(table, {query}, options, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.vectorized_morsels, 3u);

  SharedScanOptions hash_options = options;
  hash_options.enable_vectorized = false;
  auto hash = ExecuteSharedScan(table, {query}, hash_options, nullptr);
  ASSERT_TRUE(hash.ok());
  for (size_t s = 0; s < (*got)[0].size(); ++s) {
    ExpectTablesBitIdentical((*got)[0][s], (*hash)[0][s],
                             "set " + std::to_string(s));
  }

  // Spot-check the by-dimension set: keys sort null < "a" < "b".
  const Table& by_d = (*got)[0][0];
  ASSERT_EQ(by_d.num_rows(), 3u);
  EXPECT_TRUE(by_d.ValueAt(0, 0).is_null());
  EXPECT_EQ(by_d.ValueAt(0, 1), Value(5.0));  // COUNT(*): 4 all-null + row 9
  EXPECT_EQ(by_d.ValueAt(0, 2), Value(1.0));  // COUNT(m): only row 9
  EXPECT_EQ(by_d.ValueAt(0, 3), Value(5.0));  // SUM(m)
  EXPECT_EQ(by_d.ValueAt(1, 0), Value("a"));
  EXPECT_EQ(by_d.ValueAt(1, 1), Value(5.0));
  EXPECT_EQ(by_d.ValueAt(1, 3), Value(1.0 + 2.0 + 3.0 + 4.0 + 9.0));
  EXPECT_EQ(by_d.ValueAt(1, 4), Value(1.0));  // MIN(m)
  EXPECT_EQ(by_d.ValueAt(2, 0), Value("b"));
  EXPECT_EQ(by_d.ValueAt(2, 1), Value(2.0));
  EXPECT_EQ(by_d.ValueAt(2, 2), Value(1.0));  // row 8's m is null
}

}  // namespace
}  // namespace seedb::db
