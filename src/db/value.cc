#include "db/value.h"

#include "util/string_util.h"

namespace seedb::db {
namespace {

// Rank used to totally order values of different families: null < numeric <
// string.
int FamilyRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(data_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt64;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  return ValueType::kString;
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::InvalidArgument("cannot convert " +
                                     std::string(ValueTypeToString(type())) +
                                     " to double");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() != ValueType::kString) return ToString();
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    // Mixed int/double equality compares numerically.
    if (type() != other.type()) {
      return ToDouble().ValueOrDie() == other.ToDouble().ValueOrDie();
    }
  }
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  int ra = FamilyRank(*this);
  int rb = FamilyRank(other);
  if (ra != rb) return ra < rb;
  switch (type()) {
    case ValueType::kNull:
      return false;  // null == null
    case ValueType::kInt64:
    case ValueType::kDouble: {
      if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
        return AsInt64() < other.AsInt64();
      }
      return ToDouble().ValueOrDie() < other.ToDouble().ValueOrDie();
    }
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt64());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int64 counterparts so mixed-type
      // equality implies equal hashes.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

}  // namespace seedb::db
