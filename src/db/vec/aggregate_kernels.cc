#include "db/vec/aggregate_kernels.h"

namespace seedb::db::vec {
namespace {

// One instantiation per (filter, validity) presence: both predicates hoist
// out of the row loop. The per-row update IS AggState::Add /
// AddCountOnly (inlined from the header), so dense and hash paths stay
// bit-identical by construction, not by a hand-kept copy.
template <bool kFilter, bool kValid>
void CountLoopRange(const uint32_t* gids, size_t row_begin, size_t n,
                    const uint8_t* filter, const uint8_t* validity,
                    AggState* slab) {
  for (size_t k = 0; k < n; ++k) {
    const size_t row = row_begin + k;
    if (kFilter && !filter[row]) continue;
    if (kValid && !validity[row]) continue;
    slab[gids[k]].AddCountOnly();
  }
}

template <bool kFilter, bool kValid>
void CountLoopSel(const uint32_t* gids, const SelectionVector& sel,
                  const uint8_t* filter, const uint8_t* validity,
                  AggState* slab) {
  for (size_t k = 0; k < sel.size(); ++k) {
    const size_t row = sel[k];
    if (kFilter && !filter[row]) continue;
    if (kValid && !validity[row]) continue;
    slab[gids[k]].AddCountOnly();
  }
}

template <typename T, bool kFilter, bool kValid>
void AccumLoopRange(const uint32_t* gids, size_t row_begin, size_t n,
                    const T* data, const uint8_t* filter,
                    const uint8_t* validity, AggState* slab) {
  for (size_t k = 0; k < n; ++k) {
    const size_t row = row_begin + k;
    if (kFilter && !filter[row]) continue;
    if (kValid && !validity[row]) continue;
    slab[gids[k]].Add(static_cast<double>(data[row]));
  }
}

template <typename T, bool kFilter, bool kValid>
void AccumLoopSel(const uint32_t* gids, const SelectionVector& sel,
                  const T* data, const uint8_t* filter,
                  const uint8_t* validity, AggState* slab) {
  for (size_t k = 0; k < sel.size(); ++k) {
    const size_t row = sel[k];
    if (kFilter && !filter[row]) continue;
    if (kValid && !validity[row]) continue;
    slab[gids[k]].Add(static_cast<double>(data[row]));
  }
}

template <typename T>
void AccumRange(const uint32_t* gids, size_t row_begin, size_t n,
                const T* data, const uint8_t* filter, const uint8_t* validity,
                AggState* slab) {
  if (filter == nullptr && validity == nullptr) {
    AccumLoopRange<T, false, false>(gids, row_begin, n, data, filter,
                                    validity, slab);
  } else if (filter == nullptr) {
    AccumLoopRange<T, false, true>(gids, row_begin, n, data, filter, validity,
                                   slab);
  } else if (validity == nullptr) {
    AccumLoopRange<T, true, false>(gids, row_begin, n, data, filter, validity,
                                   slab);
  } else {
    AccumLoopRange<T, true, true>(gids, row_begin, n, data, filter, validity,
                                  slab);
  }
}

template <typename T>
void AccumSel(const uint32_t* gids, const SelectionVector& sel, const T* data,
              const uint8_t* filter, const uint8_t* validity, AggState* slab) {
  if (filter == nullptr && validity == nullptr) {
    AccumLoopSel<T, false, false>(gids, sel, data, filter, validity, slab);
  } else if (filter == nullptr) {
    AccumLoopSel<T, false, true>(gids, sel, data, filter, validity, slab);
  } else if (validity == nullptr) {
    AccumLoopSel<T, true, false>(gids, sel, data, filter, validity, slab);
  } else {
    AccumLoopSel<T, true, true>(gids, sel, data, filter, validity, slab);
  }
}

}  // namespace

void TouchGroupsRange(const uint32_t* gids, size_t row_begin, size_t n,
                      DenseAggTable* t) {
  for (size_t k = 0; k < n; ++k) {
    const uint32_t slot = gids[k];
    if (!t->seen[slot]) {
      t->seen[slot] = 1;
      t->touched.push_back(slot);
      t->rep_row.push_back(static_cast<uint32_t>(row_begin + k));
    }
  }
}

void TouchGroupsSel(const uint32_t* gids, const SelectionVector& sel,
                    DenseAggTable* t) {
  for (size_t k = 0; k < sel.size(); ++k) {
    const uint32_t slot = gids[k];
    if (!t->seen[slot]) {
      t->seen[slot] = 1;
      t->touched.push_back(slot);
      t->rep_row.push_back(sel[k]);
    }
  }
}

void AccumulateCountRange(const uint32_t* gids, size_t row_begin, size_t n,
                          const uint8_t* filter, const uint8_t* validity,
                          AggState* slab) {
  if (filter == nullptr && validity == nullptr) {
    CountLoopRange<false, false>(gids, row_begin, n, filter, validity, slab);
  } else if (filter == nullptr) {
    CountLoopRange<false, true>(gids, row_begin, n, filter, validity, slab);
  } else if (validity == nullptr) {
    CountLoopRange<true, false>(gids, row_begin, n, filter, validity, slab);
  } else {
    CountLoopRange<true, true>(gids, row_begin, n, filter, validity, slab);
  }
}

void AccumulateCountSel(const uint32_t* gids, const SelectionVector& sel,
                        const uint8_t* filter, const uint8_t* validity,
                        AggState* slab) {
  if (filter == nullptr && validity == nullptr) {
    CountLoopSel<false, false>(gids, sel, filter, validity, slab);
  } else if (filter == nullptr) {
    CountLoopSel<false, true>(gids, sel, filter, validity, slab);
  } else if (validity == nullptr) {
    CountLoopSel<true, false>(gids, sel, filter, validity, slab);
  } else {
    CountLoopSel<true, true>(gids, sel, filter, validity, slab);
  }
}

void AccumulateInt64Range(const uint32_t* gids, size_t row_begin, size_t n,
                          const int64_t* data, const uint8_t* filter,
                          const uint8_t* validity, AggState* slab) {
  AccumRange(gids, row_begin, n, data, filter, validity, slab);
}

void AccumulateInt64Sel(const uint32_t* gids, const SelectionVector& sel,
                        const int64_t* data, const uint8_t* filter,
                        const uint8_t* validity, AggState* slab) {
  AccumSel(gids, sel, data, filter, validity, slab);
}

void AccumulateDoubleRange(const uint32_t* gids, size_t row_begin, size_t n,
                           const double* data, const uint8_t* filter,
                           const uint8_t* validity, AggState* slab) {
  AccumRange(gids, row_begin, n, data, filter, validity, slab);
}

void AccumulateDoubleSel(const uint32_t* gids, const SelectionVector& sel,
                         const double* data, const uint8_t* filter,
                         const uint8_t* validity, AggState* slab) {
  AccumSel(gids, sel, data, filter, validity, slab);
}

}  // namespace seedb::db::vec
