#include "db/vec/selection_vector.h"

#include <utility>

namespace seedb::db::vec {
namespace {

template <typename T>
bool Compare(T v, CompareOp op, T lit) {
  switch (op) {
    case CompareOp::kEq:
      return v == lit;
    case CompareOp::kNe:
      return v != lit;
    case CompareOp::kLt:
      return v < lit;
    case CompareOp::kLe:
      return v <= lit;
    case CompareOp::kGt:
      return v > lit;
    case CompareOp::kGe:
      return v >= lit;
  }
  return false;
}

// One instantiation per (type, op, nullability): the comparison and the
// validity check hoist out of the row loop, leaving a branch the compiler
// can turn into SIMD compares + compressed stores.
template <typename T, CompareOp kOp, bool kValid>
void CompareLoop(const T* data, const uint8_t* validity, T literal,
                 size_t row_begin, size_t row_end, SelectionVector* sel) {
  for (size_t i = row_begin; i < row_end; ++i) {
    if (kValid && !validity[i]) continue;
    if (Compare(data[i], kOp, literal)) {
      sel->Append(static_cast<uint32_t>(i));
    }
  }
}

template <typename T, CompareOp kOp>
void CompareDispatchValidity(const T* data, const uint8_t* validity, T literal,
                             size_t row_begin, size_t row_end,
                             SelectionVector* sel) {
  if (validity == nullptr) {
    CompareLoop<T, kOp, false>(data, nullptr, literal, row_begin, row_end,
                               sel);
  } else {
    CompareLoop<T, kOp, true>(data, validity, literal, row_begin, row_end,
                              sel);
  }
}

template <typename T>
void CompareDispatch(const T* data, const uint8_t* validity, CompareOp op,
                     T literal, size_t row_begin, size_t row_end,
                     SelectionVector* sel) {
  sel->Clear();
  sel->Reserve(row_end - row_begin);
  switch (op) {
    case CompareOp::kEq:
      return CompareDispatchValidity<T, CompareOp::kEq>(
          data, validity, literal, row_begin, row_end, sel);
    case CompareOp::kNe:
      return CompareDispatchValidity<T, CompareOp::kNe>(
          data, validity, literal, row_begin, row_end, sel);
    case CompareOp::kLt:
      return CompareDispatchValidity<T, CompareOp::kLt>(
          data, validity, literal, row_begin, row_end, sel);
    case CompareOp::kLe:
      return CompareDispatchValidity<T, CompareOp::kLe>(
          data, validity, literal, row_begin, row_end, sel);
    case CompareOp::kGt:
      return CompareDispatchValidity<T, CompareOp::kGt>(
          data, validity, literal, row_begin, row_end, sel);
    case CompareOp::kGe:
      return CompareDispatchValidity<T, CompareOp::kGe>(
          data, validity, literal, row_begin, row_end, sel);
  }
}

}  // namespace

void SelectFromMask(const uint8_t* mask, size_t row_begin, size_t row_end,
                    SelectionVector* sel) {
  sel->Clear();
  sel->Reserve(row_end - row_begin);
  for (size_t i = row_begin; i < row_end; ++i) {
    if (mask[i]) sel->Append(static_cast<uint32_t>(i));
  }
}

void SelectAll(size_t row_begin, size_t row_end, SelectionVector* sel) {
  sel->Clear();
  sel->Reserve(row_end - row_begin);
  for (size_t i = row_begin; i < row_end; ++i) {
    sel->Append(static_cast<uint32_t>(i));
  }
}

void Refine(const uint8_t* mask, SelectionVector* sel) {
  SelectionVector kept;
  kept.Reserve(sel->size());
  for (size_t k = 0; k < sel->size(); ++k) {
    if (mask[(*sel)[k]]) kept.Append((*sel)[k]);
  }
  *sel = std::move(kept);
}

void SelectCompareInt64(const int64_t* data, const uint8_t* validity,
                        CompareOp op, int64_t literal, size_t row_begin,
                        size_t row_end, SelectionVector* sel) {
  CompareDispatch(data, validity, op, literal, row_begin, row_end, sel);
}

void SelectCompareDouble(const double* data, const uint8_t* validity,
                         CompareOp op, double literal, size_t row_begin,
                         size_t row_end, SelectionVector* sel) {
  CompareDispatch(data, validity, op, literal, row_begin, row_end, sel);
}

void SelectCompareCode(const int32_t* codes, const uint8_t* validity,
                       const uint8_t* code_match, size_t row_begin,
                       size_t row_end, SelectionVector* sel) {
  sel->Clear();
  sel->Reserve(row_end - row_begin);
  if (validity == nullptr) {
    for (size_t i = row_begin; i < row_end; ++i) {
      if (code_match[codes[i]]) sel->Append(static_cast<uint32_t>(i));
    }
    return;
  }
  for (size_t i = row_begin; i < row_end; ++i) {
    if (validity[i] && code_match[codes[i]]) {
      sel->Append(static_cast<uint32_t>(i));
    }
  }
}

}  // namespace seedb::db::vec
