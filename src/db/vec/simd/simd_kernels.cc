#include "db/vec/simd/simd.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "db/vec/simd/simd_internal.h"

namespace seedb::db::vec::simd {

const char* IsaName() {
#if defined(SEEDB_SIMD_AVX2)
  return "avx2";
#elif defined(SEEDB_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool Available() {
#if defined(SEEDB_SIMD_AVX2)
  // The TU is compiled with -mavx2 but the binary may run on older silicon;
  // gate dispatch on the actual CPU once.
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#elif defined(SEEDB_SIMD_NEON)
  return true;  // NEON is baseline on aarch64.
#else
  return false;
#endif
}

#if defined(SEEDB_SIMD_AVX2) || defined(SEEDB_SIMD_NEON)

namespace {

using internal::ByteBits8;

template <typename T>
inline bool CompareScalar(T v, CompareOp op, T lit) {
  switch (op) {
    case CompareOp::kEq:
      return v == lit;
    case CompareOp::kNe:
      return v != lit;
    case CompareOp::kLt:
      return v < lit;
    case CompareOp::kLe:
      return v <= lit;
    case CompareOp::kGt:
      return v > lit;
    case CompareOp::kGe:
      return v >= lit;
  }
  return false;
}

/// Appends the rows selected by `bits` (row j = base + j).
inline uint32_t* EmitBitsPortable(uint32_t* out, size_t base, uint32_t bits) {
  while (bits != 0) {
    const int j = __builtin_ctz(bits);
    bits &= bits - 1;
    *out++ = static_cast<uint32_t>(base + static_cast<size_t>(j));
  }
  return out;
}

/// Appends rows[j] for each set bit j.
inline uint32_t* EmitGatherPortable(uint32_t* out, const uint32_t* rows,
                                    uint32_t bits) {
  while (bits != 0) {
    const int j = __builtin_ctz(bits);
    bits &= bits - 1;
    *out++ = rows[j];
  }
  return out;
}

#if defined(SEEDB_SIMD_AVX2)

inline uint32_t MoveMask4(__m256i cmp) {
  return static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(cmp)));
}

// 4 int64 lanes compared against a splat literal -> 4-bit mask. AVX2 only
// has eq/gt; the other four ops are derived (lt = swapped gt, ge = ~lt,
// le = ~gt, ne = ~eq).
template <CompareOp kOp>
inline uint32_t CmpI64Bits4(__m256i v, __m256i lit) {
  if constexpr (kOp == CompareOp::kEq) {
    return MoveMask4(_mm256_cmpeq_epi64(v, lit));
  } else if constexpr (kOp == CompareOp::kNe) {
    return MoveMask4(_mm256_cmpeq_epi64(v, lit)) ^ 0xFu;
  } else if constexpr (kOp == CompareOp::kLt) {
    return MoveMask4(_mm256_cmpgt_epi64(lit, v));
  } else if constexpr (kOp == CompareOp::kLe) {
    return MoveMask4(_mm256_cmpgt_epi64(v, lit)) ^ 0xFu;
  } else if constexpr (kOp == CompareOp::kGt) {
    return MoveMask4(_mm256_cmpgt_epi64(v, lit));
  } else {
    return MoveMask4(_mm256_cmpgt_epi64(lit, v)) ^ 0xFu;
  }
}

template <CompareOp kOp>
inline uint32_t CmpI64Bits8(const int64_t* p, int64_t literal) {
  const __m256i lit = _mm256_set1_epi64x(literal);
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
  return CmpI64Bits4<kOp>(lo, lit) | (CmpI64Bits4<kOp>(hi, lit) << 4);
}

// Ordered-quiet predicates match scalar <, <=, >, >=, == on NaN operands
// (false); != uses unordered-quiet because scalar `v != lit` is true for
// NaN.
template <CompareOp kOp>
inline uint32_t CmpF64Bits4(__m256d v, __m256d lit) {
  constexpr int imm = kOp == CompareOp::kEq   ? _CMP_EQ_OQ
                      : kOp == CompareOp::kNe ? _CMP_NEQ_UQ
                      : kOp == CompareOp::kLt ? _CMP_LT_OQ
                      : kOp == CompareOp::kLe ? _CMP_LE_OQ
                      : kOp == CompareOp::kGt ? _CMP_GT_OQ
                                              : _CMP_GE_OQ;
  return static_cast<uint32_t>(_mm256_movemask_pd(_mm256_cmp_pd(v, lit, imm)));
}

template <CompareOp kOp>
inline uint32_t CmpF64Bits8(const double* p, double literal) {
  const __m256d lit = _mm256_set1_pd(literal);
  return CmpF64Bits4<kOp>(_mm256_loadu_pd(p), lit) |
         (CmpF64Bits4<kOp>(_mm256_loadu_pd(p + 4), lit) << 4);
}

inline uint32_t* EmitIota8(uint32_t* out, size_t base, uint32_t bits) {
  return internal::Emit8(out, internal::RowVec8(base), bits);
}

inline uint32_t* EmitGather8(uint32_t* out, const uint32_t* rows,
                             uint32_t bits) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
  return internal::Emit8(out, v, bits);
}

#else  // SEEDB_SIMD_NEON

// Lanes of a NEON compare result are all-ones / all-zero, so lane & 1 is
// the boolean.
template <CompareOp kOp>
inline uint32_t CmpI64Bits8(const int64_t* p, int64_t literal) {
  const int64x2_t lit = vdupq_n_s64(literal);
  uint32_t bits = 0;
  for (int c = 0; c < 4; ++c) {
    const int64x2_t v = vld1q_s64(p + 2 * c);
    uint64x2_t m;
    if constexpr (kOp == CompareOp::kEq || kOp == CompareOp::kNe) {
      m = vceqq_s64(v, lit);
    } else if constexpr (kOp == CompareOp::kLt) {
      m = vcltq_s64(v, lit);
    } else if constexpr (kOp == CompareOp::kLe) {
      m = vcleq_s64(v, lit);
    } else if constexpr (kOp == CompareOp::kGt) {
      m = vcgtq_s64(v, lit);
    } else {
      m = vcgeq_s64(v, lit);
    }
    bits |= static_cast<uint32_t>(vgetq_lane_u64(m, 0) & 1) << (2 * c);
    bits |= static_cast<uint32_t>(vgetq_lane_u64(m, 1) & 1) << (2 * c + 1);
  }
  if constexpr (kOp == CompareOp::kNe) bits ^= 0xFFu;
  return bits;
}

// NEON float compares are false on NaN operands, matching scalar ordered
// ops; != is derived from == so NaN rows correctly report true.
template <CompareOp kOp>
inline uint32_t CmpF64Bits8(const double* p, double literal) {
  const float64x2_t lit = vdupq_n_f64(literal);
  uint32_t bits = 0;
  for (int c = 0; c < 4; ++c) {
    const float64x2_t v = vld1q_f64(p + 2 * c);
    uint64x2_t m;
    if constexpr (kOp == CompareOp::kEq || kOp == CompareOp::kNe) {
      m = vceqq_f64(v, lit);
    } else if constexpr (kOp == CompareOp::kLt) {
      m = vcltq_f64(v, lit);
    } else if constexpr (kOp == CompareOp::kLe) {
      m = vcleq_f64(v, lit);
    } else if constexpr (kOp == CompareOp::kGt) {
      m = vcgtq_f64(v, lit);
    } else {
      m = vcgeq_f64(v, lit);
    }
    bits |= static_cast<uint32_t>(vgetq_lane_u64(m, 0) & 1) << (2 * c);
    bits |= static_cast<uint32_t>(vgetq_lane_u64(m, 1) & 1) << (2 * c + 1);
  }
  if constexpr (kOp == CompareOp::kNe) bits ^= 0xFFu;
  return bits;
}

inline uint32_t* EmitIota8(uint32_t* out, size_t base, uint32_t bits) {
  return EmitBitsPortable(out, base, bits);
}

inline uint32_t* EmitGather8(uint32_t* out, const uint32_t* rows,
                             uint32_t bits) {
  return EmitGatherPortable(out, rows, bits);
}

#endif  // ISA

template <CompareOp kOp>
void CompareI64Loop(const int64_t* data, const uint8_t* validity, int64_t lit,
                    size_t row_begin, size_t row_end, SelectionVector* sel) {
  sel->Resize(row_end - row_begin);
  uint32_t* const out = sel->mutable_data();
  uint32_t* w = out;
  size_t i = row_begin;
  for (; i + 8 <= row_end; i += 8) {
    uint32_t bits = CmpI64Bits8<kOp>(data + i, lit);
    if (validity != nullptr) bits &= ByteBits8(validity + i);
    if (bits == 0) continue;
    w = EmitIota8(w, i, bits);
  }
  for (; i < row_end; ++i) {
    if (validity != nullptr && validity[i] == 0) continue;
    if (CompareScalar<int64_t>(data[i], kOp, lit)) {
      *w++ = static_cast<uint32_t>(i);
    }
  }
  sel->Resize(static_cast<size_t>(w - out));
}

template <CompareOp kOp>
void CompareF64Loop(const double* data, const uint8_t* validity, double lit,
                    size_t row_begin, size_t row_end, SelectionVector* sel) {
  sel->Resize(row_end - row_begin);
  uint32_t* const out = sel->mutable_data();
  uint32_t* w = out;
  size_t i = row_begin;
  for (; i + 8 <= row_end; i += 8) {
    uint32_t bits = CmpF64Bits8<kOp>(data + i, lit);
    if (validity != nullptr) bits &= ByteBits8(validity + i);
    if (bits == 0) continue;
    w = EmitIota8(w, i, bits);
  }
  for (; i < row_end; ++i) {
    if (validity != nullptr && validity[i] == 0) continue;
    if (CompareScalar<double>(data[i], kOp, lit)) {
      *w++ = static_cast<uint32_t>(i);
    }
  }
  sel->Resize(static_cast<size_t>(w - out));
}

}  // namespace

void SelectFromMask(const uint8_t* mask, size_t row_begin, size_t row_end,
                    SelectionVector* sel) {
  sel->Resize(row_end - row_begin);
  uint32_t* const out = sel->mutable_data();
  uint32_t* w = out;
  size_t i = row_begin;
#if defined(SEEDB_SIMD_AVX2)
  for (; i + 32 <= row_end; i += 32) {
    const uint32_t bits = internal::NonzeroBytes32(mask + i);
    if (bits == 0) continue;
    if (bits == 0xFFFFFFFFu) {
      // Dense block: append 32 consecutive row ids without compressing.
      for (int c = 0; c < 4; ++c) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + 8 * c),
                            internal::RowVec8(i + 8 * static_cast<size_t>(c)));
      }
      w += 32;
      continue;
    }
    for (int c = 0; c < 4; ++c) {
      const uint32_t b8 = (bits >> (8 * c)) & 0xFFu;
      if (b8 == 0) continue;
      w = EmitIota8(w, i + 8 * static_cast<size_t>(c), b8);
    }
  }
#else
  for (; i + 8 <= row_end; i += 8) {
    const uint32_t bits = ByteBits8(mask + i);
    if (bits == 0) continue;
    w = EmitIota8(w, i, bits);
  }
#endif
  for (; i < row_end; ++i) {
    if (mask[i] != 0) *w++ = static_cast<uint32_t>(i);
  }
  sel->Resize(static_cast<size_t>(w - out));
}

void Refine(const uint8_t* mask, SelectionVector* sel) {
  const size_t n = sel->size();
  uint32_t* const data = sel->mutable_data();
  uint32_t* w = data;
  size_t k = 0;
  // In-place compaction is safe: the write cursor never passes the read
  // block (w <= k), and each 8-block is loaded before its slots can be
  // overwritten.
  for (; k + 8 <= n; k += 8) {
    uint32_t bits = 0;
    for (int j = 0; j < 8; ++j) {
      bits |= static_cast<uint32_t>(mask[data[k + static_cast<size_t>(j)]] != 0)
              << j;
    }
    if (bits == 0) continue;
    w = EmitGather8(w, data + k, bits);
  }
  for (; k < n; ++k) {
    const uint32_t row = data[k];
    if (mask[row] != 0) *w++ = row;
  }
  sel->Resize(static_cast<size_t>(w - data));
}

void SelectCompareInt64(const int64_t* data, const uint8_t* validity,
                        CompareOp op, int64_t literal, size_t row_begin,
                        size_t row_end, SelectionVector* sel) {
  switch (op) {
    case CompareOp::kEq:
      CompareI64Loop<CompareOp::kEq>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kNe:
      CompareI64Loop<CompareOp::kNe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kLt:
      CompareI64Loop<CompareOp::kLt>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kLe:
      CompareI64Loop<CompareOp::kLe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kGt:
      CompareI64Loop<CompareOp::kGt>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kGe:
      CompareI64Loop<CompareOp::kGe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
  }
}

void SelectCompareDouble(const double* data, const uint8_t* validity,
                         CompareOp op, double literal, size_t row_begin,
                         size_t row_end, SelectionVector* sel) {
  switch (op) {
    case CompareOp::kEq:
      CompareF64Loop<CompareOp::kEq>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kNe:
      CompareF64Loop<CompareOp::kNe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kLt:
      CompareF64Loop<CompareOp::kLt>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kLe:
      CompareF64Loop<CompareOp::kLe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kGt:
      CompareF64Loop<CompareOp::kGt>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
    case CompareOp::kGe:
      CompareF64Loop<CompareOp::kGe>(data, validity, literal, row_begin,
                                     row_end, sel);
      break;
  }
}

void SelectCompareCode(const int32_t* codes, const uint8_t* validity,
                       const uint8_t* code_match, size_t row_begin,
                       size_t row_end, SelectionVector* sel) {
  sel->Resize(row_end - row_begin);
  uint32_t* const out = sel->mutable_data();
  uint32_t* w = out;
  size_t i = row_begin;
  // The dictionary truth-table lookups stay scalar (no byte gather on
  // either ISA without over-reading the table); the win is the branchless
  // bit build plus the compress-store emit.
  for (; i + 8 <= row_end; i += 8) {
    uint32_t bits = 0;
    for (int j = 0; j < 8; ++j) {
      bits |= static_cast<uint32_t>(
                  code_match[codes[i + static_cast<size_t>(j)]] & 1)
              << j;
    }
    if (validity != nullptr) bits &= ByteBits8(validity + i);
    if (bits == 0) continue;
    w = EmitIota8(w, i, bits);
  }
  for (; i < row_end; ++i) {
    if (validity != nullptr && validity[i] == 0) continue;
    if (code_match[codes[i]] != 0) *w++ = static_cast<uint32_t>(i);
  }
  sel->Resize(static_cast<size_t>(w - out));
}

#else  // scalar build: forward everything to the scalar kernels.

void SelectFromMask(const uint8_t* mask, size_t row_begin, size_t row_end,
                    SelectionVector* sel) {
  vec::SelectFromMask(mask, row_begin, row_end, sel);
}

void Refine(const uint8_t* mask, SelectionVector* sel) {
  vec::Refine(mask, sel);
}

void SelectCompareInt64(const int64_t* data, const uint8_t* validity,
                        CompareOp op, int64_t literal, size_t row_begin,
                        size_t row_end, SelectionVector* sel) {
  vec::SelectCompareInt64(data, validity, op, literal, row_begin, row_end,
                          sel);
}

void SelectCompareDouble(const double* data, const uint8_t* validity,
                         CompareOp op, double literal, size_t row_begin,
                         size_t row_end, SelectionVector* sel) {
  vec::SelectCompareDouble(data, validity, op, literal, row_begin, row_end,
                           sel);
}

void SelectCompareCode(const int32_t* codes, const uint8_t* validity,
                       const uint8_t* code_match, size_t row_begin,
                       size_t row_end, SelectionVector* sel) {
  vec::SelectCompareCode(codes, validity, code_match, row_begin, row_end, sel);
}

#endif  // ISA

// ---------------------------------------------------------------------------
// Accumulate kernels over contiguous gid runs. Fully vectorized on AVX2;
// on NEON (and scalar builds) they forward to the scalar kernels — the
// compare/select tier above is where aarch64 gets its wins for now.
// ---------------------------------------------------------------------------

#if defined(SEEDB_SIMD_AVX2)

namespace {

/// Minimum run length for the vectorized per-run fast paths; shorter runs
/// use the per-row AggState update. Streams whose probed mean run length
/// falls below kRunMin / 2 skip the per-run walk entirely (see
/// MostlyShortRuns) so random gid streams pay only the probe.
constexpr size_t kRunMin = 16;

/// 2^52 — precheck budget for the exact int64 sum (factor-2 margin under
/// the 2^53 integer-exactness limit absorbs the rounding in the check
/// itself).
constexpr double kExactSumLimit = 4503599627370496.0;

/// End of the run of gids[k] within [k, n): a short scalar probe, then
/// 8-wide vector extension for runs that look long.
inline size_t RunEnd(const uint32_t* gids, size_t k, size_t n) {
  const uint32_t g = gids[k];
  size_t e = k + 1;
  const size_t probe_end = std::min(n, k + 4);
  while (e < probe_end && gids[e] == g) ++e;
  if (e < probe_end || e == n) return e;
  const __m256i vg = _mm256_set1_epi32(static_cast<int>(g));
  while (e + 8 <= n) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gids + e));
    const uint32_t eq = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(chunk, vg))));
    if (eq != 0xFFu) return e + __builtin_ctz(~eq & 0xFFu);
    e += 8;
  }
  while (e < n && gids[e] == g) ++e;
  return e;
}

/// True when a prefix probe says gid runs are too short for the per-run
/// fast paths to recoup the RunEnd scanning cost. Callers delegate to the
/// plain kernels, whose hoisted row loop is cheaper on random gid streams.
inline bool MostlyShortRuns(const uint32_t* gids, size_t n) {
  const size_t probe = std::min<size_t>(n, 512);
  if (probe < kRunMin) return true;
  size_t breaks = 1;  // the first run's start
  size_t i = 1;
  for (; i + 8 <= probe; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gids + i - 1));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gids + i));
    const uint32_t eq = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))));
    breaks += 8 - __builtin_popcount(eq & 0xFFu);
  }
  for (; i < probe; ++i) breaks += (gids[i] != gids[i - 1]) ? 1 : 0;
  return probe < breaks * (kRunMin / 2);  // mean run length below 8
}

/// Rows of [lo, hi) passing filter and validity, by popcount over 32-byte
/// blocks. At least one of the two masks is non-null.
inline int64_t CountPassBytes(const uint8_t* filter, const uint8_t* validity,
                              size_t lo, size_t hi) {
  int64_t c = 0;
  size_t i = lo;
  if (filter != nullptr && validity != nullptr) {
    const __m256i zero = _mm256_setzero_si256();
    for (; i + 32 <= hi; i += 32) {
      const __m256i f = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(filter + i));
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(validity + i));
      const __m256i both = _mm256_and_si256(f, v);
      c += __builtin_popcount(~static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(both, zero))));
    }
    for (; i < hi; ++i) c += (filter[i] != 0 && validity[i] != 0) ? 1 : 0;
  } else {
    const uint8_t* m = filter != nullptr ? filter : validity;
    for (; i + 32 <= hi; i += 32) {
      c += __builtin_popcount(internal::NonzeroBytes32(m + i));
    }
    for (; i < hi; ++i) c += (m[i] != 0) ? 1 : 0;
  }
  return c;
}

struct I64Run {
  int64_t min;
  int64_t max;
  int64_t sum;  // wrapping; only used when the exactness precheck passes
};

/// Min/max/sum of data[0, len), len >= 1. Sums wrap modulo 2^64 (the
/// vector adds at the bit level, the scalar tail in unsigned arithmetic) —
/// callers discard the sum unless the precheck proves no wrap occurred.
inline I64Run I64RunStats(const int64_t* data, size_t len) {
  int64_t mn;
  int64_t mx;
  uint64_t sum;
  size_t j;
  if (len >= 4) {
    __m256i vmin = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
    __m256i vmax = vmin;
    __m256i vsum = vmin;
    for (j = 4; j + 4 <= len; j += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + j));
      // No native 64-bit min/max in AVX2: derive from cmpgt + blend.
      vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
      vmax = _mm256_blendv_epi8(vmax, v, _mm256_cmpgt_epi64(v, vmax));
      vsum = _mm256_add_epi64(vsum, v);
    }
    alignas(32) int64_t a[4];
    alignas(32) int64_t b[4];
    alignas(32) int64_t s[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(a), vmin);
    _mm256_store_si256(reinterpret_cast<__m256i*>(b), vmax);
    _mm256_store_si256(reinterpret_cast<__m256i*>(s), vsum);
    mn = std::min(std::min(a[0], a[1]), std::min(a[2], a[3]));
    mx = std::max(std::max(b[0], b[1]), std::max(b[2], b[3]));
    sum = static_cast<uint64_t>(s[0]) + static_cast<uint64_t>(s[1]) +
          static_cast<uint64_t>(s[2]) + static_cast<uint64_t>(s[3]);
  } else {
    mn = mx = data[0];
    sum = static_cast<uint64_t>(data[0]);
    j = 1;
  }
  for (; j < len; ++j) {
    const int64_t v = data[j];
    if (v < mn) mn = v;
    if (v > mx) mx = v;
    sum += static_cast<uint64_t>(v);
  }
  return {mn, mx, static_cast<int64_t>(sum)};
}

struct F64Run {
  double min;
  double max;
};

/// Min/max of data[0, len) with AggState semantics: accumulators start at
/// +/-inf and a value only replaces them on a strict ordered compare, so
/// NaN lanes never win — exactly the scalar `if (v < min) min = v`.
inline F64Run F64RunMinMax(const double* data, size_t len) {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  size_t j = 0;
  if (len >= 4) {
    __m256d vmin = _mm256_set1_pd(mn);
    __m256d vmax = _mm256_set1_pd(mx);
    for (; j + 4 <= len; j += 4) {
      const __m256d v = _mm256_loadu_pd(data + j);
      vmin = _mm256_blendv_pd(vmin, v, _mm256_cmp_pd(v, vmin, _CMP_LT_OQ));
      vmax = _mm256_blendv_pd(vmax, v, _mm256_cmp_pd(v, vmax, _CMP_GT_OQ));
    }
    alignas(32) double a[4];
    alignas(32) double b[4];
    _mm256_store_pd(a, vmin);
    _mm256_store_pd(b, vmax);
    for (int l = 0; l < 4; ++l) {
      if (a[l] < mn) mn = a[l];
      if (b[l] > mx) mx = b[l];
    }
  }
  for (; j < len; ++j) {
    const double v = data[j];
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  return {mn, mx};
}

}  // namespace

void AccumulateCountRange(const uint32_t* gids, size_t row_begin, size_t n,
                          const uint8_t* filter, const uint8_t* validity,
                          AggState* slab) {
  if (MostlyShortRuns(gids, n)) {
    vec::AccumulateCountRange(gids, row_begin, n, filter, validity, slab);
    return;
  }
  size_t k = 0;
  while (k < n) {
    const size_t e = RunEnd(gids, k, n);
    AggState& st = slab[gids[k]];
    if (filter == nullptr && validity == nullptr) {
      st.count += static_cast<int64_t>(e - k);
    } else {
      st.count += CountPassBytes(filter, validity, row_begin + k,
                                 row_begin + e);
    }
    k = e;
  }
}

void AccumulateInt64Range(const uint32_t* gids, size_t row_begin, size_t n,
                          const int64_t* data, const uint8_t* filter,
                          const uint8_t* validity, AggState* slab) {
  // The run fast path needs unfiltered, unmasked rows and long runs;
  // everything else is better off in the plain kernel's hoisted loop.
  if (filter != nullptr || validity != nullptr || MostlyShortRuns(gids, n)) {
    vec::AccumulateInt64Range(gids, row_begin, n, data, filter, validity,
                              slab);
    return;
  }
  size_t k = 0;
  while (k < n) {
    const size_t e = RunEnd(gids, k, n);
    AggState& st = slab[gids[k]];
    const size_t len = e - k;
    bool done = false;
    if (len >= kRunMin) {
      const I64Run r = I64RunStats(data + row_begin + k, len);
      const double mn = static_cast<double>(r.min);
      const double mx = static_cast<double>(r.max);
      const double amax = std::max(std::fabs(mn), std::fabs(mx));
      // Exactness precheck: if every sequential partial sum is bounded by
      // 2^53, scalar double addition of these integers is exact, so the
      // (order-free) integer vector sum produces the same bits.
      if (std::fabs(st.sum) + static_cast<double>(len) * amax <=
          kExactSumLimit) {
        st.count += static_cast<int64_t>(len);
        st.sum += static_cast<double>(r.sum);
        if (mn < st.min) st.min = mn;
        if (mx > st.max) st.max = mx;
        done = true;
      }
    }
    if (!done) {
      for (size_t j = k; j < e; ++j) {
        st.Add(static_cast<double>(data[row_begin + j]));
      }
    }
    k = e;
  }
}

void AccumulateDoubleRange(const uint32_t* gids, size_t row_begin, size_t n,
                           const double* data, const uint8_t* filter,
                           const uint8_t* validity, AggState* slab) {
  if (filter != nullptr || validity != nullptr || MostlyShortRuns(gids, n)) {
    vec::AccumulateDoubleRange(gids, row_begin, n, data, filter, validity,
                               slab);
    return;
  }
  size_t k = 0;
  while (k < n) {
    const size_t e = RunEnd(gids, k, n);
    AggState& st = slab[gids[k]];
    const size_t len = e - k;
    if (len >= kRunMin) {
      const double* p = data + row_begin + k;
      const F64Run r = F64RunMinMax(p, len);
      // SUM stays a sequential left-fold in row order: lane-splitting
      // would reassociate floating-point addition and break bit-identity
      // with the scalar and hash paths.
      double s = st.sum;
      for (size_t j = 0; j < len; ++j) s += p[j];
      st.sum = s;
      st.count += static_cast<int64_t>(len);
      if (r.min < st.min) st.min = r.min;
      if (r.max > st.max) st.max = r.max;
    } else {
      for (size_t j = k; j < e; ++j) st.Add(data[row_begin + j]);
    }
    k = e;
  }
}

#else  // !SEEDB_SIMD_AVX2

void AccumulateCountRange(const uint32_t* gids, size_t row_begin, size_t n,
                          const uint8_t* filter, const uint8_t* validity,
                          AggState* slab) {
  vec::AccumulateCountRange(gids, row_begin, n, filter, validity, slab);
}

void AccumulateInt64Range(const uint32_t* gids, size_t row_begin, size_t n,
                          const int64_t* data, const uint8_t* filter,
                          const uint8_t* validity, AggState* slab) {
  vec::AccumulateInt64Range(gids, row_begin, n, data, filter, validity, slab);
}

void AccumulateDoubleRange(const uint32_t* gids, size_t row_begin, size_t n,
                           const double* data, const uint8_t* filter,
                           const uint8_t* validity, AggState* slab) {
  vec::AccumulateDoubleRange(gids, row_begin, n, data, filter, validity, slab);
}

#endif  // SEEDB_SIMD_AVX2

// Sel (gathered-row) variants stay scalar on every ISA: the indirection
// defeats contiguous loads, and the scalar kernels are already tight.

void AccumulateCountSel(const uint32_t* gids, const SelectionVector& sel,
                        const uint8_t* filter, const uint8_t* validity,
                        AggState* slab) {
  vec::AccumulateCountSel(gids, sel, filter, validity, slab);
}

void AccumulateInt64Sel(const uint32_t* gids, const SelectionVector& sel,
                        const int64_t* data, const uint8_t* filter,
                        const uint8_t* validity, AggState* slab) {
  vec::AccumulateInt64Sel(gids, sel, data, filter, validity, slab);
}

void AccumulateDoubleSel(const uint32_t* gids, const SelectionVector& sel,
                         const double* data, const uint8_t* filter,
                         const uint8_t* validity, AggState* slab) {
  vec::AccumulateDoubleSel(gids, sel, data, filter, validity, slab);
}

}  // namespace seedb::db::vec::simd
