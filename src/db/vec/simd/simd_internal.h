// Portable intrinsic wrappers for the explicit-SIMD kernel tier.
//
// Included ONLY by simd_kernels.cc — that translation unit is the one place
// in the build compiled with vector-ISA flags (see src/CMakeLists.txt), so
// the ISA macros below must never leak into other headers.
//
// ISA selection, in order:
//   SEEDB_SIMD_FORCE_SCALAR  — CMake -DSEEDB_SIMD_ISA=scalar kill switch;
//                              kernels forward to the scalar vec:: versions.
//   __AVX2__                 — x86-64, per-source -mavx2.
//   __aarch64__ && __ARM_NEON — aarch64 baseline NEON.
//   otherwise                — scalar forwarding.
//
// The kernels are written against an 8-row "bit block" model that every ISA
// can produce: compare / test 8 consecutive rows, get back an 8-bit mask
// (bit j = row j, LSB first), then drive a shared emit / count / accumulate
// loop off the bits. AVX2 additionally gets a permute-LUT compress store
// and 32-byte mask blocks; NEON narrows 128-bit compare results to bytes
// and uses the same bit engine.

#ifndef SEEDB_DB_VEC_SIMD_SIMD_INTERNAL_H_
#define SEEDB_DB_VEC_SIMD_SIMD_INTERNAL_H_

#include <cstdint>
#include <cstring>

#if !defined(SEEDB_SIMD_FORCE_SCALAR)
#if defined(__AVX2__)
#define SEEDB_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define SEEDB_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace seedb::db::vec::simd::internal {

/// 8 mask bytes (each 0 or 1) -> 8 bits, LSB = lowest address. The multiply
/// gathers every byte's LSB into the top byte; bytes never collide because
/// each (byte j, multiplier byte k) product lands on a distinct bit.
inline uint32_t ByteBits8(const uint8_t* p) {
  uint64_t w;
  std::memcpy(&w, p, 8);
  w &= 0x0101010101010101ULL;
  return static_cast<uint32_t>((w * 0x0102040810204080ULL) >> 56);
}

#if defined(SEEDB_SIMD_AVX2)

/// mask -> lane-permutation table for the 8x32-bit compress store: entry m
/// lists the set-bit positions of m in order, padded with 0. 8KB, hot part
/// stays cached.
struct CompressLut {
  alignas(32) uint32_t perm[256][8];
  constexpr CompressLut() : perm() {
    for (int m = 0; m < 256; ++m) {
      int k = 0;
      for (int b = 0; b < 8; ++b) {
        if (m & (1 << b)) perm[m][k++] = static_cast<uint32_t>(b);
      }
      for (; k < 8; ++k) perm[m][k] = 0;
    }
  }
};
inline constexpr CompressLut kCompressLut{};

/// Compress-stores the lanes of `rows` selected by `bits` to `out` and
/// returns the advanced pointer. Always stores 32 bytes — the caller must
/// guarantee 8 writable slots past `out` (true when the output was sized to
/// the block count upfront).
inline uint32_t* Emit8(uint32_t* out, __m256i rows, uint32_t bits) {
  __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompressLut.perm[bits]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permutevar8x32_epi32(rows, perm));
  return out + __builtin_popcount(bits);
}

/// Row indices {base, base+1, ..., base+7} as an epi32 vector.
inline __m256i RowVec8(size_t base) {
  return _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(base)),
                          _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}

/// 32 mask bytes -> 32 bits (bit j = byte j non-zero).
inline uint32_t NonzeroBytes32(const uint8_t* p) {
  __m256i bytes = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i is_zero = _mm256_cmpeq_epi8(bytes, _mm256_setzero_si256());
  return ~static_cast<uint32_t>(_mm256_movemask_epi8(is_zero));
}

#endif  // SEEDB_SIMD_AVX2

}  // namespace seedb::db::vec::simd::internal

#endif  // SEEDB_DB_VEC_SIMD_SIMD_INTERNAL_H_
