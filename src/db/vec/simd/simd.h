// Explicit-SIMD kernel tier: vector-ISA variants of the db/vec/ compare,
// selection-construction and accumulate kernels.
//
// The ISA is selected at COMPILE time inside simd_kernels.cc (AVX2 on
// x86-64, NEON on aarch64, scalar otherwise — see simd_internal.h); this
// header is ISA-agnostic so every other translation unit builds without
// vector flags. At RUN time two switches gate the tier: Available() (the
// binary was built with a vector ISA and the CPU actually supports it) and
// SharedScanOptions::enable_simd (the kill switch). When either says no,
// callers use the scalar db/vec/ kernels; in a scalar build the functions
// below forward to them, so simd:: is always safe to call.
//
// Equivalence bar (same as scalar-vec vs hash): every kernel here is
// BIT-identical to its scalar counterpart. Selection construction preserves
// row order exactly; COUNT is integer; MIN/MAX mirror AggState's
// `if (v < min)` semantics lane-wise (NaN never wins, first-seen ties are
// value-equal); double SUM stays a sequential left-fold in row order —
// lane-parallel float summation would reassociate and is deliberately NOT
// done. Int64 SUM is vectorized only when an exactness precheck proves the
// scalar fold is exact integer arithmetic (all partials well under 2^53),
// in which case any association gives the same bits.
//
// Byte masks passed to these kernels (filter / validity / selection masks)
// must hold 0 or 1 per byte — the engine-wide convention.

#ifndef SEEDB_DB_VEC_SIMD_SIMD_H_
#define SEEDB_DB_VEC_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "db/vec/aggregate_kernels.h"
#include "db/vec/selection_vector.h"

namespace seedb::db::vec::simd {

/// Compile-time ISA of simd_kernels.cc: "avx2", "neon" or "scalar".
const char* IsaName();

/// True when the kernels were compiled with a vector ISA AND the running
/// CPU supports it (checked once, cached). False in scalar builds or on
/// hardware older than the build target — callers then take the scalar
/// db/vec/ path and SharedScanStats::simd_morsels stays 0.
bool Available();

// -- Selection construction (movemask-based) ---------------------------------

/// SIMD SelectFromMask: non-zero mask bytes of [row_begin, row_end) become
/// selected rows. Identical output to vec::SelectFromMask.
void SelectFromMask(const uint8_t* mask, size_t row_begin, size_t row_end,
                    SelectionVector* sel);

/// SIMD in-place AND with a byte mask. Identical output to vec::Refine.
void Refine(const uint8_t* mask, SelectionVector* sel);

// -- Compare kernels (predicate -> selection) --------------------------------
//
// Same contracts as the scalar kernels in selection_vector.h: null rows
// (validity byte 0) never match; `sel` is replaced.

void SelectCompareInt64(const int64_t* data, const uint8_t* validity,
                        CompareOp op, int64_t literal, size_t row_begin,
                        size_t row_end, SelectionVector* sel);

void SelectCompareDouble(const double* data, const uint8_t* validity,
                         CompareOp op, double literal, size_t row_begin,
                         size_t row_end, SelectionVector* sel);

void SelectCompareCode(const int32_t* codes, const uint8_t* validity,
                       const uint8_t* code_match, size_t row_begin,
                       size_t row_end, SelectionVector* sel);

// -- Accumulate kernels over contiguous gid runs -----------------------------
//
// Same contracts as aggregate_kernels.h. The Range variants segment the gid
// vector into runs of equal group id (one cheap vector compare per block)
// and vectorize within long runs: COUNT becomes a popcount of the pass
// mask, MIN/MAX a lane-wise compare+blend fold, int64 SUM an integer vector
// sum when provably exact; short runs and filtered/nullable rows fall back
// to the per-row AggState update, so results stay bit-identical on any gid
// distribution. The Sel variants (gathered rows) stay scalar — they forward
// to the vec:: kernels.

void AccumulateCountRange(const uint32_t* gids, size_t row_begin, size_t n,
                          const uint8_t* filter, const uint8_t* validity,
                          AggState* slab);
void AccumulateCountSel(const uint32_t* gids, const SelectionVector& sel,
                        const uint8_t* filter, const uint8_t* validity,
                        AggState* slab);

void AccumulateInt64Range(const uint32_t* gids, size_t row_begin, size_t n,
                          const int64_t* data, const uint8_t* filter,
                          const uint8_t* validity, AggState* slab);
void AccumulateInt64Sel(const uint32_t* gids, const SelectionVector& sel,
                        const int64_t* data, const uint8_t* filter,
                        const uint8_t* validity, AggState* slab);

void AccumulateDoubleRange(const uint32_t* gids, size_t row_begin, size_t n,
                           const double* data, const uint8_t* filter,
                           const uint8_t* validity, AggState* slab);
void AccumulateDoubleSel(const uint32_t* gids, const SelectionVector& sel,
                         const double* data, const uint8_t* filter,
                         const uint8_t* validity, AggState* slab);

}  // namespace seedb::db::vec::simd

#endif  // SEEDB_DB_VEC_SIMD_SIMD_H_
