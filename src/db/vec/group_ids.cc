#include "db/vec/group_ids.h"

namespace seedb::db::vec {
namespace {

inline uint32_t SlotOf(const DenseDim& d, size_t row) {
  return (d.validity != nullptr && !d.validity[row])
             ? d.slots - 1
             : static_cast<uint32_t>(d.codes[row]);
}

// Single-dimension loops with the validity branch hoisted: the common SeeDB
// case (one categorical dimension per view) compiles down to a gather.
void SingleDimRange(const DenseDim& d, size_t row_begin, size_t row_end,
                    uint32_t* gids) {
  if (d.validity == nullptr) {
    for (size_t i = row_begin; i < row_end; ++i) {
      gids[i - row_begin] = static_cast<uint32_t>(d.codes[i]);
    }
    return;
  }
  for (size_t i = row_begin; i < row_end; ++i) {
    gids[i - row_begin] = SlotOf(d, i);
  }
}

void SingleDimSel(const DenseDim& d, const SelectionVector& sel,
                  uint32_t* gids) {
  if (d.validity == nullptr) {
    for (size_t k = 0; k < sel.size(); ++k) {
      gids[k] = static_cast<uint32_t>(d.codes[sel[k]]);
    }
    return;
  }
  for (size_t k = 0; k < sel.size(); ++k) {
    gids[k] = SlotOf(d, sel[k]);
  }
}

}  // namespace

size_t DenseSlotCount(const std::vector<DenseDim>& dims, size_t limit) {
  size_t slots = 1;
  for (const DenseDim& d : dims) {
    if (d.slots == 0) return 0;
    if (slots > limit / d.slots) return 0;  // overflow-safe product cap
    slots *= d.slots;
  }
  return slots <= limit ? slots : 0;
}

void GroupIdsRange(const DenseDim* dims, size_t num_dims, size_t row_begin,
                   size_t row_end, uint32_t* gids) {
  if (num_dims == 0) {
    for (size_t i = row_begin; i < row_end; ++i) gids[i - row_begin] = 0;
    return;
  }
  if (num_dims == 1) return SingleDimRange(dims[0], row_begin, row_end, gids);
  for (size_t i = row_begin; i < row_end; ++i) {
    uint32_t gid = SlotOf(dims[0], i);
    for (size_t d = 1; d < num_dims; ++d) {
      gid = gid * dims[d].slots + SlotOf(dims[d], i);
    }
    gids[i - row_begin] = gid;
  }
}

void GroupIdsSel(const DenseDim* dims, size_t num_dims,
                 const SelectionVector& sel, uint32_t* gids) {
  if (num_dims == 0) {
    for (size_t k = 0; k < sel.size(); ++k) gids[k] = 0;
    return;
  }
  if (num_dims == 1) return SingleDimSel(dims[0], sel, gids);
  for (size_t k = 0; k < sel.size(); ++k) {
    const size_t row = sel[k];
    uint32_t gid = SlotOf(dims[0], row);
    for (size_t d = 1; d < num_dims; ++d) {
      gid = gid * dims[d].slots + SlotOf(dims[d], row);
    }
    gids[k] = gid;
  }
}

}  // namespace seedb::db::vec
