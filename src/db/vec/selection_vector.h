// Selection vectors: the batch-at-a-time row-filter representation of the
// vectorized kernel subsystem (MonetDB/X100 style).
//
// A morsel's WHERE predicate is evaluated over raw column vectors into a
// SelectionVector ONCE, then every query in the fused plan with an identical
// filter iterates the selected rows without re-testing the mask per row per
// query. The scan keeps one selection per distinct mask per morsel (mask
// pointers are already deduplicated by db/shared_scan.h's MaskCache, so
// pointer identity is filter identity).

#ifndef SEEDB_DB_VEC_SELECTION_VECTOR_H_
#define SEEDB_DB_VEC_SELECTION_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/predicate.h"

namespace seedb::db::vec {

/// \brief Row indices (table-absolute, ascending) selected within a morsel.
///
/// Kernels come in two variants: `...Range` walks a contiguous [begin, end)
/// row range (the no-filter fast path — zero indirection), `...Sel` walks a
/// SelectionVector. Keeping "which rows" out of the aggregation kernels is
/// what lets one selection be shared by every query with the same filter.
class SelectionVector {
 public:
  void Clear() { rows_.clear(); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Append(uint32_t row) { rows_.push_back(row); }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const uint32_t* data() const { return rows_.data(); }
  uint32_t operator[](size_t i) const { return rows_[i]; }

  /// Bulk-write access for the SIMD kernels (db/vec/simd/): they size the
  /// vector to the candidate row count up front, compress-store selected
  /// indices through mutable_data(), then Resize down to the emitted count.
  void Resize(size_t n) { rows_.resize(n); }
  uint32_t* mutable_data() { return rows_.data(); }

 private:
  std::vector<uint32_t> rows_;
};

/// Rows of [row_begin, row_end) with a non-zero mask byte. `sel` is
/// replaced, not appended to.
void SelectFromMask(const uint8_t* mask, size_t row_begin, size_t row_end,
                    SelectionVector* sel);

/// Every row of [row_begin, row_end) (the explicit form of the Range fast
/// path, for callers that need a materialized selection).
void SelectAll(size_t row_begin, size_t row_end, SelectionVector* sel);

/// In-place AND: drops selected rows whose mask byte is zero.
void Refine(const uint8_t* mask, SelectionVector* sel);

// -- Batch filter kernels ----------------------------------------------------
//
// WHERE-predicate evaluation over raw column vectors straight into a
// selection vector. Null rows never match (the engine's two-valued logic);
// `validity` is the column's validity bytes, nullptr when the column has no
// nulls.

/// data[row] <op> literal over [row_begin, row_end).
void SelectCompareInt64(const int64_t* data, const uint8_t* validity,
                        CompareOp op, int64_t literal, size_t row_begin,
                        size_t row_end, SelectionVector* sel);

/// data[row] <op> literal over [row_begin, row_end).
void SelectCompareDouble(const double* data, const uint8_t* validity,
                         CompareOp op, double literal, size_t row_begin,
                         size_t row_end, SelectionVector* sel);

/// Dictionary-coded comparison: `code_match[codes[row]]` decides each row
/// (the caller precomputes the per-code truth table once per predicate, so
/// arbitrary string comparisons cost one byte lookup per row).
void SelectCompareCode(const int32_t* codes, const uint8_t* validity,
                       const uint8_t* code_match, size_t row_begin,
                       size_t row_end, SelectionVector* sel);

}  // namespace seedb::db::vec

#endif  // SEEDB_DB_VEC_SELECTION_VECTOR_H_
