// Dense group-id kernels: dictionary codes straight to flat slot indices.
//
// db/column.h dictionary-encodes every string column, so a categorical
// group-by is an array-of-ints problem: a single dimension's group id IS its
// dictionary code (with one extra slot for null), and a multi-attribute key
// composes by radix — group_id = c0 * |dict1 + 1| + c1 — as long as the
// group-space product stays below the scan's slot budget. This removes the
// packed-key hash from the fused scan's inner loop entirely; the hash path
// remains as the fallback for non-categorical or oversized group spaces.

#ifndef SEEDB_DB_VEC_GROUP_IDS_H_
#define SEEDB_DB_VEC_GROUP_IDS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/vec/selection_vector.h"

namespace seedb::db::vec {

/// \brief One dictionary-coded grouping column as raw arrays.
struct DenseDim {
  const int32_t* codes = nullptr;
  /// Validity bytes; nullptr when the column holds no nulls. A null row
  /// takes the column's LAST slot (slots - 1), mirroring the scalar dense
  /// path and keeping dictionary code 0 distinct from null.
  const uint8_t* validity = nullptr;
  /// dict_size + 1 (the +1 is the null slot).
  uint32_t slots = 0;
};

/// Composed group-space size: product of every dim's slots (1 for the empty
/// dimension list — the global aggregate's single group). Returns 0 when the
/// product exceeds `limit` (the caller falls back to the hash path).
size_t DenseSlotCount(const std::vector<DenseDim>& dims, size_t limit);

/// gids[i - row_begin] = composed radix slot of row i, for the contiguous
/// range [row_begin, row_end).
void GroupIdsRange(const DenseDim* dims, size_t num_dims, size_t row_begin,
                   size_t row_end, uint32_t* gids);

/// gids[k] = composed radix slot of row sel[k].
void GroupIdsSel(const DenseDim* dims, size_t num_dims,
                 const SelectionVector& sel, uint32_t* gids);

}  // namespace seedb::db::vec

#endif  // SEEDB_DB_VEC_GROUP_IDS_H_
