// Typed flat-array aggregation kernels over dense group ids.
//
// Each worker accumulates one contiguous slab of AggState per (aggregate,
// group slot) — agg-major layout, so one kernel call walks one contiguous
// run of accumulators indexed directly by the group-id vector, with no hash
// probe and no per-row virtual dispatch. Slabs are merged into the scan's
// persistent global state at phase end (db/shared_scan.cc), touched slots
// only, in first-seen order — the same merge order as the hash path, which
// is what keeps the two paths bit-identical (sum reassociation included).
//
// Null handling matches the scalar path exactly: a null measure row is
// skipped by SUM/MIN/MAX/AVG and by COUNT(col), counted by COUNT(*); an
// aggregate FILTER mask is tested per row inside the kernel (the branch is
// hoisted when absent).

#ifndef SEEDB_DB_VEC_AGGREGATE_KERNELS_H_
#define SEEDB_DB_VEC_AGGREGATE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/aggregates.h"
#include "db/vec/selection_vector.h"

namespace seedb::db::vec {

/// \brief One worker's flat aggregation state for one (query, grouping set):
/// `slots * num_aggs` AggStates plus the touched-slot record that makes the
/// sparse merge and group materialization possible.
struct DenseAggTable {
  uint32_t slots = 0;
  uint32_t num_aggs = 0;
  /// states[agg * slots + slot]; default-constructed AggState is the empty
  /// accumulator, so a fresh slab needs no separate zeroing pass.
  std::vector<AggState> states;
  /// seen[slot] — has this slot received a selected row this phase?
  std::vector<uint8_t> seen;
  /// Touched slots in first-seen order; group-creation order must match the
  /// scalar path's lazy creation for the global merge to assign identical
  /// group ids.
  std::vector<uint32_t> touched;
  /// rep_row[i] = first selected row of touched[i] (key materialization).
  std::vector<uint32_t> rep_row;
  /// Slab allocations performed by Init since construction; Reset never
  /// adds to it. Surfaced as SharedScanStats::agg_slab_allocations so tests
  /// can pin that multi-phase runs reuse worker slabs instead of
  /// reallocating per phase.
  size_t allocations = 0;

  void Init(uint32_t num_slots, uint32_t aggs) {
    slots = num_slots;
    num_aggs = aggs;
    states.assign(static_cast<size_t>(slots) * num_aggs, AggState{});
    seen.assign(slots, 0);
    touched.clear();
    rep_row.clear();
    ++allocations;
  }

  /// Capacity-preserving reset for slab reuse across phases: re-zeroes only
  /// the slots touched since Init / the last Reset and keeps every
  /// allocation. Equivalent to Init(slots, num_aggs) for kernel purposes
  /// but O(touched) instead of O(slots * num_aggs).
  void Reset() {
    for (uint32_t slot : touched) {
      seen[slot] = 0;
      for (uint32_t a = 0; a < num_aggs; ++a) {
        states[static_cast<size_t>(a) * slots + slot] = AggState{};
      }
    }
    touched.clear();
    rep_row.clear();
  }

  AggState* slab(uint32_t agg) {
    return states.data() + static_cast<size_t>(agg) * slots;
  }
  const AggState* slab(uint32_t agg) const {
    return states.data() + static_cast<size_t>(agg) * slots;
  }
};

/// Group creation: records every slot of `gids` not yet seen, with its first
/// row as representative. Range variant covers rows [row_begin,
/// row_begin + n); Sel variant covers sel[0..n).
void TouchGroupsRange(const uint32_t* gids, size_t row_begin, size_t n,
                      DenseAggTable* t);
void TouchGroupsSel(const uint32_t* gids, const SelectionVector& sel,
                    DenseAggTable* t);

// -- Accumulation kernels ----------------------------------------------------
//
// `slab` is one aggregate's contiguous run (DenseAggTable::slab(j)).
// `filter` is the aggregate's FILTER mask bytes (nullptr = unconditional);
// `validity` the input column's validity bytes (nullptr = no nulls).

/// COUNT: counts rows passing filter whose input is non-null (pass
/// validity = nullptr for COUNT(*), which counts every selected row).
void AccumulateCountRange(const uint32_t* gids, size_t row_begin, size_t n,
                          const uint8_t* filter, const uint8_t* validity,
                          AggState* slab);
void AccumulateCountSel(const uint32_t* gids, const SelectionVector& sel,
                        const uint8_t* filter, const uint8_t* validity,
                        AggState* slab);

/// Full accumulation (count/sum/min/max in one update, matching
/// AggState::Add) of an int64 measure column.
void AccumulateInt64Range(const uint32_t* gids, size_t row_begin, size_t n,
                          const int64_t* data, const uint8_t* filter,
                          const uint8_t* validity, AggState* slab);
void AccumulateInt64Sel(const uint32_t* gids, const SelectionVector& sel,
                        const int64_t* data, const uint8_t* filter,
                        const uint8_t* validity, AggState* slab);

/// Full accumulation of a double measure column.
void AccumulateDoubleRange(const uint32_t* gids, size_t row_begin, size_t n,
                           const double* data, const uint8_t* filter,
                           const uint8_t* validity, AggState* slab);
void AccumulateDoubleSel(const uint32_t* gids, const SelectionVector& sel,
                         const double* data, const uint8_t* filter,
                         const uint8_t* validity, AggState* slab);

}  // namespace seedb::db::vec

#endif  // SEEDB_DB_VEC_AGGREGATE_KERNELS_H_
