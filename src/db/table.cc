#include "db/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace seedb::db {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.push_back(std::make_unique<Column>(def.type));
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringPrintf("row has %zu values, schema has %zu columns",
                     values.size(), columns_.size()));
  }
  // Validate all cells before mutating anything so a failed append leaves the
  // table unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    ValueType want = schema_.column(i).type;
    bool ok = (v.type() == want) ||
              (want == ValueType::kDouble && v.is_numeric());
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name + "': expected " +
          ValueTypeToString(want) + ", got " + ValueTypeToString(v.type()));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Status s = columns_[i]->Append(values[i]);
    if (!s.ok()) return Status::Internal("append failed after validation: " +
                                         s.ToString());
  }
  ++num_rows_;
  return Status::OK();
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  SEEDB_ASSIGN_OR_RETURN(size_t idx, schema_.FindColumn(name));
  return columns_[idx].get();
}

Status Table::FinishBulkLoad() {
  size_t rows = columns_.empty() ? 0 : columns_[0]->size();
  for (size_t i = 1; i < columns_.size(); ++i) {
    if (columns_[i]->size() != rows) {
      return Status::Internal(StringPrintf(
          "bulk load column length mismatch: column 0 has %zu rows, column "
          "%zu has %zu",
          rows, i, columns_[i]->size()));
    }
  }
  num_rows_ = rows;
  return Status::OK();
}

Table Table::SelectRows(const std::vector<uint32_t>& rows) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column* dst = out.columns_[c].get();
    const Column& src = *columns_[c];
    for (uint32_t r : rows) {
      if (src.IsNull(r)) {
        dst->AppendNull();
        continue;
      }
      switch (src.type()) {
        case ValueType::kInt64:
          dst->AppendInt64(src.int64_data()[r]);
          break;
        case ValueType::kDouble:
          dst->AppendDouble(src.double_data()[r]);
          break;
        case ValueType::kString:
          dst->AppendString(src.dict_value(src.codes()[r]));
          break;
        case ValueType::kNull:
          dst->AppendNull();
          break;
      }
    }
  }
  out.num_rows_ = rows.size();
  return out;
}

size_t Table::MemoryBytes() const {
  size_t total = 0;
  for (const auto& col : columns_) {
    switch (col->type()) {
      case ValueType::kInt64:
        total += col->size() * sizeof(int64_t);
        break;
      case ValueType::kDouble:
        total += col->size() * sizeof(double);
        break;
      case ValueType::kString: {
        total += col->size() * sizeof(int32_t);
        for (size_t c = 0; c < col->dict_size(); ++c) {
          total += col->dict_value(static_cast<int32_t>(c)).size();
        }
        break;
      }
      case ValueType::kNull:
        break;
    }
  }
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  size_t n = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> cells(n + 1);
  for (const auto& def : schema_.columns()) cells[0].push_back(def.name);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r + 1].push_back(ValueAt(r, c).ToString());
    }
  }
  std::vector<size_t> widths(schema_.num_columns(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c) out += "  ";
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size(), ' ');
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        if (c) out += "  ";
        out.append(widths[c], '-');
      }
      out += "\n";
    }
  }
  if (n < num_rows_) {
    out += StringPrintf("... (%zu more rows)\n", num_rows_ - n);
  }
  return out;
}

}  // namespace seedb::db
