// Catalog: named tables plus cached statistics (the Metadata Collector's
// backing store, §3.1).

#ifndef SEEDB_DB_CATALOG_H_
#define SEEDB_DB_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "db/statistics.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

/// \brief Owns tables by name and lazily computes/caches their statistics.
///
/// Reads are thread-safe once tables are registered; registration is not
/// concurrent with queries (load first, then analyze — matching SeeDB's
/// read-only analytical setting).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table. Fails if the name is taken.
  Status AddTable(const std::string& name, Table table);

  /// Replaces or creates a table (drops cached stats for it).
  void PutTable(const std::string& name, Table table);

  Status DropTable(const std::string& name);

  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Monotonic per-name version, bumped on every AddTable / PutTable /
  /// DropTable touching `name` (including re-creations after a drop, so a
  /// re-added table never resumes an old version). 0 means the name was
  /// never registered. Cross-session cache keys embed this so any table
  /// replacement invalidates every entry derived from the old contents.
  uint64_t TableVersion(const std::string& name) const;

  /// Table statistics, computed on first request and cached. Invalidated when
  /// the table is replaced.
  Result<const TableStats*> GetStats(const std::string& name);

  /// Cramér's V between two dimension columns, computed on first request and
  /// cached (symmetric in a/b). Correlation-based pruning consults this on
  /// every Recommend() call, so the O(rows) computation must not repeat.
  Result<double> GetCramersV(const std::string& table, const std::string& a,
                             const std::string& b);

 private:
  mutable base::Mutex mutex_;
  /// Values are unique_ptrs so returned Table* / TableStats* stay stable
  /// across rehashes; the pointees are immutable once published.
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_
      GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<TableStats>> stats_
      GUARDED_BY(mutex_);
  /// Key: table + '\0' + min(a,b) + '\0' + max(a,b).
  std::unordered_map<std::string, double> cramers_cache_ GUARDED_BY(mutex_);
  /// Monotonic per-name versions; entries survive DropTable so versions
  /// never run backwards for a re-created name.
  std::unordered_map<std::string, uint64_t> versions_ GUARDED_BY(mutex_);
};

}  // namespace seedb::db

#endif  // SEEDB_DB_CATALOG_H_
