#include "db/grouping_sets.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/string_util.h"

namespace seedb::db {

std::string GroupingSetsQuery::ToSql() const {
  std::string out = "SELECT ";
  // Union of all grouping columns appears in the select list; a real DBMS
  // NULL-fills the inapplicable ones per set.
  std::vector<std::string> cols;
  for (const auto& set : grouping_sets) {
    for (const auto& c : set) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
  }
  std::vector<std::string> items = cols;
  for (const auto& agg : aggregates) items.push_back(agg.ToSql());
  out += Join(items, ", ");
  out += " FROM " + table;
  if (sample_fraction < 1.0) {
    out += StringPrintf(" TABLESAMPLE BERNOULLI (%s)",
                        FormatDouble(sample_fraction * 100.0, 4).c_str());
  }
  if (where) out += " WHERE " + where->ToSql();
  out += " GROUP BY GROUPING SETS (";
  for (size_t s = 0; s < grouping_sets.size(); ++s) {
    if (s) out += ", ";
    out += "(" + Join(grouping_sets[s], ", ") + ")";
  }
  out += ")";
  return out;
}

Result<std::vector<Table>> ExecuteGroupingSets(const Table& table,
                                               const GroupingSetsQuery& query,
                                               GroupingSetsStats* stats) {
  if (query.grouping_sets.empty()) {
    return Status::InvalidArgument("no grouping sets");
  }
  SEEDB_RETURN_IF_ERROR(internal::ValidateAggregates(table, query.aggregates));
  for (const auto& set : query.grouping_sets) {
    for (const auto& g : set) {
      SEEDB_RETURN_IF_ERROR(table.schema().FindColumn(g).status());
    }
  }
  if (query.sample_fraction <= 0.0 || query.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction outside (0, 1]");
  }

  const size_t n = table.num_rows();
  std::vector<uint8_t> mask = internal::BernoulliScanMask(
      n, query.sample_fraction, query.sample_seed);
  size_t scanned = static_cast<size_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));
  if (query.where) {
    std::vector<uint8_t> where_mask;
    SEEDB_RETURN_IF_ERROR(query.where->EvaluateMask(table, &where_mask));
    for (size_t i = 0; i < n; ++i) mask[i] &= where_mask[i];
  }
  size_t matched = static_cast<size_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));

  // One GroupKeyBuilder per set; all share the single mask evaluation.
  std::vector<internal::GroupKeyBuilder> builders;
  builders.reserve(query.grouping_sets.size());
  for (const auto& set : query.grouping_sets) {
    SEEDB_ASSIGN_OR_RETURN(
        internal::GroupKeyBuilder b,
        internal::GroupKeyBuilder::Create(table, set, mask));
    builders.push_back(std::move(b));
  }

  // Distinct FILTER masks, evaluated once.
  std::unordered_map<const Predicate*, size_t> dedup;
  std::vector<std::vector<uint8_t>> filter_storage;
  std::vector<const std::vector<uint8_t>*> filters(query.aggregates.size(),
                                                   nullptr);
  for (size_t j = 0; j < query.aggregates.size(); ++j) {
    const Predicate* f = query.aggregates[j].filter.get();
    if (!f) continue;
    auto it = dedup.find(f);
    if (it == dedup.end()) {
      filter_storage.emplace_back();
      SEEDB_RETURN_IF_ERROR(f->EvaluateMask(table, &filter_storage.back()));
      it = dedup.emplace(f, filter_storage.size() - 1).first;
    }
    filters[j] = &filter_storage[it->second];
  }

  // states[s][j][g]: set s, aggregate j, group g. All hash tables are live at
  // once — exactly the working-memory pressure the paper's bin-packing
  // optimizer constrains.
  std::vector<std::vector<std::vector<AggState>>> states(builders.size());
  for (size_t s = 0; s < builders.size(); ++s) {
    states[s].assign(query.aggregates.size(),
                     std::vector<AggState>(builders[s].num_groups()));
  }

  // Fused accumulation: per aggregate, one pass over the rows updating every
  // set. The measure column is touched once per aggregate, not once per
  // (aggregate x set) — the scan sharing this primitive exists to provide.
  for (size_t j = 0; j < query.aggregates.size(); ++j) {
    const AggregateSpec& spec = query.aggregates[j];
    const Column* col =
        spec.input.empty() ? nullptr
                           : table.ColumnByName(spec.input).ValueOrDie();
    const std::vector<uint8_t>* filter = filters[j];
    for (size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      if (filter && !(*filter)[i]) continue;
      bool count_only = (col == nullptr) ||
                        (spec.func == AggregateFunction::kCount);
      if (col && col->IsNull(i)) continue;
      double v = count_only ? 0.0 : col->NumericAt(i);
      for (size_t s = 0; s < builders.size(); ++s) {
        int32_t gid = builders[s].row_group_ids()[i];
        if (gid < 0) continue;
        if (count_only) {
          states[s][j][gid].AddCountOnly();
        } else {
          states[s][j][gid].Add(v);
        }
      }
    }
  }

  // Materialize one result table per set, rows sorted by group key.
  std::vector<Table> results;
  results.reserve(builders.size());
  size_t total_groups = 0;
  for (size_t s = 0; s < builders.size(); ++s) {
    int32_t num_groups = builders[s].num_groups();
    total_groups += static_cast<size_t>(num_groups);
    std::vector<std::vector<Value>> keys(num_groups);
    for (int32_t g = 0; g < num_groups; ++g) keys[g] = builders[s].GroupKey(g);
    SEEDB_ASSIGN_OR_RETURN(
        Table out,
        internal::MaterializeGroupedResult(table, query.grouping_sets[s],
                                           query.aggregates, std::move(keys),
                                           states[s]));
    results.push_back(std::move(out));
  }

  if (stats) {
    stats->rows_scanned = scanned;
    stats->rows_matched = matched;
    stats->total_groups = total_groups;
    stats->agg_state_bytes =
        total_groups * query.aggregates.size() * sizeof(AggState);
  }
  return results;
}

}  // namespace seedb::db
