#include "db/statistics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/histogram.h"

namespace seedb::db {
namespace {

// Frequency table over a column's non-null values, keyed by a compact code.
// Strings use dictionary codes; numerics use a value map.
std::vector<size_t> ValueFrequencies(const Column& col) {
  std::vector<size_t> freqs;
  switch (col.type()) {
    case ValueType::kString: {
      freqs.assign(col.dict_size(), 0);
      for (size_t i = 0; i < col.size(); ++i) {
        if (!col.IsNull(i)) ++freqs[col.codes()[i]];
      }
      break;
    }
    case ValueType::kInt64: {
      std::unordered_map<int64_t, size_t> m;
      for (size_t i = 0; i < col.size(); ++i) {
        if (!col.IsNull(i)) ++m[col.int64_data()[i]];
      }
      freqs.reserve(m.size());
      for (const auto& [_, c] : m) freqs.push_back(c);
      break;
    }
    case ValueType::kDouble: {
      std::unordered_map<double, size_t> m;
      for (size_t i = 0; i < col.size(); ++i) {
        if (!col.IsNull(i)) ++m[col.double_data()[i]];
      }
      freqs.reserve(m.size());
      for (const auto& [_, c] : m) freqs.push_back(c);
      break;
    }
    case ValueType::kNull:
      break;
  }
  // Drop zero-count entries (dictionary codes referenced only by null slots).
  freqs.erase(std::remove(freqs.begin(), freqs.end(), size_t{0}), freqs.end());
  return freqs;
}

}  // namespace

ColumnStats ComputeColumnStats(const Table& table, size_t col_index) {
  const Column& col = table.column(col_index);
  const ColumnDef& def = table.schema().column(col_index);
  ColumnStats stats;
  stats.name = def.name;
  stats.type = def.type;
  stats.role = def.role;
  stats.row_count = col.size();
  stats.null_count = col.null_count();
  stats.distinct_count = col.CountDistinct();

  if (col.type() == ValueType::kInt64 || col.type() == ValueType::kDouble) {
    RunningStats rs;
    for (size_t i = 0; i < col.size(); ++i) {
      if (!col.IsNull(i)) rs.Add(col.NumericAt(i));
    }
    stats.min = rs.min();
    stats.max = rs.max();
    stats.mean = rs.mean();
    stats.variance = rs.variance();
  }

  // Diversity and entropy over the value distribution.
  std::vector<size_t> freqs = ValueFrequencies(col);
  size_t total = 0;
  for (size_t f : freqs) total += f;
  if (total > 0) {
    double sum_p2 = 0.0;
    double entropy = 0.0;
    for (size_t f : freqs) {
      double p = static_cast<double>(f) / static_cast<double>(total);
      sum_p2 += p * p;
      entropy -= p * std::log(p);
    }
    stats.diversity = 1.0 - sum_p2;
    stats.normalized_entropy =
        freqs.size() > 1 ? entropy / std::log(static_cast<double>(freqs.size()))
                         : 0.0;
  }

  // Top values: exact counts via value map (column cardinalities in SeeDB's
  // dimension model are small enough for this to be cheap).
  std::map<Value, size_t> counts;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) ++counts[col.GetValue(i)];
  }
  std::vector<std::pair<Value, size_t>> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (sorted.size() > ColumnStats::kTopValues) {
    sorted.resize(ColumnStats::kTopValues);
  }
  stats.top_values = std::move(sorted);
  return stats;
}

TableStats ComputeTableStats(const Table& table, const std::string& name) {
  TableStats stats;
  stats.table_name = name;
  stats.num_rows = table.num_rows();
  stats.memory_bytes = table.MemoryBytes();
  stats.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    stats.columns.push_back(ComputeColumnStats(table, c));
  }
  return stats;
}

Result<const ColumnStats*> TableStats::Find(const std::string& column) const {
  for (const auto& c : columns) {
    if (c.name == column) return &c;
  }
  return Status::NotFound("no stats for column '" + column + "'");
}

Result<double> CramersV(const Table& table, const std::string& col_a,
                        const std::string& col_b) {
  SEEDB_ASSIGN_OR_RETURN(const Column* a, table.ColumnByName(col_a));
  SEEDB_ASSIGN_OR_RETURN(const Column* b, table.ColumnByName(col_b));
  auto code_of = [](const Column& c, size_t row) -> Result<int64_t> {
    switch (c.type()) {
      case ValueType::kString:
        return static_cast<int64_t>(c.codes()[row]);
      case ValueType::kInt64:
        return c.int64_data()[row];
      default:
        return Status::InvalidArgument(
            "Cramér's V requires categorical (string/int64) columns");
    }
  };

  // Contingency table over non-null pairs.
  std::unordered_map<int64_t, size_t> a_ids, b_ids;
  std::unordered_map<int64_t, size_t> cell_counts;  // (a_id << 32) | b_id
  std::vector<size_t> row_totals, col_totals;
  size_t n = 0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (a->IsNull(i) || b->IsNull(i)) continue;
    SEEDB_ASSIGN_OR_RETURN(int64_t av, code_of(*a, i));
    SEEDB_ASSIGN_OR_RETURN(int64_t bv, code_of(*b, i));
    auto [ita, ia] = a_ids.emplace(av, a_ids.size());
    auto [itb, ib] = b_ids.emplace(bv, b_ids.size());
    (void)ia;
    (void)ib;
    size_t ai = ita->second, bi = itb->second;
    if (ai >= row_totals.size()) row_totals.resize(ai + 1, 0);
    if (bi >= col_totals.size()) col_totals.resize(bi + 1, 0);
    ++row_totals[ai];
    ++col_totals[bi];
    ++cell_counts[static_cast<int64_t>((ai << 32) | bi)];
    ++n;
  }
  size_t r = row_totals.size();
  size_t k = col_totals.size();
  if (n == 0 || r < 2 || k < 2) {
    // Degenerate tables carry no association signal; report 0 rather than
    // failing so pruning can proceed.
    return 0.0;
  }

  double chi2 = 0.0;
  for (size_t ai = 0; ai < r; ++ai) {
    for (size_t bi = 0; bi < k; ++bi) {
      double expected = static_cast<double>(row_totals[ai]) *
                        static_cast<double>(col_totals[bi]) /
                        static_cast<double>(n);
      auto it = cell_counts.find(static_cast<int64_t>((ai << 32) | bi));
      double observed =
          it == cell_counts.end() ? 0.0 : static_cast<double>(it->second);
      double d = observed - expected;
      if (expected > 0) chi2 += d * d / expected;
    }
  }
  double denom = static_cast<double>(n) * static_cast<double>(std::min(r, k) - 1);
  double v = std::sqrt(chi2 / denom);
  return std::min(1.0, v);
}

}  // namespace seedb::db
