#include "db/schema.h"

namespace seedb::db {

const char* ColumnRoleToString(ColumnRole role) {
  switch (role) {
    case ColumnRole::kDimension:
      return "dimension";
    case ColumnRole::kMeasure:
      return "measure";
    case ColumnRole::kOther:
      return "other";
  }
  return "?";
}

Schema::Schema(std::vector<ColumnDef> columns) {
  for (auto& c : columns) {
    // Duplicate names in the literal constructor are a programming error;
    // first definition wins and later ones are ignored by lookup.
    index_.emplace(c.name, columns_.size());
    columns_.push_back(std::move(c));
  }
}

Status Schema::AddColumn(ColumnDef def) {
  if (index_.count(def.name)) {
    return Status::AlreadyExists("column '" + def.name + "' already exists");
  }
  index_.emplace(def.name, columns_.size());
  columns_.push_back(std::move(def));
  return Status::OK();
}

Result<size_t> Schema::FindColumn(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasColumn(const std::string& name) const {
  return index_.count(name) > 0;
}

std::vector<std::string> Schema::ColumnsWithRole(ColumnRole role) const {
  std::vector<std::string> out;
  for (const auto& c : columns_) {
    if (c.role == role) out.push_back(c.name);
  }
  return out;
}

std::vector<std::string> Schema::DimensionColumns() const {
  return ColumnsWithRole(ColumnRole::kDimension);
}

std::vector<std::string> Schema::MeasureColumns() const {
  return ColumnsWithRole(ColumnRole::kMeasure);
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
    if (columns_[i].role != ColumnRole::kOther) {
      out += " [";
      out += ColumnRoleToString(columns_[i].role);
      out += "]";
    }
  }
  return out;
}

}  // namespace seedb::db
