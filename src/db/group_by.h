// Grouped aggregation: the only query shape SeeDB needs from its DBMS (§2).
//
//   SELECT a, f(m) FROM T WHERE pred GROUP BY a
//
// with optional per-aggregate FILTER predicates (conditional aggregation),
// multiple aggregates per query (§3.3 "Combine Multiple Aggregates"), and an
// optional Bernoulli sample of the scan (§3.3 "Sampling").

#ifndef SEEDB_DB_GROUP_BY_H_
#define SEEDB_DB_GROUP_BY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/aggregates.h"
#include "db/predicate.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

/// \brief A single grouped-aggregation query against one table.
struct GroupByQuery {
  std::string table;
  /// Row selection; null selects all rows.
  PredicatePtr where;
  /// Zero (global aggregate), one, or several grouping columns.
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;
  /// Bernoulli sampling fraction in (0, 1]; 1 scans everything.
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0;

  /// Renders the query as SQL text (the form SeeDB would send to a real
  /// DBMS in its wrapper deployment).
  std::string ToSql() const;
};

/// Per-query execution metrics, aggregated into Engine::ExecutionStats.
struct GroupByStats {
  /// Rows the scan touched (reduced by sampling).
  size_t rows_scanned = 0;
  /// Rows passing WHERE among scanned rows.
  size_t rows_matched = 0;
  size_t num_groups = 0;
  /// groups x aggregates x sizeof(AggState): the optimizer's working-memory
  /// unit.
  size_t agg_state_bytes = 0;
};

/// Executes `query` against `table` (already resolved from the catalog).
/// Output columns: group columns (original types), then one DOUBLE column per
/// aggregate named spec.EffectiveName(). Rows are sorted by group key so
/// results are deterministic.
Result<Table> ExecuteGroupBy(const Table& table, const GroupByQuery& query,
                             GroupByStats* stats);

namespace internal {

/// Packs one cell into an int64 key part for hashing/equality: strings pack
/// their dictionary code, doubles their bit pattern, nulls a sentinel
/// distinct from any code. Key parts are table-global (the dictionary is
/// shared), so keys packed by different workers over disjoint row ranges
/// compare correctly — the property db/shared_scan.h's partial-state merge
/// relies on.
int64_t PackKeyPart(const Column& col, size_t row);

/// FNV-1a over packed key parts.
struct PackedKeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (int64_t part : key) {
      h ^= std::hash<int64_t>{}(part);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// \brief Assigns a dense group id to every row selected by a mask.
///
/// Rows with mask 0 get id -1. Groups are created lazily in first-seen order;
/// GroupKey() recovers the boxed key values for output materialization.
/// Two layouts: a dense array keyed by dictionary code for the common
/// single-string-dimension case, and a hash map over packed key tuples for
/// everything else.
class GroupKeyBuilder {
 public:
  static Result<GroupKeyBuilder> Create(const Table& table,
                                        const std::vector<std::string>& columns,
                                        const std::vector<uint8_t>& mask);

  int32_t num_groups() const { return num_groups_; }
  const std::vector<int32_t>& row_group_ids() const { return row_group_ids_; }
  /// Boxed key for group `gid`, one Value per grouping column.
  std::vector<Value> GroupKey(int32_t gid) const;

 private:
  GroupKeyBuilder() = default;

  const Table* table_ = nullptr;
  std::vector<size_t> col_indices_;
  int32_t num_groups_ = 0;
  std::vector<int32_t> row_group_ids_;
  /// For each group, the row index of one representative member.
  std::vector<uint32_t> representative_row_;
};

/// Builds a Bernoulli scan mask: each row kept with probability `fraction`.
std::vector<uint8_t> BernoulliScanMask(size_t num_rows, double fraction,
                                       uint64_t seed);

/// Materializes the grouped-aggregation output shape every executor shares
/// (ExecuteGroupBy, ExecuteGroupingSets, ExecuteSharedScan): group columns
/// with their original defs, then one DOUBLE column per aggregate, one row
/// per group sorted lexicographically by boxed key. `keys[g]` is group g's
/// boxed key (one Value per grouping column); `states[j][g]` its accumulator
/// for aggregate j. Keeping this in one place is what keeps the fused and
/// per-query paths byte-identical.
Result<Table> MaterializeGroupedResult(
    const Table& table, const std::vector<std::string>& group_cols,
    const std::vector<AggregateSpec>& aggregates,
    std::vector<std::vector<Value>> keys,
    const std::vector<std::vector<AggState>>& states);

/// Validates the pieces shared by GroupBy and GroupingSets queries.
Status ValidateAggregates(const Table& table,
                          const std::vector<AggregateSpec>& aggregates);

}  // namespace internal
}  // namespace seedb::db

#endif  // SEEDB_DB_GROUP_BY_H_
