#include "db/shared_scan.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "db/group_by.h"
#include "util/thread_pool.h"

namespace seedb::db {
namespace {

// One grouping set of one query, resolved against the table for the scan.
// Single string dimensions (the common SeeDB case) take a dense path keyed
// by dictionary code; everything else hashes packed key tuples.
struct SetSpec {
  std::vector<const Column*> cols;
  std::vector<size_t> col_indices;
  /// Set iff the set is exactly one string column.
  const Column* dense_col = nullptr;
  /// dict_size() + 1; the last slot stands for null.
  size_t dense_slots = 0;
};

// One aggregate of one query, resolved for the scan.
struct AggRuntime {
  const Column* input = nullptr;  // nullptr => COUNT(*)
  const std::vector<uint8_t>* filter = nullptr;
  bool count_only = false;
};

// One query of the batch, fully resolved: combined sample & WHERE mask
// (nullptr selects every row), grouping sets, aggregates.
struct QuerySpec {
  const std::vector<uint8_t>* mask = nullptr;
  std::vector<SetSpec> sets;
  std::vector<AggRuntime> aggs;
};

// Partial aggregation state one worker holds for one (query, grouping set).
// Groups are created lazily from the masked rows the worker actually saw;
// dense_slot / key identify each local group for the cross-worker merge.
struct LocalGroups {
  std::vector<int32_t> dense_to_local;
  std::unordered_map<std::vector<int64_t>, int32_t, internal::PackedKeyHash>
      key_to_local;
  std::vector<uint32_t> rep_row;
  std::vector<size_t> dense_slot;
  std::vector<std::vector<int64_t>> keys;
  /// states[agg][local group].
  std::vector<std::vector<AggState>> states;

  int32_t NewGroup(uint32_t row) {
    int32_t gid = static_cast<int32_t>(rep_row.size());
    rep_row.push_back(row);
    for (auto& per_agg : states) per_agg.emplace_back();
    return gid;
  }
};

// Everything one worker accumulates: groups[q][s].
using WorkerState = std::vector<std::vector<LocalGroups>>;

WorkerState MakeWorkerState(const std::vector<QuerySpec>& specs) {
  WorkerState state(specs.size());
  for (size_t q = 0; q < specs.size(); ++q) {
    state[q].resize(specs[q].sets.size());
    for (size_t s = 0; s < specs[q].sets.size(); ++s) {
      LocalGroups& lg = state[q][s];
      if (specs[q].sets[s].dense_col) {
        lg.dense_to_local.assign(specs[q].sets[s].dense_slots, -1);
      }
      lg.states.resize(specs[q].aggs.size());
    }
  }
  return state;
}

void AccumulateRow(const QuerySpec& spec, LocalGroups* lg, int32_t gid,
                   size_t row) {
  for (size_t j = 0; j < spec.aggs.size(); ++j) {
    const AggRuntime& a = spec.aggs[j];
    if (a.filter && !(*a.filter)[row]) continue;
    if (a.input && a.input->IsNull(row)) continue;
    if (a.count_only) {
      lg->states[j][gid].AddCountOnly();
    } else {
      lg->states[j][gid].Add(a.input->NumericAt(row));
    }
  }
}

// Runs one (query, set) over rows [lo, hi) of one morsel.
void ScanMorsel(const QuerySpec& spec, const SetSpec& set, LocalGroups* lg,
                size_t lo, size_t hi, std::vector<int64_t>* key_scratch) {
  const std::vector<uint8_t>* mask = spec.mask;
  if (set.dense_col) {
    const auto& codes = set.dense_col->codes();
    for (size_t i = lo; i < hi; ++i) {
      if (mask && !(*mask)[i]) continue;
      size_t slot = set.dense_col->IsNull(i) ? set.dense_slots - 1
                                             : static_cast<size_t>(codes[i]);
      int32_t gid = lg->dense_to_local[slot];
      if (gid < 0) {
        gid = lg->NewGroup(static_cast<uint32_t>(i));
        lg->dense_to_local[slot] = gid;
        lg->dense_slot.push_back(slot);
      }
      AccumulateRow(spec, lg, gid, i);
    }
    return;
  }
  for (size_t i = lo; i < hi; ++i) {
    if (mask && !(*mask)[i]) continue;
    key_scratch->clear();
    for (const Column* col : set.cols) {
      key_scratch->push_back(internal::PackKeyPart(*col, i));
    }
    auto [it, inserted] = lg->key_to_local.emplace(
        *key_scratch, static_cast<int32_t>(lg->rep_row.size()));
    if (inserted) {
      lg->NewGroup(static_cast<uint32_t>(i));
      lg->keys.push_back(*key_scratch);
    }
    AccumulateRow(spec, lg, it->second, i);
  }
}

// One worker: steal morsels off the shared counter until none remain. Each
// worker's own additions happen in increasing row order, so partial states
// stay deterministic per worker-to-morsel assignment.
void WorkerLoop(const std::vector<QuerySpec>& specs, size_t num_rows,
                size_t morsel_rows, std::atomic<size_t>* next_morsel,
                size_t num_morsels, WorkerState* state) {
  std::vector<int64_t> key_scratch;
  for (size_t m = next_morsel->fetch_add(1, std::memory_order_relaxed);
       m < num_morsels;
       m = next_morsel->fetch_add(1, std::memory_order_relaxed)) {
    size_t lo = m * morsel_rows;
    size_t hi = std::min(num_rows, lo + morsel_rows);
    for (size_t q = 0; q < specs.size(); ++q) {
      for (size_t s = 0; s < specs[q].sets.size(); ++s) {
        ScanMorsel(specs[q], specs[q].sets[s], &(*state)[q][s], lo, hi,
                   &key_scratch);
      }
    }
  }
}

// Merged (cross-worker) groups for one (query, set).
struct GlobalGroups {
  std::vector<int32_t> dense_to_global;
  std::unordered_map<std::vector<int64_t>, int32_t, internal::PackedKeyHash>
      key_to_global;
  std::vector<uint32_t> rep_row;
  std::vector<std::vector<AggState>> states;
};

GlobalGroups MergePartials(const SetSpec& set, size_t num_aggs,
                           const std::vector<WorkerState>& workers, size_t q,
                           size_t s) {
  GlobalGroups global;
  global.states.resize(num_aggs);
  if (set.dense_col) global.dense_to_global.assign(set.dense_slots, -1);
  for (const WorkerState& worker : workers) {
    const LocalGroups& lg = worker[q][s];
    for (size_t l = 0; l < lg.rep_row.size(); ++l) {
      int32_t gid;
      if (set.dense_col) {
        int32_t& slot_gid = global.dense_to_global[lg.dense_slot[l]];
        if (slot_gid < 0) {
          slot_gid = static_cast<int32_t>(global.rep_row.size());
          global.rep_row.push_back(lg.rep_row[l]);
          for (auto& per_agg : global.states) per_agg.emplace_back();
        }
        gid = slot_gid;
      } else {
        auto [it, inserted] = global.key_to_global.emplace(
            lg.keys[l], static_cast<int32_t>(global.rep_row.size()));
        if (inserted) {
          global.rep_row.push_back(lg.rep_row[l]);
          for (auto& per_agg : global.states) per_agg.emplace_back();
        }
        gid = it->second;
      }
      for (size_t j = 0; j < num_aggs; ++j) {
        global.states[j][gid].Merge(lg.states[j][l]);
      }
    }
  }
  return global;
}

// Materializes one (query, set) result through the shared grouped-output
// shape (internal::MaterializeGroupedResult), so the fused path stays
// byte-identical to ExecuteGroupingSets by construction.
Result<Table> MaterializeSet(const Table& table, const GroupingSetsQuery& query,
                             size_t set_index, const SetSpec& set,
                             const GlobalGroups& global) {
  int32_t num_groups = static_cast<int32_t>(global.rep_row.size());
  std::vector<std::vector<Value>> keys(num_groups);
  for (int32_t g = 0; g < num_groups; ++g) {
    keys[g].reserve(set.col_indices.size());
    for (size_t idx : set.col_indices) {
      keys[g].push_back(table.column(idx).GetValue(global.rep_row[g]));
    }
  }
  return internal::MaterializeGroupedResult(
      table, query.grouping_sets[set_index], query.aggregates, std::move(keys),
      global.states);
}

// Shared mask evaluation: every distinct predicate / sample configuration
// across the whole batch is evaluated exactly once.
class MaskCache {
 public:
  explicit MaskCache(const Table& table) : table_(table) {}

  /// All-ones when fraction >= 1 (returns nullptr: "no mask").
  const std::vector<uint8_t>* SampleMask(double fraction, uint64_t seed) {
    if (fraction >= 1.0) return nullptr;
    auto key = std::make_pair(fraction, seed);
    auto it = sample_.find(key);
    if (it == sample_.end()) {
      it = sample_
               .emplace(key, internal::BernoulliScanMask(table_.num_rows(),
                                                         fraction, seed))
               .first;
    }
    return &it->second;
  }

  Result<const std::vector<uint8_t>*> PredicateMask(const Predicate* pred) {
    if (pred == nullptr) return nullptr;
    auto it = predicate_.find(pred);
    if (it == predicate_.end()) {
      std::vector<uint8_t> mask;
      SEEDB_RETURN_IF_ERROR(pred->EvaluateMask(table_, &mask));
      it = predicate_.emplace(pred, std::move(mask)).first;
    }
    return &it->second;
  }

  /// sample & where combined; nullptr when both are absent.
  Result<const std::vector<uint8_t>*> CombinedMask(double fraction,
                                                   uint64_t seed,
                                                   const Predicate* where) {
    const std::vector<uint8_t>* sample = SampleMask(fraction, seed);
    SEEDB_ASSIGN_OR_RETURN(const std::vector<uint8_t>* pred,
                           PredicateMask(where));
    if (sample == nullptr) return pred;
    if (pred == nullptr) return sample;
    auto key = std::make_pair(sample, pred);
    auto it = combined_.find(key);
    if (it == combined_.end()) {
      std::vector<uint8_t> both(table_.num_rows());
      for (size_t i = 0; i < both.size(); ++i) {
        both[i] = (*sample)[i] & (*pred)[i];
      }
      it = combined_.emplace(key, std::move(both)).first;
    }
    return &it->second;
  }

 private:
  const Table& table_;
  std::map<std::pair<double, uint64_t>, std::vector<uint8_t>> sample_;
  std::map<const Predicate*, std::vector<uint8_t>> predicate_;
  std::map<std::pair<const std::vector<uint8_t>*, const std::vector<uint8_t>*>,
           std::vector<uint8_t>>
      combined_;
};

Status ValidateQuery(const Table& table, const GroupingSetsQuery& query) {
  if (query.grouping_sets.empty()) {
    return Status::InvalidArgument("no grouping sets");
  }
  SEEDB_RETURN_IF_ERROR(internal::ValidateAggregates(table, query.aggregates));
  for (const auto& set : query.grouping_sets) {
    for (const auto& g : set) {
      SEEDB_RETURN_IF_ERROR(table.schema().FindColumn(g).status());
    }
  }
  if (query.sample_fraction <= 0.0 || query.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction outside (0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<Table>>> ExecuteSharedScan(
    const Table& table, const std::vector<GroupingSetsQuery>& queries,
    const SharedScanOptions& options, SharedScanStats* stats) {
  if (queries.empty()) {
    return Status::InvalidArgument("shared scan needs at least one query");
  }
  if (options.morsel_rows == 0) {
    return Status::InvalidArgument("morsel_rows must be positive");
  }
  for (const auto& query : queries) {
    SEEDB_RETURN_IF_ERROR(ValidateQuery(table, query));
  }

  const size_t n = table.num_rows();

  // Resolve every query against the table, evaluating each distinct sample /
  // WHERE / FILTER configuration exactly once for the whole batch.
  MaskCache masks(table);
  std::vector<QuerySpec> specs(queries.size());
  size_t rows_scanned = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const GroupingSetsQuery& query = queries[q];
    QuerySpec& spec = specs[q];
    SEEDB_ASSIGN_OR_RETURN(
        spec.mask, masks.CombinedMask(query.sample_fraction, query.sample_seed,
                                      query.where.get()));
    const std::vector<uint8_t>* sample =
        masks.SampleMask(query.sample_fraction, query.sample_seed);
    size_t sampled =
        sample == nullptr
            ? n
            : static_cast<size_t>(
                  std::count(sample->begin(), sample->end(), uint8_t{1}));
    rows_scanned = std::max(rows_scanned, sampled);

    for (const auto& set : query.grouping_sets) {
      SetSpec resolved;
      for (const auto& g : set) {
        SEEDB_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(g));
        resolved.col_indices.push_back(idx);
        resolved.cols.push_back(&table.column(idx));
      }
      if (resolved.cols.size() == 1 &&
          resolved.cols[0]->type() == ValueType::kString) {
        resolved.dense_col = resolved.cols[0];
        resolved.dense_slots = resolved.dense_col->dict_size() + 1;
      }
      spec.sets.push_back(std::move(resolved));
    }
    for (const auto& agg : query.aggregates) {
      AggRuntime rt;
      if (!agg.input.empty()) {
        SEEDB_ASSIGN_OR_RETURN(rt.input, table.ColumnByName(agg.input));
      }
      rt.count_only =
          rt.input == nullptr || agg.func == AggregateFunction::kCount;
      SEEDB_ASSIGN_OR_RETURN(rt.filter, masks.PredicateMask(agg.filter.get()));
      spec.aggs.push_back(rt);
    }
  }

  // The morsel-driven pass: workers steal fixed-size row ranges off a shared
  // counter and fold them into private partial states.
  const size_t num_morsels = (n + options.morsel_rows - 1) / options.morsel_rows;
  size_t threads = options.num_threads == 0
                       ? std::max<size_t>(1, std::thread::hardware_concurrency())
                       : options.num_threads;
  threads = std::max<size_t>(1, std::min(threads, std::max<size_t>(1, num_morsels)));

  std::vector<WorkerState> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) workers.push_back(MakeWorkerState(specs));

  std::atomic<size_t> next_morsel{0};
  if (threads == 1) {
    WorkerLoop(specs, n, options.morsel_rows, &next_morsel, num_morsels,
               &workers[0]);
  } else {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futures;
    futures.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      WorkerState* state = &workers[t];
      futures.push_back(pool.Submit([&specs, n, &options, &next_morsel,
                                     num_morsels, state] {
        WorkerLoop(specs, n, options.morsel_rows, &next_morsel, num_morsels,
                   state);
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Merge partials and materialize, per (query, set).
  std::vector<std::vector<Table>> results(queries.size());
  size_t total_groups = 0;
  size_t agg_state_bytes = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    results[q].reserve(specs[q].sets.size());
    for (size_t s = 0; s < specs[q].sets.size(); ++s) {
      GlobalGroups global =
          MergePartials(specs[q].sets[s], specs[q].aggs.size(), workers, q, s);
      // A global aggregate (empty grouping set) always has its one group,
      // even when no row passes the mask — matching GroupKeyBuilder, which
      // creates group 0 unconditionally. The representative row is never
      // dereferenced (the key has no columns).
      if (specs[q].sets[s].cols.empty() && global.rep_row.empty()) {
        global.rep_row.push_back(0);
        for (auto& per_agg : global.states) per_agg.emplace_back();
      }
      total_groups += global.rep_row.size();
      agg_state_bytes +=
          global.rep_row.size() * specs[q].aggs.size() * sizeof(AggState);
      SEEDB_ASSIGN_OR_RETURN(
          Table out,
          MaterializeSet(table, queries[q], s, specs[q].sets[s], global));
      results[q].push_back(std::move(out));
    }
  }

  if (stats) {
    stats->rows_scanned = rows_scanned;
    stats->total_groups = total_groups;
    stats->agg_state_bytes = agg_state_bytes;
    stats->morsels = num_morsels;
    stats->threads_used = threads;
  }
  return results;
}

}  // namespace seedb::db
