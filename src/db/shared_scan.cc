#include "db/shared_scan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "db/group_by.h"
#include "db/scan_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "db/vec/aggregate_kernels.h"
#include "db/vec/group_ids.h"
#include "db/vec/simd/simd.h"
#include "util/thread_pool.h"

namespace seedb::db {
namespace {

// One grouping set of one query, resolved against the table for the scan.
// Three inner-loop modes, decided once at Init:
//   * vectorized — every grouping column is dictionary-coded and the
//     composed group space fits the dense-slot budget: group ids come from
//     the db/vec/ radix kernels and aggregates accumulate into flat slabs;
//   * scalar dense — exactly one string column but vectorization is off (or
//     the dictionary exceeds the budget): per-row code-indexed array;
//   * hash — anything else: packed key tuples row at a time.
struct SetSpec {
  std::vector<const Column*> cols;
  std::vector<size_t> col_indices;
  /// Set iff the set runs the scalar dense path (one string column).
  const Column* dense_col = nullptr;
  /// Group-space slot count for either dense mode (scalar: dict_size() + 1
  /// with the last slot standing for null; vectorized: the radix product of
  /// per-column slot counts). 0 for the hash path.
  size_t dense_slots = 0;
  /// True when the set takes the vectorized kernels.
  bool vectorized = false;
  /// True when this (query, set) pair was adopted from the cross-session
  /// cache at Init: its merged state is already final, so workers never
  /// scan or merge it again.
  bool adopted = false;
  /// Raw column arrays for the vectorized group-id kernels.
  std::vector<vec::DenseDim> dims;
};

// One aggregate of one query, resolved for the scan.
struct AggRuntime {
  const Column* input = nullptr;  // nullptr => COUNT(*)
  const std::vector<uint8_t>* filter = nullptr;
  bool count_only = false;
};

// One query of the batch, fully resolved: combined sample & WHERE mask
// (nullptr selects every row), grouping sets, aggregates.
struct QuerySpec {
  const std::vector<uint8_t>* mask = nullptr;
  /// Sample mask alone (nullptr = unsampled) — the rows the scan *visits*
  /// for this query, the unit rows_scanned accounting uses.
  const std::vector<uint8_t>* sample_mask = nullptr;
  std::vector<SetSpec> sets;
  std::vector<AggRuntime> aggs;
  /// Index into the scan's selection-recipe list; -1 = no row filter, the
  /// vectorized kernels walk the whole morsel directly.
  int recipe = -1;
};

// How a vectorized query's row filter becomes a per-morsel selection vector.
// kMask converts a cached full-table byte mask (the general path). The
// kCompare kinds are the fused predicate->selection path: a simple WHERE
// comparison is evaluated over the raw column for [lo, hi) straight into
// the selection by the typed compare kernels — no full-table predicate
// mask is ever materialized for such queries. Recipes are deduplicated by
// fingerprint (mask pointer, or column + op + sample mask + the literal
// normalized into the kernel's own domain — see SameRecipe), which
// preserves the sharing pointer-identical masks gave: queries with the same
// filter still build one selection per morsel between them, however the
// literal was spelled.
struct SelRecipe {
  enum class Kind { kMask, kCompareInt64, kCompareDouble, kCompareCode };
  Kind kind = Kind::kMask;
  /// kMask: the combined sample & WHERE byte mask.
  const std::vector<uint8_t>* mask = nullptr;
  /// kCompare*: sample mask Refine()d in after the compare (nullptr =
  /// unsampled).
  const std::vector<uint8_t>* sample = nullptr;
  const Column* column = nullptr;
  CompareOp op = CompareOp::kEq;
  /// Literal as written — consulted only for kCompareCode dedup (the truth
  /// table derives from it via Value comparison, which is itself numeric
  /// across int/double spellings). The typed kinds dedup on the
  /// kernel-domain fields below instead.
  Value literal;
  int64_t literal_i64 = 0;
  double literal_f64 = 0.0;
  /// kCompareCode: per-dictionary-code truth table, built once per recipe
  /// exactly as ComparisonPredicate::EvaluateMask builds it.
  std::vector<uint8_t> code_match;
};

// Recipe equality for dedup. Literals compare in the kernel's own domain,
// never "as written": `x = 1` and `x = 1.0` resolve to one recipe (one
// SelectionVector per morsel serves both), `+0.0` and `-0.0` collapse under
// IEEE equality, and recipes over different columns (hence different types)
// can never merge because the column pointer differs. This is the same
// normalization db/scan_cache.h applies when the fingerprint graduates to a
// cross-session cache key.
bool SameRecipe(const SelRecipe& a, const SelRecipe& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == SelRecipe::Kind::kMask) return a.mask == b.mask;
  if (a.column != b.column || a.op != b.op || a.sample != b.sample) {
    return false;
  }
  switch (a.kind) {
    case SelRecipe::Kind::kCompareInt64:
      return a.literal_i64 == b.literal_i64;
    case SelRecipe::Kind::kCompareDouble:
      return a.literal_f64 == b.literal_f64;
    default:
      // kCompareCode: Value equality is numeric across int/double spellings
      // and the per-code truth table is a pure function of (op, literal).
      return a.literal == b.literal;
  }
}

// Mirror of predicate.cc's CompareValues (file-local there) for building
// code_match truth tables with identical semantics.
bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// Partial aggregation state one worker holds for one (query, grouping set).
// Groups are created lazily from the masked rows the worker actually saw;
// dense_slot / key identify each local group for the cross-worker merge.
struct LocalGroups {
  std::vector<int32_t> dense_to_local;
  std::unordered_map<std::vector<int64_t>, int32_t, internal::PackedKeyHash>
      key_to_local;
  std::vector<uint32_t> rep_row;
  std::vector<size_t> dense_slot;
  std::vector<std::vector<int64_t>> keys;
  /// states[agg][local group].
  std::vector<std::vector<AggState>> states;

  int32_t NewGroup(uint32_t row) {
    int32_t gid = static_cast<int32_t>(rep_row.size());
    rep_row.push_back(row);
    for (auto& per_agg : states) per_agg.emplace_back();
    return gid;
  }

  /// Capacity-preserving per-phase reset, mirroring DenseAggTable::Reset:
  /// only the dense_to_local slots mapped last phase are un-mapped (via the
  /// dense_slot record) instead of re-assigning the whole array.
  void Reset() {
    for (size_t slot : dense_slot) dense_to_local[slot] = -1;
    key_to_local.clear();
    rep_row.clear();
    dense_slot.clear();
    keys.clear();
    for (auto& per_agg : states) per_agg.clear();
  }
};

// Per-worker accumulation state for one (query, grouping set): the hash /
// scalar-dense LocalGroups or the vectorized flat slab, per the set's mode.
struct SetAccum {
  LocalGroups lg;
  vec::DenseAggTable dense;
};

// Everything one worker accumulates during one phase: accums[q][s].
using WorkerState = std::vector<std::vector<SetAccum>>;

// Prepares one worker's accumulation state for a phase. States persist in
// the Impl across phases: each (query, set) is allocated lazily the first
// phase the worker scans it and RESET (capacity-preserving) on reuse, so
// dense slabs are allocated exactly once per worker for the scan's
// lifetime no matter how many phases run — pinned by
// SharedScanStats::agg_slab_allocations.
void PrepareWorkerState(const std::vector<QuerySpec>& specs,
                        const std::vector<uint8_t>& active,
                        WorkerState* state) {
  if (state->size() != specs.size()) {
    state->assign(specs.size(), std::vector<SetAccum>{});
  }
  for (size_t q = 0; q < specs.size(); ++q) {
    if (!active[q]) continue;
    std::vector<SetAccum>& sets = (*state)[q];
    const bool fresh = sets.empty();
    if (fresh) sets.resize(specs[q].sets.size());
    for (size_t s = 0; s < specs[q].sets.size(); ++s) {
      const SetSpec& set = specs[q].sets[s];
      if (set.adopted) continue;  // cache-adopted pairs never accumulate
      SetAccum& accum = sets[s];
      if (set.vectorized) {
        if (fresh) {
          accum.dense.Init(static_cast<uint32_t>(set.dense_slots),
                           static_cast<uint32_t>(specs[q].aggs.size()));
        } else {
          accum.dense.Reset();
        }
        continue;
      }
      if (fresh) {
        if (set.dense_col) {
          accum.lg.dense_to_local.assign(set.dense_slots, -1);
        }
        accum.lg.states.resize(specs[q].aggs.size());
      } else {
        accum.lg.Reset();
      }
    }
  }
}

void AccumulateRow(const QuerySpec& spec, LocalGroups* lg, int32_t gid,
                   size_t row) {
  for (size_t j = 0; j < spec.aggs.size(); ++j) {
    const AggRuntime& a = spec.aggs[j];
    if (a.filter && !(*a.filter)[row]) continue;
    if (a.input && a.input->IsNull(row)) continue;
    if (a.count_only) {
      lg->states[j][gid].AddCountOnly();
    } else {
      lg->states[j][gid].Add(a.input->NumericAt(row));
    }
  }
}

// Runs one (query, set) over rows [lo, hi) of one morsel.
void ScanMorsel(const QuerySpec& spec, const SetSpec& set, LocalGroups* lg,
                size_t lo, size_t hi, std::vector<int64_t>* key_scratch) {
  const std::vector<uint8_t>* mask = spec.mask;
  if (set.dense_col) {
    const auto& codes = set.dense_col->codes();
    for (size_t i = lo; i < hi; ++i) {
      if (mask && !(*mask)[i]) continue;
      size_t slot = set.dense_col->IsNull(i) ? set.dense_slots - 1
                                             : static_cast<size_t>(codes[i]);
      int32_t gid = lg->dense_to_local[slot];
      if (gid < 0) {
        gid = lg->NewGroup(static_cast<uint32_t>(i));
        lg->dense_to_local[slot] = gid;
        lg->dense_slot.push_back(slot);
      }
      AccumulateRow(spec, lg, gid, i);
    }
    return;
  }
  for (size_t i = lo; i < hi; ++i) {
    if (mask && !(*mask)[i]) continue;
    key_scratch->clear();
    for (const Column* col : set.cols) {
      key_scratch->push_back(internal::PackKeyPart(*col, i));
    }
    auto [it, inserted] = lg->key_to_local.emplace(
        *key_scratch, static_cast<int32_t>(lg->rep_row.size()));
    if (inserted) {
      lg->NewGroup(static_cast<uint32_t>(i));
      lg->keys.push_back(*key_scratch);
    }
    AccumulateRow(spec, lg, it->second, i);
  }
}

// EvaluateIntoSelection: materializes one recipe's selection for morsel
// rows [lo, hi). kMask converts the cached byte mask; the kCompare kinds
// run the typed compare kernel over the raw column slice (then Refine by
// the sample mask when the query samples) — the WHERE mask never exists.
// `use_simd` picks the explicit-SIMD kernel tier; both tiers emit
// identical selections.
void EvaluateIntoSelection(const SelRecipe& r, size_t lo, size_t hi,
                           bool use_simd, vec::SelectionVector* sel) {
  switch (r.kind) {
    case SelRecipe::Kind::kMask:
      if (use_simd) {
        vec::simd::SelectFromMask(r.mask->data(), lo, hi, sel);
      } else {
        vec::SelectFromMask(r.mask->data(), lo, hi, sel);
      }
      return;  // the combined mask already includes any sampling
    case SelRecipe::Kind::kCompareInt64: {
      const uint8_t* validity =
          r.column->validity().empty() ? nullptr : r.column->validity().data();
      const int64_t* data = r.column->int64_data().data();
      if (use_simd) {
        vec::simd::SelectCompareInt64(data, validity, r.op, r.literal_i64, lo,
                                      hi, sel);
      } else {
        vec::SelectCompareInt64(data, validity, r.op, r.literal_i64, lo, hi,
                                sel);
      }
      break;
    }
    case SelRecipe::Kind::kCompareDouble: {
      const uint8_t* validity =
          r.column->validity().empty() ? nullptr : r.column->validity().data();
      const double* data = r.column->double_data().data();
      if (use_simd) {
        vec::simd::SelectCompareDouble(data, validity, r.op, r.literal_f64, lo,
                                       hi, sel);
      } else {
        vec::SelectCompareDouble(data, validity, r.op, r.literal_f64, lo, hi,
                                 sel);
      }
      break;
    }
    case SelRecipe::Kind::kCompareCode: {
      const uint8_t* validity =
          r.column->validity().empty() ? nullptr : r.column->validity().data();
      if (use_simd) {
        vec::simd::SelectCompareCode(r.column->codes().data(), validity,
                                     r.code_match.data(), lo, hi, sel);
      } else {
        vec::SelectCompareCode(r.column->codes().data(), validity,
                               r.code_match.data(), lo, hi, sel);
      }
      break;
    }
  }
  if (r.sample != nullptr) {
    if (use_simd) {
      vec::simd::Refine(r.sample->data(), sel);
    } else {
      vec::Refine(r.sample->data(), sel);
    }
  }
}

// Per-worker, per-morsel scratch for the vectorized inner loop: selections
// indexed flat by recipe id (built lazily per morsel, shared by every query
// with the same recipe — the old linear pointer-keyed lookup is gone) and
// the reusable group-id buffer. Selection capacity persists across morsels.
struct VecScratch {
  std::vector<vec::SelectionVector> selections;
  std::vector<uint8_t> built;
  std::vector<uint32_t> gids;
  bool use_simd = false;

  void Prepare(size_t num_recipes, bool simd) {
    selections.resize(num_recipes);
    built.assign(num_recipes, 0);
    use_simd = simd;
  }

  void StartMorsel() { std::fill(built.begin(), built.end(), 0); }

  const vec::SelectionVector* Selection(const SelRecipe& recipe, int id,
                                        size_t lo, size_t hi) {
    const size_t idx = static_cast<size_t>(id);
    if (!built[idx]) {
      EvaluateIntoSelection(recipe, lo, hi, use_simd, &selections[idx]);
      built[idx] = 1;
    }
    return &selections[idx];
  }
};

// The vectorized inner loop for one (query, set) over one morsel: group ids
// once (radix kernel), group creation once (touch kernel), then one typed
// flat-slab kernel per aggregate. `sel == nullptr` means the query selects
// the whole morsel and the kernels walk [lo, hi) directly.
void ScanMorselVec(const QuerySpec& spec, const SetSpec& set, SetAccum* accum,
                   size_t lo, size_t hi, const vec::SelectionVector* sel,
                   VecScratch* scratch) {
  const bool use_simd = scratch->use_simd;
  const size_t n = sel != nullptr ? sel->size() : hi - lo;
  if (n == 0) return;
  if (scratch->gids.size() < n) scratch->gids.resize(n);
  uint32_t* gids = scratch->gids.data();
  vec::DenseAggTable* t = &accum->dense;
  if (sel != nullptr) {
    vec::GroupIdsSel(set.dims.data(), set.dims.size(), *sel, gids);
    vec::TouchGroupsSel(gids, *sel, t);
  } else {
    vec::GroupIdsRange(set.dims.data(), set.dims.size(), lo, hi, gids);
    vec::TouchGroupsRange(gids, lo, n, t);
  }
  for (size_t j = 0; j < spec.aggs.size(); ++j) {
    const AggRuntime& a = spec.aggs[j];
    const uint8_t* filter = a.filter != nullptr ? a.filter->data() : nullptr;
    const uint8_t* validity =
        (a.input != nullptr && !a.input->validity().empty())
            ? a.input->validity().data()
            : nullptr;
    AggState* slab = t->slab(static_cast<uint32_t>(j));
    if (a.count_only) {
      // COUNT(*) has no input (validity nullptr counts every selected row);
      // COUNT(col) skips null inputs via the column's validity bytes.
      if (sel != nullptr) {
        vec::AccumulateCountSel(gids, *sel, filter, validity, slab);
      } else if (use_simd) {
        vec::simd::AccumulateCountRange(gids, lo, n, filter, validity, slab);
      } else {
        vec::AccumulateCountRange(gids, lo, n, filter, validity, slab);
      }
      continue;
    }
    if (a.input->type() == ValueType::kInt64) {
      const int64_t* data = a.input->int64_data().data();
      if (sel != nullptr) {
        vec::AccumulateInt64Sel(gids, *sel, data, filter, validity, slab);
      } else if (use_simd) {
        vec::simd::AccumulateInt64Range(gids, lo, n, data, filter, validity,
                                        slab);
      } else {
        vec::AccumulateInt64Range(gids, lo, n, data, filter, validity, slab);
      }
    } else {
      const double* data = a.input->double_data().data();
      if (sel != nullptr) {
        vec::AccumulateDoubleSel(gids, *sel, data, filter, validity, slab);
      } else if (use_simd) {
        vec::simd::AccumulateDoubleRange(gids, lo, n, data, filter, validity,
                                         slab);
      } else {
        vec::AccumulateDoubleRange(gids, lo, n, data, filter, validity, slab);
      }
    }
  }
}

// One worker: steal morsels off the shared counter until none remain or the
// cancel token fires. `morsel_ids` lists the morsels of the phase grid this
// pass covers — the full grid on a normal phase, only the missed morsels
// when resuming a cut-short one. The token is checked at morsel-claim time
// only, so a claimed morsel always completes for every active query — all
// partial states describe exactly the same row set. Each worker's own
// additions happen in increasing row order, so partial states stay
// deterministic per worker-to-morsel assignment. `completed` marks each
// scanned morsel (distinct bytes per morsel, so workers never contend) —
// the record a later ResumeAfterCancel() scans the complement of.
void WorkerLoop(const std::vector<QuerySpec>& specs,
                const std::vector<SelRecipe>& recipes,
                const std::vector<uint8_t>& active, size_t row_begin,
                size_t row_end, size_t morsel_rows,
                const std::vector<size_t>& morsel_ids, bool use_simd,
                std::atomic<size_t>* next_morsel,
                const std::atomic<bool>* cancel,
                std::atomic<size_t>* morsels_done,
                std::atomic<size_t>* vec_morsels,
                std::atomic<size_t>* simd_morsels,
                std::vector<uint8_t>* completed, WorkerState* state) {
  std::vector<int64_t> key_scratch;
  VecScratch vec_scratch;
  vec_scratch.Prepare(recipes.size(), use_simd);
  for (size_t i = next_morsel->fetch_add(1, std::memory_order_relaxed);
       i < morsel_ids.size();
       i = next_morsel->fetch_add(1, std::memory_order_relaxed)) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    const size_t m = morsel_ids[i];
    size_t lo = row_begin + m * morsel_rows;
    size_t hi = std::min(row_end, lo + morsel_rows);
    vec_scratch.StartMorsel();
    bool used_vec = false;
    for (size_t q = 0; q < specs.size(); ++q) {
      if (!active[q]) continue;
      for (size_t s = 0; s < specs[q].sets.size(); ++s) {
        const SetSpec& set = specs[q].sets[s];
        if (set.adopted) continue;  // final state came from the cache
        if (set.vectorized) {
          const int rid = specs[q].recipe;
          const vec::SelectionVector* sel =
              rid >= 0 ? vec_scratch.Selection(recipes[rid], rid, lo, hi)
                       : nullptr;
          ScanMorselVec(specs[q], set, &(*state)[q][s], lo, hi, sel,
                        &vec_scratch);
          used_vec = true;
          continue;
        }
        ScanMorsel(specs[q], set, &(*state)[q][s].lg, lo, hi, &key_scratch);
      }
    }
    (*completed)[m] = 1;
    morsels_done->fetch_add(1, std::memory_order_relaxed);
    if (used_vec) {
      vec_morsels->fetch_add(1, std::memory_order_relaxed);
      if (use_simd) simd_morsels->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

// Merged (cross-worker, cross-phase) groups for one (query, set). Persists
// across phases; each phase's worker partials fold into it.
struct GlobalGroups {
  std::vector<int32_t> dense_to_global;
  std::unordered_map<std::vector<int64_t>, int32_t, internal::PackedKeyHash>
      key_to_global;
  std::vector<uint32_t> rep_row;
  std::vector<std::vector<AggState>> states;
};

// Folds one worker's partial state for one (query, set) into the persistent
// global state. Key parts are table-global (dictionary codes / bit
// patterns), so partials from different workers and phases merge correctly.
void MergeWorkerInto(const SetSpec& set, size_t num_aggs,
                     const LocalGroups& lg, GlobalGroups* global) {
  for (size_t l = 0; l < lg.rep_row.size(); ++l) {
    int32_t gid;
    if (set.dense_col) {
      int32_t& slot_gid = global->dense_to_global[lg.dense_slot[l]];
      if (slot_gid < 0) {
        slot_gid = static_cast<int32_t>(global->rep_row.size());
        global->rep_row.push_back(lg.rep_row[l]);
        for (auto& per_agg : global->states) per_agg.emplace_back();
      }
      gid = slot_gid;
    } else {
      auto [it, inserted] = global->key_to_global.emplace(
          lg.keys[l], static_cast<int32_t>(global->rep_row.size()));
      if (inserted) {
        global->rep_row.push_back(lg.rep_row[l]);
        for (auto& per_agg : global->states) per_agg.emplace_back();
      }
      gid = it->second;
    }
    for (size_t j = 0; j < num_aggs; ++j) {
      global->states[j][gid].Merge(lg.states[j][l]);
    }
  }
}

// Folds one worker's vectorized flat slab into the persistent global state:
// touched slots only, in first-seen order — the same group-creation order as
// the scalar path's lazy creation, so global group ids (and therefore the
// float merge order) are identical whichever inner loop ran. That is what
// makes dense and hash paths bit-identical, not merely close.
void MergeDenseInto(size_t num_aggs, const vec::DenseAggTable& t,
                    GlobalGroups* global) {
  for (size_t i = 0; i < t.touched.size(); ++i) {
    const uint32_t slot = t.touched[i];
    int32_t& slot_gid = global->dense_to_global[slot];
    if (slot_gid < 0) {
      slot_gid = static_cast<int32_t>(global->rep_row.size());
      global->rep_row.push_back(t.rep_row[i]);
      for (auto& per_agg : global->states) per_agg.emplace_back();
    }
    for (size_t j = 0; j < num_aggs; ++j) {
      global->states[j][slot_gid].Merge(
          t.slab(static_cast<uint32_t>(j))[slot]);
    }
  }
}

// Materializes one (query, set) result through the shared grouped-output
// shape (internal::MaterializeGroupedResult), so the fused path stays
// byte-identical to ExecuteGroupingSets by construction. Works on partial
// (mid-scan) state just as well as on final state — the caller decides when
// the numbers mean something.
Result<Table> MaterializeSet(const Table& table, const GroupingSetsQuery& query,
                             size_t set_index, const SetSpec& set,
                             const GlobalGroups& global) {
  // A global aggregate (empty grouping set) always has its one group, even
  // when no row passes the mask — matching GroupKeyBuilder, which creates
  // group 0 unconditionally.
  if (set.cols.empty() && global.rep_row.empty()) {
    std::vector<std::vector<Value>> keys(1);
    std::vector<std::vector<AggState>> states(query.aggregates.size());
    for (auto& per_agg : states) per_agg.emplace_back();
    return internal::MaterializeGroupedResult(
        table, query.grouping_sets[set_index], query.aggregates,
        std::move(keys), states);
  }
  int32_t num_groups = static_cast<int32_t>(global.rep_row.size());
  std::vector<std::vector<Value>> keys(num_groups);
  for (int32_t g = 0; g < num_groups; ++g) {
    keys[g].reserve(set.col_indices.size());
    for (size_t idx : set.col_indices) {
      keys[g].push_back(table.column(idx).GetValue(global.rep_row[g]));
    }
  }
  return internal::MaterializeGroupedResult(
      table, query.grouping_sets[set_index], query.aggregates, std::move(keys),
      global.states);
}

// Shared mask evaluation: every distinct predicate / sample configuration
// across the whole batch is evaluated exactly once. Mask vectors live in
// node-stable maps, so pointers into the cache survive for the lifetime of
// the scan state.
class MaskCache {
 public:
  explicit MaskCache(const Table& table) : table_(table) {}

  /// All-ones when fraction >= 1 (returns nullptr: "no mask").
  const std::vector<uint8_t>* SampleMask(double fraction, uint64_t seed) {
    if (fraction >= 1.0) return nullptr;
    auto key = std::make_pair(fraction, seed);
    auto it = sample_.find(key);
    if (it == sample_.end()) {
      it = sample_
               .emplace(key, internal::BernoulliScanMask(table_.num_rows(),
                                                         fraction, seed))
               .first;
    }
    return &it->second;
  }

  Result<const std::vector<uint8_t>*> PredicateMask(const Predicate* pred) {
    if (pred == nullptr) return nullptr;
    auto it = predicate_.find(pred);
    if (it == predicate_.end()) {
      std::vector<uint8_t> mask;
      SEEDB_RETURN_IF_ERROR(pred->EvaluateMask(table_, &mask));
      it = predicate_.emplace(pred, std::move(mask)).first;
    }
    return &it->second;
  }

  /// sample & where combined; nullptr when both are absent.
  Result<const std::vector<uint8_t>*> CombinedMask(double fraction,
                                                   uint64_t seed,
                                                   const Predicate* where) {
    const std::vector<uint8_t>* sample = SampleMask(fraction, seed);
    SEEDB_ASSIGN_OR_RETURN(const std::vector<uint8_t>* pred,
                           PredicateMask(where));
    if (sample == nullptr) return pred;
    if (pred == nullptr) return sample;
    auto key = std::make_pair(sample, pred);
    auto it = combined_.find(key);
    if (it == combined_.end()) {
      std::vector<uint8_t> both(table_.num_rows());
      for (size_t i = 0; i < both.size(); ++i) {
        both[i] = (*sample)[i] & (*pred)[i];
      }
      it = combined_.emplace(key, std::move(both)).first;
    }
    return &it->second;
  }

 private:
  const Table& table_;
  // These maps are populated at scan setup, not in the per-row hot loop, and
  // node stability matters: GetCombined keys on the addresses of entries in
  // sample_/predicate_, which std::map guarantees across inserts.
  std::map<std::pair<double, uint64_t>,  // lint: allow-map (node-stable)
           std::vector<uint8_t>>
      sample_;
  std::map<const Predicate*,  // lint: allow-map (node-stable)
           std::vector<uint8_t>>
      predicate_;
  std::map<std::pair<const std::vector<uint8_t>*,  // lint: allow-map
                     const std::vector<uint8_t>*>,
           std::vector<uint8_t>>
      combined_;
};

Status ValidateQuery(const Table& table, const GroupingSetsQuery& query) {
  if (query.grouping_sets.empty()) {
    return Status::InvalidArgument("no grouping sets");
  }
  SEEDB_RETURN_IF_ERROR(internal::ValidateAggregates(table, query.aggregates));
  for (const auto& set : query.grouping_sets) {
    for (const auto& g : set) {
      SEEDB_RETURN_IF_ERROR(table.schema().FindColumn(g).status());
    }
  }
  if (query.sample_fraction <= 0.0 || query.sample_fraction > 1.0) {
    return Status::InvalidArgument("sample_fraction outside (0, 1]");
  }
  return Status::OK();
}

}  // namespace

size_t AdaptiveMorselRows(size_t num_rows, size_t num_threads) {
  // ~4 morsels per worker keeps the shared counter load-balancing without
  // shredding small tables into per-row tasks; the floor also caps the
  // thread count on small tables (threads are clamped to the morsel count).
  constexpr size_t kMinMorselRows = 4096;
  constexpr size_t kMaxMorselRows = 65536;
  constexpr size_t kMorselsPerThread = 4;
  if (num_threads == 0) num_threads = 1;
  size_t target = num_rows / (num_threads * kMorselsPerThread);
  return std::clamp(target, kMinMorselRows, kMaxMorselRows);
}

class SharedScanState::Impl {
 public:
  Impl(const Table& table, std::vector<GroupingSetsQuery> queries)
      : table_(table), queries_(std::move(queries)), masks_(table) {}

  Status Init(const SharedScanOptions& options) {
    cache_ = options.cache;
    table_version_ = options.table_version;
    threads_ = options.num_threads == 0
                   ? std::max<size_t>(1, std::thread::hardware_concurrency())
                   : options.num_threads;
    adaptive_morsels_ = options.morsel_rows == 0;
    morsel_rows_ = adaptive_morsels_
                       ? AdaptiveMorselRows(table_.num_rows(), threads_)
                       : options.morsel_rows;
    cancel_ = options.cancel;
    trace_ = options.trace;
    use_simd_ = options.enable_vectorized && options.enable_simd &&
                vec::simd::Available();

    // Resolve every query against the table, evaluating each distinct
    // sample / WHERE / FILTER configuration exactly once for the batch.
    specs_.resize(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q) {
      const GroupingSetsQuery& query = queries_[q];
      SEEDB_RETURN_IF_ERROR(ValidateQuery(table_, query));
      QuerySpec& spec = specs_[q];
      spec.sample_mask =
          masks_.SampleMask(query.sample_fraction, query.sample_seed);

      for (const auto& set : query.grouping_sets) {
        SetSpec resolved;
        bool all_dict = true;
        for (const auto& g : set) {
          SEEDB_ASSIGN_OR_RETURN(size_t idx, table_.schema().FindColumn(g));
          resolved.col_indices.push_back(idx);
          const Column* col = &table_.column(idx);
          resolved.cols.push_back(col);
          if (col->type() == ValueType::kString) {
            vec::DenseDim dim;
            dim.codes = col->codes().data();
            dim.validity =
                col->validity().empty() ? nullptr : col->validity().data();
            dim.slots = static_cast<uint32_t>(col->dict_size() + 1);
            resolved.dims.push_back(dim);
          } else {
            all_dict = false;
          }
        }
        // Kernel selection: dense vectorized kernels when every grouping
        // column is dictionary-coded and the radix-composed group space
        // fits the slot budget (the empty set — a global aggregate — is a
        // 1-slot dense space); single oversized string dimensions keep the
        // scalar dense path; everything else hashes packed key tuples.
        // The budget is clamped to what the uint32 gid kernels can index —
        // a larger configured budget must fall back to the hash path, not
        // truncate slot counts into out-of-bounds slab writes.
        const size_t slot_budget =
            std::min<size_t>(options.dense_slot_budget,
                             std::numeric_limits<uint32_t>::max());
        const size_t dense_slots =
            all_dict ? vec::DenseSlotCount(resolved.dims, slot_budget) : 0;
        if (options.enable_vectorized && all_dict && dense_slots > 0) {
          resolved.vectorized = true;
          resolved.dense_slots = dense_slots;
        } else if (resolved.cols.size() == 1 &&
                   resolved.cols[0]->type() == ValueType::kString) {
          resolved.dense_col = resolved.cols[0];
          resolved.dense_slots = resolved.dense_col->dict_size() + 1;
        }
        if (!resolved.vectorized) resolved.dims.clear();
        spec.sets.push_back(std::move(resolved));
      }

      // Row-filter resolution. Queries whose every grouping set runs the
      // vectorized kernels may fuse a simple WHERE comparison straight into
      // selection building (no byte mask is materialized for them at all);
      // everyone else gets the cached combined mask — still evaluated once
      // per distinct configuration — wrapped in a kMask recipe so the
      // vectorized inner loop shares selections per recipe id.
      bool all_vec = !spec.sets.empty();
      for (const SetSpec& set : spec.sets) all_vec &= set.vectorized;
      bool fused = false;
      if (all_vec && query.where != nullptr) {
        SEEDB_ASSIGN_OR_RETURN(fused, TryFuseCompare(query, &spec));
      }
      if (!fused) {
        SEEDB_ASSIGN_OR_RETURN(
            spec.mask,
            masks_.CombinedMask(query.sample_fraction, query.sample_seed,
                                query.where.get()));
        if (spec.mask != nullptr) spec.recipe = MaskRecipe(spec.mask);
      }

      for (const auto& agg : query.aggregates) {
        AggRuntime rt;
        if (!agg.input.empty()) {
          SEEDB_ASSIGN_OR_RETURN(rt.input, table_.ColumnByName(agg.input));
        }
        rt.count_only =
            rt.input == nullptr || agg.func == AggregateFunction::kCount;
        SEEDB_ASSIGN_OR_RETURN(rt.filter,
                               masks_.PredicateMask(agg.filter.get()));
        spec.aggs.push_back(rt);
      }
    }

    active_.assign(queries_.size(), 1);
    scan_active_.assign(queries_.size(), 1);
    globals_.resize(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q) {
      globals_[q].resize(specs_[q].sets.size());
      for (size_t s = 0; s < specs_[q].sets.size(); ++s) {
        GlobalGroups& global = globals_[q][s];
        global.states.resize(specs_[q].aggs.size());
        if (specs_[q].sets[s].dense_slots > 0) {
          global.dense_to_global.assign(specs_[q].sets[s].dense_slots, -1);
        }
      }
    }

    // Cross-session cache partition: every (query, grouping set) pair whose
    // key hits adopts the cached merged state verbatim — bit-identical to
    // having scanned, because entries are only ever published from full
    // uncancelled passes over this exact table version. A query whose every
    // pair hit drops out of the scan entirely.
    if (cache_ != nullptr) {
      cache_keys_.resize(queries_.size());
      for (size_t q = 0; q < queries_.size(); ++q) {
        cache_keys_[q].resize(specs_[q].sets.size());
        bool all_adopted = true;
        for (size_t s = 0; s < specs_[q].sets.size(); ++s) {
          cache_keys_[q][s] =
              PartialAggCacheKey(table_, table_version_, queries_[q], s);
          std::shared_ptr<const CachedPartialAgg> entry =
              cache_->Lookup(cache_keys_[q][s]);
          if (entry == nullptr ||
              entry->states.size() != specs_[q].aggs.size()) {
            ++cache_misses_;
            all_adopted = false;
            continue;
          }
          ++cache_hits_;
          globals_[q][s].rep_row = entry->rep_row;
          globals_[q][s].states = entry->states;
          specs_[q].sets[s].adopted = true;
        }
        if (all_adopted) scan_active_[q] = 0;
      }
    }
    return Status::OK();
  }

  // Attempts to resolve `query`'s WHERE as a fused compare recipe (kind
  // kCompare*). Returns false — caller falls back to the byte-mask path —
  // when the predicate is not a plain column-vs-literal comparison or the
  // comparison cannot reproduce EvaluateMask's semantics exactly:
  // EvaluateMask compares int64 columns in the DOUBLE domain (NumericAt),
  // so an int64 compare fuses only for integral literals with |lit| <=
  // 2^51, where the int64-domain kernel is provably divergence-free.
  Result<bool> TryFuseCompare(const GroupingSetsQuery& query,
                              QuerySpec* spec) {
    const auto* cmp =
        dynamic_cast<const ComparisonPredicate*>(query.where.get());
    if (cmp == nullptr) return false;
    // The mask path validates inside EvaluateMask; fusing skips that call,
    // so run the same check explicitly.
    SEEDB_RETURN_IF_ERROR(cmp->Validate(table_.schema()));
    SEEDB_ASSIGN_OR_RETURN(const Column* col,
                           table_.ColumnByName(cmp->column()));
    SelRecipe r;
    r.sample = spec->sample_mask;
    r.column = col;
    r.op = cmp->op();
    r.literal = cmp->literal();
    switch (col->type()) {
      case ValueType::kString:
        r.kind = SelRecipe::Kind::kCompareCode;
        break;
      case ValueType::kDouble: {
        r.kind = SelRecipe::Kind::kCompareDouble;
        SEEDB_ASSIGN_OR_RETURN(r.literal_f64, cmp->literal().ToDouble());
        break;
      }
      case ValueType::kInt64: {
        SEEDB_ASSIGN_OR_RETURN(double lit, cmp->literal().ToDouble());
        constexpr double kExactLimit = 2251799813685248.0;  // 2^51
        if (std::floor(lit) != lit || std::fabs(lit) > kExactLimit) {
          return false;
        }
        r.kind = SelRecipe::Kind::kCompareInt64;
        r.literal_i64 = static_cast<int64_t>(lit);
        break;
      }
      default:
        return false;
    }
    for (size_t i = 0; i < recipes_.size(); ++i) {
      if (SameRecipe(recipes_[i], r)) {
        spec->recipe = static_cast<int>(i);
        return true;
      }
    }
    if (r.kind == SelRecipe::Kind::kCompareCode) {
      r.code_match.resize(col->dict_size());
      for (size_t c = 0; c < r.code_match.size(); ++c) {
        r.code_match[c] = CompareValues(Value(col->dict_value(
                                            static_cast<int32_t>(c))),
                                        r.op, cmp->literal())
                              ? 1
                              : 0;
      }
    }
    spec->recipe = static_cast<int>(recipes_.size());
    recipes_.push_back(std::move(r));
    return true;
  }

  // Recipe id for a byte-mask filter, deduplicated by mask pointer (the
  // MaskCache guarantees pointer identity per distinct configuration).
  int MaskRecipe(const std::vector<uint8_t>* mask) {
    for (size_t i = 0; i < recipes_.size(); ++i) {
      if (recipes_[i].kind == SelRecipe::Kind::kMask &&
          recipes_[i].mask == mask) {
        return static_cast<int>(i);
      }
    }
    SelRecipe r;
    r.kind = SelRecipe::Kind::kMask;
    r.mask = mask;
    recipes_.push_back(std::move(r));
    return static_cast<int>(recipes_.size() - 1);
  }

  size_t num_rows() const { return table_.num_rows(); }
  size_t num_queries() const { return queries_.size(); }
  const std::vector<GroupingSetsQuery>& queries() const { return queries_; }
  size_t rows_consumed() const { return rows_consumed_; }
  bool query_active(size_t q) const { return active_[q] != 0; }

  size_t active_queries() const {
    return static_cast<size_t>(
        std::count(active_.begin(), active_.end(), uint8_t{1}));
  }

  /// Queries the scan still visits rows for: active and not fully
  /// cache-adopted.
  size_t scan_active_queries() const {
    return static_cast<size_t>(
        std::count(scan_active_.begin(), scan_active_.end(), uint8_t{1}));
  }

  Status DeactivateQuery(size_t q) {
    if (q >= queries_.size()) {
      return Status::InvalidArgument("query index out of range");
    }
    active_[q] = 0;
    scan_active_[q] = 0;
    return Status::OK();
  }

  Status RunPhase(size_t row_begin, size_t row_end) {
    if (finalized_) {
      return Status::Internal("shared scan already finalized");
    }
    if (cancelled_) {
      return Status::Internal("shared scan was cancelled");
    }
    if (row_begin != rows_consumed_) {
      return Status::InvalidArgument(
          "phases must be contiguous: expected row_begin " +
          std::to_string(rows_consumed_) + ", got " +
          std::to_string(row_begin));
    }
    if (row_end < row_begin || row_end > table_.num_rows()) {
      return Status::InvalidArgument("phase row range out of bounds");
    }
    rows_consumed_ = row_end;
    ++phases_;
    if (row_begin == row_end) return Status::OK();

    // Per-phase wall time feeds the registry histogram (phase granularity,
    // never per morsel — morsels/sec derives from the morsel counter over
    // this latency); the span shows up as one block per phase in Perfetto.
    static obs::Histogram* phase_latency =
        obs::Registry::Global().GetHistogram("engine.phase.latency_us");
    obs::ScopedTimer phase_obs_timer(phase_latency);
    SEEDB_TRACE_SPAN_IF(phase_span, "scan.phase", 0,
                        obs::TraceRecorder::ShouldTrace(trace_));

    // Adaptive mode re-derives the morsel size per phase: from the phase's
    // own row range (phases are slices of the table; sizing them off the
    // whole table would make early phases one giant morsel) scaled up by the
    // fraction of queries already retired — each retired query cuts
    // per-morsel work, so surviving phases take proportionally coarser
    // morsels instead of over-scheduling the pool.
    size_t morsel_rows = morsel_rows_;
    if (adaptive_morsels_) {
      const size_t base = AdaptiveMorselRows(row_end - row_begin, threads_);
      const size_t live = std::max<size_t>(1, scan_active_queries());
      const size_t coarse = base * std::max<size_t>(1, specs_.size() / live);
      // Never coarser than one morsel per worker (while rows allow it).
      const size_t per_worker =
          (row_end - row_begin + threads_ - 1) / std::max<size_t>(1, threads_);
      morsel_rows = std::clamp(coarse, base, std::max(base, per_worker));
    }
    last_phase_morsel_rows_ = morsel_rows;

    const size_t num_morsels =
        (row_end - row_begin + morsel_rows - 1) / morsel_rows;
    std::vector<size_t> all(num_morsels);
    for (size_t m = 0; m < num_morsels; ++m) all[m] = m;
    std::vector<uint8_t> completed(num_morsels, 0);
    size_t done = num_morsels;
    if (scan_active_queries() > 0) {
      done = ScanMorsels(all, row_begin, row_end, morsel_rows, &completed);
    } else {
      // Every query was either cache-adopted or retired: the phase is a
      // no-op over the row range, advancing rows_consumed_ without touching
      // a single row (rows_scanned stays put — that is the cache's win).
      std::fill(completed.begin(), completed.end(), uint8_t{1});
    }

    const bool cut_short =
        cancel_ != nullptr && cancel_->load(std::memory_order_relaxed) &&
        done < num_morsels;

    // Rows visited this phase: the largest per-query sample-mask count among
    // active queries (each distinct mask counted once). Under cancellation,
    // scale by the fraction of morsels that actually completed.
    size_t phase_rows = 0;
    // Distinct sample masks per batch are few (MaskCache dedups by pointer),
    // so a flat vector with linear probes beats a node-based map here.
    std::vector<std::pair<const std::vector<uint8_t>*, size_t>> mask_counts;
    for (size_t q = 0; q < specs_.size(); ++q) {
      if (!scan_active_[q]) continue;
      const std::vector<uint8_t>* sample = specs_[q].sample_mask;
      if (sample == nullptr) {
        phase_rows = std::max(phase_rows, row_end - row_begin);
        continue;
      }
      size_t count = 0;
      bool found = false;
      for (const auto& [mask, cached] : mask_counts) {
        if (mask == sample) {
          count = cached;
          found = true;
          break;
        }
      }
      if (!found) {
        count = static_cast<size_t>(
            std::count(sample->begin() + row_begin, sample->begin() + row_end,
                       uint8_t{1}));
        mask_counts.emplace_back(sample, count);
      }
      phase_rows = std::max(phase_rows, count);
    }
    size_t counted_rows = phase_rows;
    if (cut_short) {
      cancelled_ = true;
      // Completed morsels are an arbitrary subset of the phase, so report
      // the covered rows as an estimate and freeze the scan here — keeping
      // the completed-morsel record so ResumeAfterCancel() can scan exactly
      // the complement instead of discarding the session.
      rows_consumed_ = std::min(row_end, row_begin + done * morsel_rows);
      if (num_morsels > 0) counted_rows = phase_rows * done / num_morsels;
      pending_ = PendingPhase{row_begin,   row_end,      morsel_rows,
                             phase_rows,  counted_rows, std::move(completed)};
    }
    rows_scanned_ += counted_rows;
    morsels_ += done;
    static obs::Counter* obs_morsels =
        obs::Registry::Global().GetCounter("engine.scan.morsels");
    static obs::Counter* obs_rows =
        obs::Registry::Global().GetCounter("engine.scan.rows");
    obs_morsels->Add(done);
    obs_rows->Add(counted_rows);
    return Status::OK();
  }

  bool cancelled() const { return cancelled_; }

  // Completes the morsels of a cut-short phase that never ran, merging them
  // into the persistent state, then clears the cancelled flag so later
  // phases may run. The caller must have reset the cancel token first —
  // a still-set token simply cancels the resume again.
  Status ResumeAfterCancel() {
    if (finalized_) {
      return Status::Internal("shared scan already finalized");
    }
    if (!cancelled_) {
      return Status::InvalidArgument("shared scan is not cancelled");
    }
    cancelled_ = false;
    if (!pending_.has_value()) return Status::OK();  // between phases
    PendingPhase pending = std::move(*pending_);
    pending_.reset();

    std::vector<size_t> missing;
    for (size_t m = 0; m < pending.completed.size(); ++m) {
      if (!pending.completed[m]) missing.push_back(m);
    }
    const size_t done = ScanMorsels(missing, pending.row_begin,
                                    pending.row_end, pending.morsel_rows,
                                    &pending.completed);
    morsels_ += done;
    if (done < missing.size() && cancel_ != nullptr &&
        cancel_->load(std::memory_order_relaxed)) {
      // Cancelled again mid-resume: freeze with the updated record; a later
      // resume scans the (smaller) complement.
      cancelled_ = true;
      const size_t total = pending.completed.size();
      const size_t covered = total - (missing.size() - done);
      rows_consumed_ = std::min(pending.row_end,
                                pending.row_begin +
                                    covered * pending.morsel_rows);
      size_t counted = total > 0
                           ? pending.phase_rows_full * covered / total
                           : pending.phase_rows_full;
      counted = std::max(counted, pending.phase_rows_counted);
      rows_scanned_ += counted - pending.phase_rows_counted;
      pending.phase_rows_counted = counted;
      pending_ = std::move(pending);
      return Status::OK();
    }
    rows_consumed_ = pending.row_end;
    rows_scanned_ += pending.phase_rows_full - pending.phase_rows_counted;
    return Status::OK();
  }

  // Dispatches the given morsels of one phase grid to the worker pool and
  // folds every worker's partials into the persistent global state. Returns
  // the number of morsels actually completed (less than ids.size() only when
  // the cancel token fired). The merge runs even when cut short: completed
  // morsels are a consistent (if non-prefix) row subset shared by every
  // query, exactly what a partial-result estimate wants.
  size_t ScanMorsels(const std::vector<size_t>& ids, size_t row_begin,
                     size_t row_end, size_t morsel_rows,
                     std::vector<uint8_t>* completed) {
    if (ids.empty()) return 0;
    const size_t threads = std::max<size_t>(1, std::min(threads_, ids.size()));
    // Worker accumulation state persists in the Impl and is reset (capacity-
    // preserving) per pass, so dense slabs are allocated once per worker for
    // the scan's lifetime instead of once per phase.
    if (worker_states_.size() < threads) worker_states_.resize(threads);
    for (size_t t = 0; t < threads; ++t) {
      PrepareWorkerState(specs_, scan_active_, &worker_states_[t]);
    }

    std::atomic<size_t> next_morsel{0};
    std::atomic<size_t> morsels_done{0};
    std::atomic<size_t> vec_morsels{0};
    std::atomic<size_t> simd_morsels{0};
    const bool record_spans = obs::TraceRecorder::ShouldTrace(trace_);
    if (threads == 1) {
      SEEDB_TRACE_SPAN_IF(worker_span, "scan.worker", 0, record_spans);
      WorkerLoop(specs_, recipes_, scan_active_, row_begin, row_end,
                 morsel_rows, ids, use_simd_, &next_morsel, cancel_,
                 &morsels_done, &vec_morsels, &simd_morsels, completed,
                 &worker_states_[0]);
    } else {
      // The pool persists across phases — spawning threads per phase would
      // bill their creation to every phase_seconds measurement.
      if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
      std::vector<std::future<void>> futures;
      futures.reserve(threads);
      for (size_t t = 0; t < threads; ++t) {
        WorkerState* state = &worker_states_[t];
        futures.push_back(pool_->Submit([this, row_begin, row_end, morsel_rows,
                                         &ids, &next_morsel, &morsels_done,
                                         &vec_morsels, &simd_morsels, completed,
                                         record_spans, state] {
          SEEDB_TRACE_SPAN_IF(worker_span, "scan.worker", 0, record_spans);
          WorkerLoop(specs_, recipes_, scan_active_, row_begin, row_end,
                     morsel_rows, ids, use_simd_, &next_morsel, cancel_,
                     &morsels_done, &vec_morsels, &simd_morsels, completed,
                     state);
        }));
      }
      for (auto& f : futures) f.get();
    }

    SEEDB_TRACE_SPAN_IF(merge_span, "scan.merge", 0, record_spans);
    for (size_t q = 0; q < specs_.size(); ++q) {
      if (!scan_active_[q]) continue;
      for (size_t s = 0; s < specs_[q].sets.size(); ++s) {
        if (specs_[q].sets[s].adopted) continue;
        for (size_t t = 0; t < threads; ++t) {
          const WorkerState& worker = worker_states_[t];
          if (specs_[q].sets[s].vectorized) {
            MergeDenseInto(specs_[q].aggs.size(), worker[q][s].dense,
                           &globals_[q][s]);
          } else {
            MergeWorkerInto(specs_[q].sets[s], specs_[q].aggs.size(),
                            worker[q][s].lg, &globals_[q][s]);
          }
        }
      }
    }
    threads_used_ = std::max(threads_used_, threads);
    vectorized_morsels_ += vec_morsels.load(std::memory_order_relaxed);
    simd_morsels_ += simd_morsels.load(std::memory_order_relaxed);
    return morsels_done.load(std::memory_order_relaxed);
  }

  Result<std::vector<Table>> PartialResults(size_t q) const {
    if (q >= queries_.size()) {
      return Status::InvalidArgument("query index out of range");
    }
    std::vector<Table> results;
    results.reserve(specs_[q].sets.size());
    for (size_t s = 0; s < specs_[q].sets.size(); ++s) {
      SEEDB_ASSIGN_OR_RETURN(
          Table out, MaterializeSet(table_, queries_[q], s, specs_[q].sets[s],
                                    globals_[q][s]));
      results.push_back(std::move(out));
    }
    return results;
  }

  Result<std::vector<std::vector<Table>>> FinalResults() {
    finalized_ = true;
    PublishToCache();
    std::vector<std::vector<Table>> results(queries_.size());
    for (size_t q = 0; q < queries_.size(); ++q) {
      if (!active_[q]) continue;  // retired queries yield no tables
      SEEDB_ASSIGN_OR_RETURN(results[q], PartialResults(q));
    }
    return results;
  }

  // Publishes every scanned (query, set) pair's merged state to the
  // cross-session cache — only when the scan covered the whole table
  // uncancelled and only for queries that stayed active throughout (a
  // retired query's state stops at its retirement phase and must never be
  // adopted as final). Adopted pairs are skipped: they are already cached.
  void PublishToCache() {
    if (cache_ == nullptr || cancelled_ ||
        rows_consumed_ != table_.num_rows()) {
      return;
    }
    for (size_t q = 0; q < queries_.size(); ++q) {
      if (!active_[q]) continue;
      for (size_t s = 0; s < specs_[q].sets.size(); ++s) {
        if (specs_[q].sets[s].adopted) continue;
        CachedPartialAgg entry;
        entry.rep_row = globals_[q][s].rep_row;
        entry.states = globals_[q][s].states;
        cache_->Insert(cache_keys_[q][s], std::move(entry));
      }
    }
  }

  SharedScanStats stats() const {
    SharedScanStats s;
    s.rows_scanned = rows_scanned_;
    s.morsels = morsels_;
    s.vectorized_morsels = vectorized_morsels_;
    s.simd_morsels = simd_morsels_;
    for (const WorkerState& worker : worker_states_) {
      for (const auto& sets : worker) {
        for (const SetAccum& accum : sets) {
          s.agg_slab_allocations += accum.dense.allocations;
        }
      }
    }
    s.threads_used = threads_used_;
    s.phases = phases_;
    s.last_phase_morsel_rows = last_phase_morsel_rows_;
    s.selection_recipes = recipes_.size();
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    for (size_t q = 0; q < globals_.size(); ++q) {
      for (size_t g = 0; g < globals_[q].size(); ++g) {
        s.total_groups += globals_[q][g].rep_row.size();
        s.agg_state_bytes +=
            globals_[q][g].rep_row.size() * specs_[q].aggs.size() *
            sizeof(AggState);
      }
    }
    return s;
  }

 private:
  /// The interrupted phase of a cancelled scan: its grid geometry, the
  /// per-morsel completion record, and how much of the phase's row count was
  /// already folded into rows_scanned_ — everything ResumeAfterCancel()
  /// needs to finish exactly the rows the cancel skipped.
  struct PendingPhase {
    size_t row_begin = 0;
    size_t row_end = 0;
    size_t morsel_rows = 0;
    /// Full-phase visited-row count (mask-based), and the portion already
    /// added to rows_scanned_ at cancellation time.
    size_t phase_rows_full = 0;
    size_t phase_rows_counted = 0;
    std::vector<uint8_t> completed;
  };

  const Table& table_;
  std::vector<GroupingSetsQuery> queries_;
  MaskCache masks_;
  std::vector<QuerySpec> specs_;
  /// Selection recipes (fused compares + mask conversions) referenced by
  /// QuerySpec::recipe; deduplicated, shared across queries.
  std::vector<SelRecipe> recipes_;
  bool use_simd_ = false;
  std::vector<uint8_t> active_;
  /// active_ minus fully cache-adopted queries: the rows workers visit.
  std::vector<uint8_t> scan_active_;
  /// Cross-session cache wiring; keys are precomputed per (query, set) at
  /// Init (empty when cache_ is null).
  PartialAggCache* cache_ = nullptr;
  uint64_t table_version_ = 0;
  std::vector<std::vector<std::string>> cache_keys_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  /// Per-worker accumulation state, persistent across phases (slab reuse).
  std::vector<WorkerState> worker_states_;
  /// globals_[q][s]: merged groups, persistent across phases.
  std::vector<std::vector<GlobalGroups>> globals_;

  size_t threads_ = 1;
  size_t morsel_rows_ = 0;
  bool adaptive_morsels_ = false;
  bool trace_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  /// Lazily created on the first multi-threaded phase, reused after.
  std::unique_ptr<ThreadPool> pool_;
  size_t rows_consumed_ = 0;
  bool finalized_ = false;
  bool cancelled_ = false;
  std::optional<PendingPhase> pending_;

  size_t rows_scanned_ = 0;
  size_t morsels_ = 0;
  size_t vectorized_morsels_ = 0;
  size_t simd_morsels_ = 0;
  size_t threads_used_ = 0;
  size_t phases_ = 0;
  size_t last_phase_morsel_rows_ = 0;
};

SharedScanState::SharedScanState(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
SharedScanState::SharedScanState(SharedScanState&&) noexcept = default;
SharedScanState& SharedScanState::operator=(SharedScanState&&) noexcept =
    default;
SharedScanState::~SharedScanState() = default;

Result<SharedScanState> SharedScanState::Create(
    const Table& table, std::vector<GroupingSetsQuery> queries,
    const SharedScanOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("shared scan needs at least one query");
  }
  auto impl = std::make_unique<Impl>(table, std::move(queries));
  SEEDB_RETURN_IF_ERROR(impl->Init(options));
  return SharedScanState(std::move(impl));
}

size_t SharedScanState::num_rows() const { return impl_->num_rows(); }
size_t SharedScanState::num_queries() const { return impl_->num_queries(); }
const std::vector<GroupingSetsQuery>& SharedScanState::queries() const {
  return impl_->queries();
}
size_t SharedScanState::rows_consumed() const {
  return impl_->rows_consumed();
}

Status SharedScanState::RunPhase(size_t row_begin, size_t row_end) {
  return impl_->RunPhase(row_begin, row_end);
}

bool SharedScanState::cancelled() const { return impl_->cancelled(); }

Status SharedScanState::ResumeAfterCancel() {
  return impl_->ResumeAfterCancel();
}

bool SharedScanState::query_active(size_t q) const {
  return impl_->query_active(q);
}
size_t SharedScanState::active_queries() const {
  return impl_->active_queries();
}
Status SharedScanState::DeactivateQuery(size_t q) {
  return impl_->DeactivateQuery(q);
}

Result<std::vector<Table>> SharedScanState::PartialResults(size_t q) const {
  return impl_->PartialResults(q);
}

Result<std::vector<std::vector<Table>>> SharedScanState::FinalResults() {
  return impl_->FinalResults();
}

SharedScanStats SharedScanState::stats() const { return impl_->stats(); }

Result<std::vector<std::vector<Table>>> ExecuteSharedScan(
    const Table& table, const std::vector<GroupingSetsQuery>& queries,
    const SharedScanOptions& options, SharedScanStats* stats) {
  SEEDB_ASSIGN_OR_RETURN(SharedScanState state,
                         SharedScanState::Create(table, queries, options));
  SEEDB_RETURN_IF_ERROR(state.RunPhase(0, table.num_rows()));
  SEEDB_ASSIGN_OR_RETURN(std::vector<std::vector<Table>> results,
                         state.FinalResults());
  if (stats) *stats = state.stats();
  return results;
}

}  // namespace seedb::db
