// Aggregate functions (set F in the paper) and conditional-aggregation specs.
//
// A spec may carry a FILTER predicate; `f(m) FILTER (WHERE pred)` is how the
// combined target/comparison view executes both halves in a single scan
// (§3.3 "Combine target and comparison view query").

#ifndef SEEDB_DB_AGGREGATES_H_
#define SEEDB_DB_AGGREGATES_H_

#include <cmath>
#include <limits>
#include <string>

#include "db/predicate.h"
#include "util/result.h"

namespace seedb::db {

/// Aggregate functions SeeDB can apply to a measure attribute.
enum class AggregateFunction {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggregateFunctionToSql(AggregateFunction f);

/// Parses "sum"/"SUM"/... into the enum.
Result<AggregateFunction> ParseAggregateFunction(const std::string& name);

/// All supported functions, in a stable order (for view-space enumeration).
const std::vector<AggregateFunction>& AllAggregateFunctions();

/// \brief Accumulator covering every AggregateFunction in one struct.
///
/// 32 bytes per (group, aggregate) pair; this is the unit the optimizer's
/// working-memory model counts (§3.3, combine-group-bys).
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  /// COUNT(*) — no measure value involved.
  void AddCountOnly() { ++count; }

  void Merge(const AggState& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  /// Final value under `f`; empty groups finalize to 0 for COUNT and NULL
  /// (represented as NaN by callers that need it) semantics are avoided by
  /// only materializing groups that received rows.
  double Finalize(AggregateFunction f) const {
    switch (f) {
      case AggregateFunction::kCount:
        return static_cast<double>(count);
      case AggregateFunction::kSum:
        return sum;
      case AggregateFunction::kAvg:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
      case AggregateFunction::kMin:
        return count == 0 ? 0.0 : min;
      case AggregateFunction::kMax:
        return count == 0 ? 0.0 : max;
    }
    return 0.0;
  }
};

/// \brief One output aggregate: function, input measure, optional FILTER.
struct AggregateSpec {
  AggregateFunction func = AggregateFunction::kCount;
  /// Input measure column; empty means COUNT(*).
  std::string input;
  /// Output column name; empty derives "SUM(amount)" style.
  std::string output_name;
  /// Optional FILTER (WHERE ...) predicate; null means unconditional.
  PredicatePtr filter;

  /// Output name, derived if not explicitly set.
  std::string EffectiveName() const;
  /// SQL fragment, e.g. "SUM(amount) FILTER (WHERE product = 'X') AS t".
  std::string ToSql() const;

  static AggregateSpec Count(std::string output_name = "");
  static AggregateSpec Make(AggregateFunction f, std::string input,
                            std::string output_name = "",
                            PredicatePtr filter = nullptr);
};

}  // namespace seedb::db

#endif  // SEEDB_DB_AGGREGATES_H_
