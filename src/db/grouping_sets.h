// GROUPING SETS: several group-bys over one shared table scan.
//
// This is the engine primitive behind §3.3 "Combine Multiple Group-bys":
// instead of executing queries for views (a1,m,f) ... (an,m,f) independently
// (n scans), SeeDB issues one query with n grouping sets (1 scan, n hash
// tables held simultaneously — the working-memory trade-off the optimizer's
// bin-packing manages).

#ifndef SEEDB_DB_GROUPING_SETS_H_
#define SEEDB_DB_GROUPING_SETS_H_

#include <string>
#include <vector>

#include "db/group_by.h"
#include "util/result.h"

namespace seedb::db {

/// \brief A multi-group-by query over one table: the same WHERE and aggregate
/// list evaluated under several grouping column sets simultaneously.
struct GroupingSetsQuery {
  std::string table;
  PredicatePtr where;
  /// Each inner vector is one grouping set (list of grouping columns).
  std::vector<std::vector<std::string>> grouping_sets;
  std::vector<AggregateSpec> aggregates;
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0;

  /// SQL rendering using the GROUPING SETS syntax.
  std::string ToSql() const;
};

struct GroupingSetsStats {
  size_t rows_scanned = 0;
  size_t rows_matched = 0;
  /// Sum of group counts across sets (live hash-table entries).
  size_t total_groups = 0;
  /// Peak aggregate-state working memory across all sets together.
  size_t agg_state_bytes = 0;
};

/// Executes all grouping sets in a single pass over `table`. Result i
/// corresponds to grouping_sets[i] and has the same shape ExecuteGroupBy
/// would produce for that set.
Result<std::vector<Table>> ExecuteGroupingSets(const Table& table,
                                               const GroupingSetsQuery& query,
                                               GroupingSetsStats* stats);

}  // namespace seedb::db

#endif  // SEEDB_DB_GROUPING_SETS_H_
