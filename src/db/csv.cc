#include "db/csv.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace seedb::db {
namespace {

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string QuoteIfNeeded(const std::string& s, char delimiter) {
  bool needs = s.find(delimiter) != std::string::npos ||
               s.find('"') != std::string::npos ||
               s.find('\n') != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

Result<Value> CellToValue(const std::string& cell, ValueType type,
                          const CsvOptions& options) {
  if (cell.empty() || cell == options.null_token) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      int64_t v;
      if (!ParseInt64(cell, &v)) {
        return Status::InvalidArgument("cannot parse '" + cell + "' as INT64");
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      double v;
      if (!ParseDouble(cell, &v)) {
        return Status::InvalidArgument("cannot parse '" + cell +
                                       "' as DOUBLE");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(cell);
    case ValueType::kNull:
      return Status::InvalidArgument("column with NULL type");
  }
  return Status::Internal("unreachable");
}

}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");

  std::string line;
  std::vector<size_t> col_order(schema.num_columns());
  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("empty file '" + path + "'");
    }
    auto headers = ParseCsvLine(line, options.delimiter);
    if (headers.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("header has %zu columns, schema expects %zu",
                       headers.size(), schema.num_columns()));
    }
    // col_order[i] = schema index of the i-th CSV column.
    for (size_t i = 0; i < headers.size(); ++i) {
      SEEDB_ASSIGN_OR_RETURN(size_t idx,
                             schema.FindColumn(std::string(Trim(headers[i]))));
      col_order[i] = idx;
    }
  } else {
    for (size_t i = 0; i < col_order.size(); ++i) col_order[i] = i;
  }

  Table table(schema);
  std::vector<Value> row(schema.num_columns());
  size_t line_no = options.has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto cells = ParseCsvLine(line, options.delimiter);
    if (cells.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("line %zu has %zu fields, expected %zu", line_no,
                       cells.size(), schema.num_columns()));
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      size_t schema_idx = col_order[i];
      SEEDB_ASSIGN_OR_RETURN(
          row[schema_idx],
          CellToValue(cells[i], schema.column(schema_idx).type, options));
    }
    SEEDB_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvInferSchema(const std::string& path,
                                 const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");

  std::string line;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = ParseCsvLine(line, options.delimiter);
    if (first && options.has_header) {
      headers.reserve(cells.size());
      for (auto& h : cells) headers.emplace_back(Trim(h));
      first = false;
      continue;
    }
    if (first) {
      for (size_t i = 0; i < cells.size(); ++i) {
        headers.push_back(StringPrintf("col%zu", i));
      }
      first = false;
    }
    rows.push_back(std::move(cells));
  }
  if (headers.empty()) return Status::IOError("empty file '" + path + "'");

  Schema schema;
  for (size_t c = 0; c < headers.size(); ++c) {
    bool all_int = true, all_num = true, any_value = false;
    for (const auto& r : rows) {
      if (c >= r.size()) continue;
      const std::string& cell = r[c];
      if (cell.empty() || cell == options.null_token) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (!ParseInt64(cell, &iv)) all_int = false;
      if (!ParseDouble(cell, &dv)) all_num = false;
    }
    ValueType type = ValueType::kString;
    ColumnRole role = ColumnRole::kDimension;
    if (any_value && all_int) {
      type = ValueType::kInt64;
      role = ColumnRole::kMeasure;
    } else if (any_value && all_num) {
      type = ValueType::kDouble;
      role = ColumnRole::kMeasure;
    }
    SEEDB_RETURN_IF_ERROR(schema.AddColumn(ColumnDef(headers[c], type, role)));
  }

  Table table(schema);
  std::vector<Value> row(schema.num_columns());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StringPrintf("row %zu has %zu fields, expected %zu", r + 1,
                       rows[r].size(), schema.num_columns()));
    }
    for (size_t c = 0; c < rows[r].size(); ++c) {
      SEEDB_ASSIGN_OR_RETURN(
          row[c], CellToValue(rows[r][c], schema.column(c).type, options));
    }
    SEEDB_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << options.delimiter;
      out << QuoteIfNeeded(table.schema().column(c).name, options.delimiter);
    }
    out << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << options.delimiter;
      Value v = table.ValueAt(r, c);
      if (v.is_null()) {
        out << options.null_token;
      } else if (v.type() == ValueType::kDouble) {
        // Full round-trip precision; Value::ToString is display-truncated.
        out << StringPrintf("%.17g", v.AsDouble());
      } else {
        out << QuoteIfNeeded(v.ToString(), options.delimiter);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace seedb::db
