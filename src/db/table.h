// Table: a schema plus columnar data, the engine's only collection type.

#ifndef SEEDB_DB_TABLE_H_
#define SEEDB_DB_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "db/column.h"
#include "db/schema.h"
#include "util/result.h"

namespace seedb::db {

/// \brief An in-memory columnar table.
///
/// Append-only: rows are added via AppendRow (boxed, validated) or by writing
/// through mutable columns during bulk load. Reads hand out const column
/// references for vectorized access.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends one row; `values` must match the schema arity and types
  /// (nulls allowed anywhere).
  Status AppendRow(const std::vector<Value>& values);

  const Column& column(size_t i) const { return *columns_[i]; }
  /// Column by name; error if absent.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Mutable column access for bulk loaders. Callers must keep all columns
  /// the same length; FinishBulkLoad() re-derives the row count and verifies.
  Column* mutable_column(size_t i) { return columns_[i].get(); }
  Status FinishBulkLoad();

  /// Boxed cell access (edge-of-engine).
  Value ValueAt(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }

  /// New table containing exactly the given rows (in order, repeats allowed).
  Table SelectRows(const std::vector<uint32_t>& rows) const;

  /// Approximate in-memory footprint in bytes (data vectors only).
  size_t MemoryBytes() const;

  /// First `max_rows` rows as an aligned-column text block for debugging.
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace seedb::db

#endif  // SEEDB_DB_TABLE_H_
