#include "db/scan_cache.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace seedb::db {
namespace {

/// Priors are ~50 bytes each; past this the side map is cleared wholesale
/// rather than tracked by a second LRU (a cold prior merely costs one
/// conservative warmup, so losing them is cheap).
constexpr size_t kMaxPriors = 1 << 16;

std::string DoubleBitsKey(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they select equal rows)
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return StringPrintf("%016llx", static_cast<unsigned long long>(bits));
}

}  // namespace

std::string NormalizedValueKey(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kString:
      return "s:" + v.AsString();
    case ValueType::kInt64:
      // The engine compares numerics in the double domain (NumericAt /
      // EvaluateMask), so two literals equal as doubles select identical
      // rows — keying on the double bit pattern is semantically exact.
      return "d:" + DoubleBitsKey(static_cast<double>(v.AsInt64()));
    case ValueType::kDouble:
      return "d:" + DoubleBitsKey(v.AsDouble());
  }
  return "n";
}

std::string PredicateFingerprint(const Predicate* pred, const Schema& schema) {
  if (pred == nullptr) return "*";
  if (const auto* cmp = dynamic_cast<const ComparisonPredicate*>(pred)) {
    Result<size_t> idx = schema.FindColumn(cmp->column());
    if (idx.ok()) {
      const ValueType type = schema.columns()[*idx].type;
      return StringPrintf("cmp:%zu:%s:%s:", *idx,
                          ValueTypeToString(type), CompareOpToSql(cmp->op())) +
             NormalizedValueKey(cmp->literal());
    }
    // Unknown column: scan setup will reject the query anyway; fall through
    // to the SQL rendering so the fingerprint stays total.
  }
  return "sql:" + pred->ToSql();
}

std::string PartialAggCacheKey(const Table& table, uint64_t table_version,
                               const GroupingSetsQuery& query,
                               size_t set_index) {
  const Schema& schema = table.schema();
  std::string key = query.table;
  key += StringPrintf("#v%llu|w:",
                      static_cast<unsigned long long>(table_version));
  key += PredicateFingerprint(query.where.get(), schema);
  if (query.sample_fraction < 1.0) {
    key += "|smp:" + DoubleBitsKey(query.sample_fraction) +
           StringPrintf(":%llu",
                        static_cast<unsigned long long>(query.sample_seed));
  }
  key += "|g:";
  for (const std::string& col : query.grouping_sets[set_index]) {
    Result<size_t> idx = schema.FindColumn(col);
    if (idx.ok()) {
      key += StringPrintf("%zu,", *idx);
    } else {
      key += col + ",";
    }
  }
  for (const AggregateSpec& agg : query.aggregates) {
    // The function is excluded on purpose: AggState carries every function's
    // accumulators, so entries are shared across e.g. SUM and AVG sessions.
    key += "|a:";
    if (agg.input.empty()) {
      key += "*";
    } else {
      Result<size_t> idx = schema.FindColumn(agg.input);
      key += idx.ok() ? StringPrintf("%zu", *idx) : agg.input;
    }
    key += ":";
    key += PredicateFingerprint(agg.filter.get(), schema);
  }
  return key;
}

std::shared_ptr<const CachedPartialAgg> PartialAggCache::Lookup(
    const std::string& key) {
  base::MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void PartialAggCache::Insert(const std::string& key, CachedPartialAgg entry) {
  size_t bytes = entry.bytes;
  if (bytes == 0) {
    bytes = entry.rep_row.size() * sizeof(uint32_t) + key.size();
    for (const auto& per_agg : entry.states) {
      bytes += per_agg.size() * sizeof(AggState);
    }
    entry.bytes = bytes;
  }
  if (bytes > budget_) return;  // would evict the whole cache for one entry
  auto value = std::make_shared<const CachedPartialAgg>(std::move(entry));
  base::MutexLock lock(&mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.value->bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.value = std::move(value);
  } else {
    lru_.push_front(key);
    map_.emplace(key, Node{std::move(value), lru_.begin()});
  }
  bytes_ += bytes;
  ++insertions_;
  while (bytes_ > budget_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    if (victim == key) break;  // never evict what was just touched
    auto vit = map_.find(victim);
    bytes_ -= vit->second.value->bytes;
    map_.erase(vit);
    lru_.pop_back();
    ++evictions_;
    static obs::Counter* obs_evictions =
        obs::Registry::Global().GetCounter("engine.cache.evictions");
    obs_evictions->Add();
  }
}

void PartialAggCache::PutUtilityPrior(const std::string& key, double utility,
                                      uint64_t weight) {
  base::MutexLock lock(&mu_);
  if (priors_.size() >= kMaxPriors && !priors_.count(key)) priors_.clear();
  priors_[key] = {utility, weight};
}

bool PartialAggCache::LookupUtilityPrior(const std::string& key,
                                         double* utility,
                                         uint64_t* weight) const {
  base::MutexLock lock(&mu_);
  auto it = priors_.find(key);
  if (it == priors_.end()) return false;
  *utility = it->second.first;
  *weight = it->second.second;
  return true;
}

ScanCacheStats PartialAggCache::stats() const {
  base::MutexLock lock(&mu_);
  ScanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace seedb::db
