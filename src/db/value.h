// Value: the engine's dynamically-typed scalar (null, int64, double, string).
//
// Values appear at the engine's edges — row ingestion, literals in
// predicates, group keys in results. The columnar hot path works on typed
// vectors and never boxes per-row values.

#ifndef SEEDB_DB_VALUE_H_
#define SEEDB_DB_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "util/result.h"

namespace seedb::db {

/// Physical type of a column or value.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// \brief A scalar value of one of the engine's physical types.
///
/// Comparison follows SQL-ish semantics restricted to the same type family:
/// numerics (int64/double) compare numerically with each other; strings
/// compare lexicographically; null compares equal to null and less than
/// everything else (total order so Values can key ordered containers).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}
  Value(int v) : data_(static_cast<int64_t>(v)) {}
  Value(double v) : data_(v) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_numeric() const {
    return std::holds_alternative<int64_t>(data_) ||
           std::holds_alternative<double>(data_);
  }

  /// Typed accessors; calling the wrong one aborts (programming error).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: int64 or double -> double. Error for other types.
  Result<double> ToDouble() const;

  /// Display form ("NULL", "42", "3.5", "abc" — strings unquoted).
  std::string ToString() const;
  /// SQL literal form ("NULL", "42", "3.5", "'abc'" with '' escaping).
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const {
    return *this < other || *this == other;
  }
  bool operator>(const Value& other) const { return !(*this <= other); }
  bool operator>=(const Value& other) const { return !(*this < other); }

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace seedb::db

#endif  // SEEDB_DB_VALUE_H_
