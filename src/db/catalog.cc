#include "db/catalog.h"

namespace seedb::db {
namespace {

std::string CramersKey(const std::string& table, const std::string& a,
                       const std::string& b) {
  const std::string& lo = a <= b ? a : b;
  const std::string& hi = a <= b ? b : a;
  std::string key = table;
  key.push_back('\0');
  key += lo;
  key.push_back('\0');
  key += hi;
  return key;
}

void EraseCramersEntries(std::unordered_map<std::string, double>* cache,
                         const std::string& table) {
  std::string prefix = table;
  prefix.push_back('\0');
  for (auto it = cache->begin(); it != cache->end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = cache->erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

Status Catalog::AddTable(const std::string& name, Table table) {
  base::MutexLock lock(&mutex_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(table)));
  ++versions_[name];
  return Status::OK();
}

void Catalog::PutTable(const std::string& name, Table table) {
  base::MutexLock lock(&mutex_);
  tables_[name] = std::make_unique<Table>(std::move(table));
  stats_.erase(name);
  EraseCramersEntries(&cramers_cache_, name);
  ++versions_[name];
}

Status Catalog::DropTable(const std::string& name) {
  base::MutexLock lock(&mutex_);
  if (!tables_.erase(name)) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  stats_.erase(name);
  EraseCramersEntries(&cramers_cache_, name);
  ++versions_[name];
  return Status::OK();
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  base::MutexLock lock(&mutex_);
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

Result<double> Catalog::GetCramersV(const std::string& table,
                                    const std::string& a,
                                    const std::string& b) {
  std::string key = CramersKey(table, a, b);
  {
    base::MutexLock lock(&mutex_);
    auto it = cramers_cache_.find(key);
    if (it != cramers_cache_.end()) return it->second;
  }
  SEEDB_ASSIGN_OR_RETURN(const Table* data, GetTable(table));
  SEEDB_ASSIGN_OR_RETURN(double v, CramersV(*data, a, b));
  base::MutexLock lock(&mutex_);
  cramers_cache_.emplace(std::move(key), v);
  return v;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  base::MutexLock lock(&mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return static_cast<const Table*>(it->second.get());
}

bool Catalog::HasTable(const std::string& name) const {
  base::MutexLock lock(&mutex_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  base::MutexLock lock(&mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Result<const TableStats*> Catalog::GetStats(const std::string& name) {
  {
    base::MutexLock lock(&mutex_);
    auto it = stats_.find(name);
    if (it != stats_.end()) return static_cast<const TableStats*>(it->second.get());
  }
  SEEDB_ASSIGN_OR_RETURN(const Table* table, GetTable(name));
  auto computed = std::make_unique<TableStats>(ComputeTableStats(*table, name));
  base::MutexLock lock(&mutex_);
  auto [it, _] = stats_.emplace(name, std::move(computed));
  return static_cast<const TableStats*>(it->second.get());
}

}  // namespace seedb::db
