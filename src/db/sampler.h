// Sampling utilities (§3.3 "Sampling"): Bernoulli and reservoir row
// selection, plus in-memory sample materialization.
//
// SeeDB's sampling optimization builds a sample "that can fit in memory and
// run[s] all view queries against the sample". The inline per-query
// sample_fraction in GroupByQuery covers one-shot sampling; this module
// covers the materialized-sample strategy shared across many view queries.

#ifndef SEEDB_DB_SAMPLER_H_
#define SEEDB_DB_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

/// Row indices kept by an independent Bernoulli(fraction) trial per row.
/// Deterministic for a given seed.
std::vector<uint32_t> BernoulliSelection(size_t num_rows, double fraction,
                                         uint64_t seed);

/// Uniform fixed-size sample of `k` row indices (Algorithm R), returned in
/// ascending row order. If k >= num_rows every row is selected.
std::vector<uint32_t> ReservoirSelection(size_t num_rows, size_t k,
                                         uint64_t seed);

/// Materializes a Bernoulli sample of `table` as a new table.
Result<Table> MaterializeBernoulliSample(const Table& table, double fraction,
                                         uint64_t seed);

/// Materializes a fixed-size uniform sample of `table`.
Result<Table> MaterializeReservoirSample(const Table& table, size_t k,
                                         uint64_t seed);

/// Picks the largest sample size whose materialized footprint fits
/// `memory_budget_bytes`, assuming footprint scales linearly with rows.
size_t SampleSizeForBudget(const Table& table, size_t memory_budget_bytes);

}  // namespace seedb::db

#endif  // SEEDB_DB_SAMPLER_H_
