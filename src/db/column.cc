#include "db/column.h"

#include <unordered_set>

namespace seedb::db {

Column::Column(ValueType type) : type_(type) {}

void Column::MarkValidityForAppend(bool valid) {
  // Called after the data slot for the new row was pushed (size_ already
  // counts it), so prior rows number size_ - 1.
  if (!valid && validity_.empty()) {
    validity_.assign(size_ - 1, 1);  // retroactively mark prior rows valid
  }
  if (!validity_.empty() || !valid) {
    validity_.push_back(valid ? 1 : 0);
  }
  if (!valid) ++null_count_;
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case ValueType::kInt64:
      if (v.type() != ValueType::kInt64) {
        return Status::InvalidArgument("expected INT64, got " +
                                       std::string(ValueTypeToString(v.type())));
      }
      AppendInt64(v.AsInt64());
      return Status::OK();
    case ValueType::kDouble:
      if (!v.is_numeric()) {
        return Status::InvalidArgument("expected numeric, got " +
                                       std::string(ValueTypeToString(v.type())));
      }
      AppendDouble(v.ToDouble().ValueOrDie());
      return Status::OK();
    case ValueType::kString:
      if (v.type() != ValueType::kString) {
        return Status::InvalidArgument("expected STRING, got " +
                                       std::string(ValueTypeToString(v.type())));
      }
      AppendString(v.AsString());
      return Status::OK();
    case ValueType::kNull:
      return Status::InvalidArgument("column has invalid type NULL");
  }
  return Status::Internal("unreachable");
}

void Column::AppendInt64(int64_t v) {
  int64_data_.push_back(v);
  ++size_;
  MarkValidityForAppend(true);
}

void Column::AppendDouble(double v) {
  double_data_.push_back(v);
  ++size_;
  MarkValidityForAppend(true);
}

void Column::AppendString(std::string_view v) {
  auto it = dict_index_.find(std::string(v));
  int32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<int32_t>(dict_.size());
    dict_.emplace_back(v);
    dict_index_.emplace(dict_.back(), code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
  ++size_;
  MarkValidityForAppend(true);
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      int64_data_.push_back(0);
      break;
    case ValueType::kDouble:
      double_data_.push_back(0.0);
      break;
    case ValueType::kString:
      codes_.push_back(0);
      break;
    case ValueType::kNull:
      break;
  }
  ++size_;
  MarkValidityForAppend(false);
}

Value Column::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(int64_data_[row]);
    case ValueType::kDouble:
      return Value(double_data_[row]);
    case ValueType::kString:
      return Value(dict_[codes_[row]]);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

int32_t Column::FindCode(std::string_view s) const {
  auto it = dict_index_.find(std::string(s));
  return it == dict_index_.end() ? -1 : it->second;
}

size_t Column::CountDistinct() const {
  switch (type_) {
    case ValueType::kString: {
      if (null_count_ == 0) return dict_.size();
      // Some dictionary entries may only back null slots' placeholder code 0;
      // count codes actually referenced by valid rows.
      std::unordered_set<int32_t> seen;
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(codes_[i]);
      }
      return seen.size();
    }
    case ValueType::kInt64: {
      std::unordered_set<int64_t> seen;
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(int64_data_[i]);
      }
      return seen.size();
    }
    case ValueType::kDouble: {
      std::unordered_set<double> seen;
      for (size_t i = 0; i < size_; ++i) {
        if (!IsNull(i)) seen.insert(double_data_[i]);
      }
      return seen.size();
    }
    case ValueType::kNull:
      return 0;
  }
  return 0;
}

}  // namespace seedb::db
