// Engine: the query entry point of the embedded DBMS, with the per-pass cost
// accounting SeeDB's optimizer study measures.
//
// Every §3.3 optimization is a claim about scans and shared work. The engine
// therefore counts observable costs — queries executed, table scans, rows and
// cells touched, aggregation working memory — so benches and tests can verify
// e.g. that combining target and comparison views exactly halves scans.

#ifndef SEEDB_DB_ENGINE_H_
#define SEEDB_DB_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/access_tracker.h"
#include "db/catalog.h"
#include "db/group_by.h"
#include "db/grouping_sets.h"
#include "db/scan_cache.h"
#include "db/shared_scan.h"
#include "util/result.h"

namespace seedb::db {

/// Plain-value snapshot of the engine's cumulative execution counters.
struct EngineStatsSnapshot {
  uint64_t queries_executed = 0;
  /// Passes over a base table (a GROUPING SETS query is one scan; a whole
  /// shared-scan batch is one scan regardless of how many queries it fuses).
  uint64_t table_scans = 0;
  /// Fused shared-scan batches executed (each contributed one table scan).
  uint64_t shared_scan_batches = 0;
  /// Morsels of those batches whose inner loop ran the vectorized kernels
  /// (db/vec/) for at least one grouping set — 0 when every set fell back
  /// to the hash path.
  uint64_t vectorized_morsels = 0;
  /// Of those, morsels whose vectorized loop additionally ran the
  /// explicit-SIMD kernel tier (db/vec/simd/) — 0 when the tier is switched
  /// off, built scalar, or the CPU lacks the ISA.
  uint64_t simd_morsels = 0;
  uint64_t rows_scanned = 0;
  uint64_t groups_created = 0;
  /// Largest per-query aggregation working set seen.
  uint64_t peak_agg_state_bytes = 0;
  uint64_t total_exec_micros = 0;
  /// Cross-session result cache (EnableResultCache): (query, grouping set)
  /// pairs adopted from / missed in the cache across all shared batches,
  /// plus the cache's current footprint and lifetime eviction count. All
  /// zero — and omitted from ToString() — while the cache is disabled.
  bool result_cache_enabled = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_evictions = 0;

  std::string ToString() const;
};

class Engine;

/// \brief A fused scan advancing through the table in caller-controlled
/// phases, with engine stat accounting folded in at Finalize().
///
/// Created by Engine::BeginShared. The phased executor drives it: run a
/// phase, inspect un-finalized per-query partials, retire queries whose
/// views lost contention, repeat. However many phases the session runs, the
/// whole batch still records exactly ONE table scan — phases partition one
/// pass, they do not repeat it. A session abandoned without Finalize()
/// records nothing.
class SharedScanSession {
 public:
  SharedScanSession(SharedScanSession&&) noexcept = default;
  SharedScanSession& operator=(SharedScanSession&&) noexcept = default;

  size_t num_rows() const { return state_.num_rows(); }
  size_t num_queries() const { return state_.num_queries(); }
  size_t rows_consumed() const { return state_.rows_consumed(); }

  /// Scans [row_begin, row_end) for every active query (phases must be
  /// contiguous and forward; see db::SharedScanState::RunPhase).
  Status RunPhase(size_t row_begin, size_t row_end);

  /// True once the options' cancel token cut a phase short; the session can
  /// be finalized on partial data, or re-opened with ResumeAfterCancel().
  bool cancelled() const { return state_.cancelled(); }

  /// Re-opens a cancelled scan: the cut-short phase's missed morsels are
  /// scanned now and later phases run again (the caller resets the cancel
  /// token first). See db::SharedScanState::ResumeAfterCancel.
  Status ResumeAfterCancel() { return state_.ResumeAfterCancel(); }

  bool query_active(size_t q) const { return state_.query_active(q); }
  size_t active_queries() const { return state_.active_queries(); }
  /// Retires query `q`: later phases stop scanning for it.
  Status DeactivateQuery(size_t q) { return state_.DeactivateQuery(q); }

  /// Query q's current partial results (un-finalized running aggregates).
  Result<std::vector<Table>> PartialResults(size_t q) const {
    return state_.PartialResults(q);
  }

  /// Terminal call: materializes every surviving query's results (retired
  /// queries yield an empty vector) and records the whole session in the
  /// engine's counters — queries_executed += batch size, table_scans += 1.
  Result<std::vector<std::vector<Table>>> Finalize();

  SharedScanStats stats() const { return state_.stats(); }

 private:
  friend class Engine;
  SharedScanSession(Engine* engine, SharedScanState state)
      : engine_(engine), state_(std::move(state)) {}

  Engine* engine_;
  SharedScanState state_;
  uint64_t exec_micros_ = 0;
  bool finalized_ = false;
};

/// \brief Executes queries against a Catalog, recording cost metrics and
/// column access patterns.
///
/// Execute() is safe to call concurrently from multiple threads (counters are
/// atomic; tables are immutable during querying) — this is what SeeDB's
/// parallel query execution relies on.
class Engine {
 public:
  explicit Engine(Catalog* catalog) : catalog_(catalog) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes a grouped aggregation (one table scan).
  Result<Table> Execute(const GroupByQuery& query);

  /// Executes a multi-group-by query (one shared table scan).
  Result<std::vector<Table>> Execute(const GroupingSetsQuery& query);

  /// Executes a whole batch of multi-group-by queries in ONE fused
  /// morsel-driven pass (db/shared_scan.h). All queries must target the same
  /// table. Every query still counts in `queries_executed`, but the batch
  /// records exactly one `table_scans` increment — the engine-level
  /// realization of §3.3's scan-sharing argument. Result `[q]` matches
  /// Execute(queries[q]).
  Result<std::vector<std::vector<Table>>> ExecuteShared(
      const std::vector<GroupingSetsQuery>& queries,
      const SharedScanOptions& options = {});

  /// Opens a resumable fused scan over `queries` (all against one table)
  /// that the caller advances phase by phase — the engine face of
  /// db::SharedScanState, used by the phased executor's online pruning.
  /// Cost accounting happens when the session finalizes.
  Result<SharedScanSession> BeginShared(std::vector<GroupingSetsQuery> queries,
                                        const SharedScanOptions& options = {});

  /// Parses and executes a SQL SELECT (the wrapper-deployment interface).
  /// Supports the dialect in db/sql/parser.h; GROUPING SETS queries return
  /// their first result set through this interface.
  Result<Table> ExecuteSql(const std::string& sql);

  Catalog* catalog() { return catalog_; }
  const Catalog* catalog() const { return catalog_; }
  AccessTracker* access_tracker() { return &tracker_; }

  /// Switches on the cross-session partial-aggregate cache (off by
  /// default): every BeginShared / ExecuteShared call afterwards consults
  /// and feeds it, keyed by (table version, predicate fingerprint, grouping
  /// set) — see db/scan_cache.h. `budget_bytes` caps the LRU footprint
  /// under the same accounting unit as agg_state_bytes. Call before serving
  /// traffic; not concurrency-safe against in-flight scans.
  void EnableResultCache(size_t budget_bytes);
  /// The cache, or nullptr while disabled.
  PartialAggCache* result_cache() { return cache_.get(); }
  const PartialAggCache* result_cache() const { return cache_.get(); }

  EngineStatsSnapshot stats() const;
  void ResetStats();

 private:
  friend class SharedScanSession;

  void RecordAccess(const std::string& table,
                    const std::vector<std::string>& group_cols,
                    const std::vector<AggregateSpec>& aggs,
                    const Predicate* where);
  /// Folds one finished shared-scan batch (one-shot or phased session) into
  /// the counters: 1 table scan, queries.size() queries, the batch's rows /
  /// groups / working set, and access-tracker entries.
  void RecordSharedBatch(const std::vector<GroupingSetsQuery>& queries,
                         const SharedScanStats& stats, uint64_t exec_micros);

  Catalog* catalog_;
  AccessTracker tracker_;
  /// Cross-session partial-aggregate cache; null until EnableResultCache.
  std::unique_ptr<PartialAggCache> cache_;

  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> table_scans_{0};
  std::atomic<uint64_t> shared_scan_batches_{0};
  std::atomic<uint64_t> vectorized_morsels_{0};
  std::atomic<uint64_t> simd_morsels_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> groups_created_{0};
  std::atomic<uint64_t> peak_agg_state_bytes_{0};
  std::atomic<uint64_t> total_exec_micros_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace seedb::db

#endif  // SEEDB_DB_ENGINE_H_
