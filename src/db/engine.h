// Engine: the query entry point of the embedded DBMS, with the per-pass cost
// accounting SeeDB's optimizer study measures.
//
// Every §3.3 optimization is a claim about scans and shared work. The engine
// therefore counts observable costs — queries executed, table scans, rows and
// cells touched, aggregation working memory — so benches and tests can verify
// e.g. that combining target and comparison views exactly halves scans.

#ifndef SEEDB_DB_ENGINE_H_
#define SEEDB_DB_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "db/access_tracker.h"
#include "db/catalog.h"
#include "db/group_by.h"
#include "db/grouping_sets.h"
#include "db/shared_scan.h"
#include "util/result.h"

namespace seedb::db {

/// Plain-value snapshot of the engine's cumulative execution counters.
struct EngineStatsSnapshot {
  uint64_t queries_executed = 0;
  /// Passes over a base table (a GROUPING SETS query is one scan; a whole
  /// shared-scan batch is one scan regardless of how many queries it fuses).
  uint64_t table_scans = 0;
  /// Fused shared-scan batches executed (each contributed one table scan).
  uint64_t shared_scan_batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t groups_created = 0;
  /// Largest per-query aggregation working set seen.
  uint64_t peak_agg_state_bytes = 0;
  uint64_t total_exec_micros = 0;

  std::string ToString() const;
};

/// \brief Executes queries against a Catalog, recording cost metrics and
/// column access patterns.
///
/// Execute() is safe to call concurrently from multiple threads (counters are
/// atomic; tables are immutable during querying) — this is what SeeDB's
/// parallel query execution relies on.
class Engine {
 public:
  explicit Engine(Catalog* catalog) : catalog_(catalog) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes a grouped aggregation (one table scan).
  Result<Table> Execute(const GroupByQuery& query);

  /// Executes a multi-group-by query (one shared table scan).
  Result<std::vector<Table>> Execute(const GroupingSetsQuery& query);

  /// Executes a whole batch of multi-group-by queries in ONE fused
  /// morsel-driven pass (db/shared_scan.h). All queries must target the same
  /// table. Every query still counts in `queries_executed`, but the batch
  /// records exactly one `table_scans` increment — the engine-level
  /// realization of §3.3's scan-sharing argument. Result `[q]` matches
  /// Execute(queries[q]).
  Result<std::vector<std::vector<Table>>> ExecuteShared(
      const std::vector<GroupingSetsQuery>& queries,
      const SharedScanOptions& options = {});

  /// Parses and executes a SQL SELECT (the wrapper-deployment interface).
  /// Supports the dialect in db/sql/parser.h; GROUPING SETS queries return
  /// their first result set through this interface.
  Result<Table> ExecuteSql(const std::string& sql);

  Catalog* catalog() { return catalog_; }
  const Catalog* catalog() const { return catalog_; }
  AccessTracker* access_tracker() { return &tracker_; }

  EngineStatsSnapshot stats() const;
  void ResetStats();

 private:
  void RecordAccess(const std::string& table,
                    const std::vector<std::string>& group_cols,
                    const std::vector<AggregateSpec>& aggs,
                    const Predicate* where);

  Catalog* catalog_;
  AccessTracker tracker_;

  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> table_scans_{0};
  std::atomic<uint64_t> shared_scan_batches_{0};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> groups_created_{0};
  std::atomic<uint64_t> peak_agg_state_bytes_{0};
  std::atomic<uint64_t> total_exec_micros_{0};
};

}  // namespace seedb::db

#endif  // SEEDB_DB_ENGINE_H_
