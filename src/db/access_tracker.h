// Column access tracking (§3.3 "Access frequency-based pruning").
//
// "SEEDB tracks access patterns for each table to identify the most
// frequently accessed columns ... and uses this information to prune
// attributes that are rarely accessed." The Engine records every executed
// query's referenced columns here; the access-frequency pruner consults it.

#ifndef SEEDB_DB_ACCESS_TRACKER_H_
#define SEEDB_DB_ACCESS_TRACKER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"

namespace seedb::db {

/// \brief Thread-safe per-(table, column) access counter.
class AccessTracker {
 public:
  /// Records one query against `table` touching `columns` (each column
  /// counted once per query even if referenced multiple times).
  void RecordQuery(const std::string& table,
                   const std::vector<std::string>& columns);

  /// Number of queries recorded against `table`.
  uint64_t QueryCount(const std::string& table) const;

  /// Number of queries against `table` that touched `column`.
  uint64_t AccessCount(const std::string& table,
                       const std::string& column) const;

  /// Fraction of `table`'s queries touching `column` in [0,1]; 0 when no
  /// queries have been recorded.
  double AccessFrequency(const std::string& table,
                         const std::string& column) const;

  /// Columns of `table` ordered by descending access count.
  std::vector<std::pair<std::string, uint64_t>> TopColumns(
      const std::string& table) const;

  /// Forgets everything (e.g. between benchmark repetitions).
  void Reset();

 private:
  mutable base::Mutex mutex_;
  std::unordered_map<std::string, uint64_t> query_counts_ GUARDED_BY(mutex_);
  /// Key: table + '\0' + column.
  std::unordered_map<std::string, uint64_t> access_counts_ GUARDED_BY(mutex_);
};

}  // namespace seedb::db

#endif  // SEEDB_DB_ACCESS_TRACKER_H_
