// Column and table statistics: the "Metadata Collector" substrate (§3.1).
//
// SeeDB's Query Generator prunes the view space using metadata: value
// distributions (variance pruning), inter-dimension correlation (correlated-
// attribute pruning), and access patterns (tracked separately in
// access_tracker.h).

#ifndef SEEDB_DB_STATISTICS_H_
#define SEEDB_DB_STATISTICS_H_

#include <string>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

/// \brief Profile of a single column.
struct ColumnStats {
  std::string name;
  ValueType type = ValueType::kNull;
  ColumnRole role = ColumnRole::kOther;
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;

  /// Numeric profile (zero for string columns).
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;

  /// Gini–Simpson diversity of the value distribution: 1 - sum(p_i^2).
  /// 0 when the column takes a single value; approaches 1 - 1/n for a
  /// uniform n-ary column. This is the "variance" signal the paper's
  /// variance-based dimension pruning keys on (a single-valued attribute has
  /// diversity 0 and its view distribution can never deviate).
  double diversity = 0.0;

  /// Shannon entropy of the value distribution, normalized to [0,1] by
  /// log(distinct_count) (1 = uniform; 0 = single-valued).
  double normalized_entropy = 0.0;

  /// Up to `kTopValues` most frequent values with counts, descending.
  std::vector<std::pair<Value, size_t>> top_values;

  static constexpr size_t kTopValues = 10;
};

/// \brief Profile of a whole table.
struct TableStats {
  std::string table_name;
  size_t num_rows = 0;
  size_t memory_bytes = 0;
  std::vector<ColumnStats> columns;

  Result<const ColumnStats*> Find(const std::string& column) const;
};

/// Profiles one column (O(n)).
ColumnStats ComputeColumnStats(const Table& table, size_t col_index);

/// Profiles every column of `table`.
TableStats ComputeTableStats(const Table& table, const std::string& name);

/// Cramér's V association between two categorical columns in [0, 1]
/// (0 = independent, 1 = one determines the other). Both columns must be
/// dimension-typed (string or int64); computed from the contingency table.
/// This is the correlation the correlated-attribute pruner clusters on.
Result<double> CramersV(const Table& table, const std::string& col_a,
                        const std::string& col_b);

}  // namespace seedb::db

#endif  // SEEDB_DB_STATISTICS_H_
