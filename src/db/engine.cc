#include "db/engine.h"

#include "db/sql/parser.h"
#include "obs/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seedb::db {

std::string EngineStatsSnapshot::ToString() const {
  std::string s = StringPrintf(
      "queries=%llu scans=%llu shared_batches=%llu vec_morsels=%llu "
      "simd_morsels=%llu rows_scanned=%llu groups=%llu peak_agg_state=%lluB "
      "exec=%.3fms",
      static_cast<unsigned long long>(queries_executed),
      static_cast<unsigned long long>(table_scans),
      static_cast<unsigned long long>(shared_scan_batches),
      static_cast<unsigned long long>(vectorized_morsels),
      static_cast<unsigned long long>(simd_morsels),
      static_cast<unsigned long long>(rows_scanned),
      static_cast<unsigned long long>(groups_created),
      static_cast<unsigned long long>(peak_agg_state_bytes),
      static_cast<double>(total_exec_micros) / 1000.0);
  if (result_cache_enabled) {
    s += StringPrintf(
        " cache_hits=%llu cache_misses=%llu cache_bytes=%lluB "
        "cache_evictions=%llu",
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses),
        static_cast<unsigned long long>(cache_bytes),
        static_cast<unsigned long long>(cache_evictions));
  }
  return s;
}

void Engine::RecordAccess(const std::string& table,
                          const std::vector<std::string>& group_cols,
                          const std::vector<AggregateSpec>& aggs,
                          const Predicate* where) {
  std::vector<std::string> cols = group_cols;
  for (const auto& a : aggs) {
    if (!a.input.empty()) cols.push_back(a.input);
    if (a.filter) a.filter->CollectColumns(&cols);
  }
  if (where) where->CollectColumns(&cols);
  tracker_.RecordQuery(table, cols);
}

namespace {

void UpdatePeak(std::atomic<uint64_t>* peak, uint64_t candidate) {
  uint64_t cur = peak->load(std::memory_order_relaxed);
  while (candidate > cur &&
         !peak->compare_exchange_weak(cur, candidate,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

Result<Table> Engine::Execute(const GroupByQuery& query) {
  SEEDB_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(query.table));
  Stopwatch timer;
  GroupByStats qstats;
  SEEDB_ASSIGN_OR_RETURN(Table result,
                         ExecuteGroupBy(*table, query, &qstats));
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  table_scans_.fetch_add(1, std::memory_order_relaxed);
  rows_scanned_.fetch_add(qstats.rows_scanned, std::memory_order_relaxed);
  groups_created_.fetch_add(qstats.num_groups, std::memory_order_relaxed);
  UpdatePeak(&peak_agg_state_bytes_, qstats.agg_state_bytes);
  const uint64_t exec_us = static_cast<uint64_t>(timer.ElapsedMicros());
  total_exec_micros_.fetch_add(exec_us, std::memory_order_relaxed);
  // The per-query path never enters the shared-scan machinery, so it feeds
  // the registry here: engine.phase.latency_us has no analogue (there are
  // no phases), engine.query.latency_us is its standalone counterpart.
  static obs::Histogram* query_latency =
      obs::Registry::Global().GetHistogram("engine.query.latency_us");
  static obs::Counter* obs_rows =
      obs::Registry::Global().GetCounter("engine.scan.rows");
  query_latency->Observe(exec_us);
  obs_rows->Add(qstats.rows_scanned);
  RecordAccess(query.table, query.group_by, query.aggregates,
               query.where.get());
  return result;
}

Result<std::vector<Table>> Engine::Execute(const GroupingSetsQuery& query) {
  SEEDB_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(query.table));
  Stopwatch timer;
  GroupingSetsStats qstats;
  SEEDB_ASSIGN_OR_RETURN(std::vector<Table> results,
                         ExecuteGroupingSets(*table, query, &qstats));
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  // The defining property of GROUPING SETS: one scan regardless of set count.
  table_scans_.fetch_add(1, std::memory_order_relaxed);
  rows_scanned_.fetch_add(qstats.rows_scanned, std::memory_order_relaxed);
  groups_created_.fetch_add(qstats.total_groups, std::memory_order_relaxed);
  UpdatePeak(&peak_agg_state_bytes_, qstats.agg_state_bytes);
  const uint64_t exec_us = static_cast<uint64_t>(timer.ElapsedMicros());
  total_exec_micros_.fetch_add(exec_us, std::memory_order_relaxed);
  // Same registry feed as the GroupByQuery overload: this is the fused
  // per-query path (one scan, no phases).
  static obs::Histogram* query_latency =
      obs::Registry::Global().GetHistogram("engine.query.latency_us");
  static obs::Counter* obs_rows =
      obs::Registry::Global().GetCounter("engine.scan.rows");
  query_latency->Observe(exec_us);
  obs_rows->Add(qstats.rows_scanned);
  std::vector<std::string> group_cols;
  for (const auto& set : query.grouping_sets) {
    group_cols.insert(group_cols.end(), set.begin(), set.end());
  }
  RecordAccess(query.table, group_cols, query.aggregates, query.where.get());
  return results;
}

Status SharedScanSession::RunPhase(size_t row_begin, size_t row_end) {
  Stopwatch timer;
  Status s = state_.RunPhase(row_begin, row_end);
  exec_micros_ += static_cast<uint64_t>(timer.ElapsedMicros());
  return s;
}

Result<std::vector<std::vector<Table>>> SharedScanSession::Finalize() {
  if (finalized_) {
    return Status::Internal("shared-scan session already finalized");
  }
  Stopwatch timer;
  SEEDB_ASSIGN_OR_RETURN(std::vector<std::vector<Table>> results,
                         state_.FinalResults());
  exec_micros_ += static_cast<uint64_t>(timer.ElapsedMicros());
  finalized_ = true;
  engine_->RecordSharedBatch(state_.queries(), state_.stats(), exec_micros_);
  return results;
}

void Engine::RecordSharedBatch(const std::vector<GroupingSetsQuery>& queries,
                               const SharedScanStats& stats,
                               uint64_t exec_micros) {
  queries_executed_.fetch_add(queries.size(), std::memory_order_relaxed);
  // The fused batch is ONE pass over the base table, however many view
  // queries (or phases) it spans — the invariant the shared-scan tests pin
  // down.
  table_scans_.fetch_add(1, std::memory_order_relaxed);
  shared_scan_batches_.fetch_add(1, std::memory_order_relaxed);
  vectorized_morsels_.fetch_add(stats.vectorized_morsels,
                                std::memory_order_relaxed);
  simd_morsels_.fetch_add(stats.simd_morsels, std::memory_order_relaxed);
  rows_scanned_.fetch_add(stats.rows_scanned, std::memory_order_relaxed);
  groups_created_.fetch_add(stats.total_groups, std::memory_order_relaxed);
  UpdatePeak(&peak_agg_state_bytes_, stats.agg_state_bytes);
  total_exec_micros_.fetch_add(exec_micros, std::memory_order_relaxed);
  cache_hits_.fetch_add(stats.cache_hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(stats.cache_misses, std::memory_order_relaxed);
  static obs::Counter* obs_hits =
      obs::Registry::Global().GetCounter("engine.cache.hits");
  static obs::Counter* obs_misses =
      obs::Registry::Global().GetCounter("engine.cache.misses");
  obs_hits->Add(stats.cache_hits);
  obs_misses->Add(stats.cache_misses);
  for (const auto& query : queries) {
    std::vector<std::string> group_cols;
    for (const auto& set : query.grouping_sets) {
      group_cols.insert(group_cols.end(), set.begin(), set.end());
    }
    RecordAccess(query.table, group_cols, query.aggregates, query.where.get());
  }
}

Result<SharedScanSession> Engine::BeginShared(
    std::vector<GroupingSetsQuery> queries, const SharedScanOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("shared scan needs at least one query");
  }
  for (const auto& q : queries) {
    if (q.table != queries.front().table) {
      return Status::InvalidArgument(
          "shared scan queries must target one table (got '" +
          queries.front().table + "' and '" + q.table + "')");
    }
  }
  SEEDB_ASSIGN_OR_RETURN(const Table* table,
                         catalog_->GetTable(queries.front().table));
  SharedScanOptions resolved = options;
  if (cache_ != nullptr && resolved.cache == nullptr &&
      resolved.use_result_cache) {
    resolved.cache = cache_.get();
    resolved.table_version = catalog_->TableVersion(queries.front().table);
  }
  SEEDB_ASSIGN_OR_RETURN(
      SharedScanState state,
      SharedScanState::Create(*table, std::move(queries), resolved));
  return SharedScanSession(this, std::move(state));
}

void Engine::EnableResultCache(size_t budget_bytes) {
  cache_ = std::make_unique<PartialAggCache>(budget_bytes);
}

Result<std::vector<std::vector<Table>>> Engine::ExecuteShared(
    const std::vector<GroupingSetsQuery>& queries,
    const SharedScanOptions& options) {
  SEEDB_ASSIGN_OR_RETURN(SharedScanSession session,
                         BeginShared(queries, options));
  SEEDB_RETURN_IF_ERROR(session.RunPhase(0, session.num_rows()));
  return session.Finalize();
}

Result<Table> Engine::ExecuteSql(const std::string& sql) {
  SEEDB_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  if (!stmt.grouping_sets.empty()) {
    SEEDB_ASSIGN_OR_RETURN(GroupingSetsQuery q,
                           sql::PlanGroupingSets(stmt));
    SEEDB_ASSIGN_OR_RETURN(std::vector<Table> results, Execute(q));
    if (results.empty()) return Status::Internal("no result sets");
    return std::move(results[0]);
  }
  SEEDB_ASSIGN_OR_RETURN(GroupByQuery q, sql::PlanGroupBy(stmt));
  return Execute(q);
}

EngineStatsSnapshot Engine::stats() const {
  EngineStatsSnapshot s;
  s.queries_executed = queries_executed_.load(std::memory_order_relaxed);
  s.table_scans = table_scans_.load(std::memory_order_relaxed);
  s.shared_scan_batches = shared_scan_batches_.load(std::memory_order_relaxed);
  s.vectorized_morsels = vectorized_morsels_.load(std::memory_order_relaxed);
  s.simd_morsels = simd_morsels_.load(std::memory_order_relaxed);
  s.rows_scanned = rows_scanned_.load(std::memory_order_relaxed);
  s.groups_created = groups_created_.load(std::memory_order_relaxed);
  s.peak_agg_state_bytes =
      peak_agg_state_bytes_.load(std::memory_order_relaxed);
  s.total_exec_micros = total_exec_micros_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    s.result_cache_enabled = true;
    const ScanCacheStats cs = cache_->stats();
    s.cache_bytes = cs.bytes;
    s.cache_evictions = cs.evictions;
  }
  return s;
}

void Engine::ResetStats() {
  queries_executed_.store(0, std::memory_order_relaxed);
  table_scans_.store(0, std::memory_order_relaxed);
  shared_scan_batches_.store(0, std::memory_order_relaxed);
  vectorized_morsels_.store(0, std::memory_order_relaxed);
  simd_morsels_.store(0, std::memory_order_relaxed);
  rows_scanned_.store(0, std::memory_order_relaxed);
  groups_created_.store(0, std::memory_order_relaxed);
  peak_agg_state_bytes_.store(0, std::memory_order_relaxed);
  total_exec_micros_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
}

}  // namespace seedb::db
