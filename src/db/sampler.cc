#include "db/sampler.h"

#include <algorithm>

#include "util/random.h"
#include "util/string_util.h"

namespace seedb::db {

std::vector<uint32_t> BernoulliSelection(size_t num_rows, double fraction,
                                         uint64_t seed) {
  std::vector<uint32_t> out;
  if (fraction <= 0.0) return out;
  if (fraction >= 1.0) {
    out.resize(num_rows);
    for (size_t i = 0; i < num_rows; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  Random rng(seed);
  out.reserve(static_cast<size_t>(static_cast<double>(num_rows) * fraction * 1.1) + 16);
  for (size_t i = 0; i < num_rows; ++i) {
    if (rng.Bernoulli(fraction)) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> ReservoirSelection(size_t num_rows, size_t k,
                                         uint64_t seed) {
  std::vector<uint32_t> reservoir;
  if (k == 0) return reservoir;
  if (k >= num_rows) {
    reservoir.resize(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      reservoir[i] = static_cast<uint32_t>(i);
    }
    return reservoir;
  }
  reservoir.reserve(k);
  Random rng(seed);
  for (size_t i = 0; i < num_rows; ++i) {
    if (i < k) {
      reservoir.push_back(static_cast<uint32_t>(i));
    } else {
      size_t j = static_cast<size_t>(rng.Uniform(i + 1));
      if (j < k) reservoir[j] = static_cast<uint32_t>(i);
    }
  }
  std::sort(reservoir.begin(), reservoir.end());
  return reservoir;
}

Result<Table> MaterializeBernoulliSample(const Table& table, double fraction,
                                         uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument(
        StringPrintf("sample fraction %f outside (0, 1]", fraction));
  }
  return table.SelectRows(BernoulliSelection(table.num_rows(), fraction, seed));
}

Result<Table> MaterializeReservoirSample(const Table& table, size_t k,
                                         uint64_t seed) {
  if (k == 0) {
    return Status::InvalidArgument("reservoir sample size must be positive");
  }
  return table.SelectRows(ReservoirSelection(table.num_rows(), k, seed));
}

size_t SampleSizeForBudget(const Table& table, size_t memory_budget_bytes) {
  if (table.num_rows() == 0) return 0;
  size_t footprint = table.MemoryBytes();
  if (footprint <= memory_budget_bytes) return table.num_rows();
  double bytes_per_row =
      static_cast<double>(footprint) / static_cast<double>(table.num_rows());
  return static_cast<size_t>(static_cast<double>(memory_budget_bytes) /
                             bytes_per_row);
}

}  // namespace seedb::db
