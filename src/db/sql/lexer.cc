#include "db/sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace seedb::db::sql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

bool Token::IsSymbol(const char* sym) const {
  return type == TokenType::kSymbol && text == sym;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tokens.push_back({TokenType::kIdentifier, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        if (input[j] == '.') seen_dot = true;
        ++j;
      }
      tokens.push_back({TokenType::kNumber, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += input[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StringPrintf("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      i = j;
      continue;
    }
    // Multi-character operators first.
    if (c == '<' && i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
      tokens.push_back({TokenType::kSymbol, input.substr(i, 2), start});
      i += 2;
      continue;
    }
    if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenType::kSymbol, ">=", start});
      i += 2;
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenType::kSymbol, "!=", start});
      i += 2;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == '<' ||
        c == '>' || c == '-') {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StringPrintf("unexpected character '%c' at offset %zu", c, start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace seedb::db::sql
