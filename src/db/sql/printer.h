// Pretty-printing of engine queries as SQL text.
//
// SeeDB's wrapper deployment sends SQL strings to the underlying DBMS; the
// printer is the inverse of the parser, and round-trip tests pin the dialect
// (Parse(Print(q)) plans back to an equivalent query).

#ifndef SEEDB_DB_SQL_PRINTER_H_
#define SEEDB_DB_SQL_PRINTER_H_

#include <string>

#include "db/group_by.h"
#include "db/grouping_sets.h"
#include "db/sql/ast.h"

namespace seedb::db::sql {

/// Lowers an executable query back into an AST (for printing or rewriting).
SelectStatement ToStatement(const GroupByQuery& query);
SelectStatement ToStatement(const GroupingSetsQuery& query);

/// Renders SQL with one clause per line — the form used in logs and docs.
std::string PrettyPrint(const SelectStatement& stmt);

}  // namespace seedb::db::sql

#endif  // SEEDB_DB_SQL_PRINTER_H_
