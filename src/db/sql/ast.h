// AST for the engine's SQL dialect.
//
// The dialect covers exactly the query shapes SeeDB generates when deployed
// as a wrapper over a SQL DBMS (§3): single-table SELECTs with aggregates,
// optional FILTER clauses (combined target/comparison rewrite), WHERE,
// GROUP BY (plain or GROUPING SETS), and TABLESAMPLE BERNOULLI.

#ifndef SEEDB_DB_SQL_AST_H_
#define SEEDB_DB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "db/aggregates.h"
#include "db/predicate.h"

namespace seedb::db::sql {

/// One item of a select list: either a bare column reference or an aggregate
/// call with optional FILTER and alias.
struct SelectItem {
  bool is_aggregate = false;
  /// For a bare reference: the column. For an aggregate: the input column
  /// (empty = COUNT(*)).
  std::string column;
  AggregateFunction func = AggregateFunction::kCount;
  /// Optional AS alias.
  std::string alias;
  /// Optional FILTER (WHERE ...) predicate for aggregates.
  PredicatePtr filter;

  std::string ToSql() const;
};

/// A parsed SELECT statement.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  PredicatePtr where;
  /// Plain GROUP BY columns (empty when grouping_sets is used).
  std::vector<std::string> group_by;
  /// GROUP BY GROUPING SETS ((...), (...)); empty when plain GROUP BY.
  std::vector<std::vector<std::string>> grouping_sets;
  /// TABLESAMPLE BERNOULLI (pct) as a fraction in (0, 1]; 1 = no sampling.
  double sample_fraction = 1.0;

  std::string ToSql() const;
};

}  // namespace seedb::db::sql

#endif  // SEEDB_DB_SQL_AST_H_
