#include "db/sql/ast.h"

#include "util/string_util.h"

namespace seedb::db::sql {

std::string SelectItem::ToSql() const {
  if (!is_aggregate) {
    return alias.empty() ? column : column + " AS " + alias;
  }
  std::string out = std::string(AggregateFunctionToSql(func)) + "(" +
                    (column.empty() ? "*" : column) + ")";
  if (filter) out += " FILTER (WHERE " + filter->ToSql() + ")";
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string SelectStatement::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(items.size());
  for (const auto& item : items) parts.push_back(item.ToSql());
  std::string out = "SELECT " + Join(parts, ", ") + " FROM " + table;
  if (sample_fraction < 1.0) {
    out += StringPrintf(" TABLESAMPLE BERNOULLI (%s)",
                        FormatDouble(sample_fraction * 100.0, 4).c_str());
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!grouping_sets.empty()) {
    out += " GROUP BY GROUPING SETS (";
    for (size_t s = 0; s < grouping_sets.size(); ++s) {
      if (s) out += ", ";
      out += "(" + Join(grouping_sets[s], ", ") + ")";
    }
    out += ")";
  } else if (!group_by.empty()) {
    out += " GROUP BY " + Join(group_by, ", ");
  }
  return out;
}

}  // namespace seedb::db::sql
