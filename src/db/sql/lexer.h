// Tokenizer for the SQL dialect.

#ifndef SEEDB_DB_SQL_LEXER_H_
#define SEEDB_DB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace seedb::db::sql {

enum class TokenType {
  kIdentifier,   // column / table / function names and keywords
  kNumber,       // integer or decimal literal
  kString,       // 'single quoted' literal (quotes stripped, '' unescaped)
  kSymbol,       // ( ) , * = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/keyword text (original case), symbol, or
                      // literal contents
  size_t position = 0;  // byte offset in the input (for error messages)

  /// Case-insensitive keyword check (identifiers only).
  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// Tokenizes `input`. The final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace seedb::db::sql

#endif  // SEEDB_DB_SQL_LEXER_H_
