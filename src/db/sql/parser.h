// Recursive-descent parser for the SQL dialect, plus planning into engine
// query structs.
//
// Grammar (keywords case-insensitive):
//
//   select      := SELECT item (',' item)* FROM ident [tablesample]
//                  [WHERE or_expr] [groupby]
//   item        := agg | ident [AS ident]
//   agg         := func '(' ('*' | ident) ')' [FILTER '(' WHERE or_expr ')']
//                  [AS ident]
//   func        := COUNT | SUM | AVG | MIN | MAX
//   tablesample := TABLESAMPLE BERNOULLI '(' number ')'     -- percent
//   groupby     := GROUP BY GROUPING SETS '(' set (',' set)* ')'
//                | GROUP BY ident (',' ident)*
//   set         := '(' ident (',' ident)* ')'
//   or_expr     := and_expr (OR and_expr)*
//   and_expr    := unary (AND unary)*
//   unary       := NOT unary | '(' or_expr ')' | predicate
//   predicate   := ident cmp literal
//                | ident [NOT] IN '(' literal (',' literal)* ')'
//                | ident BETWEEN literal AND literal
//                | TRUE
//   cmp         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//   literal     := number | string

#ifndef SEEDB_DB_SQL_PARSER_H_
#define SEEDB_DB_SQL_PARSER_H_

#include <string>

#include "db/group_by.h"
#include "db/grouping_sets.h"
#include "db/sql/ast.h"
#include "util/result.h"

namespace seedb::db::sql {

/// Parses one SELECT statement.
Result<SelectStatement> ParseSelect(const std::string& sql);

/// Parses just a predicate expression (the or_expr production) — used by
/// SeeDB's frontend to accept user-supplied selection conditions.
Result<PredicatePtr> ParsePredicate(const std::string& text);

/// The analyst's input query Q (§1): SELECT * FROM table [WHERE pred].
/// This is the query SeeDB receives and builds views on top of.
struct InputQuery {
  std::string table;
  /// Null when the query selects the whole table.
  PredicatePtr selection;
};

/// Parses an analyst input query of the form SELECT * FROM t [WHERE ...].
Result<InputQuery> ParseInputQuery(const std::string& sql);

/// Plans a plain-GROUP-BY statement into an executable GroupByQuery.
/// Non-aggregate select items must appear in GROUP BY.
Result<GroupByQuery> PlanGroupBy(const SelectStatement& stmt);

/// Plans a GROUPING SETS statement into an executable GroupingSetsQuery.
Result<GroupingSetsQuery> PlanGroupingSets(const SelectStatement& stmt);

}  // namespace seedb::db::sql

#endif  // SEEDB_DB_SQL_PARSER_H_
