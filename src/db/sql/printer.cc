#include "db/sql/printer.h"

#include "util/string_util.h"

namespace seedb::db::sql {
namespace {

SelectItem AggregateItem(const AggregateSpec& spec) {
  SelectItem item;
  item.is_aggregate = true;
  item.func = spec.func;
  item.column = spec.input;
  item.alias = spec.output_name;
  item.filter = spec.filter;
  return item;
}

SelectItem ColumnItem(const std::string& name) {
  SelectItem item;
  item.is_aggregate = false;
  item.column = name;
  return item;
}

}  // namespace

SelectStatement ToStatement(const GroupByQuery& query) {
  SelectStatement stmt;
  stmt.table = query.table;
  stmt.where = query.where;
  stmt.group_by = query.group_by;
  stmt.sample_fraction = query.sample_fraction;
  for (const auto& g : query.group_by) stmt.items.push_back(ColumnItem(g));
  for (const auto& a : query.aggregates) {
    stmt.items.push_back(AggregateItem(a));
  }
  return stmt;
}

SelectStatement ToStatement(const GroupingSetsQuery& query) {
  SelectStatement stmt;
  stmt.table = query.table;
  stmt.where = query.where;
  stmt.grouping_sets = query.grouping_sets;
  stmt.sample_fraction = query.sample_fraction;
  std::vector<std::string> cols;
  for (const auto& set : query.grouping_sets) {
    for (const auto& c : set) {
      bool seen = false;
      for (const auto& existing : cols) seen = seen || existing == c;
      if (!seen) cols.push_back(c);
    }
  }
  for (const auto& c : cols) stmt.items.push_back(ColumnItem(c));
  for (const auto& a : query.aggregates) {
    stmt.items.push_back(AggregateItem(a));
  }
  return stmt;
}

std::string PrettyPrint(const SelectStatement& stmt) {
  std::vector<std::string> parts;
  parts.reserve(stmt.items.size());
  for (const auto& item : stmt.items) parts.push_back(item.ToSql());
  std::string out = "SELECT " + Join(parts, ",\n       ");
  out += "\nFROM " + stmt.table;
  if (stmt.sample_fraction < 1.0) {
    out += StringPrintf("\nTABLESAMPLE BERNOULLI (%s)",
                        FormatDouble(stmt.sample_fraction * 100.0, 4).c_str());
  }
  if (stmt.where) out += "\nWHERE " + stmt.where->ToSql();
  if (!stmt.grouping_sets.empty()) {
    out += "\nGROUP BY GROUPING SETS (";
    for (size_t s = 0; s < stmt.grouping_sets.size(); ++s) {
      if (s) out += ", ";
      out += "(" + Join(stmt.grouping_sets[s], ", ") + ")";
    }
    out += ")";
  } else if (!stmt.group_by.empty()) {
    out += "\nGROUP BY " + Join(stmt.group_by, ", ");
  }
  return out;
}

}  // namespace seedb::db::sql
