#include "db/sql/parser.h"

#include <algorithm>

#include "db/sql/lexer.h"
#include "util/string_util.h"

namespace seedb::db::sql {
namespace {

bool IsAggregateName(const std::string& name) {
  return ParseAggregateFunction(name).ok();
}

/// Token-stream cursor with the usual recursive-descent helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseSelectStatement();
  Result<std::unique_ptr<Predicate>> ParseOrExpr();

  Status ExpectEnd() {
    if (!At().IsSymbol("") && At().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return Status::OK();
  }

 private:
  const Token& At() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AcceptKeyword(const char* kw) {
    if (At().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (At().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected keyword ") + kw);
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StringPrintf(
        "%s at offset %zu (near '%s')", message.c_str(), At().position,
        At().text.c_str()));
  }

  Result<std::string> ParseIdentifier() {
    if (At().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    std::string name = At().text;
    Advance();
    return name;
  }

  Result<Value> ParseLiteral() {
    const Token& t = At();
    if (t.type == TokenType::kString) {
      Value v(t.text);
      Advance();
      return v;
    }
    bool negative = false;
    if (At().IsSymbol("-")) {
      negative = true;
      Advance();
    }
    if (At().type == TokenType::kNumber) {
      std::string text = At().text;
      Advance();
      if (text.find('.') == std::string::npos) {
        int64_t v = static_cast<int64_t>(std::stoll(text));
        return Value(negative ? -v : v);
      }
      double v = std::stod(text);
      return Value(negative ? -v : v);
    }
    return Error("expected literal");
  }

  Result<SelectItem> ParseSelectItem();
  Result<std::unique_ptr<Predicate>> ParseAndExpr();
  Result<std::unique_ptr<Predicate>> ParseUnary();
  Result<std::unique_ptr<Predicate>> ParseSimplePredicate();
  Result<std::vector<std::string>> ParseColumnList();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Aggregate call: FUNC '(' ... — distinguished from a bare column by the
  // following '('.
  if (At().type == TokenType::kIdentifier && IsAggregateName(At().text) &&
      Peek().IsSymbol("(")) {
    SEEDB_ASSIGN_OR_RETURN(item.func, ParseAggregateFunction(At().text));
    item.is_aggregate = true;
    Advance();  // function name
    Advance();  // '('
    if (AcceptSymbol("*")) {
      if (item.func != AggregateFunction::kCount) {
        return Error("only COUNT accepts '*'");
      }
    } else {
      SEEDB_ASSIGN_OR_RETURN(item.column, ParseIdentifier());
    }
    SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (AcceptKeyword("FILTER")) {
      SEEDB_RETURN_IF_ERROR(ExpectSymbol("("));
      SEEDB_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
      SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> pred, ParseOrExpr());
      SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      item.filter = PredicatePtr(std::move(pred));
    }
  } else {
    SEEDB_ASSIGN_OR_RETURN(item.column, ParseIdentifier());
  }
  if (AcceptKeyword("AS")) {
    SEEDB_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
  }
  return item;
}

Result<std::vector<std::string>> Parser::ParseColumnList() {
  std::vector<std::string> cols;
  do {
    SEEDB_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    cols.push_back(std::move(name));
  } while (AcceptSymbol(","));
  return cols;
}

Result<SelectStatement> Parser::ParseSelectStatement() {
  SelectStatement stmt;
  SEEDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  do {
    SEEDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt.items.push_back(std::move(item));
  } while (AcceptSymbol(","));

  SEEDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  SEEDB_ASSIGN_OR_RETURN(stmt.table, ParseIdentifier());

  if (AcceptKeyword("TABLESAMPLE")) {
    SEEDB_RETURN_IF_ERROR(ExpectKeyword("BERNOULLI"));
    SEEDB_RETURN_IF_ERROR(ExpectSymbol("("));
    SEEDB_ASSIGN_OR_RETURN(Value pct, ParseLiteral());
    SEEDB_ASSIGN_OR_RETURN(double pct_value, pct.ToDouble());
    if (pct_value <= 0.0 || pct_value > 100.0) {
      return Error("TABLESAMPLE percentage must be in (0, 100]");
    }
    stmt.sample_fraction = pct_value / 100.0;
    SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
  }

  if (AcceptKeyword("WHERE")) {
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> pred, ParseOrExpr());
    stmt.where = PredicatePtr(std::move(pred));
  }

  if (AcceptKeyword("GROUP")) {
    SEEDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    if (AcceptKeyword("GROUPING")) {
      SEEDB_RETURN_IF_ERROR(ExpectKeyword("SETS"));
      SEEDB_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        SEEDB_RETURN_IF_ERROR(ExpectSymbol("("));
        SEEDB_ASSIGN_OR_RETURN(std::vector<std::string> set,
                               ParseColumnList());
        SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt.grouping_sets.push_back(std::move(set));
      } while (AcceptSymbol(","));
      SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      SEEDB_ASSIGN_OR_RETURN(stmt.group_by, ParseColumnList());
    }
  }
  return stmt;
}

Result<std::unique_ptr<Predicate>> Parser::ParseOrExpr() {
  SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> left, ParseAndExpr());
  if (!At().IsKeyword("OR")) return left;
  std::vector<std::unique_ptr<Predicate>> children;
  children.push_back(std::move(left));
  while (AcceptKeyword("OR")) {
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> next, ParseAndExpr());
    children.push_back(std::move(next));
  }
  return Or(std::move(children));
}

Result<std::unique_ptr<Predicate>> Parser::ParseAndExpr() {
  SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> left, ParseUnary());
  if (!At().IsKeyword("AND")) return left;
  std::vector<std::unique_ptr<Predicate>> children;
  children.push_back(std::move(left));
  while (AcceptKeyword("AND")) {
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> next, ParseUnary());
    children.push_back(std::move(next));
  }
  return And(std::move(children));
}

Result<std::unique_ptr<Predicate>> Parser::ParseUnary() {
  if (AcceptKeyword("NOT")) {
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> child, ParseUnary());
    return Not(std::move(child));
  }
  if (AcceptSymbol("(")) {
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> inner, ParseOrExpr());
    SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  return ParseSimplePredicate();
}

Result<std::unique_ptr<Predicate>> Parser::ParseSimplePredicate() {
  if (AcceptKeyword("TRUE")) return True();
  SEEDB_ASSIGN_OR_RETURN(std::string column, ParseIdentifier());

  bool negated = AcceptKeyword("NOT");
  if (AcceptKeyword("IN")) {
    SEEDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> values;
    do {
      SEEDB_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      values.push_back(std::move(v));
    } while (AcceptSymbol(","));
    SEEDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto pred = In(std::move(column), std::move(values));
    if (negated) return Not(std::move(pred));
    return pred;
  }
  if (negated) return Error("expected IN after NOT");

  if (AcceptKeyword("BETWEEN")) {
    SEEDB_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
    SEEDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
    SEEDB_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
    return Between(std::move(column), std::move(lo), std::move(hi));
  }

  CompareOp op;
  if (AcceptSymbol("=")) {
    op = CompareOp::kEq;
  } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
    op = CompareOp::kNe;
  } else if (AcceptSymbol("<=")) {
    op = CompareOp::kLe;
  } else if (AcceptSymbol("<")) {
    op = CompareOp::kLt;
  } else if (AcceptSymbol(">=")) {
    op = CompareOp::kGe;
  } else if (AcceptSymbol(">")) {
    op = CompareOp::kGt;
  } else {
    return Error("expected comparison operator");
  }
  SEEDB_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
  return std::unique_ptr<Predicate>(std::make_unique<ComparisonPredicate>(
      std::move(column), op, std::move(literal)));
}

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  SEEDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  SEEDB_ASSIGN_OR_RETURN(SelectStatement stmt, parser.ParseSelectStatement());
  SEEDB_RETURN_IF_ERROR(parser.ExpectEnd());
  return stmt;
}

Result<PredicatePtr> ParsePredicate(const std::string& text) {
  SEEDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> pred,
                         parser.ParseOrExpr());
  SEEDB_RETURN_IF_ERROR(parser.ExpectEnd());
  return PredicatePtr(std::move(pred));
}

Result<InputQuery> ParseInputQuery(const std::string& sql) {
  SEEDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  // Grammar: SELECT '*' FROM ident [WHERE or_expr]. Reuses the token
  // helpers via a tiny hand-rolled walk to keep the statement parser free of
  // the SELECT-*-only special case.
  size_t pos = 0;
  auto at = [&]() -> const Token& { return tokens[std::min(pos, tokens.size() - 1)]; };
  auto error = [&](const char* msg) {
    return Status::InvalidArgument(StringPrintf(
        "%s at offset %zu (near '%s')", msg, at().position, at().text.c_str()));
  };
  if (!at().IsKeyword("SELECT")) return error("expected SELECT");
  ++pos;
  if (!at().IsSymbol("*")) return error("input query must be SELECT *");
  ++pos;
  if (!at().IsKeyword("FROM")) return error("expected FROM");
  ++pos;
  if (at().type != TokenType::kIdentifier) return error("expected table name");
  InputQuery q;
  q.table = at().text;
  ++pos;
  if (at().IsKeyword("WHERE")) {
    ++pos;
    // Delegate the remaining tokens to the predicate parser.
    std::vector<Token> rest(tokens.begin() + static_cast<long>(pos),
                            tokens.end());
    Parser parser(std::move(rest));
    SEEDB_ASSIGN_OR_RETURN(std::unique_ptr<Predicate> pred,
                           parser.ParseOrExpr());
    SEEDB_RETURN_IF_ERROR(parser.ExpectEnd());
    q.selection = PredicatePtr(std::move(pred));
    return q;
  }
  if (at().type != TokenType::kEnd) return error("trailing input");
  return q;
}

namespace {

// Shared by both planners: splits select items into group columns (bare
// references, which must match the declared grouping) and aggregates.
Status PlanItems(const SelectStatement& stmt,
                 const std::vector<std::string>& allowed_group_cols,
                 std::vector<AggregateSpec>* aggregates) {
  for (const auto& item : stmt.items) {
    if (item.is_aggregate) {
      AggregateSpec spec;
      spec.func = item.func;
      spec.input = item.column;
      spec.output_name = item.alias;
      spec.filter = item.filter;
      aggregates->push_back(std::move(spec));
      continue;
    }
    bool in_group = std::find(allowed_group_cols.begin(),
                              allowed_group_cols.end(),
                              item.column) != allowed_group_cols.end();
    if (!in_group) {
      return Status::InvalidArgument("column '" + item.column +
                                     "' must appear in GROUP BY");
    }
  }
  if (aggregates->empty()) {
    return Status::InvalidArgument("select list has no aggregates");
  }
  return Status::OK();
}

}  // namespace

Result<GroupByQuery> PlanGroupBy(const SelectStatement& stmt) {
  if (!stmt.grouping_sets.empty()) {
    return Status::InvalidArgument(
        "statement uses GROUPING SETS; use PlanGroupingSets");
  }
  GroupByQuery q;
  q.table = stmt.table;
  q.where = stmt.where;
  q.group_by = stmt.group_by;
  q.sample_fraction = stmt.sample_fraction;
  SEEDB_RETURN_IF_ERROR(PlanItems(stmt, stmt.group_by, &q.aggregates));
  return q;
}

Result<GroupingSetsQuery> PlanGroupingSets(const SelectStatement& stmt) {
  if (stmt.grouping_sets.empty()) {
    return Status::InvalidArgument("statement has no GROUPING SETS clause");
  }
  GroupingSetsQuery q;
  q.table = stmt.table;
  q.where = stmt.where;
  q.grouping_sets = stmt.grouping_sets;
  q.sample_fraction = stmt.sample_fraction;
  std::vector<std::string> all_cols;
  for (const auto& set : stmt.grouping_sets) {
    all_cols.insert(all_cols.end(), set.begin(), set.end());
  }
  SEEDB_RETURN_IF_ERROR(PlanItems(stmt, all_cols, &q.aggregates));
  return q;
}

}  // namespace seedb::db::sql
