// CSV import/export, the engine's only persistence format.

#ifndef SEEDB_DB_CSV_H_
#define SEEDB_DB_CSV_H_

#include <string>

#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Literal cell text treated as null (in addition to the empty cell).
  std::string null_token = "NULL";
};

/// Reads a CSV file into a table with the given schema. Columns are matched
/// by header name when a header is present, else by position.
Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      const CsvOptions& options = {});

/// Reads a CSV file, inferring a schema: columns where every non-null cell
/// parses as an integer become INT64, every numeric cell DOUBLE, otherwise
/// STRING. Roles: numeric columns become measures, strings dimensions.
Result<Table> ReadCsvInferSchema(const std::string& path,
                                 const CsvOptions& options = {});

/// Writes `table` to `path` (header + rows; strings quoted when needed).
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Parses one CSV record honoring double-quote quoting ("a,b" stays one
/// field, "" inside quotes is an escaped quote). Exposed for tests.
std::vector<std::string> ParseCsvLine(const std::string& line, char delimiter);

}  // namespace seedb::db

#endif  // SEEDB_DB_CSV_H_
