#include "db/group_by.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/random.h"
#include "util/string_util.h"

namespace seedb::db {

std::string GroupByQuery::ToSql() const {
  std::string out = "SELECT ";
  std::vector<std::string> items = group_by;
  for (const auto& agg : aggregates) items.push_back(agg.ToSql());
  out += Join(items, ", ");
  out += " FROM " + table;
  if (sample_fraction < 1.0) {
    out += StringPrintf(" TABLESAMPLE BERNOULLI (%s)",
                        FormatDouble(sample_fraction * 100.0, 4).c_str());
  }
  if (where) {
    out += " WHERE " + where->ToSql();
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + Join(group_by, ", ");
  }
  return out;
}

namespace internal {

std::vector<uint8_t> BernoulliScanMask(size_t num_rows, double fraction,
                                       uint64_t seed) {
  std::vector<uint8_t> mask(num_rows, 1);
  if (fraction >= 1.0) return mask;
  Random rng(seed);
  for (size_t i = 0; i < num_rows; ++i) {
    mask[i] = rng.Bernoulli(fraction) ? 1 : 0;
  }
  return mask;
}

Status ValidateAggregates(const Table& table,
                          const std::vector<AggregateSpec>& aggregates) {
  if (aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  for (const auto& agg : aggregates) {
    if (agg.input.empty()) {
      if (agg.func != AggregateFunction::kCount) {
        return Status::InvalidArgument(
            std::string(AggregateFunctionToSql(agg.func)) +
            " requires an input column");
      }
    } else {
      SEEDB_ASSIGN_OR_RETURN(const Column* col,
                             table.ColumnByName(agg.input));
      if (col->type() == ValueType::kString &&
          agg.func != AggregateFunction::kCount) {
        return Status::InvalidArgument("aggregate input '" + agg.input +
                                       "' must be numeric");
      }
    }
    if (agg.filter) {
      SEEDB_RETURN_IF_ERROR(agg.filter->Validate(table.schema()));
    }
  }
  return Status::OK();
}

namespace {

// Null sentinel distinct from any dictionary code.
constexpr int64_t kNullKeyPart = std::numeric_limits<int64_t>::min() + 1;

}  // namespace

int64_t PackKeyPart(const Column& col, size_t row) {
  if (col.IsNull(row)) return kNullKeyPart;
  switch (col.type()) {
    case ValueType::kInt64:
      return col.int64_data()[row];
    case ValueType::kDouble:
      return std::bit_cast<int64_t>(col.double_data()[row]);
    case ValueType::kString:
      return col.codes()[row];
    case ValueType::kNull:
      return kNullKeyPart;
  }
  return kNullKeyPart;
}

Result<GroupKeyBuilder> GroupKeyBuilder::Create(
    const Table& table, const std::vector<std::string>& columns,
    const std::vector<uint8_t>& mask) {
  GroupKeyBuilder b;
  b.table_ = &table;
  for (const auto& name : columns) {
    SEEDB_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(name));
    b.col_indices_.push_back(idx);
  }
  const size_t n = table.num_rows();
  b.row_group_ids_.assign(n, -1);

  if (columns.empty()) {
    // Global aggregate: all selected rows form group 0.
    b.num_groups_ = 1;
    b.representative_row_.push_back(0);
    for (size_t i = 0; i < n; ++i) {
      if (mask[i]) b.row_group_ids_[i] = 0;
    }
    return b;
  }

  if (columns.size() == 1 &&
      table.column(b.col_indices_[0]).type() == ValueType::kString) {
    // Dense path: dictionary code -> group id (slot dict_size() = null).
    const Column& col = table.column(b.col_indices_[0]);
    std::vector<int32_t> code_to_group(col.dict_size() + 1, -1);
    const auto& codes = col.codes();
    for (size_t i = 0; i < n; ++i) {
      if (!mask[i]) continue;
      size_t slot = col.IsNull(i) ? col.dict_size()
                                  : static_cast<size_t>(codes[i]);
      int32_t gid = code_to_group[slot];
      if (gid < 0) {
        gid = b.num_groups_++;
        code_to_group[slot] = gid;
        b.representative_row_.push_back(static_cast<uint32_t>(i));
      }
      b.row_group_ids_[i] = gid;
    }
    return b;
  }

  // Generic path: hash map over packed key tuples.
  std::unordered_map<std::vector<int64_t>, int32_t, PackedKeyHash> groups;
  std::vector<int64_t> key(b.col_indices_.size());
  for (size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    for (size_t c = 0; c < b.col_indices_.size(); ++c) {
      key[c] = PackKeyPart(table.column(b.col_indices_[c]), i);
    }
    auto [it, inserted] = groups.emplace(key, b.num_groups_);
    if (inserted) {
      ++b.num_groups_;
      b.representative_row_.push_back(static_cast<uint32_t>(i));
    }
    b.row_group_ids_[i] = it->second;
  }
  return b;
}

std::vector<Value> GroupKeyBuilder::GroupKey(int32_t gid) const {
  std::vector<Value> key;
  key.reserve(col_indices_.size());
  uint32_t row = representative_row_[gid];
  for (size_t idx : col_indices_) {
    key.push_back(table_->column(idx).GetValue(row));
  }
  return key;
}

Result<Table> MaterializeGroupedResult(
    const Table& table, const std::vector<std::string>& group_cols,
    const std::vector<AggregateSpec>& aggregates,
    std::vector<std::vector<Value>> keys,
    const std::vector<std::vector<AggState>>& states) {
  Schema out_schema;
  for (const auto& g : group_cols) {
    SEEDB_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(g));
    SEEDB_RETURN_IF_ERROR(out_schema.AddColumn(table.schema().column(idx)));
  }
  for (const auto& agg : aggregates) {
    SEEDB_RETURN_IF_ERROR(out_schema.AddColumn(ColumnDef(
        agg.EffectiveName(), ValueType::kDouble, ColumnRole::kMeasure)));
  }

  int32_t num_groups = static_cast<int32_t>(keys.size());
  std::vector<int32_t> order(num_groups);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return std::lexicographical_compare(keys[a].begin(), keys[a].end(),
                                        keys[b].begin(), keys[b].end());
  });

  Table out(out_schema);
  for (int32_t g : order) {
    std::vector<Value> row = std::move(keys[g]);
    for (size_t j = 0; j < aggregates.size(); ++j) {
      row.emplace_back(states[j][g].Finalize(aggregates[j].func));
    }
    SEEDB_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace internal

namespace {

using internal::GroupKeyBuilder;

// Evaluates the distinct FILTER predicates among `aggs` once each; returns a
// per-aggregate pointer into `storage` (nullptr = unconditional aggregate).
Status EvaluateFilterMasks(
    const Table& table, const std::vector<AggregateSpec>& aggs,
    std::vector<std::vector<uint8_t>>* storage,
    std::vector<const std::vector<uint8_t>*>* per_agg) {
  std::unordered_map<const Predicate*, size_t> dedup;
  per_agg->assign(aggs.size(), nullptr);
  for (size_t j = 0; j < aggs.size(); ++j) {
    const Predicate* f = aggs[j].filter.get();
    if (f == nullptr) continue;
    auto it = dedup.find(f);
    if (it == dedup.end()) {
      storage->emplace_back();
      SEEDB_RETURN_IF_ERROR(f->EvaluateMask(table, &storage->back()));
      it = dedup.emplace(f, storage->size() - 1).first;
    }
    (*per_agg)[j] = &(*storage)[it->second];
  }
  return Status::OK();
}

// Accumulates one aggregate over all rows. `group_ids` is -1 for unselected
// rows; `filter` further restricts which rows feed this aggregate.
void AccumulateAggregate(const Table& table, const AggregateSpec& spec,
                         const std::vector<int32_t>& group_ids,
                         const std::vector<uint8_t>* filter,
                         std::vector<AggState>* states) {
  const size_t n = table.num_rows();
  if (spec.input.empty()) {
    for (size_t i = 0; i < n; ++i) {
      int32_t gid = group_ids[i];
      if (gid < 0) continue;
      if (filter && !(*filter)[i]) continue;
      (*states)[gid].AddCountOnly();
    }
    return;
  }
  const Column& col = *table.ColumnByName(spec.input).ValueOrDie();
  for (size_t i = 0; i < n; ++i) {
    int32_t gid = group_ids[i];
    if (gid < 0) continue;
    if (filter && !(*filter)[i]) continue;
    if (col.IsNull(i)) continue;
    if (spec.func == AggregateFunction::kCount) {
      (*states)[gid].AddCountOnly();
    } else {
      (*states)[gid].Add(col.NumericAt(i));
    }
  }
}

// Builds the output table: group columns + one DOUBLE per aggregate, rows
// ordered by group key.
Result<Table> MaterializeResult(const Table& table,
                                const GroupByQuery& query,
                                const GroupKeyBuilder& builder,
                                const std::vector<std::vector<AggState>>& states) {
  std::vector<std::vector<Value>> keys(builder.num_groups());
  for (int32_t g = 0; g < builder.num_groups(); ++g) {
    keys[g] = builder.GroupKey(g);
  }
  return internal::MaterializeGroupedResult(table, query.group_by,
                                            query.aggregates, std::move(keys),
                                            states);
}

}  // namespace

Result<Table> ExecuteGroupBy(const Table& table, const GroupByQuery& query,
                             GroupByStats* stats) {
  for (const auto& g : query.group_by) {
    SEEDB_RETURN_IF_ERROR(table.schema().FindColumn(g).status());
  }
  SEEDB_RETURN_IF_ERROR(internal::ValidateAggregates(table, query.aggregates));
  if (query.sample_fraction <= 0.0 || query.sample_fraction > 1.0) {
    return Status::InvalidArgument(
        StringPrintf("sample_fraction %f outside (0, 1]",
                     query.sample_fraction));
  }

  const size_t n = table.num_rows();
  std::vector<uint8_t> mask = internal::BernoulliScanMask(
      n, query.sample_fraction, query.sample_seed);
  size_t scanned = static_cast<size_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));

  if (query.where) {
    std::vector<uint8_t> where_mask;
    SEEDB_RETURN_IF_ERROR(query.where->EvaluateMask(table, &where_mask));
    for (size_t i = 0; i < n; ++i) mask[i] &= where_mask[i];
  }
  size_t matched = static_cast<size_t>(
      std::count(mask.begin(), mask.end(), uint8_t{1}));

  SEEDB_ASSIGN_OR_RETURN(
      GroupKeyBuilder builder,
      GroupKeyBuilder::Create(table, query.group_by, mask));

  std::vector<std::vector<uint8_t>> filter_storage;
  std::vector<const std::vector<uint8_t>*> filters;
  SEEDB_RETURN_IF_ERROR(EvaluateFilterMasks(table, query.aggregates,
                                            &filter_storage, &filters));

  std::vector<std::vector<AggState>> states(query.aggregates.size());
  for (size_t j = 0; j < query.aggregates.size(); ++j) {
    states[j].assign(builder.num_groups(), AggState{});
    AccumulateAggregate(table, query.aggregates[j], builder.row_group_ids(),
                        filters[j], &states[j]);
  }

  if (stats) {
    stats->rows_scanned = scanned;
    stats->rows_matched = matched;
    stats->num_groups = static_cast<size_t>(builder.num_groups());
    stats->agg_state_bytes = static_cast<size_t>(builder.num_groups()) *
                             query.aggregates.size() * sizeof(AggState);
  }

  return MaterializeResult(table, query, builder, states);
}

}  // namespace seedb::db
