// Numeric binning (§1: analysts build views via "binning, grouping, and
// aggregation").
//
// SeeDB's view space enumerates dimension attributes; a continuous numeric
// column only becomes a useful grouping attribute after binning. This module
// derives a categorical bin column from a numeric one so the view space can
// include it.

#ifndef SEEDB_DB_BINNING_H_
#define SEEDB_DB_BINNING_H_

#include <string>

#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

struct BinningOptions {
  /// Number of equi-width buckets.
  size_t num_bins = 10;
  /// Name of the derived column; empty derives "<source>_bin".
  std::string output_name;
  /// Label style: "[lo, hi)" when true, "bin<k>" when false. Range labels
  /// sort lexicographically in bucket order only when widths align, so the
  /// generated labels are zero-padded with the bucket index first:
  /// "03 [30, 40)".
  bool range_labels = true;
};

/// Returns a copy of `table` with one extra dimension column holding the
/// equi-width bin label of `source` for every row (nulls stay null). The
/// source column must be numeric; bin boundaries span [min, max] of the
/// observed values.
Result<Table> WithBinnedColumn(const Table& table, const std::string& source,
                               const BinningOptions& options = {});

/// The label WithBinnedColumn assigns to bucket `k` of `num_bins` over
/// [min, max]. Exposed for tests and display code.
std::string BinLabel(size_t k, size_t num_bins, double min, double max,
                     bool range_labels);

}  // namespace seedb::db

#endif  // SEEDB_DB_BINNING_H_
