// Schema: column definitions with SeeDB's dimension/measure role annotation.
//
// SeeDB's view space is the cross product of *dimension* attributes (group-by
// candidates, set A in the paper) and *measure* attributes (aggregation
// inputs, set M). The role lives in the schema so the snowflake star-schema
// assumption of §2 is explicit and queryable.

#ifndef SEEDB_DB_SCHEMA_H_
#define SEEDB_DB_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "util/result.h"

namespace seedb::db {

/// Analytical role of a column in SeeDB's model (§2).
enum class ColumnRole {
  /// Group-by candidate (attribute set A): categorical or low-cardinality.
  kDimension,
  /// Aggregation input (attribute set M): numeric.
  kMeasure,
  /// Neither (ids, free text, timestamps SeeDB ignores).
  kOther,
};

const char* ColumnRoleToString(ColumnRole role);

/// One column: name, physical type, analytical role.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  ColumnRole role = ColumnRole::kOther;

  ColumnDef() = default;
  ColumnDef(std::string n, ValueType t, ColumnRole r)
      : name(std::move(n)), type(t), role(r) {}

  static ColumnDef Dimension(std::string name,
                             ValueType type = ValueType::kString) {
    return ColumnDef(std::move(name), type, ColumnRole::kDimension);
  }
  static ColumnDef Measure(std::string name,
                           ValueType type = ValueType::kDouble) {
    return ColumnDef(std::move(name), type, ColumnRole::kMeasure);
  }
  static ColumnDef Other(std::string name, ValueType type) {
    return ColumnDef(std::move(name), type, ColumnRole::kOther);
  }

  bool operator==(const ColumnDef& o) const {
    return name == o.name && type == o.type && role == o.role;
  }
};

/// \brief Ordered list of column definitions with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  /// Appends a column. Fails if the name already exists.
  Status AddColumn(ColumnDef def);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or error if absent.
  Result<size_t> FindColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  /// Names of all columns with the given role, in schema order.
  std::vector<std::string> ColumnsWithRole(ColumnRole role) const;
  /// Convenience: ColumnsWithRole(kDimension) / (kMeasure).
  std::vector<std::string> DimensionColumns() const;
  std::vector<std::string> MeasureColumns() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

  /// "name TYPE [role], ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace seedb::db

#endif  // SEEDB_DB_SCHEMA_H_
