// Predicates: WHERE-clause expression trees with vectorized evaluation.
//
// SeeDB's input query Q is "one or more rows selected from the fact table"
// (§2), i.e. a predicate over D. Predicates also back the FILTER clause of
// conditional aggregation, which is how the combined target/comparison view
// query is expressed (§3.3).
//
// Null semantics: a comparison against a null cell is false (rows with
// unknown values are filtered out). NOT inverts that boolean outcome. This is
// two-valued logic — adequate for SeeDB's selection queries and documented
// here as a deliberate simplification of SQL's three-valued logic.

#ifndef SEEDB_DB_PREDICATE_H_
#define SEEDB_DB_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToSql(CompareOp op);

/// \brief Abstract boolean row filter.
///
/// Predicates are immutable and shareable (queries hold them via
/// shared_ptr<const Predicate>).
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Row-at-a-time evaluation (reference semantics for tests/slow paths).
  virtual bool Matches(const Table& table, size_t row) const = 0;

  /// Vectorized evaluation: resizes `mask` to table.num_rows() and writes
  /// 1 for matching rows, 0 otherwise.
  virtual Status EvaluateMask(const Table& table,
                              std::vector<uint8_t>* mask) const;

  /// Checks that all referenced columns exist with comparable types.
  virtual Status Validate(const Schema& schema) const = 0;

  /// SQL rendering, parenthesized where needed ("(a = 'x' AND b > 5)").
  virtual std::string ToSql() const = 0;

  virtual std::unique_ptr<Predicate> Clone() const = 0;

  /// Appends the names of all referenced columns (with repeats).
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// column <op> literal.
class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  bool Matches(const Table& table, size_t row) const override;
  Status EvaluateMask(const Table& table,
                      std::vector<uint8_t>* mask) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToSql() const override;
  std::unique_ptr<Predicate> Clone() const override;
  void CollectColumns(std::vector<std::string>* out) const override;

  const std::string& column() const { return column_; }
  CompareOp op() const { return op_; }
  const Value& literal() const { return literal_; }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
};

/// column IN (v1, v2, ...).
class InPredicate final : public Predicate {
 public:
  InPredicate(std::string column, std::vector<Value> values)
      : column_(std::move(column)), values_(std::move(values)) {}

  bool Matches(const Table& table, size_t row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToSql() const override;
  std::unique_ptr<Predicate> Clone() const override;
  void CollectColumns(std::vector<std::string>* out) const override;

 private:
  std::string column_;
  std::vector<Value> values_;
};

/// column BETWEEN lo AND hi (inclusive).
class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  bool Matches(const Table& table, size_t row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToSql() const override;
  std::unique_ptr<Predicate> Clone() const override;
  void CollectColumns(std::vector<std::string>* out) const override;

 private:
  std::string column_;
  Value lo_;
  Value hi_;
};

/// Conjunction / disjunction over >= 1 children.
class LogicalPredicate final : public Predicate {
 public:
  enum class Kind { kAnd, kOr };

  LogicalPredicate(Kind kind, std::vector<std::unique_ptr<Predicate>> children)
      : kind_(kind), children_(std::move(children)) {}

  bool Matches(const Table& table, size_t row) const override;
  Status EvaluateMask(const Table& table,
                      std::vector<uint8_t>* mask) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToSql() const override;
  std::unique_ptr<Predicate> Clone() const override;
  void CollectColumns(std::vector<std::string>* out) const override;

 private:
  Kind kind_;
  std::vector<std::unique_ptr<Predicate>> children_;
};

/// NOT child.
class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(std::unique_ptr<Predicate> child)
      : child_(std::move(child)) {}

  bool Matches(const Table& table, size_t row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToSql() const override;
  std::unique_ptr<Predicate> Clone() const override;
  void CollectColumns(std::vector<std::string>* out) const override;

 private:
  std::unique_ptr<Predicate> child_;
};

/// Constant TRUE (select-all; the degenerate input query).
class TruePredicate final : public Predicate {
 public:
  bool Matches(const Table&, size_t) const override { return true; }
  Status EvaluateMask(const Table& table,
                      std::vector<uint8_t>* mask) const override;
  Status Validate(const Schema&) const override { return Status::OK(); }
  std::string ToSql() const override { return "TRUE"; }
  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<TruePredicate>();
  }
  void CollectColumns(std::vector<std::string>*) const override {}
};

// -- Builder helpers ---------------------------------------------------------

std::unique_ptr<Predicate> Eq(std::string column, Value v);
std::unique_ptr<Predicate> Ne(std::string column, Value v);
std::unique_ptr<Predicate> Lt(std::string column, Value v);
std::unique_ptr<Predicate> Le(std::string column, Value v);
std::unique_ptr<Predicate> Gt(std::string column, Value v);
std::unique_ptr<Predicate> Ge(std::string column, Value v);
std::unique_ptr<Predicate> In(std::string column, std::vector<Value> values);
std::unique_ptr<Predicate> Between(std::string column, Value lo, Value hi);
std::unique_ptr<Predicate> And(std::vector<std::unique_ptr<Predicate>> children);
std::unique_ptr<Predicate> And(std::unique_ptr<Predicate> a,
                               std::unique_ptr<Predicate> b);
std::unique_ptr<Predicate> Or(std::vector<std::unique_ptr<Predicate>> children);
std::unique_ptr<Predicate> Or(std::unique_ptr<Predicate> a,
                              std::unique_ptr<Predicate> b);
std::unique_ptr<Predicate> Not(std::unique_ptr<Predicate> child);
std::unique_ptr<Predicate> True();

}  // namespace seedb::db

#endif  // SEEDB_DB_PREDICATE_H_
