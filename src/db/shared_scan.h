// Shared-scan fused execution: the entire batch of view queries answered in
// morsel-driven passes over the base table.
//
// SeeDB's §3.3 optimizations (combine target/comparison, combine aggregates,
// combine group-bys) each reduce the *number* of scans; the logical endpoint
// of that sharing argument is to stop scanning once per query altogether.
// The table is split into fixed-size row ranges (morsels) handed to a worker
// pool. Each worker keeps private partial aggregation states per
// (query, grouping set): categorical sets whose composed group space fits
// the dense-slot budget take the vectorized kernels (db/vec/ — selection
// vectors shared per distinct mask per morsel, dictionary codes radix-
// composed straight to flat aggregation slabs), everything else hashes
// packed key tuples row at a time. The partials are merged after each pass.
// WHERE / FILTER / sample masks are evaluated once per distinct predicate
// across the whole batch, not once per query. Both inner loops produce
// bit-identical aggregates (pinned by tests/db/vec_equivalence_test.cc).
//
// Two entry points:
//
//   * ExecuteSharedScan — the whole batch in ONE pass (the PR 1 interface).
//   * SharedScanState   — the same machinery made *resumable*: RunPhase()
//     scans one row-range slice and folds it into persistent merged state,
//     so a plan executes as N sequential phases. Between phases the caller
//     can read un-finalized per-query partials (PartialResults) and retire
//     queries whose views lost contention (DeactivateQuery) — the substrate
//     for the paper's §3.3 confidence-interval / multi-armed-bandit pruning
//     (core/online_pruning.h).
//
// Result shape and values are identical to running every query through
// ExecuteGroupingSets independently (per-group sums may differ by float
// reassociation across morsel boundaries, i.e. ~1 ulp).

#ifndef SEEDB_DB_SHARED_SCAN_H_
#define SEEDB_DB_SHARED_SCAN_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "db/grouping_sets.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

class PartialAggCache;

struct SharedScanOptions {
  /// Worker threads for the morsel pass; 0 = hardware concurrency, 1 runs
  /// the pass inline on the calling thread.
  size_t num_threads = 0;
  /// Rows per morsel (the work-stealing unit). 0 = adaptive: derived from
  /// row and thread count via AdaptiveMorselRows() — re-derived at every
  /// phase start from the phase's row range and the fraction of queries
  /// still active — so small tables (and late, mostly-pruned phases) stop
  /// over-scheduling while large ones keep stealing granularity.
  size_t morsel_rows = 0;
  /// Cooperative cancellation token, observed at morsel boundaries: once it
  /// reads true, workers stop claiming morsels (each in-flight morsel
  /// completes, so every query has seen exactly the same rows), the phase
  /// merges what was scanned, and the state refuses further phases. The
  /// pointee must outlive the scan; nullptr = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Vectorized morsel inner loop (db/vec/): WHERE masks become selection
  /// vectors once per morsel, categorical grouping sets map dictionary codes
  /// (radix-composed for multi-attribute sets) straight to flat aggregation
  /// slabs — no packed-key hash. Off forces every grouping set onto the
  /// hash / scalar-dense path; both paths produce bit-identical results.
  bool enable_vectorized = true;
  /// Explicit-SIMD kernel tier (db/vec/simd/) inside vectorized morsels:
  /// predicate compares, selection construction and run-accumulation use the
  /// ISA the binary was built for (AVX2 / NEON). Kill switch only — the
  /// tier also self-disables when the build or the CPU lacks the ISA
  /// (vec::simd::Available()), and results are bit-identical either way.
  /// No effect when enable_vectorized is false.
  bool enable_simd = true;
  /// Largest composed group-space (product of per-column dict_size + 1) a
  /// grouping set may have and still take the dense kernels; above this the
  /// set falls back to the hash path. Bounds per-worker slab memory at
  /// slots * aggregates * sizeof(AggState).
  size_t dense_slot_budget = 16384;
  /// Cross-session partial-aggregate cache (db/scan_cache.h); nullptr = off.
  /// With a cache, Init() partitions the batch's (query, grouping set)
  /// pairs into hits — merged states adopted directly, never scanned — and
  /// misses, which scan as usual and are published back at FinalResults()
  /// when the scan covered the whole table uncancelled. The pointee must
  /// outlive the scan state.
  PartialAggCache* cache = nullptr;
  /// Catalog version of the scanned table (db::Catalog::TableVersion),
  /// embedded in every cache key so stale entries can never be adopted.
  uint64_t table_version = 0;
  /// Opt-out honored by Engine::BeginShared when wiring its own cache in:
  /// callers whose downstream decisions are estimate-order-sensitive (the
  /// MAB pruner halves by per-phase estimate, and adoption makes adopted
  /// views' estimates final from phase 1) set this false so warm runs stay
  /// bit-identical to cold ones. An explicitly set `cache` wins over this.
  bool use_result_cache = true;
  /// Record obs trace spans (scan.phase / scan.worker / scan.merge) for
  /// this scan even when the active obs::TraceRecorder was not started
  /// with trace_all_sessions. No effect while no recorder is active.
  bool trace = false;
};

/// The morsel size `morsel_rows = 0` resolves to: aim for a handful of
/// morsels per worker (so the shared counter still load-balances), with a
/// floor that keeps small tables from being shredded into per-row tasks and
/// a ceiling that preserves stealing granularity on big tables.
size_t AdaptiveMorselRows(size_t num_rows, size_t num_threads);

struct SharedScanStats {
  /// Rows visited by the fused pass(es): per phase, the largest sample-mask
  /// count among still-active queries (the whole batch shares one pass, so
  /// rows are not re-counted per query; rows behind retired queries are not
  /// re-counted either).
  size_t rows_scanned = 0;
  /// Groups materialized across all queries and grouping sets.
  size_t total_groups = 0;
  /// Merged aggregation-state footprint across the whole batch — all hash
  /// tables are live at once, the working-memory trade-off §3.3 describes.
  size_t agg_state_bytes = 0;
  size_t morsels = 0;
  /// Morsels whose inner loop ran the vectorized kernels (dense group-id +
  /// flat-slab aggregation, db/vec/) for at least one grouping set. 0 means
  /// the fast path was never taken — every set fell back to the hash path.
  size_t vectorized_morsels = 0;
  /// Morsels whose vectorized inner loop additionally ran the explicit-SIMD
  /// kernel tier (db/vec/simd/). Always <= vectorized_morsels; 0 when
  /// enable_simd is off, the build is scalar, or the CPU lacks the ISA.
  size_t simd_morsels = 0;
  /// DenseAggTable slab allocations across all workers since Create().
  /// Multi-phase runs reuse per-worker slabs (capacity-preserving Reset), so
  /// this stays at one per (worker, query, vectorized set) no matter how
  /// many phases run.
  size_t agg_slab_allocations = 0;
  size_t threads_used = 0;
  /// RunPhase() calls executed (1 for the one-shot ExecuteSharedScan).
  size_t phases = 0;
  /// Morsel size the most recent phase resolved to (equals the configured
  /// morsel_rows unless adaptive sizing is on, which coarsens morsels as
  /// queries retire).
  size_t last_phase_morsel_rows = 0;
  /// Distinct selection recipes (fused compares + mask conversions) the
  /// batch resolved to. Queries whose row filters are semantically equal —
  /// however the literal was spelled — share one recipe, hence one
  /// SelectionVector per morsel between them.
  size_t selection_recipes = 0;
  /// (query, grouping set) pairs adopted from / missed in the cross-session
  /// cache at Init. Both stay 0 when no cache is configured.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// \brief Resumable fused scan over one table: the whole query batch
/// advances through the table in caller-controlled row-range phases.
///
/// Usage:
///   SEEDB_ASSIGN_OR_RETURN(auto scan, SharedScanState::Create(t, qs, opts));
///   scan.RunPhase(0, n/2);              // first half of the table
///   scan.PartialResults(q);             // un-finalized per-query partials
///   scan.DeactivateQuery(q);            // retire a low-utility query
///   scan.RunPhase(n/2, n);              // remaining rows, survivors only
///   scan.FinalResults();                // materialize survivors
///
/// Phases must be disjoint and strictly forward (row_begin == rows of every
/// previous phase combined); results after scanning [0, n) are exactly
/// ExecuteSharedScan's. Not thread-safe; parallelism lives inside RunPhase.
class SharedScanState {
 public:
  /// Validates and resolves `queries` against `table` (masks evaluated once
  /// per distinct predicate/sample config). `table` must outlive the state.
  static Result<SharedScanState> Create(const Table& table,
                                        std::vector<GroupingSetsQuery> queries,
                                        const SharedScanOptions& options);

  SharedScanState(SharedScanState&&) noexcept;
  SharedScanState& operator=(SharedScanState&&) noexcept;
  ~SharedScanState();

  size_t num_rows() const;
  size_t num_queries() const;
  /// The stored query batch, in result order.
  const std::vector<GroupingSetsQuery>& queries() const;
  /// Rows covered by the phases run so far (the next phase's row_begin).
  size_t rows_consumed() const;

  /// Scans [row_begin, row_end) for every active query and merges worker
  /// partials into the persistent per-(query, set) aggregation state. If the
  /// options' cancel token fires mid-phase, returns OK with whatever morsels
  /// completed merged in (see cancelled()); later phases are rejected.
  Status RunPhase(size_t row_begin, size_t row_end);

  /// True once a phase was cut short by the cancel token. rows_consumed()
  /// then reports an estimate of the rows actually covered (completed
  /// morsels are not necessarily a prefix of the phase's range).
  bool cancelled() const;

  /// Re-opens a cancelled scan instead of discarding it: the morsels of the
  /// cut-short phase that never completed are scanned now (the per-morsel
  /// completion record makes this exact — every row of the phase ends up
  /// covered exactly once), and later phases are accepted again. The caller
  /// must reset the cancel token first; a token still reading true simply
  /// cancels the resume again (the completion record shrinks and another
  /// resume may follow). Errors when the scan was not cancelled or was
  /// already finalized.
  Status ResumeAfterCancel();

  bool query_active(size_t q) const;
  size_t active_queries() const;
  /// Retires query `q`: later phases skip it and FinalResults() leaves its
  /// slot empty. Idempotent.
  Status DeactivateQuery(size_t q);

  /// Materializes query q's current partial results — same shape as the
  /// final results, computed from the rows seen so far, without finalizing
  /// the scan. Valid for retired queries (their state is frozen).
  Result<std::vector<Table>> PartialResults(size_t q) const;

  /// Materializes every query's results from the merged state. Retired
  /// queries yield an empty result-set vector. The state stays readable but
  /// further phases are rejected.
  Result<std::vector<std::vector<Table>>> FinalResults();

  SharedScanStats stats() const;

 private:
  class Impl;
  explicit SharedScanState(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Answers all of `queries` in one morsel-driven pass over `table`.
/// Output `[q]` is exactly what ExecuteGroupingSets(table, queries[q])
/// returns: one result table per grouping set of query q, rows sorted by
/// group key. Queries may differ in WHERE, FILTER, grouping sets and
/// sampling; they must all target `table`.
Result<std::vector<std::vector<Table>>> ExecuteSharedScan(
    const Table& table, const std::vector<GroupingSetsQuery>& queries,
    const SharedScanOptions& options, SharedScanStats* stats = nullptr);

}  // namespace seedb::db

#endif  // SEEDB_DB_SHARED_SCAN_H_
