// Shared-scan fused execution: the entire batch of view queries answered in
// ONE morsel-driven pass over the base table.
//
// SeeDB's §3.3 optimizations (combine target/comparison, combine aggregates,
// combine group-bys) each reduce the *number* of scans; the logical endpoint
// of that sharing argument is to stop scanning once per query altogether.
// ExecuteSharedScan takes every GroupingSetsQuery of an execution plan at
// once, splits the table into fixed-size row ranges (morsels), and hands
// morsels to a worker pool. Each worker keeps private partial aggregation
// states per (query, grouping set) — dense arrays keyed by dictionary code
// for single string dimensions, hash tables over packed key tuples otherwise
// — and the partials are merged after the pass. WHERE / FILTER / sample
// masks are evaluated once per distinct predicate across the whole batch,
// not once per query.
//
// Result shape and values are identical to running every query through
// ExecuteGroupingSets independently (per-group sums may differ by float
// reassociation across morsel boundaries, i.e. ~1 ulp).

#ifndef SEEDB_DB_SHARED_SCAN_H_
#define SEEDB_DB_SHARED_SCAN_H_

#include <cstddef>
#include <vector>

#include "db/grouping_sets.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::db {

struct SharedScanOptions {
  /// Worker threads for the morsel pass; 0 = hardware concurrency, 1 runs
  /// the pass inline on the calling thread.
  size_t num_threads = 0;
  /// Rows per morsel (the work-stealing unit).
  size_t morsel_rows = 16384;
};

struct SharedScanStats {
  /// Rows visited by the single fused pass (the largest sample mask; the
  /// whole batch shares one pass, so rows are not re-counted per query).
  size_t rows_scanned = 0;
  /// Groups materialized across all queries and grouping sets.
  size_t total_groups = 0;
  /// Merged aggregation-state footprint across the whole batch — all hash
  /// tables are live at once, the working-memory trade-off §3.3 describes.
  size_t agg_state_bytes = 0;
  size_t morsels = 0;
  size_t threads_used = 0;
};

/// Answers all of `queries` in one morsel-driven pass over `table`.
/// Output `[q]` is exactly what ExecuteGroupingSets(table, queries[q])
/// returns: one result table per grouping set of query q, rows sorted by
/// group key. Queries may differ in WHERE, FILTER, grouping sets and
/// sampling; they must all target `table`.
Result<std::vector<std::vector<Table>>> ExecuteSharedScan(
    const Table& table, const std::vector<GroupingSetsQuery>& queries,
    const SharedScanOptions& options, SharedScanStats* stats = nullptr);

}  // namespace seedb::db

#endif  // SEEDB_DB_SHARED_SCAN_H_
