#include "db/binning.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace seedb::db {

std::string BinLabel(size_t k, size_t num_bins, double min, double max,
                     bool range_labels) {
  if (!range_labels) {
    return StringPrintf("bin%02zu", k);
  }
  double width = (max - min) / static_cast<double>(num_bins);
  double lo = min + static_cast<double>(k) * width;
  double hi = lo + width;
  // Zero-padded index prefix keeps lexicographic order == bucket order.
  return StringPrintf("%02zu [%s, %s%c", k, FormatDouble(lo, 2).c_str(),
                      FormatDouble(hi, 2).c_str(),
                      k + 1 == num_bins ? ']' : ')');
}

Result<Table> WithBinnedColumn(const Table& table, const std::string& source,
                               const BinningOptions& options) {
  if (options.num_bins == 0) {
    return Status::InvalidArgument("num_bins must be positive");
  }
  SEEDB_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(source));
  if (col->type() != ValueType::kInt64 && col->type() != ValueType::kDouble) {
    return Status::InvalidArgument("column '" + source + "' is not numeric");
  }

  double min = 0.0, max = 0.0;
  bool any = false;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (col->IsNull(r)) continue;
    double v = col->NumericAt(r);
    if (!any) {
      min = max = v;
      any = true;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }
  if (!any) {
    return Status::InvalidArgument("column '" + source +
                                   "' has no non-null values to bin");
  }
  if (max == min) max = min + 1.0;  // constant column: one bucket spans it

  std::string name =
      options.output_name.empty() ? source + "_bin" : options.output_name;
  if (table.schema().HasColumn(name)) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }

  Schema schema = table.schema();
  SEEDB_RETURN_IF_ERROR(schema.AddColumn(ColumnDef::Dimension(name)));
  Table out(schema);

  double width = (max - min) / static_cast<double>(options.num_bins);
  std::vector<std::string> labels(options.num_bins);
  for (size_t k = 0; k < options.num_bins; ++k) {
    labels[k] = BinLabel(k, options.num_bins, min, max, options.range_labels);
  }

  std::vector<Value> row(schema.num_columns());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.ValueAt(r, c);
    }
    if (col->IsNull(r)) {
      row.back() = Value::Null();
    } else {
      double v = col->NumericAt(r);
      auto k = static_cast<int64_t>(std::floor((v - min) / width));
      k = std::clamp<int64_t>(k, 0,
                              static_cast<int64_t>(options.num_bins) - 1);
      row.back() = Value(labels[static_cast<size_t>(k)]);
    }
    SEEDB_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace seedb::db
