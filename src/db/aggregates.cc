#include "db/aggregates.h"

#include "util/string_util.h"

namespace seedb::db {

const char* AggregateFunctionToSql(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "?";
}

Result<AggregateFunction> ParseAggregateFunction(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "COUNT") return AggregateFunction::kCount;
  if (up == "SUM") return AggregateFunction::kSum;
  if (up == "AVG" || up == "MEAN") return AggregateFunction::kAvg;
  if (up == "MIN") return AggregateFunction::kMin;
  if (up == "MAX") return AggregateFunction::kMax;
  return Status::InvalidArgument("unknown aggregate function '" + name + "'");
}

const std::vector<AggregateFunction>& AllAggregateFunctions() {
  static const std::vector<AggregateFunction> kAll = {
      AggregateFunction::kCount, AggregateFunction::kSum,
      AggregateFunction::kAvg, AggregateFunction::kMin,
      AggregateFunction::kMax};
  return kAll;
}

std::string AggregateSpec::EffectiveName() const {
  if (!output_name.empty()) return output_name;
  std::string arg = input.empty() ? "*" : input;
  return std::string(AggregateFunctionToSql(func)) + "(" + arg + ")";
}

std::string AggregateSpec::ToSql() const {
  std::string arg = input.empty() ? "*" : input;
  std::string out =
      std::string(AggregateFunctionToSql(func)) + "(" + arg + ")";
  if (filter) {
    out += " FILTER (WHERE " + filter->ToSql() + ")";
  }
  if (!output_name.empty()) {
    out += " AS " + output_name;
  }
  return out;
}

AggregateSpec AggregateSpec::Count(std::string output_name) {
  AggregateSpec s;
  s.func = AggregateFunction::kCount;
  s.output_name = std::move(output_name);
  return s;
}

AggregateSpec AggregateSpec::Make(AggregateFunction f, std::string input,
                                  std::string output_name,
                                  PredicatePtr filter) {
  AggregateSpec s;
  s.func = f;
  s.input = std::move(input);
  s.output_name = std::move(output_name);
  s.filter = std::move(filter);
  return s;
}

}  // namespace seedb::db
