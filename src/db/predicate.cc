#include "db/predicate.h"

#include <algorithm>

#include "util/string_util.h"

namespace seedb::db {
namespace {

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

Status CheckComparable(const Schema& schema, const std::string& column,
                       const Value& literal) {
  SEEDB_ASSIGN_OR_RETURN(size_t idx, schema.FindColumn(column));
  if (literal.is_null()) {
    return Status::InvalidArgument("cannot compare column '" + column +
                                   "' against NULL literal");
  }
  ValueType ct = schema.column(idx).type;
  bool ok = (ct == ValueType::kString && literal.type() == ValueType::kString) ||
            ((ct == ValueType::kInt64 || ct == ValueType::kDouble) &&
             literal.is_numeric());
  if (!ok) {
    return Status::InvalidArgument(
        StringPrintf("cannot compare %s column '%s' with %s literal",
                     ValueTypeToString(ct), column.c_str(),
                     ValueTypeToString(literal.type())));
  }
  return Status::OK();
}

}  // namespace

const char* CompareOpToSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Status Predicate::EvaluateMask(const Table& table,
                               std::vector<uint8_t>* mask) const {
  SEEDB_RETURN_IF_ERROR(Validate(table.schema()));
  mask->assign(table.num_rows(), 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    (*mask)[i] = Matches(table, i) ? 1 : 0;
  }
  return Status::OK();
}

// -- ComparisonPredicate -----------------------------------------------------

bool ComparisonPredicate::Matches(const Table& table, size_t row) const {
  auto col = table.ColumnByName(column_);
  if (!col.ok()) return false;
  const Column& c = **col;
  if (c.IsNull(row)) return false;
  return CompareValues(c.GetValue(row), op_, literal_);
}

Status ComparisonPredicate::EvaluateMask(const Table& table,
                                         std::vector<uint8_t>* mask) const {
  SEEDB_RETURN_IF_ERROR(Validate(table.schema()));
  SEEDB_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column_));
  const size_t n = table.num_rows();
  mask->assign(n, 0);
  std::vector<uint8_t>& m = *mask;

  // Dictionary fast path: equality against a string literal is a code
  // comparison; other operators compare through per-code precomputation.
  if (col->type() == ValueType::kString) {
    const auto& codes = col->codes();
    std::vector<uint8_t> code_match(col->dict_size(), 0);
    for (size_t c = 0; c < col->dict_size(); ++c) {
      code_match[c] = CompareValues(Value(col->dict_value(static_cast<int32_t>(c))),
                                    op_, literal_)
                          ? 1
                          : 0;
    }
    for (size_t i = 0; i < n; ++i) {
      m[i] = (!col->IsNull(i) && code_match[codes[i]]) ? 1 : 0;
    }
    return Status::OK();
  }

  double lit = literal_.ToDouble().ValueOrDie();
  for (size_t i = 0; i < n; ++i) {
    if (col->IsNull(i)) continue;
    double v = col->NumericAt(i);
    bool hit = false;
    switch (op_) {
      case CompareOp::kEq:
        hit = v == lit;
        break;
      case CompareOp::kNe:
        hit = v != lit;
        break;
      case CompareOp::kLt:
        hit = v < lit;
        break;
      case CompareOp::kLe:
        hit = v <= lit;
        break;
      case CompareOp::kGt:
        hit = v > lit;
        break;
      case CompareOp::kGe:
        hit = v >= lit;
        break;
    }
    m[i] = hit ? 1 : 0;
  }
  return Status::OK();
}

Status ComparisonPredicate::Validate(const Schema& schema) const {
  return CheckComparable(schema, column_, literal_);
}

std::string ComparisonPredicate::ToSql() const {
  return column_ + " " + CompareOpToSql(op_) + " " + literal_.ToSqlLiteral();
}

std::unique_ptr<Predicate> ComparisonPredicate::Clone() const {
  return std::make_unique<ComparisonPredicate>(column_, op_, literal_);
}

void ComparisonPredicate::CollectColumns(std::vector<std::string>* out) const {
  out->push_back(column_);
}

// -- InPredicate -------------------------------------------------------------

bool InPredicate::Matches(const Table& table, size_t row) const {
  auto col = table.ColumnByName(column_);
  if (!col.ok()) return false;
  const Column& c = **col;
  if (c.IsNull(row)) return false;
  Value v = c.GetValue(row);
  return std::any_of(values_.begin(), values_.end(),
                     [&](const Value& cand) { return v == cand; });
}

Status InPredicate::Validate(const Schema& schema) const {
  if (values_.empty()) {
    return Status::InvalidArgument("IN list for column '" + column_ +
                                   "' is empty");
  }
  for (const auto& v : values_) {
    SEEDB_RETURN_IF_ERROR(CheckComparable(schema, column_, v));
  }
  return Status::OK();
}

std::string InPredicate::ToSql() const {
  std::vector<std::string> lits;
  lits.reserve(values_.size());
  for (const auto& v : values_) lits.push_back(v.ToSqlLiteral());
  return column_ + " IN (" + Join(lits, ", ") + ")";
}

std::unique_ptr<Predicate> InPredicate::Clone() const {
  return std::make_unique<InPredicate>(column_, values_);
}

void InPredicate::CollectColumns(std::vector<std::string>* out) const {
  out->push_back(column_);
}

// -- BetweenPredicate --------------------------------------------------------

bool BetweenPredicate::Matches(const Table& table, size_t row) const {
  auto col = table.ColumnByName(column_);
  if (!col.ok()) return false;
  const Column& c = **col;
  if (c.IsNull(row)) return false;
  Value v = c.GetValue(row);
  return v >= lo_ && v <= hi_;
}

Status BetweenPredicate::Validate(const Schema& schema) const {
  SEEDB_RETURN_IF_ERROR(CheckComparable(schema, column_, lo_));
  return CheckComparable(schema, column_, hi_);
}

std::string BetweenPredicate::ToSql() const {
  return column_ + " BETWEEN " + lo_.ToSqlLiteral() + " AND " +
         hi_.ToSqlLiteral();
}

std::unique_ptr<Predicate> BetweenPredicate::Clone() const {
  return std::make_unique<BetweenPredicate>(column_, lo_, hi_);
}

void BetweenPredicate::CollectColumns(std::vector<std::string>* out) const {
  out->push_back(column_);
}

// -- LogicalPredicate --------------------------------------------------------

bool LogicalPredicate::Matches(const Table& table, size_t row) const {
  if (kind_ == Kind::kAnd) {
    for (const auto& c : children_) {
      if (!c->Matches(table, row)) return false;
    }
    return true;
  }
  for (const auto& c : children_) {
    if (c->Matches(table, row)) return true;
  }
  return false;
}

Status LogicalPredicate::EvaluateMask(const Table& table,
                                      std::vector<uint8_t>* mask) const {
  if (children_.empty()) {
    return Status::InvalidArgument("logical predicate with no children");
  }
  SEEDB_RETURN_IF_ERROR(children_[0]->EvaluateMask(table, mask));
  std::vector<uint8_t> tmp;
  for (size_t i = 1; i < children_.size(); ++i) {
    SEEDB_RETURN_IF_ERROR(children_[i]->EvaluateMask(table, &tmp));
    if (kind_ == Kind::kAnd) {
      for (size_t r = 0; r < mask->size(); ++r) (*mask)[r] &= tmp[r];
    } else {
      for (size_t r = 0; r < mask->size(); ++r) (*mask)[r] |= tmp[r];
    }
  }
  return Status::OK();
}

Status LogicalPredicate::Validate(const Schema& schema) const {
  if (children_.empty()) {
    return Status::InvalidArgument("logical predicate with no children");
  }
  for (const auto& c : children_) {
    SEEDB_RETURN_IF_ERROR(c->Validate(schema));
  }
  return Status::OK();
}

std::string LogicalPredicate::ToSql() const {
  const char* sep = kind_ == Kind::kAnd ? " AND " : " OR ";
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) out += sep;
    out += children_[i]->ToSql();
  }
  out += ")";
  return out;
}

std::unique_ptr<Predicate> LogicalPredicate::Clone() const {
  std::vector<std::unique_ptr<Predicate>> kids;
  kids.reserve(children_.size());
  for (const auto& c : children_) kids.push_back(c->Clone());
  return std::make_unique<LogicalPredicate>(kind_, std::move(kids));
}

void LogicalPredicate::CollectColumns(std::vector<std::string>* out) const {
  for (const auto& c : children_) c->CollectColumns(out);
}

// -- NotPredicate ------------------------------------------------------------

bool NotPredicate::Matches(const Table& table, size_t row) const {
  return !child_->Matches(table, row);
}

Status NotPredicate::Validate(const Schema& schema) const {
  return child_->Validate(schema);
}

std::string NotPredicate::ToSql() const {
  return "NOT (" + child_->ToSql() + ")";
}

std::unique_ptr<Predicate> NotPredicate::Clone() const {
  return std::make_unique<NotPredicate>(child_->Clone());
}

void NotPredicate::CollectColumns(std::vector<std::string>* out) const {
  child_->CollectColumns(out);
}

// -- TruePredicate -----------------------------------------------------------

Status TruePredicate::EvaluateMask(const Table& table,
                                   std::vector<uint8_t>* mask) const {
  mask->assign(table.num_rows(), 1);
  return Status::OK();
}

// -- Builders ----------------------------------------------------------------

std::unique_ptr<Predicate> Eq(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kEq, std::move(v));
}
std::unique_ptr<Predicate> Ne(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kNe, std::move(v));
}
std::unique_ptr<Predicate> Lt(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kLt, std::move(v));
}
std::unique_ptr<Predicate> Le(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kLe, std::move(v));
}
std::unique_ptr<Predicate> Gt(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kGt, std::move(v));
}
std::unique_ptr<Predicate> Ge(std::string column, Value v) {
  return std::make_unique<ComparisonPredicate>(std::move(column),
                                               CompareOp::kGe, std::move(v));
}
std::unique_ptr<Predicate> In(std::string column, std::vector<Value> values) {
  return std::make_unique<InPredicate>(std::move(column), std::move(values));
}
std::unique_ptr<Predicate> Between(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}
std::unique_ptr<Predicate> And(
    std::vector<std::unique_ptr<Predicate>> children) {
  return std::make_unique<LogicalPredicate>(LogicalPredicate::Kind::kAnd,
                                            std::move(children));
}
std::unique_ptr<Predicate> And(std::unique_ptr<Predicate> a,
                               std::unique_ptr<Predicate> b) {
  std::vector<std::unique_ptr<Predicate>> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return And(std::move(kids));
}
std::unique_ptr<Predicate> Or(
    std::vector<std::unique_ptr<Predicate>> children) {
  return std::make_unique<LogicalPredicate>(LogicalPredicate::Kind::kOr,
                                            std::move(children));
}
std::unique_ptr<Predicate> Or(std::unique_ptr<Predicate> a,
                              std::unique_ptr<Predicate> b) {
  std::vector<std::unique_ptr<Predicate>> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return Or(std::move(kids));
}
std::unique_ptr<Predicate> Not(std::unique_ptr<Predicate> child) {
  return std::make_unique<NotPredicate>(std::move(child));
}
std::unique_ptr<Predicate> True() { return std::make_unique<TruePredicate>(); }

}  // namespace seedb::db
