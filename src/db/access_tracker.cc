#include "db/access_tracker.h"

#include <algorithm>
#include <set>

namespace seedb::db {
namespace {

std::string Key(const std::string& table, const std::string& column) {
  std::string k = table;
  k.push_back('\0');
  k += column;
  return k;
}

}  // namespace

void AccessTracker::RecordQuery(const std::string& table,
                                const std::vector<std::string>& columns) {
  // Dedupe: a column referenced by both WHERE and GROUP BY counts once.
  std::set<std::string> unique(columns.begin(), columns.end());
  base::MutexLock lock(&mutex_);
  ++query_counts_[table];
  for (const auto& c : unique) {
    ++access_counts_[Key(table, c)];
  }
}

uint64_t AccessTracker::QueryCount(const std::string& table) const {
  base::MutexLock lock(&mutex_);
  auto it = query_counts_.find(table);
  return it == query_counts_.end() ? 0 : it->second;
}

uint64_t AccessTracker::AccessCount(const std::string& table,
                                    const std::string& column) const {
  base::MutexLock lock(&mutex_);
  auto it = access_counts_.find(Key(table, column));
  return it == access_counts_.end() ? 0 : it->second;
}

double AccessTracker::AccessFrequency(const std::string& table,
                                      const std::string& column) const {
  uint64_t total = QueryCount(table);
  if (total == 0) return 0.0;
  return static_cast<double>(AccessCount(table, column)) /
         static_cast<double>(total);
}

std::vector<std::pair<std::string, uint64_t>> AccessTracker::TopColumns(
    const std::string& table) const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    base::MutexLock lock(&mutex_);
    std::string prefix = table;
    prefix.push_back('\0');
    for (const auto& [key, count] : access_counts_) {
      if (key.size() > prefix.size() &&
          key.compare(0, prefix.size(), prefix) == 0) {
        out.emplace_back(key.substr(prefix.size()), count);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void AccessTracker::Reset() {
  base::MutexLock lock(&mutex_);
  query_counts_.clear();
  access_counts_.clear();
}

}  // namespace seedb::db
