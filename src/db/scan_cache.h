// Cross-session partial-aggregate cache and the normalized predicate
// fingerprints that key it.
//
// At "millions of users" scale the sharing argument of SeeDB §4 applies
// *across* requests, not just within one: interactive front ends emit
// streams of near-identical queries over the same table. The shared scan
// already computes fully-merged per-(query, grouping set) aggregation
// states; this module lets a server-wide cache retain them so a later
// session whose (table version, predicate fingerprint, grouping set,
// aggregate list) pair hits the cache adopts the merged states directly and
// never scans for that pair.
//
// Keys are *semantic*, not syntactic: literals are normalized into the
// double domain the engine itself compares numerics in (so `x = 1` and
// `x = 1.0` share one entry, and `+0.0` / `-0.0` collapse), and comparison
// fingerprints embed the column's schema index and physical type so
// equal-looking predicates over different columns or types can never
// collide. Table contents are pinned by db::Catalog::TableVersion — any
// load/replace bumps the version and orphans every entry derived from the
// old contents (the LRU reclaims them).
//
// The cache also carries utility priors: final view utilities published at
// the end of a full run, used to warm-start online pruning (tighter initial
// Hoeffding intervals -> earlier retirement) in later sessions.

#ifndef SEEDB_DB_SCAN_CACHE_H_
#define SEEDB_DB_SCAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "db/aggregates.h"
#include "db/grouping_sets.h"
#include "db/predicate.h"
#include "db/table.h"

namespace seedb::db {

/// Canonical key text for a literal. Numerics (int64 and double) normalize
/// into the double domain — exactly the domain ComparisonPredicate compares
/// rows in (Column::NumericAt) — with -0.0 collapsed onto +0.0, so every
/// spelling that selects the same rows produces the same key. Strings and
/// nulls key verbatim (tagged so "1" the string never collides with 1 the
/// number).
std::string NormalizedValueKey(const Value& v);

/// Cross-session fingerprint of a row predicate against `schema`.
/// nullptr (select-all) fingerprints to "*". A plain column-vs-literal
/// comparison fingerprints structurally — column index, physical type,
/// operator, normalized literal — so distinct-but-equal spellings share a
/// fingerprint and different columns/types never collide. Any other shape
/// falls back to the canonical SQL rendering (still deterministic, just
/// spelling-sensitive).
std::string PredicateFingerprint(const Predicate* pred, const Schema& schema);

/// Cache key for one (query, grouping set) pair of a shared-scan batch over
/// `table` at catalog version `table_version`. Embeds the table name and
/// version, the WHERE fingerprint, the sampling configuration, the grouping
/// set's column indices, and each aggregate's input column + FILTER
/// fingerprint. Aggregate *functions* are deliberately excluded: AggState
/// accumulates count/sum/min/max together, so SUM(x) and AVG(x) sessions
/// share one entry.
std::string PartialAggCacheKey(const Table& table, uint64_t table_version,
                               const GroupingSetsQuery& query,
                               size_t set_index);

/// One cached (query, grouping set) result: the merged aggregation states in
/// first-seen group order plus one representative row per group (group keys
/// rematerialize from the table via these rows — valid because the key pins
/// the table version). Exactly the persistent state the shared scan holds at
/// the end of a full pass, so adopting an entry is bit-identical to having
/// scanned.
struct CachedPartialAgg {
  std::vector<uint32_t> rep_row;
  /// states[agg][group], same shape as the scan's merged state.
  std::vector<std::vector<AggState>> states;
  /// Accounted footprint (states + rep_row + key), the LRU's budget unit.
  size_t bytes = 0;
};

struct ScanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// \brief Thread-safe LRU cache of partial-aggregate states, server-wide.
///
/// Values are shared_ptrs so an adoption holds its entry alive even if the
/// LRU evicts it concurrently. An entry larger than the whole budget is
/// refused outright instead of evicting everything else first.
class PartialAggCache {
 public:
  explicit PartialAggCache(size_t budget_bytes) : budget_(budget_bytes) {}

  PartialAggCache(const PartialAggCache&) = delete;
  PartialAggCache& operator=(const PartialAggCache&) = delete;

  /// Returns the entry and freshens its LRU position, or nullptr on miss.
  /// Counts one hit or miss.
  std::shared_ptr<const CachedPartialAgg> Lookup(const std::string& key);

  /// Inserts (or replaces) `key`, then evicts least-recently-used entries
  /// until the footprint fits the budget again.
  void Insert(const std::string& key, CachedPartialAgg entry);

  /// Publishes the final utility of a fully-scanned view so later sessions
  /// can warm-start pruning. `weight` is the evidence behind the estimate
  /// (phases observed); later publications for the same key overwrite.
  void PutUtilityPrior(const std::string& key, double utility,
                       uint64_t weight);

  /// True when a prior exists; fills utility/weight.
  bool LookupUtilityPrior(const std::string& key, double* utility,
                          uint64_t* weight) const;

  ScanCacheStats stats() const;
  size_t budget_bytes() const { return budget_; }

 private:
  struct Node {
    std::shared_ptr<const CachedPartialAgg> value;
    std::list<std::string>::iterator lru_it;
  };

  mutable base::Mutex mu_;
  const size_t budget_;
  /// Front = most recently used; entries name their map key.
  std::list<std::string> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Node> map_ GUARDED_BY(mu_);
  /// view-utility priors: key -> (utility, weight). Tiny per entry; bounded
  /// by wholesale clear at kMaxPriors.
  std::unordered_map<std::string, std::pair<double, uint64_t>> priors_
      GUARDED_BY(mu_);
  size_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace seedb::db

#endif  // SEEDB_DB_SCAN_CACHE_H_
