// Column: typed columnar storage with dictionary encoding for strings.
//
// Strings are dictionary-encoded (int32 codes + interned dictionary), which
// makes group-by on categorical dimensions an array-of-ints problem — the
// layout every real columnar engine uses and the reason SeeDB's shared-scan
// optimizations translate into proportional wall-clock savings here.

#ifndef SEEDB_DB_COLUMN_H_
#define SEEDB_DB_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "util/result.h"

namespace seedb::db {

/// \brief A single table column: growable, typed, nullable.
///
/// Physical layouts by type:
///   kInt64  -> std::vector<int64_t>
///   kDouble -> std::vector<double>
///   kString -> std::vector<int32_t> codes into an interned dictionary
/// Nulls are tracked in a validity vector allocated on first null; a null
/// row's slot holds 0 / 0.0 / code 0 and must not be read through the typed
/// accessors without checking IsNull.
class Column {
 public:
  explicit Column(ValueType type);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }

  /// Appends a value; null is accepted for any column type. Type-mismatched
  /// values fail (int64 literals are accepted into double columns).
  Status Append(const Value& v);

  /// Fast-path appends (no per-row variant). Type must match.
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendNull();

  bool IsNull(size_t row) const {
    return !validity_.empty() && validity_[row] == 0;
  }

  /// Boxed value at `row` (null-aware). Edge-of-engine use only.
  Value GetValue(size_t row) const;

  /// Numeric value at `row` as double. Caller must ensure the column is
  /// numeric and the row non-null.
  double NumericAt(size_t row) const {
    return type_ == ValueType::kInt64
               ? static_cast<double>(int64_data_[row])
               : double_data_[row];
  }

  /// Raw typed access (hot path). Valid only for the matching type.
  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<int32_t>& codes() const { return codes_; }
  /// Raw validity bytes (1 = valid, 0 = null); EMPTY means "no nulls". The
  /// vectorized kernels (db/vec/) take this as a nullable pointer:
  /// `validity().empty() ? nullptr : validity().data()`.
  const std::vector<uint8_t>& validity() const { return validity_; }

  /// Dictionary for string columns.
  size_t dict_size() const { return dict_.size(); }
  const std::string& dict_value(int32_t code) const { return dict_[code]; }
  /// Returns the code for `s`, or -1 if `s` is not in the dictionary.
  int32_t FindCode(std::string_view s) const;

  /// Exact distinct count of non-null values (O(n) for numerics, O(1)-ish
  /// for dictionary columns which may overcount dropped values only if rows
  /// were never removed — they cannot be, so it is exact).
  size_t CountDistinct() const;

 private:
  void MarkValidityForAppend(bool valid);

  ValueType type_;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
  /// Empty means "all valid"; otherwise 1 = valid, 0 = null.
  std::vector<uint8_t> validity_;
};

}  // namespace seedb::db

#endif  // SEEDB_DB_COLUMN_H_
