// Synthetic dataset generator (§4, "Synthetic data"): "datasets with varying
// sizes, number of attributes, and data distributions".
//
// Datasets can carry a *planted deviation*: rows matching a selector
// predicate have one measure's conditional distribution over one dimension
// skewed relative to the full data. The planted (dimension, measure) pair is
// the ground-truth "interesting view" recovery tests and benches check for.

#ifndef SEEDB_DATA_SYNTHETIC_H_
#define SEEDB_DATA_SYNTHETIC_H_

#include <optional>
#include <string>
#include <vector>

#include "db/predicate.h"
#include "db/table.h"
#include "util/result.h"

namespace seedb::data {

/// Value distribution of one dimension column.
struct DimensionSpec {
  std::string name;
  size_t cardinality = 10;
  enum class Dist { kUniform, kZipf } distribution = Dist::kUniform;
  /// Zipf skew (only for kZipf); 1.0 is classic Zipf.
  double zipf_s = 1.0;
  /// If >= 0: this dimension's value is derived from dimension
  /// `correlated_with` (same row), flipped to a random value with
  /// probability `correlation_noise`. Used to exercise correlated-attribute
  /// pruning.
  int correlated_with = -1;
  double correlation_noise = 0.05;
};

/// Value distribution of one measure column.
struct MeasureSpec {
  std::string name;
  enum class Dist { kGaussian, kUniform, kExponential } distribution =
      Dist::kGaussian;
  /// Gaussian parameters.
  double mean = 100.0;
  double stddev = 20.0;
  /// Uniform bounds.
  double lo = 0.0;
  double hi = 1.0;
  /// Exponential rate.
  double rate = 0.01;
};

/// A ground-truth deviation: for rows where
/// dimensions[selector_dim] == value #selector_value_index, measure
/// #measure_index is multiplied by `strength` whenever
/// dimensions[deviating_dim]'s value index is odd. The view
/// (deviating_dim, measure, SUM/AVG) then deviates strongly under the
/// selector query and should be recommended.
struct PlantedDeviation {
  size_t selector_dim = 0;
  size_t selector_value_index = 0;
  size_t deviating_dim = 1;
  size_t measure_index = 0;
  double strength = 5.0;
};

struct SyntheticSpec {
  size_t rows = 10000;
  std::vector<DimensionSpec> dimensions;
  std::vector<MeasureSpec> measures;
  std::optional<PlantedDeviation> deviation;
  uint64_t seed = 42;

  /// Uniform spec: `num_dims` dimensions of equal cardinality and
  /// `num_measures` Gaussian measures, with a default planted deviation
  /// (selector dim 0, deviating dim 1, measure 0) when num_dims >= 2.
  static SyntheticSpec Simple(size_t rows, size_t num_dims,
                              size_t num_measures, size_t cardinality,
                              uint64_t seed = 42);
};

/// The generated table plus its ground truth.
struct SyntheticDataset {
  db::Table table;
  /// The analyst query selecting the deviating subset (null when no
  /// deviation was planted).
  db::PredicatePtr selection;
  /// The (dimension, measure) pair whose view should rank highly under
  /// `selection` (empty when no deviation).
  std::string expected_dimension;
  std::string expected_measure;
  /// Dictionary value the selector matches, e.g. "dim0_v0".
  std::string selector_value;

  SyntheticDataset(db::Table t) : table(std::move(t)) {}
};

/// Generates a dataset from `spec`. Deterministic for a given seed.
Result<SyntheticDataset> GenerateSynthetic(const SyntheticSpec& spec);

/// Name of the j-th dictionary value of dimension `dim` ("<dim>_v<j>").
std::string DimensionValueName(const std::string& dim, size_t j);

}  // namespace seedb::data

#endif  // SEEDB_DATA_SYNTHETIC_H_
