#include "data/workload.h"

namespace seedb::data {

Result<Workload> BuildWorkload(const WorkloadSpec& spec) {
  SyntheticSpec synth =
      SyntheticSpec::Simple(spec.rows, spec.num_dims, spec.num_measures,
                            spec.cardinality, spec.seed);
  if (spec.zipf_s > 0.0) {
    for (auto& d : synth.dimensions) {
      d.distribution = DimensionSpec::Dist::kZipf;
      d.zipf_s = spec.zipf_s;
    }
  }
  if (spec.deviation_strength <= 0.0) {
    synth.deviation.reset();
  } else if (synth.deviation) {
    synth.deviation->strength = spec.deviation_strength;
  }

  SEEDB_ASSIGN_OR_RETURN(SyntheticDataset dataset, GenerateSynthetic(synth));

  Workload w;
  w.catalog = std::make_unique<db::Catalog>();
  w.rows = dataset.table.num_rows();
  w.selection = dataset.selection;
  w.expected_dimension = dataset.expected_dimension;
  w.expected_measure = dataset.expected_measure;
  SEEDB_RETURN_IF_ERROR(
      w.catalog->AddTable(w.table_name, std::move(dataset.table)));
  w.engine = std::make_unique<db::Engine>(w.catalog.get());
  // Precompute statistics so benches measure execution, not profiling.
  SEEDB_RETURN_IF_ERROR(w.catalog->GetStats(w.table_name).status());
  return w;
}

}  // namespace seedb::data
