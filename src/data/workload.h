// Parameterized benchmark workloads (§4, Scenario 2): "attendees will be
// able to easily experiment with a range of synthetic datasets and input
// queries by adjusting various knobs such as data size, number of
// attributes, and data distribution."

#ifndef SEEDB_DATA_WORKLOAD_H_
#define SEEDB_DATA_WORKLOAD_H_

#include <memory>
#include <string>

#include "data/synthetic.h"
#include "db/engine.h"
#include "util/result.h"

namespace seedb::data {

/// The Scenario-2 knobs.
struct WorkloadSpec {
  size_t rows = 100000;
  size_t num_dims = 5;
  size_t num_measures = 2;
  size_t cardinality = 25;
  /// Dimension skew: 0 = uniform, > 0 = Zipf(s).
  double zipf_s = 0.0;
  /// Planted deviation multiplier (0 disables planting).
  double deviation_strength = 5.0;
  uint64_t seed = 42;
};

/// A ready-to-query benchmark environment: catalog + engine + the analyst
/// selection and its ground truth.
struct Workload {
  std::unique_ptr<db::Catalog> catalog;
  std::unique_ptr<db::Engine> engine;
  std::string table_name = "synthetic";
  db::PredicatePtr selection;
  std::string expected_dimension;
  std::string expected_measure;
  size_t rows = 0;
};

/// Builds the catalog/engine pair for `spec` with the table registered and
/// statistics precomputed (so benches measure query time, not stats time).
Result<Workload> BuildWorkload(const WorkloadSpec& spec);

}  // namespace seedb::data

#endif  // SEEDB_DATA_WORKLOAD_H_
