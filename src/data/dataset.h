// Shared shape of the demo datasets (§4): a table plus its known-interesting
// trends, used to verify that SeeDB "does indeed reproduce known information
// about these queries".

#ifndef SEEDB_DATA_DATASET_H_
#define SEEDB_DATA_DATASET_H_

#include <string>
#include <vector>

#include "db/table.h"

namespace seedb::data {

/// A planted, known-interesting trend: issuing `query_sql` should surface the
/// view (expected_dimension, expected_measure, *) near the top.
struct KnownTrend {
  std::string description;
  /// Analyst input query, e.g. "SELECT * FROM orders WHERE category = 'x'".
  std::string query_sql;
  std::string expected_dimension;
  std::string expected_measure;
};

/// One demo dataset: table, its canonical name, and its known trends.
struct DemoDataset {
  db::Table table;
  std::string table_name;
  std::vector<KnownTrend> trends;

  explicit DemoDataset(db::Table t) : table(std::move(t)) {}
};

}  // namespace seedb::data

#endif  // SEEDB_DATA_DATASET_H_
