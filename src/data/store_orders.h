// Store Orders: a synthetic stand-in for the Tableau "Superstore" dataset
// (§4, [4]) — "orders placed in a store including products, prices, ship
// dates, geographical information, and profits. Interesting trends in this
// dataset have been very well studied."
//
// Planted trends (ground truth for tests/benches):
//   * Furniture profit is strongly negative in the Central region while
//     sales stay unremarkable -> query "category = 'Furniture'" should rank
//     (region, profit) views at the top.
//   * Technology sales are heavily concentrated in the Corporate segment
//     -> query "category = 'Technology'" surfaces (segment, sales).
//   * The "Laserwave Oven" product (the paper's §1 running example) sells
//     almost exclusively in a few stores -> query
//     "product = 'Laserwave Oven'" surfaces (store, sales), reproducing
//     Table 1 / Figures 1-3.

#ifndef SEEDB_DATA_STORE_ORDERS_H_
#define SEEDB_DATA_STORE_ORDERS_H_

#include "data/dataset.h"
#include "util/result.h"

namespace seedb::data {

struct StoreOrdersSpec {
  size_t rows = 20000;
  uint64_t seed = 7;
};

/// Generates the store-orders demo dataset. Schema:
///   dimensions: product, category, sub_category, region, store, segment,
///               ship_mode, order_priority
///   measures:   sales, quantity, discount, profit
Result<DemoDataset> MakeStoreOrders(const StoreOrdersSpec& spec = {});

}  // namespace seedb::data

#endif  // SEEDB_DATA_STORE_ORDERS_H_
